#!/usr/bin/env python3
"""Cloud application workloads: iperf, Apache, Memcached (Fig. 6).

Benchmarks the three workloads the paper evaluates against every
security level in the shared resource mode, and prints a Fig. 6-style
comparison: aggregate throughput and response times, Baseline vs MTS.

Run:  python examples/cloud_workloads.py
"""

from repro.core import (
    DeploymentSpec,
    ResourceMode,
    SecurityLevel,
    TrafficScenario,
    build_deployment,
)
from repro.units import MSEC
from repro.workloads import ApacheModel, IperfModel, MemcachedModel

CONFIGS = [
    ("Baseline", SecurityLevel.BASELINE, 1),
    ("L1      ", SecurityLevel.LEVEL_1, 1),
    ("L2(2)   ", SecurityLevel.LEVEL_2, 2),
    ("L2(4)   ", SecurityLevel.LEVEL_2, 4),
]


def deploy(level, vms):
    spec = DeploymentSpec(
        level=level,
        num_tenants=4,
        num_vswitch_vms=vms,
        resource_mode=ResourceMode.SHARED,
        nic_ports=1,  # the Fig. 6 workload topology uses one port
    )
    return build_deployment(spec, TrafficScenario.P2V)


def main() -> None:
    print("=== Cloud workloads, shared resource mode, p2v (Fig. 6 row 1) ===")
    print()
    header = (f"{'config':<10} {'iperf Gbps':>11} {'apache rps':>11} "
              f"{'apache ms':>10} {'memcached ops':>14} {'mc ms':>7}")
    print(header)
    print("-" * len(header))

    baseline_row = None
    for label, level, vms in CONFIGS:
        d = deploy(level, vms)
        iperf = IperfModel(d).run()
        apache = ApacheModel(d).run()
        memcached = MemcachedModel(d).run()
        row = (iperf.aggregate_gbps, apache.aggregate_rps,
               apache.mean_response_time / MSEC,
               memcached.aggregate_ops,
               memcached.mean_response_time / MSEC)
        if level is SecurityLevel.BASELINE:
            baseline_row = row
        print(f"{label:<10} {row[0]:>11.2f} {row[1]:>11.0f} {row[2]:>10.1f} "
              f"{row[3]:>14.0f} {row[4]:>7.2f}")

    print()
    d = deploy(SecurityLevel.LEVEL_2, 4)
    iperf = IperfModel(d).run()
    apache = ApacheModel(d).run()
    print("MTS L2(4) vs Baseline:")
    print(f"  iperf throughput:     {iperf.aggregate_gbps / baseline_row[0]:.1f}x")
    print(f"  apache throughput:    {apache.aggregate_rps / baseline_row[1]:.1f}x")
    print(f"  apache response time: "
          f"{baseline_row[2] / (apache.mean_response_time / MSEC):.1f}x faster")
    print("\n(the paper: \"biting the bullet for shared resources offers "
          "4x isolation and approximately 1.5-2x application performance\")")

    print("\nWhere does each configuration saturate?")
    for label, level, vms in CONFIGS:
        d = deploy(level, vms)
        report = IperfModel(d).run()
        bottlenecks = sorted(set(report.result.bottleneck_of.values()))
        print(f"  {label}: {bottlenecks}")


if __name__ == "__main__":
    main()
