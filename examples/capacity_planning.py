#!/usr/bin/env python3
"""Capacity planning an MTS rollout.

Answers the operator questions the paper's sections 3.2 and 6 raise:

- How many SR-IOV VFs does a given tenant count need, and where is the
  64-VFs-per-PF ceiling?
- Which resource bounds throughput in each configuration?
- When does the PCIe bus become the bottleneck (the 40/100G discussion),
  and what do x16 lanes or PCIe 4.0 buy?

Run:  python examples/capacity_planning.py
"""

from repro.core import (
    DeploymentSpec,
    ResourceMode,
    SecurityLevel,
    TrafficScenario,
    build_deployment,
)
from repro.core.vf_allocation import max_tenants, vf_budget
from repro.perfmodel.calibration import DEFAULT_CALIBRATION
from repro.perfmodel.capacity import solve
from repro.perfmodel.paths import build_flow_paths, throughput
from repro.sriov.pcie import PcieBus, PcieGen
from repro.units import GBPS, MPPS


def vf_planning() -> None:
    print("=== VF budgets (per section 3.2) ===\n")
    print(f"{'tenants':>8} {'L1 VFs':>8} {'L2/tenant VFs':>14}")
    for tenants in (1, 2, 4, 8, 16, 31):
        l1 = vf_budget(SecurityLevel.LEVEL_1, tenants, nic_ports=1).total
        l2 = vf_budget(SecurityLevel.LEVEL_2, tenants,
                       num_vswitch_vms=tenants, nic_ports=1).total
        print(f"{tenants:>8} {l1:>8} {l2:>14}")
    print(f"\nceiling at 64 VFs/PF: Level-1 supports "
          f"{max_tenants(SecurityLevel.LEVEL_1, nic_ports=1)} tenants, "
          f"per-tenant Level-2 supports "
          f"{max_tenants(SecurityLevel.LEVEL_2, nic_ports=1, per_tenant_vswitch=True)}.")


def bottleneck_map() -> None:
    print("\n=== What binds each configuration (p2v, 64 B)? ===\n")
    configs = [
        ("Baseline kernel", SecurityLevel.BASELINE, 1, False,
         ResourceMode.SHARED),
        ("MTS L2(4) shared", SecurityLevel.LEVEL_2, 4, False,
         ResourceMode.SHARED),
        ("MTS L2(4) isolated", SecurityLevel.LEVEL_2, 4, False,
         ResourceMode.ISOLATED),
        ("MTS L2(4) DPDK", SecurityLevel.LEVEL_2, 4, True,
         ResourceMode.ISOLATED),
    ]
    for label, level, vms, us, mode in configs:
        spec = DeploymentSpec(level=level, num_vswitch_vms=vms,
                              user_space=us, resource_mode=mode)
        d = build_deployment(spec, TrafficScenario.P2V)
        result = throughput(d, TrafficScenario.P2V)
        print(f"{label:<20} {result.aggregate_pps / MPPS:6.2f} Mpps  "
              f"bound by {sorted(set(result.bottleneck_of.values()))}")


def pcie_outlook() -> None:
    print("\n=== The PCIe outlook (section 6): MTU traffic, MTS L2(4)+L3 ===\n")
    # Idealize the NIC's internal switch to isolate the bus effect.
    cal = DEFAULT_CALIBRATION.with_overrides(
        nic_hairpin_capacity=1e12, nic_hairpin_bandwidth_bps=1e12)
    spec = DeploymentSpec(level=SecurityLevel.LEVEL_2, num_vswitch_vms=4,
                          user_space=True,
                          resource_mode=ResourceMode.ISOLATED)
    buses = [
        ("Gen3 x8 (the paper's NIC)", PcieBus(gen=PcieGen.GEN3, lanes=8)),
        ("Gen3 x16", PcieBus(gen=PcieGen.GEN3, lanes=16)),
        ("Gen4 x16", PcieBus(gen=PcieGen.GEN4, lanes=16)),
    ]
    for link_gbps in (10, 40, 100):
        print(f"link speed {link_gbps}G:")
        for label, bus in buses:
            d = build_deployment(spec, TrafficScenario.P2V, calibration=cal)
            d.server.nic.pcie = bus
            result = solve(build_flow_paths(
                d, TrafficScenario.P2V, frame_bytes=1514,
                link_bandwidth_bps=link_gbps * GBPS))
            goodput = result.aggregate_pps * 1448 * 8 / 1e9
            pcie_bound = any(b.startswith("pcie")
                             for b in result.bottleneck_of.values())
            marker = "  <- PCIe-bound" if pcie_bound else ""
            print(f"  {label:<26} {goodput:6.2f} Gbps goodput{marker}")
    print("\nMTS pays 3 PCIe crossings per direction per packet (vs 1 for "
          "a conventional NIC path), so the bus binds earlier -- exactly "
          "the risk the paper's discussion section flags.")


def main() -> None:
    vf_planning()
    bottleneck_map()
    pcie_outlook()


if __name__ == "__main__":
    main()
