#!/usr/bin/env python3
"""Quickstart: build an MTS deployment, push packets, inspect it.

Builds the paper's Level-2 configuration (two vswitch VMs, four
tenants, shared resource mode), runs live traffic through the
simulated SR-IOV dataplane, and prints what got built, what the
packets did, and what it cost.

Run:  python examples/quickstart.py
"""

from repro.core import (
    DeploymentSpec,
    ResourceMode,
    SecurityLevel,
    TrafficScenario,
    build_deployment,
)
from repro.security import assess_compromise, score_principles
from repro.traffic import TestbedHarness
from repro.units import fmt_time


def main() -> None:
    # 1. Declare the configuration: Level-2 security (one vswitch VM per
    #    two tenants), all compartments sharing one physical core.
    spec = DeploymentSpec(
        level=SecurityLevel.LEVEL_2,
        num_tenants=4,
        num_vswitch_vms=2,
        resource_mode=ResourceMode.SHARED,
    )

    # 2. Build it: VMs, SR-IOV VFs with per-tenant VLANs, bridges, flow
    #    rules, ARP entries and NIC security filters.
    deployment = build_deployment(spec, TrafficScenario.P2V)
    print(deployment.describe())
    print()

    # 3. Wire the measurement harness (load generator, taps, sink) and
    #    send one second's worth of traffic at 10 kpps.
    harness = TestbedHarness(deployment)
    harness.configure_tenant_flows(rate_per_flow_pps=2500)
    result = harness.run(duration=0.2)

    stats = result.latency_stats()
    print(f"sent {result.sent} frames, delivered {result.delivered} "
          f"(loss {result.loss_fraction:.1%})")
    print(f"one-way latency: median {fmt_time(stats.median)}, "
          f"p99 {fmt_time(stats.p99)}")
    print("per-tenant deliveries:", dict(harness.sink.per_flow))
    print()

    # 4. What did the security posture buy?
    print(score_principles(deployment).row())
    assessment = assess_compromise(deployment)
    print(f"exploits needed to reach the host: "
          f"{assessment.exploits_to_host}")
    print(f"tenants exposed if tenant 0's vswitch is compromised: "
          f"{assessment.vswitch_blast_radius}")
    print()

    # 5. And what did it cost?
    print(deployment.resource_report().row())

    # 6. Everything is reversible.
    deployment.teardown()
    print("\ntorn down:", len(deployment.server.vms), "VMs remain")


if __name__ == "__main__":
    main()
