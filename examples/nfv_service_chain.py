#!/usr/bin/env python3
"""NFV service chaining: the v2v scenario.

The paper's v2v topology "emulates service chains in network function
virtualization": traffic enters a tenant VM (say, a firewall VNF),
returns to the vswitch, passes through a second VM (say, a DPI VNF),
and leaves.  This example compares chained forwarding under the
Baseline and under MTS, in both throughput (capacity model) and
latency (packet-level discrete-event simulation), and prints the chain
one packet actually took.

Run:  python examples/nfv_service_chain.py
"""

from repro.core import (
    DeploymentSpec,
    ResourceMode,
    SecurityLevel,
    TrafficScenario,
    build_deployment,
)
from repro.net import Frame, MacAddress
from repro.perfmodel.paths import throughput
from repro.traffic import TestbedHarness
from repro.units import MPPS, fmt_time


def build(level, **kwargs):
    spec = DeploymentSpec(level=level, num_tenants=4, **kwargs)
    return build_deployment(spec, TrafficScenario.V2V)


def show_chain(deployment) -> None:
    """Trace one packet through the chain, hop by hop."""
    frame = Frame(
        src_mac=MacAddress.parse("02:1b:00:00:00:01"),
        dst_mac=deployment.ingress_dmac_for_tenant(0, 0),
        src_ip=deployment.plan.external_ip(0),
        dst_ip=deployment.plan.tenant_ip(0),
        flow_id=0,
    )
    TestbedHarness(deployment)  # wires the egress link
    deployment.external_ingress(0).receive(frame)
    deployment.sim.run(until=deployment.sim.now + 1.0)
    print(f"  chain for {deployment.spec.label}:")
    for hop in frame.trace:
        print(f"    {hop}")


def measure(level, label, **kwargs) -> None:
    # Throughput at saturation (64 B frames).
    d = build(level, **kwargs)
    capacity = throughput(d, TrafficScenario.V2V)
    print(f"{label}: aggregate v2v throughput "
          f"{capacity.aggregate_pps / MPPS:.2f} Mpps "
          f"(bottleneck: {sorted(set(capacity.bottleneck_of.values()))})")

    # Latency at 10 kpps through the DES.
    d2 = build(level, **kwargs)
    harness = TestbedHarness(d2)
    harness.configure_tenant_flows(rate_per_flow_pps=2500)
    result = harness.run(duration=0.1)
    stats = result.latency_stats()
    print(f"{label}: chain latency median {fmt_time(stats.median)} "
          f"(IQR {fmt_time(stats.iqr)})")


def main() -> None:
    print("=== NFV service chaining (v2v): Baseline vs MTS ===\n")
    measure(SecurityLevel.BASELINE, "Baseline        ")
    measure(SecurityLevel.LEVEL_2, "MTS L2(2) shared", num_vswitch_vms=2)
    measure(SecurityLevel.LEVEL_2, "MTS L2(2) isolated",
            num_vswitch_vms=2, resource_mode=ResourceMode.ISOLATED)
    print()

    print("One packet's journey through the MTS chain "
          "(tenant0 -> tenant1, each bounce mediated by the NIC):")
    show_chain(build(SecurityLevel.LEVEL_2, num_vswitch_vms=2))

    print("\nWhy the paper could not run v2v with per-tenant "
          "compartments:")
    try:
        build(SecurityLevel.LEVEL_2, num_vswitch_vms=4)
    except Exception as exc:
        print(f"  {type(exc).__name__}: {exc}")


if __name__ == "__main__":
    main()
