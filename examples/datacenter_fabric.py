#!/usr/bin/env python3
"""A two-server MTS datacenter: fabric, migration, metering, billing.

The paper evaluates one server; its architecture is a datacenter
design.  This example runs the extensions end to end:

1. two servers, each running Level-2 MTS, behind a leaf switch, with
   the centralized controller programming cross-server connectivity
   (and VXLAN-style tunnels);
2. a hop-by-hop trace of one tenant-to-tenant frame across the fabric;
3. runtime orchestration: hot-adding a tenant and migrating another
   between compartments, with measured downtime;
4. per-tenant metering and invoicing of virtual networking (§6's
   billing discussion).

Run:  python examples/datacenter_fabric.py
"""

from repro.core import (
    DeploymentSpec,
    MtsOrchestrator,
    MultiServerCloud,
    NetworkingMeter,
    SecurityLevel,
    TrafficScenario,
    bill,
    build_deployment,
)
from repro.traffic import TestbedHarness
from repro.units import fmt_time


def fabric_demo() -> None:
    print("=== Two servers behind a leaf switch (VXLAN overlay) ===\n")
    spec = DeploymentSpec(level=SecurityLevel.LEVEL_2, num_tenants=4,
                          num_vswitch_vms=2, nic_ports=1, tunneling=True)
    cloud = MultiServerCloud(spec, num_servers=2)
    print(cloud.describe())

    received = cloud.attach_sink(6)  # tenant 6 = server 1, local 2
    frame = cloud.send_between_tenants(0, 6, size_bytes=114)
    cloud.run()
    print(f"\ntenant 0 -> tenant 6: delivered={len(received)}")
    print("the frame's journey:")
    for hop in frame.trace:
        print(f"  {hop}")
    print(f"(encapsulated with the target's VNI on egress, decapped by "
          f"the remote ingress chain; fabric floods: {cloud.fabric.floods})")


def orchestration_demo() -> None:
    print("\n=== Runtime orchestration on a live server ===\n")
    spec = DeploymentSpec(level=SecurityLevel.LEVEL_2, num_tenants=4,
                          num_vswitch_vms=2)
    d = build_deployment(spec, TrafficScenario.P2V)
    TestbedHarness(d)
    orch = MtsOrchestrator(d)

    new = orch.add_tenant()
    print(f"hot-added tenant {new} into compartment "
          f"{orch.compartment_of(new)} "
          f"(VFs now on the NIC: {d.server.nic.total_vfs()})")

    record = orch.migrate_tenant(0, target=1)
    d.sim.run(until=record.completed_at + 1e-6)
    print(f"migrated tenant 0: compartment {record.source} -> "
          f"{record.target}, downtime {fmt_time(record.downtime)} "
          f"(SR-IOV has no live migration; gateway VFs and rules moved)")

    orch.remove_tenant(2)
    print(f"removed tenant 2 (VFs back to {d.server.nic.total_vfs()}, "
          f"free cores: {d.server.cores.available()})")


def billing_demo() -> None:
    print("\n=== Metering and billing virtual networking (§6) ===\n")
    spec = DeploymentSpec(level=SecurityLevel.LEVEL_2, num_tenants=4,
                          num_vswitch_vms=4)
    d = build_deployment(spec, TrafficScenario.P2V)
    harness = TestbedHarness(d)
    meter = NetworkingMeter(d)
    meter.snapshot()
    # Tenant 0 is five times as chatty as the rest.
    harness.add_tenant_flow(0, 10_000)
    for tenant in (1, 2, 3):
        harness.add_tenant_flow(tenant, 2_000)
    harness.run(duration=0.2)

    usages = meter.read()
    invoices = bill(d, usages)
    print(f"{'tenant':>6} {'vswitch CPU (ms)':>17} {'I/O (KB)':>10} "
          f"{'invoice ($)':>12} {'attribution':>14}")
    for usage, invoice in zip(usages, invoices):
        print(f"{usage.tenant_id:>6} "
              f"{usage.vswitch_cpu_seconds * 1e3:>17.2f} "
              f"{usage.io_bytes / 1e3:>10.1f} "
              f"{invoice.total:>12.6f} {invoice.quality.value:>14}")
    print("\n(per-tenant compartments meter CPU with hypervisor-grade "
          "accuracy -- the Baseline could only self-report from inside "
          "the shared, tenant-exposed vswitch)")


def main() -> None:
    fabric_demo()
    orchestration_demo()
    billing_demo()


if __name__ == "__main__":
    main()
