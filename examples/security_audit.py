#!/usr/bin/env python3
"""Security audit: the paper's section 2 arguments, executed.

Walks every security level through the threat model of section 2.2:
design-principle scoring, trusted-computing-base accounting, exploit
distances, blast radii -- and then demonstrates the NIC's enforcement
live by having a malicious tenant attempt (a) source-MAC spoofing and
(b) directly addressing another tenant's VF.

Run:  python examples/security_audit.py
"""

from repro.core import (
    DeploymentSpec,
    ResourceMode,
    SecurityLevel,
    TrafficScenario,
    build_deployment,
)
from repro.net import Frame, MacAddress
from repro.security import assess_compromise, score_principles, tcb_report
from repro.security.survey import render_table, survey_statistics
from repro.traffic import TestbedHarness

LEVELS = [
    dict(level=SecurityLevel.BASELINE),
    dict(level=SecurityLevel.BASELINE, user_space=True, baseline_cores=2,
         resource_mode=ResourceMode.ISOLATED),
    dict(level=SecurityLevel.LEVEL_1),
    dict(level=SecurityLevel.LEVEL_2, num_vswitch_vms=2),
    dict(level=SecurityLevel.LEVEL_2, num_vswitch_vms=4),
    dict(level=SecurityLevel.LEVEL_2, num_vswitch_vms=4, user_space=True,
         resource_mode=ResourceMode.ISOLATED),
]


def audit_levels() -> None:
    print("=== Design-principle scores and attack surfaces ===\n")
    for kwargs in LEVELS:
        spec = DeploymentSpec(num_tenants=4, **kwargs)
        d = build_deployment(spec, TrafficScenario.P2V)
        scores = score_principles(d)
        tcb = tcb_report(d)
        assessment = assess_compromise(d)
        print(scores.row())
        print(f"{'':<17}exploits to host: {assessment.exploits_to_host}, "
              f"vswitch blast radius: {assessment.vswitch_blast_radius}")
        print(f"{'':<17}{tcb.row().split(maxsplit=1)[1]}")
        print()


def demonstrate_enforcement() -> None:
    print("=== Live enforcement: a malicious tenant vs the NIC ===\n")
    spec = DeploymentSpec(level=SecurityLevel.LEVEL_2, num_tenants=4,
                          num_vswitch_vms=4)
    d = build_deployment(spec, TrafficScenario.P2V)
    TestbedHarness(d)

    # Attack 1: source-MAC spoofing from tenant 0's VF.
    spoofed = Frame(src_mac=MacAddress.parse("02:66:66:66:66:66"),
                    dst_mac=d.gw_vf[(0, 0)].mac,
                    dst_ip=d.plan.tenant_ip(1))
    d.tenant_vf[(0, 0)].port.transmit(spoofed)
    d.sim.run(until=d.sim.now + 1.0)
    drops = d.server.nic.total_drops()
    print(f"spoofed source MAC:        dropped by anti-spoofing "
          f"(spoof drops = {drops.spoof})")

    # Attack 2: correctly-sourced frame aimed straight at tenant 1.
    received_by_victim = []
    d.tenant_vf[(1, 0)].port.rx.connect(received_by_victim.append)
    direct = Frame(src_mac=d.tenant_vf[(0, 0)].mac,
                   dst_mac=d.tenant_vf[(1, 0)].mac,
                   dst_ip=d.plan.tenant_ip(1))
    d.tenant_vf[(0, 0)].port.transmit(direct)
    d.sim.run(until=d.sim.now + 1.0)
    drops = d.server.nic.total_drops()
    print(f"direct tenant-to-tenant:   dropped by wildcard filter "
          f"(filter drops = {drops.filtered}, victim received "
          f"{len(received_by_victim)})")

    # Attack 3: ARP-poisoning the gateway binding.
    table = d.tenant_arp[0]
    poisoned = table.learn(d.plan.tenant_gw_ip(0),
                           MacAddress.parse("02:66:66:66:66:66"))
    print(f"gateway ARP poisoning:     "
          f"{'SUCCEEDED' if poisoned else 'rejected (static entry pinned)'}")

    # Misconfiguration detection: a sloppy cross-tenant rule.
    conflicts = [b.table.check_conflicts() for b in d.bridges]
    print(f"flow-table conflict audit: "
          f"{sum(len(c) for c in conflicts)} cross-tenant overlaps found")


def main() -> None:
    audit_levels()
    demonstrate_enforcement()
    print("\n=== Table 1: why this matters across the ecosystem ===\n")
    stats = survey_statistics()
    print(f"{stats['monolithic_fraction']:.0%} of surveyed vswitches are "
          f"monolithic; {stats['colocated_fraction']:.0%} are co-located "
          f"with the host; {stats['kernel_involved_fraction']:.0%} touch "
          f"the kernel.\n")
    print(render_table())


if __name__ == "__main__":
    main()
