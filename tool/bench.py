#!/usr/bin/env python
"""Benchmark runner with regression gating.

Runs the micro/e2e benchmark suite under pytest-benchmark and compares
every benchmark's mean against the checked-in baseline
(``BENCH_fastpath.json`` in the repo root).  A benchmark more than
``--tolerance`` (default 20%) slower than its recorded mean fails the
run -- the guard that keeps the lookup fast path fast.

Usage::

    python tool/bench.py            # run + gate against the baseline
    python tool/bench.py --update   # run + rewrite the baseline
    make bench                      # the same, via the Makefile

New benchmarks (present in the run, absent from the baseline) are
reported but do not fail; run with ``--update`` to record them.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join(REPO_ROOT, "BENCH_fastpath.json")
BENCH_TARGETS = ("benchmarks/test_microbench.py",
                 "benchmarks/test_sweep.py",
                 "benchmarks/test_fabric.py")

#: The observability-overhead pair: the e2e run with the tracer disabled
#: (gated against the baseline like every benchmark) and the identical
#: run with span recording enabled (reported as an overhead factor, not
#: gated -- recording is opt-in and allowed to cost).
OBS_DISABLED_BENCH = "test_e2e_des_packet_rate"
OBS_ENABLED_BENCH = "test_e2e_traced_packet_rate"

#: Maximum enabled-tracer overhead over the untraced e2e run.  The
#: tracer records raw tuples on the hot path and materializes spans
#: lazily at query time, so recording must stay cheap.
OBS_GATE_MAX = 1.30

#: The batched-fastpath pair: the per-frame oracle e2e run and the
#: identical run through the struct-of-arrays mediation chain.  Their
#: ratio is the batch speedup factor -- the PR's headline number,
#: re-recorded into the baseline on every run and gated below.
BATCH_E2E_BENCH = "test_e2e_batched_packet_rate"

#: Minimum oracle-vs-batched speedup on the Fig. 5 L2 e2e scenario.
#: ROADMAP targets 3x; 2.5x is the hard floor below which the batched
#: chain is not paying for its complexity and the run fails.
BATCH_GATE_MIN = 2.5

#: The sweep-backend pair: the sequential 8-point sweep (gated like
#: every benchmark) and the identical sweep through the warm worker
#: pool.  The resulting speedup factor is re-recorded into the baseline
#: on *every* run and gated on multi-core runners (below).
SWEEP_SEQ_BENCH = "test_sweep_sequential_8pt"
SWEEP_POOL_BENCH = "test_sweep_pool_8pt"

#: Minimum pool-vs-sequential speedup on a runner with >= 4 available
#: cores.  Below this the warm pool is not paying for itself and the
#: run fails; on smaller runners the factor is recorded but not gated.
SWEEP_GATE_MIN = 1.5
SWEEP_GATE_CORES = 4

#: The fabric pair: the same 8-server scenario through the hybrid
#: (fluid background, per-packet study flows) and through the pure-DES
#: oracle.  Their ratio is the hybrid's speedup factor -- re-recorded
#: into the baseline on every run and gated below.
FABRIC_HYBRID_BENCH = "test_fabric_hybrid_8s32t"
FABRIC_DES_BENCH = "test_fabric_pure_des_8s32t"

#: Minimum pure-DES-vs-hybrid speedup.  The hybrid exists to make
#: fabric-scale runs affordable; below 5x it is not earning its
#: modeling complexity and the run fails.
FABRIC_GATE_MIN = 5.0

#: The metering pair: the plain e2e run (the tap exists but is
#: disabled) and the identical run with a MeteringSession armed.
METERING_ON_BENCH = "test_e2e_metered_packet_rate"
#: Metering ON may cost at most this much over the plain run.
METERING_ON_GATE = 1.6
#: Metering OFF (the guarded no-op tap on every hot-path site) may
#: cost at most this much over the *recorded baseline* of the plain
#: run -- a tighter screw than the general 20% regression tolerance,
#: because the disabled tap is pure overhead for everyone.
METERING_OFF_GATE = 1.1

#: The control-plane pair: the plain e2e run and the identical run with
#: an IDLE resident control plane sharing the simulator (heartbeat
#: probes and autoscaler ticks fire, no tenants arrive).
CONTROL_PLANE_BENCH = "test_e2e_controlplane_packet_rate"
#: Maximum standing overhead the idle control plane may add to the e2e
#: run.  The service is resident in every churn experiment, so its
#: do-nothing cost must stay near-free.
CONTROL_PLANE_GATE = 1.1


def available_cores() -> int:
    """Cores usable by this process (affinity/cgroup mask when the
    platform exposes one)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def run_benchmarks(json_out: str, targets) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO_ROOT, "src"),
                    env.get("PYTHONPATH")) if p)
    cmd = [sys.executable, "-m", "pytest", *targets, "-q",
           "-p", "no:cacheprovider",
           f"--benchmark-json={json_out}"]
    print("+", " ".join(cmd))
    return subprocess.call(cmd, cwd=REPO_ROOT, env=env)


def extract_means(benchmark_json: str) -> dict:
    with open(benchmark_json) as handle:
        data = json.load(handle)
    return {
        bench["name"]: {
            # min is the gating statistic: it is far more stable against
            # scheduler/load noise than the mean (the mean is recorded
            # for reference only).
            "min_us": bench["stats"]["min"] * 1e6,
            "mean_us": bench["stats"]["mean"] * 1e6,
        }
        for bench in data.get("benchmarks", [])
    }


def load_baseline() -> dict:
    if not os.path.exists(BASELINE_PATH):
        return {}
    with open(BASELINE_PATH) as handle:
        return json.load(handle)


def gate(current: dict, baseline: dict, tolerance: float,
         partial: bool = False) -> int:
    recorded = baseline.get("benchmarks", {})
    regressions = []
    for name, stats in sorted(current.items()):
        value = stats["min_us"]
        base = recorded.get(name)
        if base is None:
            print(f"  NEW      {name}: {value:.2f}us (no baseline)")
            continue
        base_value = base["min_us"]
        ratio = value / base_value if base_value else float("inf")
        status = "OK" if ratio <= 1.0 + tolerance else "REGRESSED"
        print(f"  {status:<8} {name}: min {value:.2f}us "
              f"vs baseline {base_value:.2f}us ({ratio:.2f}x)")
        if status == "REGRESSED":
            regressions.append((name, ratio))
    missing = [] if partial else sorted(set(recorded) - set(current))
    for name in missing:
        print(f"  MISSING  {name}: in baseline but not in this run")
    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed beyond "
              f"{tolerance:.0%}:")
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x baseline")
        return 1
    if missing:
        print(f"\n{len(missing)} baseline benchmark(s) missing from the "
              "run (renamed/removed? run --update).")
        return 1
    print("\nAll benchmarks within tolerance.")
    return 0


def obs_overhead_factor(current: dict):
    """min(enabled) / min(disabled) of the e2e pair, or None if either
    benchmark is absent from the run."""
    disabled = current.get(OBS_DISABLED_BENCH)
    enabled = current.get(OBS_ENABLED_BENCH)
    if not disabled or not enabled or not disabled["min_us"]:
        return None
    return enabled["min_us"] / disabled["min_us"]


def report_obs_overhead(current: dict) -> None:
    factor = obs_overhead_factor(current)
    if factor is None:
        return
    print(f"\nObservability: enabled-tracer e2e overhead {factor:.2f}x "
          f"({current[OBS_ENABLED_BENCH]['min_us']:.0f}us traced vs "
          f"{current[OBS_DISABLED_BENCH]['min_us']:.0f}us disabled)")


def gate_obs_overhead(current: dict) -> int:
    """Fail the run when enabled-tracer recording costs more than the
    budget over the untraced e2e run."""
    factor = obs_overhead_factor(current)
    if factor is None:
        return 0
    if factor > OBS_GATE_MAX:
        print(f"Observability gate FAILED: {factor:.2f}x > "
              f"{OBS_GATE_MAX}x enabled-tracer overhead")
        return 1
    print(f"Observability gate OK: {factor:.2f}x <= {OBS_GATE_MAX}x")
    return 0


def record_obs_overhead(current: dict) -> None:
    """Persist the enabled-tracer overhead factor into the baseline on
    every run, like the sweep and metering factors."""
    factor = obs_overhead_factor(current)
    if factor is None or not os.path.exists(BASELINE_PATH):
        return
    baseline = load_baseline()
    baseline["obs_overhead_factor"] = round(factor, 3)
    with open(BASELINE_PATH, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")


def batch_speedup_factor(current: dict):
    """min(per-frame oracle) / min(batched) of the e2e pair, or None
    if either benchmark is absent from the run."""
    des = current.get(OBS_DISABLED_BENCH)
    batched = current.get(BATCH_E2E_BENCH)
    if not des or not batched or not batched["min_us"]:
        return None
    return des["min_us"] / batched["min_us"]


def report_batch_speedup(current: dict) -> None:
    factor = batch_speedup_factor(current)
    if factor is None:
        return
    print(f"Batch: struct-of-arrays e2e speedup {factor:.2f}x over the "
          f"per-frame oracle "
          f"({current[OBS_DISABLED_BENCH]['min_us'] / 1e3:.0f}ms oracle vs "
          f"{current[BATCH_E2E_BENCH]['min_us'] / 1e3:.0f}ms batched)")


def record_batch_speedup(current: dict) -> None:
    """Persist the batch speedup headline into the baseline on every
    run, like the sweep and metering factors."""
    factor = batch_speedup_factor(current)
    if factor is None or not os.path.exists(BASELINE_PATH):
        return
    baseline = load_baseline()
    baseline["batch_e2e_speedup_factor"] = round(factor, 3)
    with open(BASELINE_PATH, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")


def gate_batch_speedup(current: dict) -> int:
    """Fail the run when the batched chain stops paying for itself."""
    factor = batch_speedup_factor(current)
    if factor is None:
        return 0
    if factor < BATCH_GATE_MIN:
        print(f"Batch speedup gate FAILED: {factor:.2f}x < "
              f"{BATCH_GATE_MIN}x over the per-frame oracle")
        return 1
    print(f"Batch speedup gate OK: {factor:.2f}x >= {BATCH_GATE_MIN}x")
    return 0


def sweep_speedup_factor(current: dict):
    """min(sequential) / min(pool) of the 8-point sweep pair, or None
    if either benchmark is absent from the run."""
    seq = current.get(SWEEP_SEQ_BENCH)
    pool = current.get(SWEEP_POOL_BENCH)
    if not seq or not pool or not pool["min_us"]:
        return None
    return seq["min_us"] / pool["min_us"]


def report_sweep_speedup(current: dict) -> None:
    factor = sweep_speedup_factor(current)
    if factor is None:
        return
    cores = available_cores()
    print(f"Sweep: warm-pool speedup {factor:.2f}x over sequential "
          f"({current[SWEEP_SEQ_BENCH]['min_us'] / 1e6:.2f}s vs "
          f"{current[SWEEP_POOL_BENCH]['min_us'] / 1e6:.2f}s for 8 "
          f"scenarios on {cores} available core(s))")


def record_sweep_speedup(current: dict) -> None:
    """Persist the measured speedup factor into the baseline file on
    every run, so BENCH_fastpath.json always carries the latest
    pool-vs-sequential number next to the gated means."""
    factor = sweep_speedup_factor(current)
    if factor is None or not os.path.exists(BASELINE_PATH):
        return
    baseline = load_baseline()
    baseline["sweep_pool_speedup_factor"] = round(factor, 3)
    with open(BASELINE_PATH, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")


def gate_sweep_speedup(current: dict) -> int:
    """Fail the run when the pool does not pay for itself on a machine
    with enough cores to tell."""
    factor = sweep_speedup_factor(current)
    if factor is None:
        return 0
    cores = available_cores()
    if cores < SWEEP_GATE_CORES:
        print(f"Sweep speedup gate skipped: {cores} available core(s) "
              f"< {SWEEP_GATE_CORES}")
        return 0
    if factor < SWEEP_GATE_MIN:
        print(f"Sweep speedup gate FAILED: {factor:.2f}x < "
              f"{SWEEP_GATE_MIN}x on {cores} cores")
        return 1
    print(f"Sweep speedup gate OK: {factor:.2f}x >= {SWEEP_GATE_MIN}x")
    return 0


def fabric_speedup_factor(current: dict):
    """min(pure DES) / min(hybrid) of the fabric pair, or None if
    either benchmark is absent from the run."""
    des = current.get(FABRIC_DES_BENCH)
    hybrid = current.get(FABRIC_HYBRID_BENCH)
    if not des or not hybrid or not hybrid["min_us"]:
        return None
    return des["min_us"] / hybrid["min_us"]


def report_fabric_speedup(current: dict) -> None:
    factor = fabric_speedup_factor(current)
    if factor is None:
        return
    print(f"Fabric: hybrid speedup {factor:.2f}x over pure DES "
          f"({current[FABRIC_DES_BENCH]['min_us'] / 1e6:.2f}s oracle vs "
          f"{current[FABRIC_HYBRID_BENCH]['min_us'] / 1e6:.2f}s hybrid)")


def record_fabric_speedup(current: dict) -> None:
    """Persist the hybrid speedup factor into the baseline file on
    every run, like the sweep and metering factors."""
    factor = fabric_speedup_factor(current)
    if factor is None or not os.path.exists(BASELINE_PATH):
        return
    baseline = load_baseline()
    baseline["fabric_hybrid_speedup_factor"] = round(factor, 3)
    with open(BASELINE_PATH, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")


def gate_fabric_speedup(current: dict) -> int:
    """Fail the run when the hybrid stops paying for itself."""
    factor = fabric_speedup_factor(current)
    if factor is None:
        return 0
    if factor < FABRIC_GATE_MIN:
        print(f"Fabric speedup gate FAILED: {factor:.2f}x < "
              f"{FABRIC_GATE_MIN}x over pure DES")
        return 1
    print(f"Fabric speedup gate OK: {factor:.2f}x >= {FABRIC_GATE_MIN}x")
    return 0


def metering_overhead_factor(current: dict):
    """min(metered) / min(plain) of the e2e pair, or None if either
    benchmark is absent from the run."""
    plain = current.get(OBS_DISABLED_BENCH)
    metered = current.get(METERING_ON_BENCH)
    if not plain or not metered or not plain["min_us"]:
        return None
    return metered["min_us"] / plain["min_us"]


def report_metering_overhead(current: dict) -> None:
    factor = metering_overhead_factor(current)
    if factor is None:
        return
    print(f"Billing: metering-enabled e2e overhead {factor:.2f}x "
          f"({current[METERING_ON_BENCH]['min_us']:.0f}us metered vs "
          f"{current[OBS_DISABLED_BENCH]['min_us']:.0f}us plain)")


def record_metering_overhead(current: dict) -> None:
    """Persist the metering-enabled factor into the baseline on every
    run, like the sweep speedup factor."""
    factor = metering_overhead_factor(current)
    if factor is None or not os.path.exists(BASELINE_PATH):
        return
    baseline = load_baseline()
    baseline["metering_overhead_factor"] = round(factor, 3)
    with open(BASELINE_PATH, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")


def gate_metering(current: dict, baseline: dict,
                  check_off: bool = True) -> int:
    """Gate both sides of the metering cost: the armed session's
    overhead against the plain run, and the disabled tap's drag
    against the recorded baseline."""
    rc = 0
    factor = metering_overhead_factor(current)
    if factor is not None:
        if factor > METERING_ON_GATE:
            print(f"Metering ON gate FAILED: {factor:.2f}x > "
                  f"{METERING_ON_GATE}x over the plain e2e run")
            rc = 1
        else:
            print(f"Metering ON gate OK: {factor:.2f}x <= "
                  f"{METERING_ON_GATE}x")
    if check_off:
        plain = current.get(OBS_DISABLED_BENCH)
        base = baseline.get("benchmarks", {}).get(OBS_DISABLED_BENCH)
        if plain and base and base.get("min_us"):
            off = plain["min_us"] / base["min_us"]
            if off > METERING_OFF_GATE:
                print(f"Metering OFF gate FAILED: plain e2e at "
                      f"{off:.2f}x baseline > {METERING_OFF_GATE}x "
                      "(the disabled tap is dragging the fast path)")
                rc = 1
            else:
                print(f"Metering OFF gate OK: plain e2e at {off:.2f}x "
                      f"baseline <= {METERING_OFF_GATE}x")
    return rc


def control_plane_overhead_factor(current: dict):
    """min(resident control plane) / min(plain) of the e2e pair, or
    None if either benchmark is absent from the run."""
    plain = current.get(OBS_DISABLED_BENCH)
    resident = current.get(CONTROL_PLANE_BENCH)
    if not plain or not resident or not plain["min_us"]:
        return None
    return resident["min_us"] / plain["min_us"]


def report_control_plane_overhead(current: dict) -> None:
    factor = control_plane_overhead_factor(current)
    if factor is None:
        return
    print(f"Control plane: idle resident-service e2e overhead "
          f"{factor:.2f}x "
          f"({current[CONTROL_PLANE_BENCH]['min_us']:.0f}us resident vs "
          f"{current[OBS_DISABLED_BENCH]['min_us']:.0f}us plain)")


def record_control_plane_overhead(current: dict) -> None:
    """Persist the idle control-plane factor into the baseline on
    every run, like the sweep and metering factors."""
    factor = control_plane_overhead_factor(current)
    if factor is None or not os.path.exists(BASELINE_PATH):
        return
    baseline = load_baseline()
    baseline["control_plane_overhead_factor"] = round(factor, 3)
    with open(BASELINE_PATH, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")


def gate_control_plane(current: dict) -> int:
    """Fail the run when an idle control plane drags the e2e run."""
    factor = control_plane_overhead_factor(current)
    if factor is None:
        return 0
    if factor > CONTROL_PLANE_GATE:
        print(f"Control-plane gate FAILED: {factor:.2f}x > "
              f"{CONTROL_PLANE_GATE}x idle-resident overhead")
        return 1
    print(f"Control-plane gate OK: {factor:.2f}x <= "
          f"{CONTROL_PLANE_GATE}x")
    return 0


def update_baseline(current: dict, baseline: dict) -> None:
    baseline = dict(baseline)
    baseline["benchmarks"] = current
    factor = obs_overhead_factor(current)
    if factor is not None:
        baseline["obs_overhead_factor"] = round(factor, 3)
    batch = batch_speedup_factor(current)
    if batch is not None:
        baseline["batch_e2e_speedup_factor"] = round(batch, 3)
    speedup = sweep_speedup_factor(current)
    if speedup is not None:
        baseline["sweep_pool_speedup_factor"] = round(speedup, 3)
    fabric = fabric_speedup_factor(current)
    if fabric is not None:
        baseline["fabric_hybrid_speedup_factor"] = round(fabric, 3)
    metering = metering_overhead_factor(current)
    if metering is not None:
        baseline["metering_overhead_factor"] = round(metering, 3)
    control = control_plane_overhead_factor(current)
    if control is not None:
        baseline["control_plane_overhead_factor"] = round(control, 3)
    with open(BASELINE_PATH, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"Baseline rewritten: {BASELINE_PATH} "
          f"({len(current)} benchmarks)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed slowdown vs baseline "
                             "(default 0.20 = 20%%)")
    parser.add_argument("--targets", nargs="+", default=list(BENCH_TARGETS),
                        help="benchmark files to run (default: all); a "
                             "subset skips the missing-benchmark check")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        json_out = os.path.join(tmp, "bench.json")
        rc = run_benchmarks(json_out, args.targets)
        if rc != 0:
            print("benchmark suite failed; not gating", file=sys.stderr)
            return rc
        current = extract_means(json_out)

    partial = set(args.targets) != set(BENCH_TARGETS)
    baseline = load_baseline()
    if args.update:
        update_baseline(current, baseline)
        report_obs_overhead(current)
        report_batch_speedup(current)
        report_metering_overhead(current)
        report_control_plane_overhead(current)
        report_sweep_speedup(current)
        report_fabric_speedup(current)
        rc = gate_obs_overhead(current)
        rc = max(rc, gate_batch_speedup(current))
        rc = max(rc, gate_sweep_speedup(current))
        rc = max(rc, gate_fabric_speedup(current))
        rc = max(rc, gate_control_plane(current))
        # The off-side compares against the baseline this run just
        # rewrote, so only the on-side factor is meaningful here.
        return max(rc, gate_metering(current, baseline, check_off=False))
    if not baseline.get("benchmarks"):
        print(f"No baseline at {BASELINE_PATH}; run with --update first.",
              file=sys.stderr)
        return 1
    print(f"\nGating against {BASELINE_PATH} "
          f"(tolerance {args.tolerance:.0%}):")
    rc = gate(current, baseline, args.tolerance, partial=partial)
    report_obs_overhead(current)
    report_batch_speedup(current)
    report_metering_overhead(current)
    report_control_plane_overhead(current)
    report_sweep_speedup(current)
    report_fabric_speedup(current)
    rc = max(rc, gate_obs_overhead(current))
    rc = max(rc, gate_batch_speedup(current))
    rc = max(rc, gate_sweep_speedup(current))
    rc = max(rc, gate_fabric_speedup(current))
    rc = max(rc, gate_control_plane(current))
    rc = max(rc, gate_metering(current, baseline))
    record_obs_overhead(current)
    record_batch_speedup(current)
    record_sweep_speedup(current)
    record_metering_overhead(current)
    record_fabric_speedup(current)
    record_control_plane_overhead(current)
    return rc


if __name__ == "__main__":
    sys.exit(main())
