#!/usr/bin/env python
"""Benchmark runner with regression gating.

Runs the micro/e2e benchmark suite under pytest-benchmark and compares
every benchmark's mean against the checked-in baseline
(``BENCH_fastpath.json`` in the repo root).  A benchmark more than
``--tolerance`` (default 20%) slower than its recorded mean fails the
run -- the guard that keeps the lookup fast path fast.

Usage::

    python tool/bench.py            # run + gate against the baseline
    python tool/bench.py --update   # run + rewrite the baseline
    make bench                      # the same, via the Makefile

New benchmarks (present in the run, absent from the baseline) are
reported but do not fail; run with ``--update`` to record them.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join(REPO_ROOT, "BENCH_fastpath.json")
BENCH_TARGETS = ("benchmarks/test_microbench.py",
                 "benchmarks/test_sweep.py")

#: The observability-overhead pair: the e2e run with the tracer disabled
#: (gated against the baseline like every benchmark) and the identical
#: run with span recording enabled (reported as an overhead factor, not
#: gated -- recording is opt-in and allowed to cost).
OBS_DISABLED_BENCH = "test_e2e_des_packet_rate"
OBS_ENABLED_BENCH = "test_e2e_traced_packet_rate"

#: The sweep-backend pair: the sequential 8-point sweep (gated like
#: every benchmark) and the identical sweep through the process pool
#: (reported as a speedup factor; on a multi-core runner the pool side
#: additionally has its own >=2x assertion inside the suite).
SWEEP_SEQ_BENCH = "test_sweep_sequential_8pt"
SWEEP_POOL_BENCH = "test_sweep_pool_8pt"


def run_benchmarks(json_out: str) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO_ROOT, "src"),
                    env.get("PYTHONPATH")) if p)
    cmd = [sys.executable, "-m", "pytest", *BENCH_TARGETS, "-q",
           "-p", "no:cacheprovider",
           f"--benchmark-json={json_out}"]
    print("+", " ".join(cmd))
    return subprocess.call(cmd, cwd=REPO_ROOT, env=env)


def extract_means(benchmark_json: str) -> dict:
    with open(benchmark_json) as handle:
        data = json.load(handle)
    return {
        bench["name"]: {
            # min is the gating statistic: it is far more stable against
            # scheduler/load noise than the mean (the mean is recorded
            # for reference only).
            "min_us": bench["stats"]["min"] * 1e6,
            "mean_us": bench["stats"]["mean"] * 1e6,
        }
        for bench in data.get("benchmarks", [])
    }


def load_baseline() -> dict:
    if not os.path.exists(BASELINE_PATH):
        return {}
    with open(BASELINE_PATH) as handle:
        return json.load(handle)


def gate(current: dict, baseline: dict, tolerance: float) -> int:
    recorded = baseline.get("benchmarks", {})
    regressions = []
    for name, stats in sorted(current.items()):
        value = stats["min_us"]
        base = recorded.get(name)
        if base is None:
            print(f"  NEW      {name}: {value:.2f}us (no baseline)")
            continue
        base_value = base["min_us"]
        ratio = value / base_value if base_value else float("inf")
        status = "OK" if ratio <= 1.0 + tolerance else "REGRESSED"
        print(f"  {status:<8} {name}: min {value:.2f}us "
              f"vs baseline {base_value:.2f}us ({ratio:.2f}x)")
        if status == "REGRESSED":
            regressions.append((name, ratio))
    missing = sorted(set(recorded) - set(current))
    for name in missing:
        print(f"  MISSING  {name}: in baseline but not in this run")
    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed beyond "
              f"{tolerance:.0%}:")
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x baseline")
        return 1
    if missing:
        print(f"\n{len(missing)} baseline benchmark(s) missing from the "
              "run (renamed/removed? run --update).")
        return 1
    print("\nAll benchmarks within tolerance.")
    return 0


def obs_overhead_factor(current: dict):
    """min(enabled) / min(disabled) of the e2e pair, or None if either
    benchmark is absent from the run."""
    disabled = current.get(OBS_DISABLED_BENCH)
    enabled = current.get(OBS_ENABLED_BENCH)
    if not disabled or not enabled or not disabled["min_us"]:
        return None
    return enabled["min_us"] / disabled["min_us"]


def report_obs_overhead(current: dict) -> None:
    factor = obs_overhead_factor(current)
    if factor is None:
        return
    print(f"\nObservability: enabled-tracer e2e overhead {factor:.2f}x "
          f"({current[OBS_ENABLED_BENCH]['min_us']:.0f}us traced vs "
          f"{current[OBS_DISABLED_BENCH]['min_us']:.0f}us disabled)")


def sweep_speedup_factor(current: dict):
    """min(sequential) / min(pool) of the 8-point sweep pair, or None
    if either benchmark is absent from the run."""
    seq = current.get(SWEEP_SEQ_BENCH)
    pool = current.get(SWEEP_POOL_BENCH)
    if not seq or not pool or not pool["min_us"]:
        return None
    return seq["min_us"] / pool["min_us"]


def report_sweep_speedup(current: dict) -> None:
    factor = sweep_speedup_factor(current)
    if factor is None:
        return
    cores = os.cpu_count() or 1
    print(f"Sweep: process-pool speedup {factor:.2f}x over sequential "
          f"({current[SWEEP_SEQ_BENCH]['min_us'] / 1e6:.2f}s vs "
          f"{current[SWEEP_POOL_BENCH]['min_us'] / 1e6:.2f}s for 8 "
          f"scenarios on {cores} core(s))")


def update_baseline(current: dict, baseline: dict) -> None:
    baseline = dict(baseline)
    baseline["benchmarks"] = current
    factor = obs_overhead_factor(current)
    if factor is not None:
        baseline["obs_overhead_factor"] = round(factor, 3)
    speedup = sweep_speedup_factor(current)
    if speedup is not None:
        baseline["sweep_pool_speedup_factor"] = round(speedup, 3)
    with open(BASELINE_PATH, "w") as handle:
        json.dump(baseline, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"Baseline rewritten: {BASELINE_PATH} "
          f"({len(current)} benchmarks)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from this run")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed slowdown vs baseline "
                             "(default 0.20 = 20%%)")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        json_out = os.path.join(tmp, "bench.json")
        rc = run_benchmarks(json_out)
        if rc != 0:
            print("benchmark suite failed; not gating", file=sys.stderr)
            return rc
        current = extract_means(json_out)

    baseline = load_baseline()
    if args.update:
        update_baseline(current, baseline)
        report_obs_overhead(current)
        report_sweep_speedup(current)
        return 0
    if not baseline.get("benchmarks"):
        print(f"No baseline at {BASELINE_PATH}; run with --update first.",
              file=sys.stderr)
        return 1
    print(f"\nGating against {BASELINE_PATH} "
          f"(tolerance {args.tolerance:.0%}):")
    rc = gate(current, baseline, args.tolerance)
    report_obs_overhead(current)
    report_sweep_speedup(current)
    return rc


if __name__ == "__main__":
    sys.exit(main())
