#!/usr/bin/env python
"""cProfile harness for the Fig. 5 e2e scenario.

Profiles one end-to-end run of the paper's throughput topology (MTS
L2, 2 vswitch VMs, 4 tenant flows at 200 kpps each) and prints the
top functions by cumulative time -- the lens that found and then
verified the batched-fastpath wins recorded in EXPERIMENTS.md.

Usage::

    python tool/profile.py              # batched fast path (default)
    python tool/profile.py --oracle     # per-frame oracle path
    python tool/profile.py --top 30     # more rows
    python tool/profile.py --duration 0.05
    python tool/profile.py --out prof.pstats   # also dump raw stats
    make profile                        # batched + oracle, top-20 each
"""

from __future__ import annotations

import os
import sys

# This file is named like the stdlib ``profile`` module that cProfile
# imports; drop the script's own directory from the path so the real
# one wins, then make the repo importable.
_TOOL_DIR = os.path.dirname(os.path.abspath(__file__))
sys.path = [p for p in sys.path
            if os.path.abspath(p or ".") != _TOOL_DIR]
sys.modules.pop("profile", None)

import argparse
import cProfile
import pstats

REPO_ROOT = os.path.dirname(_TOOL_DIR)
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def run_fig5(duration: float, batch: bool) -> dict:
    from repro.core import SecurityLevel, TrafficScenario, build_deployment
    from repro.core.spec import DeploymentSpec
    from repro.traffic import TestbedHarness

    spec = DeploymentSpec(level=SecurityLevel.LEVEL_2, num_vswitch_vms=2)
    deployment = build_deployment(spec, TrafficScenario.P2V)
    harness = TestbedHarness(deployment, batch=batch)
    harness.configure_tenant_flows(rate_per_flow_pps=200_000)
    result = harness.run(duration=duration)
    return {"sent": result.sent, "delivered": result.delivered}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--oracle", action="store_true",
                        help="profile the per-frame oracle path instead "
                             "of the batched fast path")
    parser.add_argument("--duration", type=float, default=0.05,
                        help="simulated seconds of traffic (default 0.05)")
    parser.add_argument("--top", type=int, default=20,
                        help="rows of the cumulative-time table "
                             "(default 20)")
    parser.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "calls"],
                        help="pstats sort key (default cumulative)")
    parser.add_argument("--out", default=None,
                        help="also dump raw pstats to this path")
    args = parser.parse_args()

    label = "oracle (per-frame)" if args.oracle else "batched fast path"
    print(f"Profiling Fig. 5 L2 e2e, {label}, "
          f"duration={args.duration}s ...")
    profiler = cProfile.Profile()
    profiler.enable()
    counts = run_fig5(args.duration, batch=not args.oracle)
    profiler.disable()
    print(f"sent={counts['sent']} delivered={counts['delivered']}\n")

    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    if args.out:
        stats.dump_stats(args.out)
        print(f"raw pstats written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
