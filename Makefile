PYTHON ?= python

.PHONY: test bench bench-update bench-micro profile sweep-bench sweep-smoke chaos-smoke billing-smoke fabric-smoke control-smoke

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Run the benchmark suite and fail if any benchmark regressed more
# than 20% against the recorded baseline (BENCH_fastpath.json).
bench:
	$(PYTHON) tool/bench.py

# Re-record the baseline after an intentional performance change.
bench-update:
	$(PYTHON) tool/bench.py --update

# Just the hot-loop micro-benchmarks (flow-table, VEB, frame copy,
# megaflow): a fast early-failing regression gate for the lookup and
# batching primitives, before the full suite runs.
bench-micro:
	$(PYTHON) tool/bench.py --targets \
		benchmarks/test_microbench.py::test_flow_table_lookup_rate \
		benchmarks/test_microbench.py::test_flow_table_emc_hit_rate \
		benchmarks/test_microbench.py::test_veb_forwarding_rate \
		benchmarks/test_microbench.py::test_frame_copy_rate \
		benchmarks/test_microbench.py::test_megaflow_hit_rate

# cProfile the Fig. 5 e2e scenario: top-20 cumulative for the batched
# fast path and the per-frame oracle (the before/after tables in
# EXPERIMENTS.md come from exactly these two commands).
profile:
	$(PYTHON) tool/profile.py
	$(PYTHON) tool/profile.py --oracle

# Just the sweep/backends benchmarks: records the warm-pool speedup
# factor into BENCH_fastpath.json and gates on it (>= 1.5x required
# when >= 4 cores are available; recorded-only below that).
sweep-bench:
	$(PYTHON) tool/bench.py --targets benchmarks/test_sweep.py

# End-to-end smoke of the sweep runner: a 4-point grid through the
# process pool, written to a throwaway cache, then re-run to prove
# every point comes back from the store.
sweep-smoke:
	rm -rf .sweep-smoke
	PYTHONPATH=src $(PYTHON) -m repro sweep \
		--levels baseline l1 --tenants 4 \
		--duration 0.05 --traffic p2p p2v --jobs 2 \
		--cache-dir .sweep-smoke/cache --out .sweep-smoke/sweep.jsonl
	PYTHONPATH=src $(PYTHON) -m repro sweep \
		--levels baseline l1 --tenants 4 \
		--duration 0.05 --traffic p2p p2v --jobs 2 \
		--cache-dir .sweep-smoke/cache --out .sweep-smoke/sweep2.jsonl \
		> .sweep-smoke/second.txt
	cat .sweep-smoke/second.txt
	grep -q "0 computed" .sweep-smoke/second.txt
	rm -rf .sweep-smoke

# End-to-end smoke of the chaos layer: crash one vswitch per
# configuration, let the watchdog + supervisor heal it, and fail if
# any run ends unrepaired or with an accounting violation (--check).
chaos-smoke:
	rm -rf .chaos-smoke
	PYTHONPATH=src $(PYTHON) -m repro chaos \
		--duration 0.12 --check \
		--cache-dir .chaos-smoke/cache \
		--events-out .chaos-smoke/events.jsonl
	test -s .chaos-smoke/events.jsonl
	PYTHONPATH=src $(PYTHON) -m repro chaos \
		--duration 0.12 --check --warm-standby \
		--cache-dir .chaos-smoke/cache
	rm -rf .chaos-smoke

# End-to-end smoke of the fabric engine: place a small fleet, run the
# flows under study through the hybrid (fluid background + per-packet
# foreground) AND through the pure-DES oracle, and fail unless the two
# agree within the pinned 5% bound (--validate --check).
fabric-smoke:
	PYTHONPATH=src $(PYTHON) -m repro fabric \
		--servers 4 --tenants 16 --study-flows 1 \
		--duration 0.1 --validate --check

# End-to-end smoke of the resident control plane: 30 s of simulated
# tenant churn with three compartment crashes, the autoscaler live and
# the watchdog migrating crash victims.  --check fails on any lifecycle
# invariant violation or a migrated tenant that never resumed
# forwarding; the events file proves the lifecycle log shipped.
control-smoke:
	rm -rf .control-smoke
	mkdir -p .control-smoke
	PYTHONPATH=src $(PYTHON) -m repro serve \
		--duration 30 --arrival-rate 2 --crashes 3 \
		--repair-after 10 --seed 42 --check \
		--cache-dir .control-smoke/cache \
		--events-out .control-smoke/events.jsonl
	test -s .control-smoke/events.jsonl
	rm -rf .control-smoke

# End-to-end smoke of the billing pipeline: meter the noisy-neighbor
# workload on every level (clean + compartment-crash runs), fail
# unless every run's windowed usage reconciles exactly with the
# core/accounting ground truth (--check).
billing-smoke:
	rm -rf .billing-smoke
	mkdir -p .billing-smoke
	PYTHONPATH=src $(PYTHON) -m repro billing \
		--duration 0.05 --check \
		--cache-dir .billing-smoke/cache \
		--usage-out .billing-smoke/usage.jsonl \
		--invoices-out .billing-smoke/invoices.jsonl
	test -s .billing-smoke/usage.jsonl
	test -s .billing-smoke/invoices.jsonl
	rm -rf .billing-smoke
