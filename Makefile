PYTHON ?= python

.PHONY: test bench bench-update

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Run the benchmark suite and fail if any benchmark regressed more
# than 20% against the recorded baseline (BENCH_fastpath.json).
bench:
	$(PYTHON) tool/bench.py

# Re-record the baseline after an intentional performance change.
bench-update:
	$(PYTHON) tool/bench.py --update
