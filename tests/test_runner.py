"""The experiments runner: completeness and extension hooks."""

import pytest

from repro.experiments.runner import run_everything, run_extensions


class TestRunner:
    def test_every_paper_figure_has_a_table(self):
        tables = run_everything(quick=True)
        expected = {"table1", "vf-budgets"}
        for mode in ("shared", "isolated", "dpdk"):
            expected |= {
                f"fig5-throughput-{mode}",
                f"fig5-latency-{mode}",
                f"fig5-resources-{mode}",
                f"fig6-iperf-{mode}",
                f"fig6-apache-tput-{mode}",
                f"fig6-apache-rt-{mode}",
                f"fig6-memcached-tput-{mode}",
                f"fig6-memcached-rt-{mode}",
            }
        assert set(tables) == expected

    def test_all_tables_render_nonempty(self):
        tables = run_everything(quick=True)
        for key, table in tables.items():
            text = table.render()
            assert text.startswith("=="), key
            assert len(text.splitlines()) >= 3, key

    def test_extensions_run(self):
        tables = run_extensions(quick=True)
        assert set(tables) == {
            "ext-noisy-neighbor",
            "ext-policy-injection",
            "ext-latency-breakdown",
            "ext-fault-isolation",
            "ext-deployment-cost",
        }
        for table in tables.values():
            assert table.render()
