"""Scenario engine: spec hashing, store, backends, sweep grids."""

import json
import os

import pytest

from repro.core.levels import ResourceMode, SecurityLevel
from repro.core.spec import DeploymentSpec, TrafficScenario
from repro.errors import ValidationError
from repro.obs.metrics import MetricsRegistry
from repro.scenario import (
    DEFAULT_CALIBRATION_REF,
    Engine,
    NullStore,
    ProcessPoolBackend,
    ResultStore,
    ScenarioResult,
    ScenarioSpec,
    SequentialBackend,
    SweepGrid,
    build_grid,
    calibration_ref,
    fold_metrics,
    resolve,
    run_scenario,
)
from repro.perfmodel.calibration import DEFAULT_CALIBRATION


def latency_spec(seed=0, duration=0.02, **over) -> ScenarioSpec:
    fields = dict(
        workload="fig5.latency",
        deployment=DeploymentSpec(level=SecurityLevel.LEVEL_1),
        traffic=TrafficScenario.P2V,
        duration=duration,
        warmup=duration / 5,
        seed=seed,
        params={"frame_bytes": 64, "aggregate_pps": 10_000.0},
    )
    fields.update(over)
    return ScenarioSpec(**fields)


def resources_spec(**over) -> ScenarioSpec:
    fields = dict(
        workload="fig5.resources",
        deployment=DeploymentSpec(level=SecurityLevel.LEVEL_2,
                                  num_vswitch_vms=2),
        traffic=TrafficScenario.P2V,
    )
    fields.update(over)
    return ScenarioSpec(**fields)


class TestSpecSerialization:
    def test_json_round_trip(self):
        spec = latency_spec(seed=3, label="L1", eval_mode="shared")
        clone = ScenarioSpec.from_dict(
            json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.content_hash() == spec.content_hash()

    def test_unknown_field_rejected(self):
        data = latency_spec().to_dict()
        data["frobnicate"] = 1
        with pytest.raises(ValidationError):
            ScenarioSpec.from_dict(data)

    def test_infeasible_deployment_rejected(self):
        # v2v needs a shared path; per-tenant L2(4) has none.
        with pytest.raises(ValidationError):
            ScenarioSpec(
                workload="fig5.latency",
                deployment=DeploymentSpec(level=SecurityLevel.LEVEL_2,
                                          num_vswitch_vms=4),
                traffic=TrafficScenario.V2V)

    def test_param_accessor(self):
        spec = latency_spec()
        assert spec.param("frame_bytes") == 64
        assert spec.param("absent", 7) == 7


class TestContentHash:
    def test_param_order_irrelevant(self):
        a = latency_spec(params={"frame_bytes": 64, "aggregate_pps": 1.0})
        b = latency_spec(params={"aggregate_pps": 1.0, "frame_bytes": 64})
        assert a.content_hash() == b.content_hash()

    def test_presentation_fields_excluded(self):
        a = latency_spec(label="L1", eval_mode="shared")
        b = latency_spec(label="row 3", eval_mode="isolated")
        assert a.content_hash() == b.content_hash()

    def test_seed_and_calibration_included(self):
        base = latency_spec()
        assert latency_spec(seed=1).content_hash() != base.content_hash()
        other_cal = latency_spec(calibration_ref="0" * 16)
        assert other_cal.content_hash() != base.content_hash()

    def test_default_calibration_ref_shape(self):
        assert DEFAULT_CALIBRATION_REF == calibration_ref(DEFAULT_CALIBRATION)
        assert len(DEFAULT_CALIBRATION_REF) == 16
        int(DEFAULT_CALIBRATION_REF, 16)  # hex

    def test_golden_hashes_pinned(self):
        """Regression: the content hash is part of the on-disk cache
        format; these values must never change for existing specs."""
        a = ScenarioSpec(
            workload="fig5.latency",
            deployment=DeploymentSpec(level=SecurityLevel.LEVEL_2,
                                      num_vswitch_vms=2),
            traffic=TrafficScenario.P2V, duration=0.1, warmup=0.02,
            seed=42,
            params={"frame_bytes": 64, "aggregate_pps": 10000.0},
            calibration_ref="0123456789abcdef")
        b = ScenarioSpec(
            workload="fig6.iperf",
            deployment=DeploymentSpec(level=SecurityLevel.BASELINE,
                                      nic_ports=1),
            traffic=TrafficScenario.V2V, seed=7,
            params={"repetitions": 5},
            calibration_ref="feedfacecafebeef")
        assert a.content_hash() == (
            "3272ae7b687dbedd9c3a9eaf65b58fe9780be8163ab0c6f139607a22208ddde1")
        assert b.content_hash() == (
            "4fbf53e9adb54142249eb801f02ff17470f4e7e4a053abdd0eb228e726872e48")


class TestRegistry:
    def test_known_workloads_resolve(self):
        assert callable(resolve("fig5.latency"))
        assert callable(resolve("ext.deployment-cost"))

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValidationError):
            resolve("fig9.nonsense")

    def test_unknown_workload_in_run_scenario(self):
        with pytest.raises(ValidationError):
            run_scenario(resources_spec(workload="fig9.nonsense"))


class TestRunScenario:
    def test_calibration_mismatch_rejected(self):
        spec = resources_spec(calibration_ref="beef" * 4)
        with pytest.raises(ValidationError):
            run_scenario(spec)

    def test_values_and_hash(self):
        result = run_scenario(resources_spec())
        assert result.spec_hash == resources_spec().content_hash()
        assert result.values["networking-cores"] == 2.0
        again = run_scenario(resources_spec())
        assert again.result_hash() == result.result_hash()


class TestResultStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        spec = resources_spec()
        assert store.get(spec) is None
        result = run_scenario(spec)
        store.put(spec, result)
        hit = store.get(spec)
        assert hit is not None
        assert hit.values == result.values
        assert len(store) == 1

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        spec = resources_spec()
        store.put(spec, run_scenario(spec))
        with open(store.path_for(spec), "w") as handle:
            handle.write("{not json")
        assert store.get(spec) is None

    def test_null_store_never_hits(self):
        store = NullStore()
        spec = resources_spec()
        store.put(spec, run_scenario(spec))
        assert store.get(spec) is None
        assert len(store) == 0


class TestEngine:
    def test_store_round_trip_marks_cached(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        engine = Engine(store=store)
        first = engine.run([resources_spec()])
        assert [r.cached for r in first] == [False]
        second = engine.run([resources_spec()])
        assert [r.cached for r in second] == [True]
        assert second[0].result_hash() == first[0].result_hash()

    def test_within_batch_dedup(self):
        engine = Engine()  # no store
        a = resources_spec(label="tput row")
        b = resources_spec(label="rt row")
        results = engine.run([a, b])
        assert results[0].label == "tput row"
        assert results[1].label == "rt row"
        assert results[1].cached  # second is the first's computation
        assert results[0].values == results[1].values

    def test_results_in_input_order(self):
        specs = [resources_spec(seed=s) for s in (3, 1, 2)]
        results = Engine().run(specs)
        assert [r.spec_hash for r in results] == \
            [s.content_hash() for s in specs]


class TestBackendEquivalence:
    def test_pool_matches_sequential(self):
        specs = [latency_spec(seed=s) for s in (0, 1)] + [resources_spec()]
        seq = SequentialBackend().run(specs, DEFAULT_CALIBRATION)
        pool = ProcessPoolBackend(max_workers=2).run(
            specs, DEFAULT_CALIBRATION)
        assert [r.result_hash() for r in seq] == \
            [r.result_hash() for r in pool]
        assert [r.values for r in seq] == [r.values for r in pool]

    def test_pool_ships_obs_metrics(self):
        from repro import obs
        before = obs.REGISTRY.snapshot()
        results = ProcessPoolBackend(max_workers=2).run(
            [latency_spec(seed=9), latency_spec(seed=10)],
            DEFAULT_CALIBRATION)
        assert any(r.metrics for r in results)
        after = obs.REGISTRY.snapshot()
        shipped = sum(sum(r.metrics.values()) for r in results)
        folded = sum(after.values()) - sum(before.get(k, 0.0)
                                           for k in after)
        assert folded == pytest.approx(shipped)


class TestFoldMetrics:
    def test_labeled_counter_folds(self):
        registry = MetricsRegistry()
        fold_metrics(registry, {
            'cache_hits_total{cache="emc",vswitch="ovs0"}': 5.0,
            "drops_total": 2.0,
            "unrelated_metric": 9.0,
            'cache_lookups_total{cache="emc",vswitch="ovs0"}': -1.0,
        })
        snap = registry.snapshot()
        assert snap['cache_hits_total{cache="emc",vswitch="ovs0"}'] == 5.0
        assert snap["drops_total"] == 2.0
        assert "unrelated_metric" not in snap
        assert not any(k.startswith("cache_lookups_total") for k in snap)


class TestSweepGrid:
    def test_compartment_axis_collapses_for_non_l2(self):
        grid = SweepGrid(workload="fig5.resources",
                         levels=("baseline", "l2"),
                         compartments=(2, 4), duration=0.0)
        specs, skipped = build_grid(grid)
        labels = [s.label for s in specs]
        assert labels.count("baselinex4T/kernel/shared/p2v") == 1
        assert "l2(2)x4T/kernel/shared/p2v" in labels
        assert "l2(4)x4T/kernel/shared/p2v" in labels
        assert not skipped

    def test_infeasible_corners_skipped_not_raised(self):
        grid = SweepGrid(workload="fig5.resources",
                         levels=("baseline",), datapaths=("dpdk",),
                         modes=("shared",), duration=0.0)
        specs, skipped = build_grid(grid)
        assert specs == []
        assert len(skipped) == 1
        assert "dpdk" in skipped[0].point_id

    def test_unknown_level_raises(self):
        with pytest.raises(ValidationError):
            build_grid(SweepGrid(levels=("l7",)))

    def test_per_point_seeds_fork_from_master(self):
        specs, _ = build_grid(SweepGrid(workload="fig5.resources",
                                        levels=("baseline", "l1"),
                                        duration=0.0))
        assert len({s.seed for s in specs}) == len(specs)
        again, _ = build_grid(SweepGrid(workload="fig5.resources",
                                        levels=("baseline", "l1"),
                                        duration=0.0))
        assert [s.seed for s in specs] == [s.seed for s in again]
        other, _ = build_grid(SweepGrid(workload="fig5.resources",
                                        levels=("baseline", "l1"),
                                        duration=0.0, seed=1))
        assert [s.seed for s in specs] != [s.seed for s in other]


class TestSweepEndToEnd:
    GRID = SweepGrid(workload="fig5.latency",
                     levels=("baseline", "l1"), duration=0.02)

    def test_sequential_and_pool_tables_identical(self):
        from repro.scenario import sweep_table
        specs, _ = build_grid(self.GRID)
        seq = Engine(backend=SequentialBackend()).run(specs)
        pool = Engine(backend=ProcessPoolBackend(max_workers=2)).run(specs)
        assert [r.result_hash() for r in seq] == \
            [r.result_hash() for r in pool]
        assert sweep_table(self.GRID, specs, seq).render() == \
            sweep_table(self.GRID, specs, pool).render()

    def test_second_run_fully_cached(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        specs, _ = build_grid(self.GRID)
        first = Engine(store=store).run(specs)
        assert not any(r.cached for r in first)
        second = Engine(store=store).run(specs)
        assert all(r.cached for r in second)
        assert [r.result_hash() for r in first] == \
            [r.result_hash() for r in second]


class TestContentHashMemoization:
    """The hash is computed once per spec, ever (the spec is frozen)."""

    def _counting_hasher(self, monkeypatch):
        import repro.scenario.spec as spec_mod
        real = spec_mod.sha256_hex
        calls = []

        def counted(text):
            calls.append(text)
            return real(text)

        monkeypatch.setattr(spec_mod, "sha256_hex", counted)
        return calls

    def test_repeated_hash_hits_memo(self, monkeypatch):
        spec = latency_spec(seed=77)
        calls = self._counting_hasher(monkeypatch)
        first = spec.content_hash()
        assert spec.content_hash() == first
        assert spec.content_hash() == first
        assert len(calls) == 1

    def test_memo_survives_pickle(self):
        import pickle
        spec = latency_spec(seed=78)
        digest = spec.content_hash()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.__dict__.get("_content_hash") == digest
        assert clone.content_hash() == digest

    def test_memo_does_not_leak_into_equality_or_serialization(self):
        a, b = latency_spec(seed=79), latency_spec(seed=79)
        a.content_hash()  # memoize one side only
        assert a == b
        assert "_content_hash" not in a.to_dict()
        assert ScenarioSpec.from_dict(a.to_dict()) == a

    def test_engine_hashes_each_spec_at_most_once(self, tmp_path,
                                                  monkeypatch):
        specs = [resources_spec(seed=1), resources_spec(seed=2),
                 resources_spec(seed=1, label="dupe row")]
        store = ResultStore(str(tmp_path / "cache"))
        calls = self._counting_hasher(monkeypatch)
        Engine(store=store).run(specs)
        # One hash per spec *object* (the dedup key needs each), and
        # not one more -- cache probe, cache write and result record
        # all reuse the memo.
        assert len(calls) == len(specs)

    def test_calibration_ref_memoized(self, monkeypatch):
        calls = self._counting_hasher(monkeypatch)
        ref = calibration_ref(DEFAULT_CALIBRATION)
        assert ref == DEFAULT_CALIBRATION_REF
        assert calls == []  # primed at module import, memo answers


class TestStoreBatched:
    def test_get_many_put_many_round_trip(self, tmp_path):
        store = ResultStore(str(tmp_path / "cache"))
        specs = [resources_spec(seed=s) for s in (1, 2, 3)]
        assert store.get_many(specs) == [None, None, None]
        results = [run_scenario(s) for s in specs[:2]]
        assert store.put_many(zip(specs[:2], results)) == 2
        hits = store.get_many(specs)
        assert [h.values for h in hits[:2]] == [r.values for r in results]
        assert hits[2] is None

    def test_null_store_batched(self):
        store = NullStore()
        specs = [resources_spec()]
        assert store.get_many(specs) == [None]
        assert store.put_many([(specs[0], run_scenario(specs[0]))]) == 0


class TestWarmPoolBatching:
    """Batched dispatch through the persistent pool must be
    byte-identical to sequential execution -- values, metrics, events --
    at every chunk size, chaos plans and worker crashes included."""

    @staticmethod
    def _specs(n=5, duration=0.02):
        return [latency_spec(seed=100 + i, duration=duration,
                             label=f"pt{i}") for i in range(n)]

    def test_chunk_sizes_value_identical(self):
        specs = self._specs()
        seq = SequentialBackend().run(specs, DEFAULT_CALIBRATION)
        for chunk in (1, 2, len(specs)):
            with ProcessPoolBackend(max_workers=2, chunk=chunk) as pool:
                got = pool.run(specs, DEFAULT_CALIBRATION)
            assert [r.values for r in got] == [r.values for r in seq]
            assert [r.metrics for r in got] == [r.metrics for r in seq]
            assert [r.events for r in got] == [r.events for r in seq]
            assert [r.result_hash() for r in got] == \
                [r.result_hash() for r in seq]

    def test_chaos_plan_identical_across_chunks(self):
        from repro.faults.plan import scripted_crash
        plan = scripted_crash(compartment=0, at=0.02, heartbeat=0.005)
        specs = [latency_spec(
            seed=200 + i, duration=0.06, label=f"chaos{i}",
            deployment=DeploymentSpec(level=SecurityLevel.LEVEL_2,
                                      num_vswitch_vms=2),
            faults=plan) for i in range(3)]
        seq = SequentialBackend().run(specs, DEFAULT_CALIBRATION)
        assert all(r.events for r in seq)  # the plan actually fired
        for chunk in (1, 3):
            with ProcessPoolBackend(max_workers=2, chunk=chunk) as pool:
                got = pool.run(specs, DEFAULT_CALIBRATION)
            assert [r.events for r in got] == [r.events for r in seq]
            assert [r.values for r in got] == [r.values for r in seq]

    def test_mid_batch_crash_retries_poisoned_batch(self):
        from repro import obs
        crashy = ScenarioSpec(
            workload="chaos.crashy",
            deployment=DeploymentSpec(level=SecurityLevel.LEVEL_1),
            traffic=TrafficScenario.P2V, duration=0.0, seed=5)
        specs = self._specs(3) + [crashy]
        before = obs.REGISTRY.snapshot()
        with ProcessPoolBackend(max_workers=2, chunk=2) as pool:
            results = pool.run(specs, DEFAULT_CALIBRATION)
        after = obs.REGISTRY.snapshot()
        assert all(r is not None for r in results)
        assert results[3].values == {"survived": 1.0}
        assert after.get("scenario_pool_breaks_total", 0.0) \
            >= before.get("scenario_pool_breaks_total", 0.0) + 1
        assert after.get("scenario_pool_retries_total", 0.0) \
            >= before.get("scenario_pool_retries_total", 0.0) + 1
        seq = SequentialBackend().run(specs, DEFAULT_CALIBRATION)
        assert [r.values for r in results] == [r.values for r in seq]

    def test_pool_persists_across_runs(self):
        specs = self._specs(2)
        with ProcessPoolBackend(max_workers=2, chunk=1) as backend:
            first = backend.run(specs, DEFAULT_CALIBRATION)
            warm = backend._pool
            assert warm is not None
            second = backend.run(specs, DEFAULT_CALIBRATION)
            assert backend._pool is warm  # same workers, no respawn
            assert [r.result_hash() for r in first] == \
                [r.result_hash() for r in second]
        assert backend._pool is None  # context exit released them

    def test_pool_workers_gauge_exported(self):
        from repro import obs
        with ProcessPoolBackend(max_workers=2, chunk=1) as pool:
            pool.run(self._specs(2), DEFAULT_CALIBRATION)
        assert obs.REGISTRY.snapshot().get("scenario_pool_workers") == 2.0

    def test_sleepy_mid_batch_does_not_block_collection(self):
        """Head-of-line regression: a wedged worker mid-batch must not
        stall collection of finished results -- the timeout error names
        only the wedged scenario and counts everything else collected."""
        import time as _time
        from repro.errors import ScenarioTimeoutError

        def diag(seed, sleep, label):
            return ScenarioSpec(
                workload="chaos.sleepy",
                deployment=DeploymentSpec(level=SecurityLevel.LEVEL_1),
                traffic=TrafficScenario.P2V, duration=0.0, seed=seed,
                label=label, params={"sleep": sleep})

        specs = [diag(0, 0.0, "fast0"), diag(1, 30.0, "sleepy"),
                 diag(2, 0.0, "fast1"), diag(3, 0.0, "fast2")]
        backend = ProcessPoolBackend(max_workers=2, timeout=1.5, chunk=1)
        start = _time.perf_counter()
        with pytest.raises(ScenarioTimeoutError) as excinfo:
            backend.run(specs, DEFAULT_CALIBRATION)
        elapsed = _time.perf_counter() - start
        assert elapsed < 15.0  # deadline, not the 30s sleep
        assert excinfo.value.pending == ("sleepy",)
        assert excinfo.value.completed == 3  # the fast ones came home
        backend.close()


class TestPoolResilience:
    """A dying or wedged worker must not abort a sweep silently."""

    @staticmethod
    def _diag_spec(workload, seed=0, **params):
        return ScenarioSpec(
            workload=workload,
            deployment=DeploymentSpec(level=SecurityLevel.LEVEL_1),
            traffic=TrafficScenario.P2V,
            duration=0.0, seed=seed, params=params)

    def test_worker_death_falls_back_to_sequential(self):
        from repro import obs
        specs = [latency_spec(seed=40),
                 self._diag_spec("chaos.crashy"),
                 latency_spec(seed=41)]
        before = obs.REGISTRY.snapshot()
        results = ProcessPoolBackend(max_workers=2).run(
            specs, DEFAULT_CALIBRATION)
        after = obs.REGISTRY.snapshot()
        assert all(r is not None for r in results)
        # the lethal spec completed in-parent, where it is harmless
        assert results[1].values == {"survived": 1.0}
        assert after.get("scenario_pool_breaks_total", 0.0) \
            >= before.get("scenario_pool_breaks_total", 0.0) + 1
        assert after.get("scenario_pool_retries_total", 0.0) \
            >= before.get("scenario_pool_retries_total", 0.0) + 1
        # retried results are value-identical to a sequential run
        seq = SequentialBackend().run(specs, DEFAULT_CALIBRATION)
        assert [r.values for r in results] == [r.values for r in seq]

    def test_hanging_worker_raises_timeout(self):
        from repro.errors import ScenarioTimeoutError
        specs = [self._diag_spec("chaos.sleepy", seed=s, sleep=30.0)
                 for s in (0, 1)]
        backend = ProcessPoolBackend(max_workers=2, timeout=1.0)
        with pytest.raises(ScenarioTimeoutError):
            backend.run(specs, DEFAULT_CALIBRATION)

    def test_single_worker_pool_degrades_to_sequential(self):
        # workers <= 1 shortcut: even the lethal spec is safe in-parent.
        results = ProcessPoolBackend(max_workers=1).run(
            [self._diag_spec("chaos.crashy")], DEFAULT_CALIBRATION)
        assert results[0].values == {"survived": 1.0}
