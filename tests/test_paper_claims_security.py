"""Section 2's security arguments, executed on built deployments."""

import pytest

from repro.core import ResourceMode, SecurityLevel, TrafficScenario, build_deployment
from repro.security import (
    SURVEY,
    assess_compromise,
    component_graph,
    score_principles,
    survey_statistics,
    tcb_report,
)
from repro.security.components import Boundary, ComponentKind
from repro.security.survey import render_table
from tests.conftest import make_spec

B, L1, L2 = SecurityLevel.BASELINE, SecurityLevel.LEVEL_1, SecurityLevel.LEVEL_2


def deploy(level, vms=1, us=False, mode=ResourceMode.SHARED, bc=1):
    spec = make_spec(level=level, vms=vms, user_space=us, mode=mode,
                     baseline_cores=bc)
    return build_deployment(spec, TrafficScenario.P2V)


class TestExploitDistance:
    def test_baseline_one_failure_reaches_host(self):
        """"An adversary could not only break out of the VM and attack
        all applications on the Host" -- one vswitch bug suffices."""
        a = assess_compromise(deploy(B))
        assert a.exploits_to_host == 1
        assert not a.meets_extra_layer_rule

    def test_level1_needs_two_failures(self):
        """Compartmentalization: vswitch compromise + VM escape."""
        a = assess_compromise(deploy(L1))
        assert a.exploits_to_host == 2
        assert a.meets_extra_layer_rule

    def test_level3_adds_a_third_boundary(self):
        a = assess_compromise(deploy(L2, vms=2, us=True,
                                     mode=ResourceMode.ISOLATED))
        assert a.exploits_to_host == 3

    def test_host_userspace_vswitch_gets_two(self):
        """Baseline+L3 satisfies the extra-layer rule without VMs."""
        a = assess_compromise(deploy(B, us=True, mode=ResourceMode.ISOLATED,
                                     bc=2))
        assert a.exploits_to_host == 2

    def test_security_strictly_monotone_across_levels(self):
        distances = [
            assess_compromise(deploy(B)).exploits_to_host,
            assess_compromise(deploy(L1)).exploits_to_host,
            assess_compromise(deploy(L1, us=True,
                                     mode=ResourceMode.ISOLATED)).exploits_to_host,
        ]
        assert distances == sorted(distances)
        assert distances[0] < distances[-1]


class TestBlastRadius:
    def test_baseline_vswitch_compromise_exposes_all_tenants(self):
        a = assess_compromise(deploy(B))
        assert a.vswitch_blast_radius == [0, 1, 2, 3]
        assert not a.isolates_other_tenants_from_vswitch

    def test_level1_still_shares_the_vswitch(self):
        a = assess_compromise(deploy(L1))
        assert a.vswitch_blast_radius == [0, 1, 2, 3]

    def test_level2_halves_blast_radius(self):
        a = assess_compromise(deploy(L2, vms=2))
        assert a.vswitch_blast_radius == [0, 1]

    def test_per_tenant_compartments_full_isolation(self):
        """"we can maintain full network isolation for multiple
        tenants" (Level-2 per-tenant)."""
        a = assess_compromise(deploy(L2, vms=4))
        assert a.isolates_other_tenants_from_vswitch

    def test_blast_radius_from_any_attacker_position(self):
        d = deploy(L2, vms=2)
        for attacker in range(4):
            a = assess_compromise(d, attacker_tenant=attacker)
            assert attacker in a.vswitch_blast_radius
            assert len(a.vswitch_blast_radius) == 2

    def test_invalid_attacker_rejected(self):
        with pytest.raises(ValueError):
            assess_compromise(deploy(B), attacker_tenant=9)


class TestPrinciples:
    def test_baseline_violates_everything(self):
        """"the current state-of-the-art violates basically all relevant
        secure system design principles" """
        scores = score_principles(deploy(B))
        assert not scores.least_privilege
        assert not scores.complete_mediation
        assert not scores.meets_extra_layer_rule
        assert scores.max_tenants_per_vswitch == 4

    def test_mts_satisfies_principles(self):
        scores = score_principles(deploy(L2, vms=4))
        assert scores.least_privilege
        assert scores.complete_mediation
        assert scores.meets_extra_layer_rule
        assert scores.max_tenants_per_vswitch == 1

    def test_mediation_scoring_is_structural(self):
        """Forgetting the spoof checks must be detected even though the
        spec says Level-1."""
        d = deploy(L1)
        for vf in d.tenant_vf.values():
            vf.spoof_check = False
        assert not score_principles(d).complete_mediation

    def test_rows_render(self):
        row = score_principles(deploy(L1)).row()
        assert "L1" in row and "boundaries=2" in row


class TestTcb:
    def test_mts_shrinks_host_exposed_tcb_by_10x(self):
        """"Sharing the NIC SR-IOV VF driver and the Layer 2 ... is
        considerably simpler than including the NIC driver and the
        entire network virtualization stack (Layer 2-7) in the TCB." """
        base = tcb_report(deploy(B))
        mts = tcb_report(deploy(L1))
        assert base.host_exposed_kloc / mts.host_exposed_kloc > 10

    def test_per_tenant_compartments_minimize_shared_code(self):
        shared_l1 = tcb_report(deploy(L1)).shared_between_tenants_kloc
        shared_l2 = tcb_report(deploy(L2, vms=4)).shared_between_tenants_kloc
        assert shared_l2 < shared_l1

    def test_baseline_shares_entire_stack(self):
        report = tcb_report(deploy(B))
        assert report.shared_between_tenants_kloc == report.host_exposed_kloc


class TestComponentGraph:
    def test_nic_not_traversable(self):
        graph = component_graph(deploy(L1))
        assert graph.min_exploits("tenant0", "nic") is None

    def test_graph_shape_level2(self):
        graph = component_graph(deploy(L2, vms=2))
        assert len(graph.components_of_kind(ComponentKind.VSWITCH)) == 2
        assert len(graph.components_of_kind(ComponentKind.TENANT_VM)) == 4

    def test_boundary_costs(self):
        assert Boundary.NONE.exploit_cost == 0
        assert Boundary.VM_ISOLATION.exploit_cost == 1
        assert Boundary.TRUSTED_HW.exploit_cost is None

    def test_duplicate_component_rejected(self):
        from repro.security.components import Component, SystemGraph
        graph = SystemGraph()
        graph.add_component(Component("x", ComponentKind.NIC))
        with pytest.raises(ValueError):
            graph.add_component(Component("x", ComponentKind.NIC))

    def test_unknown_channel_endpoint_rejected(self):
        from repro.security.components import SystemGraph
        with pytest.raises(KeyError):
            SystemGraph().connect("a", "b", Boundary.NONE)


class TestSurvey:
    def test_23_designs_surveyed(self):
        assert len(SURVEY) == 23  # 22 from Table 1 + MTS itself

    def test_nearly_all_monolithic(self):
        """"nearly all vswitches are monolithic in nature" """
        stats = survey_statistics()
        assert stats["monolithic_fraction"] > 0.9

    def test_about_80_percent_colocated(self):
        """"nearly 80% of the surveyed vswitches are co-located with the
        Host virtualization layer" (counting the partially-colocated)."""
        entries = [e for e in SURVEY if "MTS" not in e.name]
        colocated = sum(1 for e in entries if e.colocated or e.colocated is None)
        assert colocated / len(entries) == pytest.approx(0.8, abs=0.1)

    def test_about_70_percent_touch_the_kernel(self):
        stats = survey_statistics()
        assert stats["kernel_involved_fraction"] == pytest.approx(0.7, abs=0.1)

    def test_mts_and_sv3_are_the_non_monolithic_ones(self):
        non_mono = [e.name for e in SURVEY if not e.monolithic]
        assert "sv3" in non_mono
        assert any("MTS" in n for n in non_mono)

    def test_render_contains_all_names(self):
        text = render_table()
        for entry in SURVEY:
            assert entry.name in text
