"""Orchestrator under resource pressure: VF and core exhaustion."""

import pytest

from repro.core import SecurityLevel, TrafficScenario, build_deployment
from repro.core.orchestrator import MtsOrchestrator
from repro.errors import CoreExhaustedError, VFExhaustedError
from repro.sriov.nic import SriovNic
from repro.sim import Simulator
from repro.host.server import Server
from tests.conftest import make_spec


class TestVfExhaustion:
    def test_hot_add_fails_cleanly_at_the_vf_ceiling(self):
        """§6: limited VFs cap MTS's scaling.  Hot-adding tenants on a
        small-VF NIC hits VFExhaustedError instead of corrupting state."""
        sim = Simulator()
        server = Server(sim, nic=SriovNic(sim, num_ports=2,
                                          max_vfs_per_pf=12))
        spec = make_spec(level=SecurityLevel.LEVEL_2, vms=2)
        d = build_deployment(spec, TrafficScenario.P2V, sim=sim,
                             server=server)
        # 10 of 12 VFs per PF are used (2 inout + 4 gw + 4 tenant);
        # one more tenant takes 2 per PF -> fits; the next does not.
        orch = MtsOrchestrator(d)
        orch.add_tenant()
        with pytest.raises(VFExhaustedError):
            orch.add_tenant()

    def test_removal_then_add_frees_vfs(self):
        sim = Simulator()
        server = Server(sim, nic=SriovNic(sim, num_ports=2,
                                          max_vfs_per_pf=12))
        spec = make_spec(level=SecurityLevel.LEVEL_2, vms=2)
        d = build_deployment(spec, TrafficScenario.P2V, sim=sim,
                             server=server)
        orch = MtsOrchestrator(d)
        orch.add_tenant()
        orch.remove_tenant(0)
        orch.add_tenant()  # capacity reclaimed; no raise


class TestCoreExhaustion:
    def test_hot_add_fails_cleanly_when_cores_run_out(self):
        sim = Simulator()
        server = Server(sim, num_cores=12)
        spec = make_spec(level=SecurityLevel.LEVEL_2, vms=2)
        d = build_deployment(spec, TrafficScenario.P2V, sim=sim,
                             server=server)
        # host 1 + shared vswitch 1 + 4 tenants x 2 = 10; one more tenant
        # fits (12), the next needs cores that do not exist.
        orch = MtsOrchestrator(d)
        orch.add_tenant()
        with pytest.raises(CoreExhaustedError):
            orch.add_tenant()

    def test_failed_add_does_not_leak_vm_registration(self):
        sim = Simulator()
        server = Server(sim, num_cores=12)
        spec = make_spec(level=SecurityLevel.LEVEL_2, vms=2)
        d = build_deployment(spec, TrafficScenario.P2V, sim=sim,
                             server=server)
        orch = MtsOrchestrator(d)
        orch.add_tenant()
        vms_before = set(d.server.vms)
        with pytest.raises(CoreExhaustedError):
            orch.add_tenant()
        assert set(d.server.vms) == vms_before
