"""Container compartments (§3.1 menu / §6 scaling discussion)."""

import pytest

from repro.core import (
    DeploymentSpec,
    ResourceMode,
    SecurityLevel,
    TrafficScenario,
    build_deployment,
)
from repro.core.spec import CompartmentKind
from repro.core.vf_allocation import max_tenants
from repro.security import assess_compromise, component_graph
from repro.security.components import Boundary
from repro.traffic import TestbedHarness
from repro.units import GIB, MIB


def spec(vms=4, kind=CompartmentKind.CONTAINER, **kwargs):
    return DeploymentSpec(level=SecurityLevel.LEVEL_2, num_vswitch_vms=vms,
                          compartment_kind=kind, **kwargs)


class TestContainerResources:
    def test_containers_use_a_fraction_of_the_memory(self):
        vm_d = build_deployment(spec(kind=CompartmentKind.VM),
                                TrafficScenario.P2V)
        ct_d = build_deployment(spec(kind=CompartmentKind.CONTAINER),
                                TrafficScenario.P2V)
        vm_mem = sum(v.memory.ram_bytes for v in vm_d.vswitch_vms)
        ct_mem = sum(v.memory.ram_bytes for v in ct_d.vswitch_vms)
        assert vm_mem == 16 * GIB
        assert ct_mem == 4 * 512 * MIB

    def test_kernel_containers_need_no_hugepages(self):
        d = build_deployment(spec(), TrafficScenario.P2V)
        assert all(v.memory.hugepages_1g == 0 for v in d.vswitch_vms)

    def test_dpdk_containers_keep_a_hugepage(self):
        d = build_deployment(spec(user_space=True,
                                  resource_mode=ResourceMode.ISOLATED),
                             TrafficScenario.P2V)
        assert all(v.memory.hugepages_1g == 1 for v in d.vswitch_vms)

    def test_containers_forward_identically(self):
        d = build_deployment(spec(), TrafficScenario.P2V)
        h = TestbedHarness(d)
        h.configure_tenant_flows(rate_per_flow_pps=1000)
        result = h.run(duration=0.02)
        assert result.delivered == result.sent


class TestContainerSecurity:
    def test_container_boundary_still_counts_once(self):
        """Two mechanisms must still fail (vswitch compromise + a
        namespace escape), so the extra-layer rule holds..."""
        d = build_deployment(spec(), TrafficScenario.P2V)
        assessment = assess_compromise(d)
        assert assessment.exploits_to_host == 2
        assert assessment.meets_extra_layer_rule

    def test_but_the_boundary_kind_is_weaker(self):
        """...although the graph records it as kernel-enforced container
        isolation rather than a hypervisor boundary."""
        d = build_deployment(spec(), TrafficScenario.P2V)
        graph = component_graph(d)
        boundaries = {ch.boundary for ch in graph.channels()}
        assert Boundary.CONTAINER_ISOLATION in boundaries
        assert Boundary.VM_ISOLATION not in boundaries

    def test_vm_deployment_uses_vm_boundary(self):
        d = build_deployment(spec(kind=CompartmentKind.VM),
                             TrafficScenario.P2V)
        boundaries = {ch.boundary for ch in component_graph(d).channels()}
        assert Boundary.VM_ISOLATION in boundaries


class TestContainerScalingCeiling:
    def test_vf_ceiling_binds_before_memory(self):
        """§6: "SR-IOV NICs have limited VFs and MAC addresses which
        could limit the scaling properties of MTS, e.g., when using
        containers as compartments."  Memory would admit >100 container
        compartments; the 64-VF budget caps per-tenant Level-2 at 21
        tenants."""
        memory_per_container = 512 * MIB
        containers_by_memory = (64 * GIB) // memory_per_container
        tenants_by_vfs = max_tenants(SecurityLevel.LEVEL_2, nic_ports=1,
                                     per_tenant_vswitch=True)
        assert containers_by_memory > 100
        assert tenants_by_vfs == 21
        assert tenants_by_vfs < containers_by_memory
