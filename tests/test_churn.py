"""Control-plane churn under live traffic.

The strongest operability claim: while the orchestrator adds, removes
and migrates tenants, the *unaffected* tenants' dataplane must not
drop a single frame.  This runs a continuous DES with scheduled
control-plane events and audits the deployment after every mutation.
"""

import pytest

from repro.core import SecurityLevel, TrafficScenario, build_deployment
from repro.core.orchestrator import MtsOrchestrator
from repro.core.verification import audit_deployment
from repro.traffic import TestbedHarness
from tests.conftest import make_spec

RATE = 5000  # per tenant


class TestChurn:
    def _setup(self, vms=2):
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_2, vms=vms),
                             TrafficScenario.P2V)
        return d, MtsOrchestrator(d), TestbedHarness(d)

    def test_add_remove_migrate_under_load(self):
        """Tenants 2 and 3 (compartment 1) stream throughout; tenant 0
        is migrated, tenant 1 removed, a new tenant added -- all in
        compartment 0.  The streamers must see zero loss."""
        d, orch, h = self._setup()
        h.add_tenant_flow(2, RATE)
        h.add_tenant_flow(3, RATE)

        events = []

        def migrate():
            events.append(orch.migrate_tenant(0, target=1))

        def remove():
            orch.remove_tenant(1)

        def add():
            events.append(orch.add_tenant(compartment=0))

        d.sim.schedule(0.02, migrate)
        d.sim.schedule(0.04, remove)
        d.sim.schedule(0.06, add)
        result = h.run(duration=0.1, warmup=0.0)

        expected_each = RATE * 0.1
        for tenant in (2, 3):
            delivered = h.monitor.delivered_in_window(0.0, 0.1,
                                                      flow_id=tenant)
            assert delivered >= 0.98 * expected_each, (tenant, delivered)
        assert result.loss_fraction < 0.02
        # All three events happened.
        assert len(events) == 2  # migration record + new tenant id
        assert orch.tenants() == [0, 2, 3, 4]

    def test_audit_clean_after_every_mutation(self):
        d, orch, h = self._setup()
        assert audit_deployment(d).ok

        new = orch.add_tenant()
        assert audit_deployment(d).ok

        orch.remove_tenant(1)
        assert audit_deployment(d).ok

        record = orch.migrate_tenant(0, target=1)
        d.sim.run(until=record.completed_at + 1e-6)
        assert audit_deployment(d).ok, audit_deployment(d).render()

        orch.remove_tenant(new)
        assert audit_deployment(d).ok

    def test_migrated_tenant_resumes_streaming(self):
        d, orch, h = self._setup()
        h.add_tenant_flow(0, RATE)
        record = orch.migrate_tenant(0, target=1)
        h.run(duration=0.1, warmup=0.0)
        # After completion, the flow lands again (the ingress dmac
        # follows the runtime compartment map).
        before = h.monitor.delivered_in_window(0.0, record.completed_at,
                                               flow_id=0)
        # Re-offer traffic post-migration: the harness flow used the old
        # dmac captured at configure time, so re-add with the new one.
        h.add_tenant_flow(0, RATE)
        h.lg.start(duration=0.05)
        d.sim.run(until=d.sim.now + 0.06)
        after = h.monitor.delivered_in_window(record.completed_at,
                                              d.sim.now, flow_id=0)
        assert after > 0

    def test_repeated_migrations_converge(self):
        d, orch, _ = self._setup()
        for i in range(6):
            target = 1 - orch.compartment_of(0)
            record = orch.migrate_tenant(0, target=target)
            d.sim.run(until=record.completed_at + 1e-6)
        assert orch.compartment_of(0) == 0  # six hops: back home
        assert audit_deployment(d).ok
        # No VF leak: still 2 gw + 2 tenant VFs for tenant 0.
        assert sum(1 for (t, _p) in d.gw_vf if t == 0) == 2

    def test_full_compartment_drain(self):
        """Remove every tenant of compartment 0; its bridge ends up
        with only In/Out ports and an empty tenant list."""
        d, orch, _ = self._setup()
        orch.remove_tenant(0)
        orch.remove_tenant(1)
        view = d.compartment_views[0]
        assert view.tenants == []
        names = [p.name for p in view.bridge.ports()]
        assert all(n.startswith("inout") for n in names)
        assert audit_deployment(d).ok
