"""Property-based deployment invariants.

Hypothesis generates random (valid) deployment specs; every built
deployment must satisfy the structural invariants the design promises,
and every tenant must actually be reachable through the dataplane.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import (
    DeploymentSpec,
    ResourceMode,
    SecurityLevel,
    TrafficScenario,
    build_deployment,
)
from repro.core.spec import CompartmentKind
from repro.core.vf_allocation import vf_budget_for_spec
from repro.net import Frame, MacAddress
from repro.traffic import TestbedHarness

LG_MAC = MacAddress.parse("02:1b:00:00:00:01")


@st.composite
def specs(draw):
    level = draw(st.sampled_from([SecurityLevel.BASELINE,
                                  SecurityLevel.LEVEL_1,
                                  SecurityLevel.LEVEL_2]))
    tenants = draw(st.integers(min_value=1, max_value=5))
    if level is SecurityLevel.LEVEL_2:
        if tenants < 2:
            level = SecurityLevel.LEVEL_1
            vms = 1
        else:
            vms = draw(st.integers(min_value=2, max_value=tenants))
    else:
        vms = 1
    user_space = draw(st.booleans())
    mode = (ResourceMode.ISOLATED if user_space
            else draw(st.sampled_from([ResourceMode.SHARED,
                                       ResourceMode.ISOLATED])))
    kind = draw(st.sampled_from(list(CompartmentKind)))
    return DeploymentSpec(
        level=level,
        num_tenants=tenants,
        num_vswitch_vms=vms,
        resource_mode=mode,
        user_space=user_space,
        baseline_cores=draw(st.integers(min_value=1, max_value=2)),
        nic_ports=draw(st.sampled_from([1, 2])),
        tunneling=draw(st.booleans()),
        compartment_kind=kind,
    )


class TestStructuralInvariants:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(specs())
    def test_build_satisfies_invariants(self, spec):
        d = build_deployment(spec, TrafficScenario.P2V)

        # VF budget formula == NIC reality.
        assert d.server.nic.total_vfs() == vf_budget_for_spec(spec).total

        # Every tenant VM exists with the spec'd cores.
        assert len(d.tenant_vms) == spec.num_tenants
        for vm in d.tenant_vms:
            assert vm.num_cores() == spec.tenant_cores

        if spec.level.is_mts:
            # Every tenant has exactly one compartment, and the union of
            # compartments covers all tenants exactly once.
            seen = []
            for k in range(spec.num_compartments):
                seen.extend(spec.tenants_of_compartment(k))
            assert sorted(seen) == list(range(spec.num_tenants))
            # Tenant VFs are spoof-checked and VLAN-matched to their
            # gateways.
            for t in range(spec.num_tenants):
                for p in range(spec.nic_ports):
                    assert d.tenant_vf[(t, p)].spoof_check
                    assert (d.tenant_vf[(t, p)].vlan
                            == d.gw_vf[(t, p)].vlan)
            # No cross-tenant flow-rule conflicts anywhere.
            for bridge in d.bridges:
                assert bridge.table.check_conflicts() == []

        # Resource accounting is self-consistent.
        report = d.resource_report()
        assert report.networking_cores >= 1
        assert report.total_hugepages_1g >= 1

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(specs())
    def test_every_tenant_reachable(self, spec):
        """One frame per tenant traverses the full dataplane."""
        d = build_deployment(spec, TrafficScenario.P2V)
        h = TestbedHarness(d)
        for t in range(spec.num_tenants):
            size = 114 if spec.tunneling else 64
            frame = Frame(
                src_mac=LG_MAC,
                dst_mac=d.ingress_dmac_for_tenant(t, 0),
                src_ip=d.plan.external_ip(0),
                dst_ip=d.plan.tenant_ip(t),
                flow_id=t,
                size_bytes=size,
                tunnel_id=d.plan.vni(t) if spec.tunneling else None,
            )
            d.external_ingress(0).receive(frame)
        d.sim.run(until=d.sim.now + 1.0)
        assert h.sink.total == spec.num_tenants
        for t in range(spec.num_tenants):
            assert h.sink.per_flow[t] == 1

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(specs())
    def test_teardown_restores_server(self, spec):
        d = build_deployment(spec, TrafficScenario.P2V)
        d.teardown()
        assert d.server.vms == {}
        assert d.server.nic.total_vfs() == 0
        assert d.server.memory.allocated_hugepages() == 1
        assert d.server.cores.available() == d.server.cores.num_cores - 1
