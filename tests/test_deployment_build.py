"""Deployment builder: structure, resources, op-log, teardown."""

import pytest

from repro.core import (
    DeploymentSpec,
    ResourceMode,
    SecurityLevel,
    TrafficScenario,
    build_deployment,
    plan_deployment,
)
from repro.errors import CoreExhaustedError, ValidationError
from repro.sriov.vf import FunctionKind
from repro.vswitch.datapath import DatapathMode
from tests.conftest import make_spec


class TestMtsStructure:
    def test_l1_has_one_vswitch_vm_and_four_tenants(self, l1_deployment):
        assert len(l1_deployment.vswitch_vms) == 1
        assert len(l1_deployment.tenant_vms) == 4
        assert len(l1_deployment.bridges) == 1

    def test_l2_has_one_bridge_per_compartment(self, l2_deployment):
        assert len(l2_deployment.bridges) == 2
        assert l2_deployment.bridge_of_tenant(0) is l2_deployment.bridges[0]
        assert l2_deployment.bridge_of_tenant(3) is l2_deployment.bridges[1]

    def test_vf_roles(self, l1_deployment):
        d = l1_deployment
        assert all(vf.kind == FunctionKind.IN_OUT
                   for vf in d.inout_vf.values())
        assert all(vf.kind == FunctionKind.GATEWAY
                   for vf in d.gw_vf.values())
        assert all(vf.kind == FunctionKind.TENANT
                   for vf in d.tenant_vf.values())

    def test_tenant_vfs_have_spoof_check(self, l1_deployment):
        assert all(vf.spoof_check for vf in l1_deployment.tenant_vf.values())

    def test_gateway_and_tenant_share_vlan(self, l2_deployment):
        d = l2_deployment
        for t in range(4):
            for p in range(2):
                assert d.gw_vf[(t, p)].vlan == d.tenant_vf[(t, p)].vlan
                assert d.gw_vf[(t, p)].vlan == d.plan.vlan(t)

    def test_inout_vfs_untagged(self, l1_deployment):
        assert all(vf.vlan is None for vf in l1_deployment.inout_vf.values())

    def test_distinct_vlans_per_tenant(self, l1_deployment):
        vlans = {l1_deployment.plan.vlan(t) for t in range(4)}
        assert len(vlans) == 4

    def test_nic_filters_installed(self, l1_deployment):
        # allow + drop per tenant VF per port: 4 tenants x 2 ports x 2.
        assert len(l1_deployment.server.nic.filters) == 16

    def test_static_arp_entries(self, l1_deployment):
        d = l1_deployment
        for t in range(4):
            gw_ip = d.plan.tenant_gw_ip(t)
            assert d.tenant_arp[t].is_static(gw_ip)
            assert d.tenant_arp[t].lookup(gw_ip) == d.gw_vf[(t, 0)].mac

    def test_dpdk_mode_selects_dpdk_datapath(self):
        spec = make_spec(user_space=True, mode=ResourceMode.ISOLATED)
        d = build_deployment(spec, TrafficScenario.P2V)
        assert all(b.mode is DatapathMode.DPDK for b in d.bridges)

    def test_ingress_dmac_targets_compartment_inout(self, l2_deployment):
        d = l2_deployment
        assert d.ingress_dmac_for_tenant(0) == d.inout_vf[(0, 0)].mac
        assert d.ingress_dmac_for_tenant(3) == d.inout_vf[(1, 0)].mac


class TestBaselineStructure:
    def test_no_vswitch_vms(self, baseline_deployment):
        assert baseline_deployment.vswitch_vms == []
        assert baseline_deployment.server.nic.total_vfs() == 0

    def test_host_bridge_with_phys_and_vhost_ports(self, baseline_deployment):
        bridge = baseline_deployment.bridges[0]
        names = [p.name for p in bridge.ports()]
        assert "phys0" in names and "phys1" in names
        assert sum(1 for n in names if n.startswith("vhost")) == 8

    def test_tenants_run_linux_bridge(self, baseline_deployment):
        for vm in baseline_deployment.tenant_vms:
            assert "linux-bridge" in vm.apps

    def test_dpdk_baseline_tenants_run_l2fwd(self):
        spec = make_spec(level=SecurityLevel.BASELINE, user_space=True,
                         baseline_cores=2, mode=ResourceMode.ISOLATED)
        d = build_deployment(spec, TrafficScenario.P2V)
        for vm in d.tenant_vms:
            assert "l2fwd" in vm.apps


class TestResources:
    def test_shared_mode_costs_one_extra_core(self):
        """The paper's headline resource result: multiple compartments,
        one extra core."""
        for vms in (2, 4):
            spec = make_spec(level=SecurityLevel.LEVEL_2, vms=vms)
            d = build_deployment(spec, TrafficScenario.P2V)
            assert d.resource_report().networking_cores == 2

    def test_baseline_kernel_uses_only_host_core(self, baseline_deployment):
        assert baseline_deployment.resource_report().networking_cores == 1

    def test_isolated_mode_grows_linearly(self):
        for vms in (2, 4):
            spec = make_spec(level=SecurityLevel.LEVEL_2, vms=vms,
                             mode=ResourceMode.ISOLATED)
            d = build_deployment(spec, TrafficScenario.P2V)
            assert d.resource_report().networking_cores == 1 + vms

    def test_hugepages_grow_with_compartments(self):
        spec = make_spec(level=SecurityLevel.LEVEL_2, vms=4)
        d = build_deployment(spec, TrafficScenario.P2V)
        # host 1 + 4 tenants + 4 vswitch VMs
        assert d.resource_report().total_hugepages_1g == 9

    def test_each_vm_gets_4gb_and_one_hugepage(self, l1_deployment):
        for vm in l1_deployment.tenant_vms + l1_deployment.vswitch_vms:
            assert vm.memory.hugepages_1g == 1
            assert vm.memory.ram_bytes == 4 * 2**30

    def test_v2v_with_per_tenant_compartments_rejected(self):
        spec = make_spec(level=SecurityLevel.LEVEL_2, vms=4)
        with pytest.raises(ValidationError):
            build_deployment(spec, TrafficScenario.V2V)


class TestOpLog:
    def test_plan_contains_expected_verbs(self, l1_spec):
        plan = plan_deployment(l1_spec, TrafficScenario.P2V)
        verbs = plan.verbs()
        for verb in ("define-vm", "create-vf", "add-port", "install-app",
                     "install-filters", "program-flows"):
            assert verb in verbs

    def test_vf_ops_match_nic_state(self, l1_spec):
        d = build_deployment(l1_spec, TrafficScenario.P2V)
        assert len(d.oplog.with_verb("create-vf")) == d.server.nic.total_vfs()

    def test_dump_and_summary_render(self, l1_deployment):
        assert "create-vf" in l1_deployment.oplog.summary()
        assert "define-vm" in l1_deployment.oplog.dump()


class TestTeardown:
    def test_teardown_releases_everything(self, l2_deployment):
        d = l2_deployment
        d.teardown()
        assert d.server.vms == {}
        assert d.server.nic.total_vfs() == 0
        # Only the host allocation remains.
        assert d.server.memory.allocated_hugepages() == 1
        assert d.server.cores.available() == d.server.cores.num_cores - 1

    def test_rebuild_after_teardown(self, l2_spec):
        d = build_deployment(l2_spec, TrafficScenario.P2V)
        server = d.server
        d.teardown()
        rebuilt = build_deployment(l2_spec, TrafficScenario.P2V,
                                   sim=d.sim, server=server)
        assert len(rebuilt.vswitch_vms) == 2

    def test_baseline_teardown_releases_ovs_cores(self):
        spec = make_spec(level=SecurityLevel.BASELINE, baseline_cores=4,
                         mode=ResourceMode.ISOLATED)
        d = build_deployment(spec, TrafficScenario.P2V)
        free_before = d.server.cores.available()
        d.teardown()
        # 3 dedicated OVS cores (pmd0 shares the host core) + 8 tenant
        # cores come back.
        assert d.server.cores.available() == free_before + 3 + 8


class TestExhaustion:
    def test_core_exhaustion_surfaces(self):
        """More compartments than cores fail loudly (the paper hit this
        wall with 4 vswitch VMs in v2v)."""
        spec = DeploymentSpec(
            level=SecurityLevel.LEVEL_2, num_tenants=8, num_vswitch_vms=8,
            resource_mode=ResourceMode.ISOLATED,
        )
        with pytest.raises(CoreExhaustedError):
            build_deployment(spec, TrafficScenario.P2V)
