"""FIFO queues and service stations."""

import pytest

from repro.sim import FifoQueue, ServiceStation, Simulator


class TestFifoQueue:
    def test_fifo_order(self):
        q = FifoQueue()
        for i in range(3):
            q.push(i)
        assert [q.pop() for _ in range(3)] == [0, 1, 2]

    def test_bounded_queue_drops_tail(self):
        q = FifoQueue(capacity=2)
        assert q.push("a")
        assert q.push("b")
        assert not q.push("c")
        assert q.dropped == 1
        assert len(q) == 2

    def test_peek_does_not_remove(self):
        q = FifoQueue()
        q.push("x")
        assert q.peek() == "x"
        assert len(q) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            FifoQueue().pop()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            FifoQueue(capacity=0)

    def test_clear(self):
        q = FifoQueue()
        q.push(1)
        q.clear()
        assert len(q) == 0


class TestServiceStation:
    def test_serves_in_order_with_service_time(self):
        sim = Simulator()
        done = []
        station = ServiceStation(sim, service_time=lambda _: 1.0,
                                 on_done=lambda item: done.append((item, sim.now)))
        station.submit("a")
        station.submit("b")
        sim.run()
        assert done == [("a", 1.0), ("b", 2.0)]

    def test_idle_station_starts_immediately(self):
        sim = Simulator()
        done = []
        station = ServiceStation(sim, service_time=lambda _: 0.5,
                                 on_done=lambda item: done.append(sim.now))
        station.submit("x")
        sim.run()
        assert done == [0.5]

    def test_queue_capacity_drops(self):
        sim = Simulator()
        station = ServiceStation(sim, service_time=lambda _: 1.0,
                                 on_done=lambda item: None, capacity=1)
        assert station.submit("a")      # begins service
        assert station.submit("b")      # queued
        assert not station.submit("c")  # queue full -> dropped
        sim.run()
        assert station.served == 2
        assert station.queue.dropped == 1

    def test_busy_time_accumulates(self):
        sim = Simulator()
        station = ServiceStation(sim, service_time=lambda item: item,
                                 on_done=lambda item: None)
        station.submit(1.0)
        station.submit(2.0)
        sim.run()
        assert station.busy_time == pytest.approx(3.0)
        assert station.utilization(6.0) == pytest.approx(0.5)

    def test_utilization_capped_at_one(self):
        sim = Simulator()
        station = ServiceStation(sim, service_time=lambda _: 2.0,
                                 on_done=lambda item: None)
        station.submit("a")
        sim.run()
        assert station.utilization(1.0) == 1.0

    def test_negative_service_time_rejected(self):
        sim = Simulator()
        station = ServiceStation(sim, service_time=lambda _: -1.0,
                                 on_done=lambda item: None)
        # The idle station begins service synchronously on submit.
        with pytest.raises(ValueError):
            station.submit("a")

    def test_work_conserving_across_idle_gaps(self):
        sim = Simulator()
        done = []
        station = ServiceStation(sim, service_time=lambda _: 0.1,
                                 on_done=lambda item: done.append(sim.now))
        station.submit("a")
        sim.schedule(1.0, station.submit, "b")
        sim.run()
        assert done == pytest.approx([0.1, 1.1])


class TestRngStreams:
    def test_same_name_same_stream(self):
        from repro.sim import RngStreams
        rng = RngStreams(seed=1)
        assert rng.stream("x") is rng.stream("x")

    def test_streams_reproducible_across_instances(self):
        from repro.sim import RngStreams
        a = RngStreams(seed=7).stream("gen").random()
        b = RngStreams(seed=7).stream("gen").random()
        assert a == b

    def test_different_names_decorrelated(self):
        from repro.sim import RngStreams
        rng = RngStreams(seed=7)
        xs = [rng.stream("a").random() for _ in range(4)]
        ys = [rng.stream("b").random() for _ in range(4)]
        assert xs != ys

    def test_different_seeds_differ(self):
        from repro.sim import RngStreams
        assert (RngStreams(0).stream("s").random()
                != RngStreams(1).stream("s").random())

    def test_fork_is_independent(self):
        from repro.sim import RngStreams
        base = RngStreams(seed=3)
        fork = base.fork("rep1")
        assert base.stream("s").random() != fork.stream("s").random()
        # Forks are themselves reproducible.
        again = RngStreams(seed=3).fork("rep1")
        assert fork.seed == again.seed
