"""FlowMatch semantics, including property-based overlap checks."""

import pytest
from hypothesis import given, strategies as st

from repro.net import EtherType, Frame, IPv4Address, IpProto, MacAddress
from repro.vswitch import FlowMatch


def frame(**kwargs):
    defaults = dict(
        src_mac=MacAddress(0x02), dst_mac=MacAddress(0x03),
        src_ip=IPv4Address.parse("192.168.1.10"),
        dst_ip=IPv4Address.parse("10.0.0.10"),
        proto=IpProto.UDP, src_port=1234, dst_port=80,
    )
    defaults.update(kwargs)
    return Frame(**defaults)


class TestMatching:
    def test_empty_match_is_wildcard(self):
        assert FlowMatch().matches(frame(), in_port=7)

    def test_in_port(self):
        m = FlowMatch(in_port=1)
        assert m.matches(frame(), 1)
        assert not m.matches(frame(), 2)

    def test_exact_dst_ip(self):
        m = FlowMatch(dst_ip=IPv4Address.parse("10.0.0.10"))
        assert m.matches(frame(), 1)
        assert not m.matches(frame(dst_ip=IPv4Address.parse("10.0.0.11")), 1)

    def test_dst_ip_prefix(self):
        m = FlowMatch(dst_ip=IPv4Address.parse("10.0.0.0"), dst_ip_prefix=8)
        assert m.matches(frame(), 1)
        assert not m.matches(frame(dst_ip=IPv4Address.parse("11.0.0.1")), 1)

    def test_dst_ip_match_requires_ip(self):
        m = FlowMatch(dst_ip=IPv4Address.parse("10.0.0.10"))
        assert not m.matches(frame(dst_ip=None), 1)

    def test_vlan_match(self):
        m = FlowMatch(vlan=100)
        assert m.matches(frame(vlan=100), 1)
        assert not m.matches(frame(), 1)

    def test_tunnel_id(self):
        m = FlowMatch(tunnel_id=5001)
        assert m.matches(frame(tunnel_id=5001), 1)
        assert not m.matches(frame(), 1)

    def test_l4_ports(self):
        m = FlowMatch(proto=IpProto.UDP, dst_port=80)
        assert m.matches(frame(), 1)
        assert not m.matches(frame(dst_port=443), 1)

    def test_macs_and_ethertype(self):
        m = FlowMatch(src_mac=MacAddress(0x02), dst_mac=MacAddress(0x03),
                      ethertype=EtherType.IPV4)
        assert m.matches(frame(), 1)
        assert not m.matches(frame(src_mac=MacAddress(0x09)), 1)

    def test_conjunction(self):
        m = FlowMatch(in_port=1, dst_ip=IPv4Address.parse("10.0.0.10"))
        assert m.matches(frame(), 1)
        assert not m.matches(frame(), 2)

    def test_invalid_prefix_rejected(self):
        with pytest.raises(ValueError):
            FlowMatch(dst_ip_prefix=33)


class TestSpecificity:
    def test_counts_constrained_fields(self):
        assert FlowMatch().specificity() == 0
        assert FlowMatch(in_port=1, vlan=2).specificity() == 2


class TestOverlap:
    def test_disjoint_in_port(self):
        assert not FlowMatch(in_port=1).overlaps(FlowMatch(in_port=2))

    def test_wildcard_overlaps_everything(self):
        assert FlowMatch().overlaps(FlowMatch(in_port=1, vlan=100))

    def test_prefix_overlap(self):
        a = FlowMatch(dst_ip=IPv4Address.parse("10.0.0.0"), dst_ip_prefix=8)
        b = FlowMatch(dst_ip=IPv4Address.parse("10.1.0.0"), dst_ip_prefix=16)
        assert a.overlaps(b)
        c = FlowMatch(dst_ip=IPv4Address.parse("11.0.0.0"), dst_ip_prefix=8)
        assert not a.overlaps(c)

    def test_overlap_is_symmetric_on_examples(self):
        a = FlowMatch(in_port=1)
        b = FlowMatch(dst_ip=IPv4Address.parse("10.0.0.1"))
        assert a.overlaps(b) == b.overlaps(a)


_ports = st.one_of(st.none(), st.integers(min_value=1, max_value=4))
_vlans = st.one_of(st.none(), st.integers(min_value=1, max_value=5))


@st.composite
def _matches(draw):
    return FlowMatch(in_port=draw(_ports), vlan=draw(_vlans))


@st.composite
def _frames(draw):
    vlan = draw(_vlans)
    return (
        Frame(src_mac=MacAddress(1), dst_mac=MacAddress(2), vlan=vlan),
        draw(st.integers(min_value=1, max_value=4)),
    )


class TestOverlapProperties:
    @given(_matches(), _matches())
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(_matches(), _matches(), _frames())
    def test_common_frame_implies_overlap(self, a, b, frame_and_port):
        """Soundness: if some frame matches both, overlaps() is True."""
        f, port = frame_and_port
        if a.matches(f, port) and b.matches(f, port):
            assert a.overlaps(b)

    @given(_matches(), _frames())
    def test_match_reflexive_overlap(self, m, frame_and_port):
        assert m.overlaps(m)
