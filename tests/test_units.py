"""Unit helpers: line rates, wire times, formatting."""

import pytest

from repro import units


class TestLineRate:
    def test_64b_line_rate_on_10g_is_14_88_mpps(self):
        assert units.line_rate_pps(10 * units.GBPS, 64) == pytest.approx(
            14.88e6, rel=0.001
        )

    def test_module_constant_matches_function(self):
        assert units.LINE_RATE_10G_64B_PPS == pytest.approx(
            units.line_rate_pps(10 * units.GBPS, 64)
        )

    def test_1500b_line_rate(self):
        # (1500 + 20) * 8 bits per frame.
        assert units.line_rate_pps(10 * units.GBPS, 1500) == pytest.approx(
            10e9 / (1520 * 8)
        )

    def test_larger_frames_mean_fewer_pps(self):
        rates = [units.line_rate_pps(10 * units.GBPS, s)
                 for s in (64, 512, 1500, 2048)]
        assert rates == sorted(rates, reverse=True)

    def test_rejects_nonpositive_frame(self):
        with pytest.raises(ValueError):
            units.line_rate_pps(10 * units.GBPS, 0)


class TestWireTime:
    def test_wire_time_is_inverse_of_rate(self):
        rate = units.line_rate_pps(10 * units.GBPS, 64)
        assert units.wire_time(10 * units.GBPS, 64) == pytest.approx(1.0 / rate)

    def test_64b_on_10g_is_67ns(self):
        assert units.wire_time(10 * units.GBPS, 64) == pytest.approx(
            67.2e-9, rel=0.001
        )


class TestConversions:
    def test_pps_to_bps(self):
        assert units.pps_to_bps(1e6, 64) == pytest.approx(512e6)


class TestFormatting:
    def test_fmt_rate_pps_mpps(self):
        assert units.fmt_rate_pps(2.3e6) == "2.30 Mpps"

    def test_fmt_rate_pps_kpps(self):
        assert units.fmt_rate_pps(10_000) == "10.0 kpps"

    def test_fmt_rate_pps_small(self):
        assert units.fmt_rate_pps(500) == "500 pps"

    def test_fmt_rate_bps(self):
        assert units.fmt_rate_bps(9.41e9) == "9.41 Gbps"
        assert units.fmt_rate_bps(100e6) == "100.0 Mbps"

    def test_fmt_time_scales(self):
        assert units.fmt_time(1.5) == "1.50 s"
        assert units.fmt_time(2e-3) == "2.00 ms"
        assert units.fmt_time(13.4e-6) == "13.4 us"
        assert units.fmt_time(250e-9) == "250 ns"
