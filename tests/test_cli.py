"""The command-line interface."""

import pytest

from repro.cli import main


class TestDescribe:
    def test_describe_l2(self, capsys):
        assert main(["describe", "--level", "l2", "--vms", "2"]) == 0
        out = capsys.readouterr().out
        assert "L2(2)" in out
        assert "vsw0" in out and "vsw1" in out
        assert "tenant3" in out

    def test_describe_baseline(self, capsys):
        assert main(["describe", "--level", "baseline"]) == 0
        out = capsys.readouterr().out
        assert "Baseline(1)" in out


class TestPlan:
    def test_plan_lists_primitives(self, capsys):
        assert main(["plan", "--level", "l1"]) == 0
        out = capsys.readouterr().out
        assert "create-vf" in out
        assert "add-port" in out
        assert "primitive operations" in out


class TestThroughput:
    def test_throughput_dpdk_p2v(self, capsys):
        assert main(["throughput", "--level", "l2", "--vms", "4",
                     "--dpdk", "--scenario", "p2v"]) == 0
        out = capsys.readouterr().out
        assert "aggregate: 2.300 Mpps" in out
        assert "nic.hairpin" in out

    def test_throughput_baseline_p2p(self, capsys):
        assert main(["throughput", "--level", "baseline",
                     "--scenario", "p2p"]) == 0
        out = capsys.readouterr().out
        assert "aggregate: 0.977 Mpps" in out


class TestLatency:
    def test_latency_runs_and_reports(self, capsys):
        assert main(["latency", "--level", "l1", "--scenario", "p2v",
                     "--duration", "0.03"]) == 0
        out = capsys.readouterr().out
        assert "median" in out and "loss 0.00%" in out


class TestAudit:
    def test_audit_l2(self, capsys):
        assert main(["audit", "--level", "l2", "--vms", "4"]) == 0
        out = capsys.readouterr().out
        assert "exploits to host: 2" in out
        assert "blast radius: [0]" in out

    def test_audit_baseline_fails_extra_layer(self, capsys):
        assert main(["audit", "--level", "baseline"]) == 0
        out = capsys.readouterr().out
        assert "NOT met" in out


class TestSurvey:
    def test_survey_renders(self, capsys):
        assert main(["survey"]) == 0
        out = capsys.readouterr().out
        assert "Google Andromeda" in out
        assert "monolithic" in out


class TestExperiments:
    def test_filtered_experiment(self, capsys):
        assert main(["experiments", "--only", "vf-budgets"]) == 0
        out = capsys.readouterr().out
        assert "VF budgets" in out

    def test_unknown_filter_errors(self, capsys):
        assert main(["experiments", "--only", "nonsense"]) == 1

    def test_resources_table(self, capsys):
        assert main(["experiments", "--only", "fig5-resources-shared"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 5(c)" in out


class TestValidationSurfaced:
    def test_invalid_combo_raises(self):
        from repro.errors import ValidationError
        with pytest.raises(ValidationError):
            # DPDK in shared mode is rejected by the spec, and --dpdk
            # forces isolated; force the clash via level rules instead.
            main(["describe", "--level", "l2", "--vms", "9"])
