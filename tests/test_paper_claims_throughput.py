"""The paper's throughput claims, asserted against the capacity model.

Each test quotes the sentence it verifies.  Only *shapes* are asserted
(who wins, roughly by what factor, where saturation lies) -- absolute
values live in EXPERIMENTS.md.
"""

import pytest

from repro.core import ResourceMode, SecurityLevel, TrafficScenario, build_deployment
from repro.perfmodel.paths import throughput
from repro.units import MPPS
from tests.conftest import make_spec


def mpps(level, vms=1, us=False, bc=1, mode=ResourceMode.SHARED,
         scenario=TrafficScenario.P2V):
    spec = make_spec(level=level, vms=vms, user_space=us, baseline_cores=bc,
                     mode=mode)
    d = build_deployment(spec, scenario)
    return throughput(d, scenario).aggregate_pps / MPPS


B, L1, L2 = SecurityLevel.BASELINE, SecurityLevel.LEVEL_1, SecurityLevel.LEVEL_2
SH, ISO = ResourceMode.SHARED, ResourceMode.ISOLATED
P2P, P2V, V2V = TrafficScenario.P2P, TrafficScenario.P2V, TrafficScenario.V2V


class TestSharedMode:
    """Fig. 5(a)."""

    def test_mts_2x_in_p2v(self):
        """"a 2x increase in throughput (nearly .4 Mpps and .2 Mpps)
        compared to the Baseline (nearly .2 Mpps and .1 Mpps)" """
        base = mpps(B, scenario=P2V)
        mts = mpps(L2, vms=4, scenario=P2V)
        assert 1.8 <= mts / base <= 2.5
        assert base == pytest.approx(0.2, abs=0.08)
        assert mts == pytest.approx(0.45, abs=0.1)

    def test_mts_2x_in_v2v(self):
        base = mpps(B, scenario=V2V)
        mts = mpps(L2, vms=2, scenario=V2V)
        assert 1.8 <= mts / base <= 2.8
        assert base == pytest.approx(0.12, abs=0.05)

    def test_isolation_is_free_in_shared_mode(self):
        """More compartments on the same shared core keep aggregate
        throughput (4x isolation at the same performance)."""
        rates = [mpps(L1, vms=1, scenario=P2V),
                 mpps(L2, vms=2, scenario=P2V),
                 mpps(L2, vms=4, scenario=P2V)]
        assert max(rates) - min(rates) < 0.05 * max(rates)

    def test_p2p_comparable(self):
        assert mpps(L1, scenario=P2P) == pytest.approx(
            mpps(B, scenario=P2P), rel=0.05)

    def test_throughput_decreases_with_path_length(self):
        """"we expect the latency to increase and the throughput to
        decrease when going from p2p to p2v to v2v" """
        for level, vms in ((B, 1), (L1, 1), (L2, 2)):
            p2p = mpps(level, vms=vms, scenario=P2P)
            p2v = mpps(level, vms=vms, scenario=P2V)
            v2v = mpps(level, vms=vms, scenario=V2V)
            assert p2p > p2v > v2v


class TestIsolatedMode:
    """Fig. 5(d)."""

    def test_baseline_p2p_scales_1_2_4_mpps(self):
        """"the aggregate throughput increases roughly from 1 Mpps to
        2 Mpps to 4 Mpps as the number of cores increase" """
        assert mpps(B, bc=1, mode=ISO, scenario=P2P) == pytest.approx(1.0, abs=0.1)
        assert mpps(B, bc=2, mode=ISO, scenario=P2P) == pytest.approx(2.0, abs=0.2)
        assert mpps(B, bc=4, mode=ISO, scenario=P2P) == pytest.approx(4.0, abs=0.3)

    def test_mts_slightly_above_baseline_in_p2p(self):
        """"MTS is slightly more than the Baseline in the p2p" """
        pairs = [(mpps(L1, mode=ISO, scenario=P2P),
                  mpps(B, bc=1, mode=ISO, scenario=P2P)),
                 (mpps(L2, vms=2, mode=ISO, scenario=P2P),
                  mpps(B, bc=2, mode=ISO, scenario=P2P)),
                 (mpps(L2, vms=4, mode=ISO, scenario=P2P),
                  mpps(B, bc=4, mode=ISO, scenario=P2P))]
        for mts, base in pairs:
            assert 1.0 < mts / base < 1.1

    def test_mts_higher_in_p2v_and_v2v(self):
        assert mpps(L2, vms=2, mode=ISO, scenario=P2V) > mpps(
            B, bc=2, mode=ISO, scenario=P2V)
        assert mpps(L2, vms=2, mode=ISO, scenario=V2V) > mpps(
            B, bc=2, mode=ISO, scenario=V2V)


class TestDpdkMode:
    """Fig. 5(g)."""

    def test_baseline_saturates_link_with_2_cores(self):
        """"the Baseline was able to saturate the link with 2 cores" """
        assert mpps(B, us=True, bc=2, mode=ISO, scenario=P2P) > 12.0

    def test_mts_near_line_rate_with_4_compartments(self):
        """"we were able to nearly reach line rate (14.4 Mpps) with four
        DPDK compartments" """
        assert mpps(L2, vms=4, us=True, mode=ISO, scenario=P2P) > 13.0

    def test_mts_p2v_saturates_around_2_3_mpps(self):
        """"the throughput saturates (at around 2.3 Mpps) in the p2v
        ... topologies" """
        two = mpps(L2, vms=2, us=True, mode=ISO, scenario=P2V)
        four = mpps(L2, vms=4, us=True, mode=ISO, scenario=P2V)
        assert two == pytest.approx(2.3, abs=0.2)
        assert four == pytest.approx(2.3, abs=0.2)

    def test_slight_increase_with_more_vswitch_vms(self):
        """"a slight increase in the throughput of MTS as the vswitch
        VMs increase" """
        one = mpps(L1, us=True, mode=ISO, scenario=P2V)
        two = mpps(L2, vms=2, us=True, mode=ISO, scenario=P2V)
        assert one < two

    def test_baseline_about_2x_mts_in_p2v(self):
        """"the Baseline where we observe nearly twice the throughput
        for 2 ... cores" """
        base = mpps(B, us=True, bc=2, mode=ISO, scenario=P2V)
        mts = mpps(L2, vms=2, us=True, mode=ISO, scenario=P2V)
        assert 1.7 <= base / mts <= 2.3

    def test_dpdk_order_of_magnitude_over_kernel(self):
        """"using DPDK can offer an order of magnitude better
        throughput" """
        kernel = mpps(B, bc=2, mode=ISO, scenario=P2P)
        dpdk = mpps(B, us=True, bc=2, mode=ISO, scenario=P2P)
        assert dpdk / kernel > 5

    def test_hairpin_is_the_mts_p2v_bottleneck(self):
        spec = make_spec(level=L2, vms=4, user_space=True, mode=ISO)
        d = build_deployment(spec, P2V)
        result = throughput(d, P2V)
        assert set(result.bottleneck_of.values()) == {"nic.hairpin"}


class TestPcieAblation:
    """The discussion section: PCIe 3.0 x8 as a future bottleneck."""

    def test_x8_gen3_binds_mts_at_higher_link_speeds(self):
        from repro.perfmodel.calibration import DEFAULT_CALIBRATION
        from repro.perfmodel.paths import build_flow_paths
        from repro.perfmodel.capacity import solve
        spec = make_spec(level=L2, vms=4, user_space=True, mode=ISO)
        # Idealize the NIC's internal switching so the PCIe effect shows
        # in isolation (the paper's discussion is about the bus).
        cal = DEFAULT_CALIBRATION.with_overrides(
            nic_hairpin_bandwidth_bps=1e12, nic_hairpin_capacity=1e12)
        d = build_deployment(spec, P2V, calibration=cal)
        # At 40G with MTU frames, the 3-crossings-per-direction MTS path
        # exceeds the ~50 Gbps usable per PCIe direction.
        result = solve(build_flow_paths(d, P2V, frame_bytes=1514,
                                        link_bandwidth_bps=40e9))
        assert any(b.startswith("pcie") for b in result.bottleneck_of.values())

    def test_wider_faster_pcie_removes_the_bottleneck(self):
        """"increasing the lanes to x16 is one potential workaround ...
        with chip vendors initiating PCIe 4.0 devices, the PCIe bus
        bandwidth will increase" -- note that because MTS triples the
        per-direction crossings, x16 alone does NOT suffice for 40G MTU
        traffic; Gen4 x16 does."""
        from repro.perfmodel.calibration import DEFAULT_CALIBRATION
        from repro.perfmodel.paths import build_flow_paths
        from repro.perfmodel.capacity import solve
        from repro.sriov.pcie import PcieBus, PcieGen
        spec = make_spec(level=L2, vms=4, user_space=True, mode=ISO)
        cal = DEFAULT_CALIBRATION.with_overrides(
            nic_hairpin_bandwidth_bps=1e12, nic_hairpin_capacity=1e12)

        def bottlenecks(bus):
            d = build_deployment(spec, P2V, calibration=cal)
            d.server.nic.pcie = bus
            result = solve(build_flow_paths(d, P2V, frame_bytes=1514,
                                            link_bandwidth_bps=40e9))
            return set(result.bottleneck_of.values())

        # Gen3 x16 doubles the bus but MTS's 3-crossings-per-direction
        # path still exceeds it at 40G line rate.
        assert any(b.startswith("pcie")
                   for b in bottlenecks(PcieBus(lanes=16)))
        # Gen4 x16 clears it.
        assert not any(
            b.startswith("pcie")
            for b in bottlenecks(PcieBus(gen=PcieGen.GEN4, lanes=16)))
