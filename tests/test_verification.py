"""Static control-plane verification."""

import pytest

from repro.core import SecurityLevel, TrafficScenario, build_deployment
from repro.core.verification import audit_deployment
from repro.net import IPv4Address, MacAddress
from repro.vswitch import Drop, FlowMatch, FlowRule, Output
from repro.vswitch.actions import GotoTable
from tests.conftest import make_spec


def deploy(level=SecurityLevel.LEVEL_1, scenario=TrafficScenario.P2V,
           **kwargs):
    return build_deployment(make_spec(level=level, **kwargs), scenario)


class TestCleanDeployments:
    @pytest.mark.parametrize("level,vms", [
        (SecurityLevel.LEVEL_1, 1),
        (SecurityLevel.LEVEL_2, 2),
        (SecurityLevel.LEVEL_2, 4),
    ])
    def test_built_deployments_audit_clean(self, level, vms):
        report = audit_deployment(deploy(level=level, vms=vms))
        assert report.ok, report.render()

    def test_v2v_deployment_audits_clean(self):
        report = audit_deployment(deploy(scenario=TrafficScenario.V2V))
        assert report.ok, report.render()

    def test_tunneled_deployment_audits_clean(self):
        report = audit_deployment(deploy(tunneling=True))
        assert report.ok, report.render()

    def test_single_port_deployment_audits_clean(self):
        report = audit_deployment(deploy(nic_ports=1))
        assert report.ok, report.render()

    def test_baseline_tables_checked(self):
        report = audit_deployment(deploy(level=SecurityLevel.BASELINE))
        assert report.ok

    def test_clean_render(self):
        report = audit_deployment(deploy())
        assert report.render() == "control-plane audit: clean"


class TestBrokenDeploymentsAreCaught:
    def test_withdrawn_tenant_rules_flagged_unreachable(self):
        d = deploy()
        d.bridges[0].table.remove_tenant(2)
        report = audit_deployment(d)
        assert not report.ok
        assert any(f.kind == "unreachable" and "tenant 2" in f.detail
                   for f in report.errors)

    def test_black_hole_output_flagged(self):
        d = deploy()
        d.bridges[0].add_flow(FlowRule(
            match=FlowMatch(dst_ip=IPv4Address.parse("172.16.0.1")),
            actions=[Output(99)], priority=50))
        report = audit_deployment(d)
        assert any(f.kind == "black-hole" for f in report.errors)

    def test_goto_empty_table_flagged(self):
        d = deploy()
        d.bridges[0].add_flow(FlowRule(
            match=FlowMatch(dst_ip=IPv4Address.parse("172.16.0.1")),
            actions=[GotoTable(7)], priority=50))
        report = audit_deployment(d)
        assert any("empty table" in f.detail for f in report.errors)

    def test_cross_tenant_leak_flagged(self):
        """The paper's exact nightmare: a sloppy rule sends tenant 0's
        traffic to tenant 1's gateway port as well."""
        d = deploy()
        view = d.compartment_views[0]
        d.bridges[0].add_flow(FlowRule(
            match=FlowMatch(in_port=view.inout_port_no[0],
                            dst_ip=d.plan.tenant_ip(0)),
            actions=[Output(view.gw_port_no[(1, 0)])],
            priority=300,  # overrides the proper ingress rule? no --
            tenant_id=1))  # it *adds* a copy path at higher priority
        report = audit_deployment(d)
        assert not report.ok

    def test_misprogrammed_wildcard_conflict_flagged(self):
        d = deploy()
        view = d.compartment_views[0]
        d.bridges[0].add_flow(FlowRule(
            match=FlowMatch(in_port=view.inout_port_no[0],
                            dst_ip=IPv4Address.parse("10.0.0.0"),
                            dst_ip_prefix=8),
            actions=[Output(view.gw_port_no[(1, 0)])],
            priority=200, tenant_id=1))
        report = audit_deployment(d)
        assert any(f.kind == "cross-tenant-conflict" for f in report.errors)

    def test_shadowed_rule_warned(self):
        d = deploy()
        view = d.compartment_views[0]
        in_port = view.inout_port_no[0]
        # A broad high-priority rule added first...
        d.bridges[0].add_flow(FlowRule(
            match=FlowMatch(in_port=in_port),
            actions=[Drop()], priority=500))
        # ...then a more specific rule at lower priority: dead.
        d.bridges[0].add_flow(FlowRule(
            match=FlowMatch(in_port=in_port,
                            dst_ip=IPv4Address.parse("172.16.9.9")),
            actions=[Output(view.inout_port_no[0])], priority=400))
        report = audit_deployment(d)
        assert any(f.kind == "shadowed" for f in report.warnings)

    def test_drop_all_rule_breaks_reachability(self):
        d = deploy()
        view = d.compartment_views[0]
        d.bridges[0].add_flow(FlowRule(
            match=FlowMatch(in_port=view.inout_port_no[0]),
            actions=[Drop()], priority=999))
        report = audit_deployment(d)
        unreachable = [f for f in report.errors if f.kind == "unreachable"]
        assert len(unreachable) == 4  # every tenant


class TestAuditMatchesDataplane:
    def test_audit_agrees_with_packet_delivery(self):
        """If the audit says reachable, the DES delivers; if the audit
        says unreachable, it does not."""
        from repro.traffic import TestbedHarness
        from repro.net import Frame

        d = deploy(level=SecurityLevel.LEVEL_2, vms=2)
        assert audit_deployment(d).ok
        h = TestbedHarness(d)
        h.configure_tenant_flows(rate_per_flow_pps=1000)
        assert h.run(duration=0.01).loss_fraction == 0.0

        d2 = deploy(level=SecurityLevel.LEVEL_2, vms=2)
        d2.bridges[0].table.remove_tenant(0)
        assert not audit_deployment(d2).ok
        h2 = TestbedHarness(d2)
        h2.configure_tenant_flows(rate_per_flow_pps=1000, tenants=[0])
        assert h2.run(duration=0.01).delivered == 0
