"""Per-tenant accounting and billing (§6 extension)."""

import pytest

from repro.core import ResourceMode, SecurityLevel, TrafficScenario, build_deployment
from repro.core.accounting import (
    AttributionQuality,
    NetworkingMeter,
    PricingModel,
    bill,
)
from repro.traffic import TestbedHarness
from tests.conftest import make_spec


def run_traffic(level, vms=1, mode=ResourceMode.SHARED,
                rates=(2000, 2000, 2000, 2000), duration=0.05):
    d = build_deployment(make_spec(level=level, vms=vms, mode=mode),
                         TrafficScenario.P2V)
    h = TestbedHarness(d)
    meter = NetworkingMeter(d)
    meter.snapshot()
    for t, rate in enumerate(rates):
        if rate > 0:
            h.add_tenant_flow(t, rate)
    h.run(duration=duration)
    return d, meter.read()


class TestAttributionQuality:
    def test_per_tenant_compartments_exact(self):
        _, usages = run_traffic(SecurityLevel.LEVEL_2, vms=4,
                                mode=ResourceMode.ISOLATED)
        assert all(u.quality is AttributionQuality.EXACT for u in usages)

    def test_shared_compartment_estimated(self):
        _, usages = run_traffic(SecurityLevel.LEVEL_1)
        assert all(u.quality is AttributionQuality.ESTIMATED for u in usages)

    def test_baseline_self_reported(self):
        """The paper's billing argument: the Baseline can only report
        what the (tenant-exposed) vswitch itself counted."""
        _, usages = run_traffic(SecurityLevel.BASELINE)
        assert all(u.quality is AttributionQuality.SELF_REPORTED
                   for u in usages)


class TestMetering:
    def test_io_scales_with_offered_rate(self):
        _, usages = run_traffic(SecurityLevel.LEVEL_2, vms=4,
                                mode=ResourceMode.ISOLATED,
                                rates=(4000, 1000, 1000, 1000))
        by_tenant = {u.tenant_id: u for u in usages}
        assert by_tenant[0].io_bytes > 3 * by_tenant[1].io_bytes

    def test_cpu_attribution_follows_io_share_when_shared(self):
        _, usages = run_traffic(SecurityLevel.LEVEL_1,
                                rates=(3000, 1000, 1000, 1000))
        by_tenant = {u.tenant_id: u for u in usages}
        assert (by_tenant[0].vswitch_cpu_seconds
                > 2 * by_tenant[1].vswitch_cpu_seconds)

    def test_idle_tenant_costs_nothing_in_io_and_cpu(self):
        _, usages = run_traffic(SecurityLevel.LEVEL_2, vms=4,
                                mode=ResourceMode.ISOLATED,
                                rates=(2000, 2000, 2000, 0))
        by_tenant = {u.tenant_id: u for u in usages}
        assert by_tenant[3].io_bytes == 0
        assert by_tenant[3].vswitch_cpu_seconds == pytest.approx(0.0)

    def test_snapshot_isolates_the_window(self):
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_1),
                             TrafficScenario.P2V)
        h = TestbedHarness(d)
        h.configure_tenant_flows(rate_per_flow_pps=2000)
        h.run(duration=0.02)
        meter = NetworkingMeter(d)
        meter.snapshot()
        # No further traffic: the metered window is empty.
        d.sim.run(until=d.sim.now + 0.01)
        usages = meter.read()
        assert all(u.io_bytes == 0 for u in usages)

    def test_cpu_seconds_bounded_by_window(self):
        _, usages = run_traffic(SecurityLevel.LEVEL_2, vms=4,
                                mode=ResourceMode.ISOLATED)
        for usage in usages:
            assert 0 <= usage.vswitch_cpu_seconds <= usage.window_seconds


class TestBilling:
    def test_invoice_totals_positive_for_active_tenants(self):
        d, usages = run_traffic(SecurityLevel.LEVEL_2, vms=4,
                                mode=ResourceMode.ISOLATED)
        invoices = bill(d, usages)
        assert len(invoices) == 4
        assert all(inv.total > 0 for inv in invoices)

    def test_heavier_tenant_pays_more(self):
        d, usages = run_traffic(SecurityLevel.LEVEL_2, vms=4,
                                mode=ResourceMode.ISOLATED,
                                rates=(8000, 1000, 1000, 1000))
        invoices = {inv.tenant_id: inv for inv in bill(d, usages)}
        assert invoices[0].total > invoices[1].total

    def test_pricing_model_linearity(self):
        d, usages = run_traffic(SecurityLevel.LEVEL_2, vms=4,
                                mode=ResourceMode.ISOLATED)
        cheap = bill(d, usages, PricingModel())
        double = bill(d, usages, PricingModel(per_cpu_hour=0.08,
                                              per_gib_hour=0.01,
                                              per_gib_traffic=0.02))
        for a, b in zip(cheap, double):
            assert b.total == pytest.approx(2 * a.total)

    def test_invoices_carry_attribution_quality(self):
        d, usages = run_traffic(SecurityLevel.BASELINE)
        invoices = bill(d, usages)
        assert all(inv.quality is AttributionQuality.SELF_REPORTED
                   for inv in invoices)
