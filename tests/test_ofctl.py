"""The ovs-ofctl-compatible flow parser."""

import pytest

from repro.errors import FlowTableError
from repro.net import EtherType, Frame, IPv4Address, IpProto, MacAddress
from repro.net.interfaces import PortPair
from repro.vswitch import OvsBridge, PortClass
from repro.vswitch.actions import ActionType
from repro.vswitch.ofctl import add_flows, parse_flow


class TestMatchParsing:
    def test_full_match(self):
        rule = parse_flow(
            "table=2,priority=250,in_port=3,ip,nw_dst=10.0.1.0/24,"
            "tp_dst=80,actions=output:1")
        assert rule.table_id == 2
        assert rule.priority == 250
        assert rule.match.in_port == 3
        assert rule.match.ethertype is EtherType.IPV4
        assert str(rule.match.dst_ip) == "10.0.1.0"
        assert rule.match.dst_ip_prefix == 24
        assert rule.match.dst_port == 80

    def test_protocol_keywords(self):
        assert parse_flow("udp,actions=drop").match.proto is IpProto.UDP
        assert parse_flow("tcp,actions=drop").match.proto is IpProto.TCP
        assert parse_flow("arp,actions=drop").match.ethertype is EtherType.ARP

    def test_l2_fields(self):
        rule = parse_flow(
            "dl_src=02:00:00:00:00:01,dl_dst=02:00:00:00:00:02,"
            "dl_vlan=100,actions=normal")
        assert rule.match.src_mac == MacAddress.parse("02:00:00:00:00:01")
        assert rule.match.vlan == 100

    def test_tunnel_id_hex(self):
        rule = parse_flow("tun_id=0x1389,actions=drop")
        assert rule.match.tunnel_id == 5001

    def test_defaults(self):
        rule = parse_flow("actions=drop")
        assert rule.table_id == 0
        assert rule.priority == 100
        assert rule.match.specificity() == 0

    def test_cookie_accepted_and_ignored(self):
        rule = parse_flow("cookie=0x99,actions=drop")
        assert rule.cookie != 0x99  # table-assigned

    def test_unknown_field_rejected(self):
        with pytest.raises(FlowTableError):
            parse_flow("bogus=1,actions=drop")
        with pytest.raises(FlowTableError):
            parse_flow("sctp,actions=drop")

    def test_missing_actions_rejected(self):
        with pytest.raises(FlowTableError):
            parse_flow("priority=1,in_port=1")


class TestActionParsing:
    def test_rewrite_and_output(self):
        rule = parse_flow(
            "actions=mod_dl_dst:02:4d:54:00:00:07,output:3")
        kinds = [a.type for a in rule.actions]
        assert kinds == [ActionType.SET_DST_MAC, ActionType.OUTPUT]
        assert rule.actions[1].port_no == 3

    def test_tunnel_actions(self):
        rule = parse_flow("actions=pop_tunnel,set_tunnel:5001,output:1")
        kinds = [a.type for a in rule.actions]
        assert kinds == [ActionType.POP_TUNNEL, ActionType.PUSH_TUNNEL,
                         ActionType.OUTPUT]

    def test_goto_and_resubmit_alias(self):
        a = parse_flow("actions=goto_table:4")
        b = parse_flow("actions=resubmit(,4)")
        assert a.actions[0].table_id == b.actions[0].table_id == 4

    def test_normal_and_drop(self):
        assert parse_flow("actions=normal").actions[0].type is ActionType.NORMAL
        assert parse_flow("actions=drop").actions[0].type is ActionType.DROP

    def test_unknown_action_rejected(self):
        with pytest.raises(FlowTableError):
            parse_flow("actions=teleport:1")


class TestEndToEnd:
    def test_parsed_rules_drive_a_bridge(self):
        """The Fig. 3a ingress chain written as ovs-ofctl strings."""
        bridge = OvsBridge("br0")
        received = []
        for i in range(2):
            pair = PortPair(f"p{i}")
            pair.attach_tx(lambda f, i=i: received.append((i, f)))
            bridge.add_port(f"port{i}", PortClass.VF, pair)
        add_flows(
            bridge,
            "priority=200,in_port=1,ip,nw_dst=10.0.0.10,"
            "actions=mod_dl_dst:02:4d:54:00:00:07,output:2",
            "priority=100,in_port=2,actions=output:1",
            tenant_id=0,
        )
        assert bridge.table.tenants() == [0]
        frame = Frame(src_mac=MacAddress(1), dst_mac=MacAddress(2),
                      dst_ip=IPv4Address.parse("10.0.0.10"))
        bridge.port(1).pair.rx.receive(frame)
        assert received[0][0] == 1
        assert received[0][1].dst_mac == MacAddress.parse("02:4d:54:00:00:07")

    def test_roundtrip_against_controller_rules(self):
        """Parser-built rules match controller-built semantics."""
        from repro.core import SecurityLevel, TrafficScenario, build_deployment
        from tests.conftest import make_spec
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_1),
                             TrafficScenario.P2V)
        view = d.compartment_views[0]
        # Reprogram tenant 0's ingress with the parser.
        d.controller.unprogram_tenant(view, 0)
        gw_mac = view.tenant_vf_mac[(0, 0)]
        add_flows(
            view.bridge,
            f"priority=200,in_port={view.inout_port_no[0]},ip,"
            f"nw_dst={d.plan.tenant_ip(0)},"
            f"actions=mod_dl_dst:{gw_mac},output:{view.gw_port_no[(0, 0)]}",
            f"priority=100,in_port={view.gw_port_no[(0, 1)]},"
            f"actions=mod_dl_dst:{d.plan.external_gw_mac},"
            f"output:{view.inout_port_no[1]}",
            tenant_id=0,
        )
        from repro.traffic import TestbedHarness
        h = TestbedHarness(d)
        h.configure_tenant_flows(rate_per_flow_pps=1000, tenants=[0])
        result = h.run(duration=0.01)
        assert result.delivered == result.sent
