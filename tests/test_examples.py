"""Every example must run clean (protects them from rot).

Marked slow-ish: each example is a full subprocess; the whole module
adds ~20 s.  The assertions check the examples' headline output, not
just exit codes.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "loss 0.0%" in out
        assert "exploits needed to reach the host: 2" in out
        assert "torn down: 0 VMs remain" in out

    def test_nfv_service_chain(self):
        out = run_example("nfv_service_chain.py")
        assert "tenant0.l2fwd" in out
        assert "ValidationError" in out  # the v2v/L2(4) impossibility

    def test_cloud_workloads(self):
        out = run_example("cloud_workloads.py")
        assert "iperf" in out
        assert "x" in out  # the speedup ratios

    def test_security_audit(self):
        out = run_example("security_audit.py")
        assert "dropped by anti-spoofing" in out
        assert "rejected (static entry pinned)" in out
        assert "Google Andromeda" in out

    def test_capacity_planning(self):
        out = run_example("capacity_planning.py")
        assert "PCIe-bound" in out
        assert "31 tenants" in out

    def test_datacenter_fabric(self):
        out = run_example("datacenter_fabric.py")
        assert "delivered=1" in out
        assert "downtime" in out
        assert "exact" in out  # billing attribution
