"""The resident control plane: state machine, admission, autoscaling,
self-healing migration, invariants, backend identity, billing."""

import itertools
import json
import random

import pytest

from repro.controlplane import (
    AdmissionPolicySpec,
    AutoscalePolicySpec,
    ChurnPlan,
    ControlPlane,
    CrashSpec,
    LifecycleError,
    TenantRecord,
    TenantState,
    TRANSITIONS,
)
from repro.controlplane.autoscaler import PoolAutoscaler
from repro.controlplane.lifecycle import PLACED_STATES, TERMINAL_STATES
from repro.errors import ValidationError
from repro.fabric.placement import (
    Placement,
    PlacementError,
    TenantReq,
    incremental_place,
    validate_placement,
)
from repro.fabric.topology import FabricTopology


def _record(state: TenantState) -> TenantRecord:
    rec = TenantRecord(TenantReq(0, demand_pps=1000.0), requested_at=0.0,
                       lifetime=10.0)
    rec.state = state
    return rec


class TestTransitionMatrix:
    """Exhaustive legal/illegal matrix over every (src, dst) pair."""

    @pytest.mark.parametrize(
        "src,dst", list(itertools.product(TenantState, TenantState)))
    def test_every_pair(self, src, dst):
        rec = _record(src)
        if dst in TRANSITIONS[src]:
            rec.advance(dst, now=1.0, reason="matrix")
            assert rec.state is dst
            assert rec.history[-1][1:3] == (src.value, dst.value)
        else:
            with pytest.raises(LifecycleError):
                rec.advance(dst, now=1.0, reason="matrix")
            assert rec.state is src  # unchanged on rejection

    def test_terminal_states_have_no_exits(self):
        for state in TERMINAL_STATES:
            assert not TRANSITIONS[state]
        assert TERMINAL_STATES == {TenantState.TERMINATED,
                                   TenantState.EVICTED}

    def test_every_state_reachable(self):
        reachable = {TenantState.REQUESTED}
        frontier = [TenantState.REQUESTED]
        while frontier:
            nxt = TRANSITIONS[frontier.pop()]
            fresh = nxt - reachable
            reachable |= fresh
            frontier.extend(fresh)
        assert reachable == set(TenantState)

    def test_epoch_bumps_and_terminal_stamp(self):
        rec = _record(TenantState.REQUESTED)
        rec.advance(TenantState.ADMITTED, 1.0)
        rec.advance(TenantState.PLACING, 2.0)
        rec.advance(TenantState.EVICTED, 3.0)
        assert rec.epoch == 3
        assert rec.ended_at == 3.0

    def test_conservation_accrual(self):
        rec = _record(TenantState.ACTIVE)
        rec.slot = (0, 0)
        rec.last_accrued = 0.0
        rec.accrue(2.0, healthy=True)
        rec.accrue(3.0, healthy=False)  # crashed span drops
        assert rec.offered == pytest.approx(3000.0)
        assert rec.delivered == pytest.approx(2000.0)
        assert rec.dropped == pytest.approx(1000.0)
        assert rec.conservation_error() < 1e-12


class TestPlanRoundTrip:
    def test_json_round_trip(self):
        plan = ChurnPlan(duration=30.0, arrival_rate=1.5,
                         crashes=(CrashSpec(at=10.0, repair_after=5.0),),
                         crash_mtbf=40.0, crash_mttr=6.0)
        again = ChurnPlan.from_json(plan.to_json())
        assert again == plan
        assert again.to_json() == plan.to_json()

    def test_unknown_fields_rejected(self):
        data = json.loads(ChurnPlan().to_json())
        data["bogus"] = 1
        with pytest.raises(ValidationError):
            ChurnPlan.from_dict(data)

    def test_validation(self):
        with pytest.raises(ValidationError):
            ChurnPlan(duration=0.0)
        with pytest.raises(ValidationError):
            AdmissionPolicySpec(backoff_jitter=1.5)
        with pytest.raises(ValidationError):
            AutoscalePolicySpec(target_utilization=1.5)
        with pytest.raises(ValidationError):
            CrashSpec(at=-1.0)

    def test_migration_cost_model(self):
        plan = ChurnPlan(rules_per_tenant=10, arp_entries_per_tenant=5)
        resync = (10 * plan.policy.resync_per_rule
                  + 5 * plan.policy.arp_relearn_per_entry)
        assert plan.migration_resync_seconds() == pytest.approx(resync)
        assert plan.migration_downtime() == pytest.approx(
            plan.drain_latency + plan.policy.failover_latency + resync)

    def test_plan_param_changes_spec_hash(self):
        from repro.controlplane.workload import scenario
        a = scenario(ChurnPlan(duration=30.0), seed=0)
        b = scenario(ChurnPlan(duration=31.0), seed=0)
        assert a.content_hash() != b.content_hash()


class TestIncrementalPlace:
    def test_residents_keep_their_seats(self):
        topo = FabricTopology(num_servers=2)
        reqs = [TenantReq(t, demand_pps=1000.0, group=t % 2)
                for t in range(6)]
        placement = Placement({t: (t % 2, 0) for t in range(4)})
        seats = incremental_place(reqs, placement, topo, 2, 4, [4, 5])
        assert set(seats) == {4, 5}
        combined = dict(placement.assignment)
        combined.update(seats)
        validate_placement(reqs, Placement(combined), topo, 2, 4)

    def test_raises_when_pool_exhausted(self):
        topo = FabricTopology(num_servers=1)
        reqs = [TenantReq(t, demand_pps=1.0, group=0) for t in range(3)]
        placement = Placement({0: (0, 0), 1: (0, 0)})
        with pytest.raises(PlacementError):
            incremental_place(reqs, placement, topo, 1, 2, [2],
                              open_slots=[(0, 0)])


class TestAutoscaler:
    SPEC = AutoscalePolicySpec(interval=1.0, cooldown=0.0, deadband=0.05,
                               min_pool=1, storm_threshold=100)

    def test_grows_under_load(self):
        scaler = PoolAutoscaler(self.SPEC, max_pool_limit=16)
        demand = 8 * self.SPEC.compartment_capacity_pps * 0.9
        decision = scaler.decide(0.0, demand, pool_size=2)
        assert decision.delta > 0

    def test_deadband_holds(self):
        scaler = PoolAutoscaler(self.SPEC, max_pool_limit=16)
        demand = 4 * self.SPEC.compartment_capacity_pps * \
            self.SPEC.target_utilization
        decision = scaler.decide(0.0, demand, pool_size=4)
        assert decision.delta == 0
        assert decision.suppressed == "deadband"

    def test_cooldown_suppresses(self):
        spec = AutoscalePolicySpec(interval=1.0, cooldown=10.0,
                                   deadband=0.01, min_pool=1,
                                   storm_threshold=100)
        scaler = PoolAutoscaler(spec, max_pool_limit=16)
        heavy = 8 * spec.compartment_capacity_pps
        first = scaler.decide(0.0, heavy, pool_size=2)
        assert first.delta > 0
        second = scaler.decide(1.0, heavy, pool_size=2 + first.delta)
        assert second.delta == 0
        assert second.suppressed in ("cooldown", "deadband")

    def test_storm_breaker_opens(self):
        spec = AutoscalePolicySpec(interval=1.0, cooldown=0.0,
                                   deadband=0.01, min_pool=1,
                                   storm_threshold=3, storm_window=100.0,
                                   storm_hold=50.0)
        scaler = PoolAutoscaler(spec, max_pool_limit=64)
        heavy = 32 * spec.compartment_capacity_pps
        now, pool = 0.0, 2
        while not scaler.breaker_open(now):
            decision = scaler.decide(now, heavy, pool)
            pool = max(1, pool + decision.delta - 2)  # fight the scaler
            now += 1.0
            assert now < 50.0, "breaker never opened"
        assert scaler.breaker_trips == 1
        frozen = scaler.decide(now, heavy, pool)
        assert frozen.delta == 0 and frozen.suppressed == "breaker"

    def test_clamps_to_bounds(self):
        scaler = PoolAutoscaler(self.SPEC, max_pool_limit=4)
        huge = 100 * self.SPEC.compartment_capacity_pps
        decision = scaler.decide(0.0, huge, pool_size=4)
        assert decision.delta == 0
        assert decision.suppressed == "at-max"


def _fuzz_plan(seed: int) -> ChurnPlan:
    """A randomized-but-deterministic 5-way campaign: arrivals x
    departures x crashes x autoscale x migration, shaped by ``seed``."""
    rng = random.Random(seed)
    crashes = tuple(
        CrashSpec(at=rng.uniform(5.0, 55.0), target="auto",
                  repair_after=rng.choice([None, rng.uniform(3.0, 10.0)]))
        for _ in range(rng.randint(1, 4)))
    return ChurnPlan(
        duration=60.0,
        arrival_rate=rng.uniform(0.5, 3.0),
        mean_lifetime=rng.uniform(10.0, 60.0),
        demand_pps=rng.uniform(5_000.0, 40_000.0),
        dedicated_fraction=rng.choice([0.0, 0.1, 0.3]),
        num_groups=rng.randint(2, 6),
        servers=rng.randint(2, 4),
        compartments_per_server=rng.randint(2, 4),
        tenants_per_compartment=rng.choice([4, 8]),
        crashes=crashes,
        crash_mtbf=rng.choice([None, rng.uniform(20.0, 60.0)]),
        crash_mttr=rng.uniform(4.0, 12.0),
        autoscale=AutoscalePolicySpec(
            interval=rng.uniform(0.5, 2.0),
            cooldown=rng.uniform(0.0, 3.0),
            min_pool=rng.randint(1, 3)),
    )


class TestChurnInvariants:
    """Seeded randomized fuzz: no run may violate a lifecycle invariant."""

    @pytest.mark.parametrize("seed", range(6))
    def test_fuzzed_campaigns_hold_invariants(self, seed):
        plan = _fuzz_plan(seed)
        service = ControlPlane(plan, seed=seed)
        values = service.run()
        assert values["violations"] == 0.0, service.violations[:5]
        # No tenant lost: every arrival is live or terminal, exactly once.
        records = service.records
        assert len(records) == values["arrivals"]
        live = [r for r in records.values()
                if r.state not in TERMINAL_STATES]
        assert len(live) == values["live_final"]
        # No double placement: the books rebuild exactly.
        seats = {}
        for tid, rec in records.items():
            if rec.state in PLACED_STATES:
                assert rec.slot is not None
                seats.setdefault(rec.slot, []).append(tid)
        for slot, tids in seats.items():
            assert sorted(tids) == sorted(service.occupants[slot])
        # Budgets respected.
        for rec in records.values():
            assert rec.retries <= plan.admission.max_retries + 1
            assert rec.migration_retries <= plan.policy.max_restarts + 1
        # Packet conservation per tenant.
        for rec in records.values():
            assert rec.conservation_error() < 1e-6

    def test_runs_are_deterministic(self):
        plan = _fuzz_plan(3)
        a = ControlPlane(plan, seed=11).run()
        b = ControlPlane(plan, seed=11).run()
        assert a == b
        c = ControlPlane(plan, seed=12).run()
        assert c != a

    def test_load_shedding_rejects_instead_of_wedging(self):
        plan = ChurnPlan(duration=20.0, arrival_rate=10.0,
                         mean_lifetime=1000.0, servers=1,
                         compartments_per_server=2,
                         tenants_per_compartment=2,
                         autoscale=AutoscalePolicySpec(enabled=False,
                                                       min_pool=2))
        service = ControlPlane(plan, seed=0)
        values = service.run()
        assert values["violations"] == 0.0, service.violations[:5]
        assert values["rejections"] > 0  # shed, not wedged
        assert values["active_final"] <= 4  # capacity respected
        kinds = {e["kind"] for e in service.events}
        assert "reject" in kinds


class TestSelfHealing:
    def test_crash_triggers_detection_and_migration(self):
        plan = ChurnPlan(duration=40.0, arrival_rate=2.0,
                         mean_lifetime=100.0,
                         crashes=(CrashSpec(at=20.0),))
        service = ControlPlane(plan, seed=5)
        values = service.run()
        assert values["violations"] == 0.0, service.violations[:5]
        assert values["crashes"] == 1.0
        assert values["detections"] == 1.0
        assert values["migrations_completed"] >= 1.0
        assert values["migration_resumed_fraction"] == 1.0
        # Detection is bounded by the heartbeat.
        assert values["detect_latency_mean"] <= 2 * plan.heartbeat

    def test_migrated_tenants_resume_forwarding(self):
        plan = ChurnPlan(duration=60.0, arrival_rate=1.0,
                         mean_lifetime=200.0,
                         crashes=(CrashSpec(at=20.0),
                                  CrashSpec(at=35.0)))
        service = ControlPlane(plan, seed=9)
        values = service.run()
        assert values["violations"] == 0.0
        migrated = [r for r in service.records.values()
                    if r.migrations_completed > 0]
        assert migrated
        for rec in migrated:
            if rec.healthy_since_migration > 0:
                assert rec.delivered_since_migration > 0

    def test_recovery_work_is_charged(self):
        plan = ChurnPlan(duration=40.0, arrival_rate=2.0,
                         mean_lifetime=100.0,
                         crashes=(CrashSpec(at=20.0),))
        service = ControlPlane(plan, seed=5)
        service.run()
        payers = [r for r in service.records.values()
                  if r.recovery_seconds > 0]
        assert payers
        billed = sum(r.recovery_seconds for r in service.records.values())
        assert billed == pytest.approx(service.recovery_seconds_total)


class TestAcceptance:
    """The issue's churn acceptance: a 10-minute sim-time run with
    hundreds of lifecycle events, crashes and an active autoscaler
    completes with zero invariant violations and full recovery."""

    def test_ten_minute_churn(self):
        plan = ChurnPlan(
            duration=600.0, arrival_rate=0.6, mean_lifetime=120.0,
            crashes=tuple(CrashSpec(at=80.0 * (i + 1), target="auto",
                                    repair_after=20.0)
                          for i in range(6)))
        service = ControlPlane(plan, seed=1)
        values = service.run()
        lifecycle_events = values["arrivals"] + values["departures"]
        assert lifecycle_events >= 200
        assert values["crashes"] >= 5
        assert values["scale_ups"] + values["scale_downs"] > 0
        assert values["violations"] == 0.0, service.violations[:5]
        assert values["migrations_completed"] >= 1
        assert values["migration_resumed_fraction"] == 1.0
        assert values["evictions"] == 0.0
        assert 0.97 <= values["availability"] <= 1.0
        # The final audit itself ran clean on the full state.
        assert service.audit() == []


class TestBackendIdentity:
    def test_sequential_and_pool_byte_identical(self):
        from repro.controlplane.workload import default_plan, scenario
        from repro.scenario import (Engine, ProcessPoolBackend,
                                    SequentialBackend)
        specs = [scenario(default_plan(duration=20.0), seed=s,
                          label=f"churn-{s}") for s in (0, 1)]
        seq = Engine(backend=SequentialBackend()).run(specs)
        pool_backend = ProcessPoolBackend(max_workers=2)
        try:
            pool = Engine(backend=pool_backend).run(specs)
        finally:
            pool_backend.close()
        assert [r.result_hash() for r in seq] == \
            [r.result_hash() for r in pool]
        assert [r.values for r in seq] == [r.values for r in pool]

    def test_results_cache(self, tmp_path):
        from repro.controlplane.workload import default_plan, scenario
        from repro.scenario import Engine, ResultStore
        spec = scenario(default_plan(duration=15.0), seed=3)
        store = ResultStore(str(tmp_path))
        first = Engine(store=store).run([spec])
        second = Engine(store=store).run([spec])
        assert not first[0].cached and second[0].cached
        assert first[0].result_hash() == second[0].result_hash()


class TestChurnBilling:
    def test_metered_churn_reconciles(self):
        from repro.billing.invoice import invoices_from_records
        from repro.billing.meter import UsageRecord
        from repro.controlplane.workload import default_plan, scenario
        from repro.scenario import Engine
        spec = scenario(default_plan(duration=30.0), seed=0,
                        metering=True)
        result = Engine().run([spec])[0]
        records = [UsageRecord.from_dict(u) for u in result.usage
                   if u.get("kind") == "usage"]
        summaries = [u for u in result.usage if u.get("kind") == "summary"]
        assert records and len(summaries) == 1
        summary = summaries[0]
        assert summary["reconciled"], summary["failures"]
        # Migration/autoscale re-sync appears as recovery line items.
        assert summary["fault_seconds_total"] == pytest.approx(
            result.values["recovery_seconds_total"])
        payers = {int(t) for t in summary["fault_payers"]}
        assert payers
        invoices = {inv.tenant_id: inv for inv in
                    invoices_from_records(records)}
        for tenant in payers:
            items = {li.kind for li in invoices[tenant].items}
            assert "fault_recovery" in items

    def test_unmetered_churn_publishes_nothing(self):
        from repro.controlplane.workload import default_plan, scenario
        from repro.scenario import Engine
        spec = scenario(default_plan(duration=15.0), seed=0)
        result = Engine().run([spec])[0]
        assert result.usage == []
        assert result.events  # the lifecycle log still ships


class TestServeCli:
    def test_serve_check_passes(self, capsys):
        from repro.cli import main
        rc = main(["serve", "--duration", "20", "--no-cache", "--check"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Tenant lifecycle" in out
        assert "Self-healing and autoscaling" in out

    def test_serve_events_out(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "events.jsonl"
        rc = main(["serve", "--duration", "15", "--no-cache",
                   "--events-out", str(path)])
        assert rc == 0
        lines = [json.loads(line) for line in
                 path.read_text().splitlines()]
        assert lines
        kinds = {e["kind"] for e in lines}
        assert "arrival" in kinds and "activate" in kinds
