"""MAC/IPv4 addresses and allocators, including property-based checks."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AddressError
from repro.net import BROADCAST_MAC, IPv4Address, IpAllocator, MacAddress, MacAllocator


class TestMacAddress:
    def test_parse_and_str_roundtrip(self):
        mac = MacAddress.parse("02:4d:54:00:00:2a")
        assert str(mac) == "02:4d:54:00:00:2a"
        assert mac.value == 0x024D5400002A

    def test_parse_uppercase(self):
        assert MacAddress.parse("AA:BB:CC:DD:EE:FF").value == 0xAABBCCDDEEFF

    @pytest.mark.parametrize("bad", ["", "aa:bb", "aa:bb:cc:dd:ee:gg",
                                     "aa:bb:cc:dd:ee:ff:00", "aabbccddeeff"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            MacAddress.parse(bad)

    def test_broadcast_properties(self):
        assert BROADCAST_MAC.is_broadcast
        assert BROADCAST_MAC.is_multicast

    def test_multicast_bit(self):
        assert MacAddress.parse("01:00:5e:00:00:01").is_multicast
        assert not MacAddress.parse("02:00:00:00:00:01").is_multicast

    def test_locally_administered_bit(self):
        assert MacAddress.parse("02:00:00:00:00:01").is_locally_administered
        assert not MacAddress.parse("00:1b:21:00:00:01").is_locally_administered

    def test_out_of_range_rejected(self):
        with pytest.raises(AddressError):
            MacAddress(1 << 48)

    def test_hashable_and_ordered(self):
        a, b = MacAddress(1), MacAddress(2)
        assert a < b
        assert len({a, b, MacAddress(1)}) == 2

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_str_parse_roundtrip_property(self, value):
        mac = MacAddress(value)
        assert MacAddress.parse(str(mac)) == mac


class TestIPv4Address:
    def test_parse_and_str_roundtrip(self):
        ip = IPv4Address.parse("10.0.3.10")
        assert str(ip) == "10.0.3.10"

    @pytest.mark.parametrize("bad", ["", "1.2.3", "1.2.3.4.5", "256.0.0.1",
                                     "a.b.c.d", "-1.0.0.0"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            IPv4Address.parse(bad)

    def test_in_subnet(self):
        ip = IPv4Address.parse("192.168.1.10")
        net = IPv4Address.parse("192.168.0.0")
        assert ip.in_subnet(net, 16)
        assert not ip.in_subnet(net, 24)

    def test_in_subnet_prefix_zero_matches_everything(self):
        assert IPv4Address.parse("8.8.8.8").in_subnet(
            IPv4Address.parse("10.0.0.0"), 0)

    def test_in_subnet_prefix_32_is_exact(self):
        ip = IPv4Address.parse("10.0.0.1")
        assert ip.in_subnet(ip, 32)
        assert not ip.in_subnet(IPv4Address.parse("10.0.0.2"), 32)

    def test_offset(self):
        assert str(IPv4Address.parse("10.0.0.1").offset(9)) == "10.0.0.10"

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_str_parse_roundtrip_property(self, value):
        ip = IPv4Address(value)
        assert IPv4Address.parse(str(ip)) == ip


class TestMacAllocator:
    def test_allocates_unique_unicast_local_macs(self):
        alloc = MacAllocator()
        macs = [alloc.allocate() for _ in range(100)]
        assert len(set(macs)) == 100
        for mac in macs:
            assert mac.is_locally_administered
            assert not mac.is_multicast

    def test_rejects_multicast_prefix(self):
        with pytest.raises(AddressError):
            MacAllocator(prefix=0x01_00_00)


class TestIpAllocator:
    def test_skips_network_and_broadcast(self):
        alloc = IpAllocator("10.0.0.0", 30)
        first = alloc.allocate()
        second = alloc.allocate()
        assert str(first) == "10.0.0.1"
        assert str(second) == "10.0.0.2"
        with pytest.raises(AddressError):
            alloc.allocate()

    def test_hosts_iteration(self):
        alloc = IpAllocator("10.1.0.0", 30)
        assert [str(h) for h in alloc.hosts()] == ["10.1.0.1", "10.1.0.2"]

    def test_rejects_unusable_prefix(self):
        with pytest.raises(AddressError):
            IpAllocator("10.0.0.0", 31)

    def test_allocated_addresses_stay_in_subnet(self):
        alloc = IpAllocator("172.16.4.0", 24)
        net = IPv4Address.parse("172.16.4.0")
        for _ in range(50):
            assert alloc.allocate().in_subnet(net, 24)
