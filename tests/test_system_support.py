"""Section 3.2 "System support": tunneling, proxy ARP, controller."""

import pytest

from repro.core import (
    ArpMode,
    ResourceMode,
    SecurityLevel,
    TrafficScenario,
    build_deployment,
)
from repro.net import Frame, MacAddress
from repro.traffic import TestbedHarness
from repro.vswitch.actions import TUNNEL_OVERHEAD_BYTES
from tests.conftest import make_spec

LG_MAC = MacAddress.parse("02:1b:00:00:00:01")


class TestTunneling:
    """"advanced multi-tenant cloud systems rely on tunneling protocols
    to support L2 virtual networks. This is also supported by MTS" """

    def _deploy(self):
        spec = make_spec(level=SecurityLevel.LEVEL_1, tunneling=True)
        return build_deployment(spec, TrafficScenario.P2V)

    def _send(self, d, vni, tenant=0, dst_ip=None):
        frame = Frame(
            src_mac=LG_MAC,
            dst_mac=d.ingress_dmac_for_tenant(tenant, 0),
            src_ip=d.plan.external_ip(0),
            dst_ip=dst_ip if dst_ip is not None else d.plan.tenant_ip(tenant),
            tunnel_id=vni,
            size_bytes=64 + TUNNEL_OVERHEAD_BYTES,
            flow_id=tenant,
        )
        d.external_ingress(0).receive(frame)
        d.sim.run(until=d.sim.now + 1.0)
        return frame

    def test_encapsulated_frame_decapped_and_delivered(self):
        d = self._deploy()
        h = TestbedHarness(d)
        frame = self._send(d, vni=d.plan.vni(0))
        assert h.sink.total == 1
        # The egress chain re-encapsulated with the tenant's VNI.
        assert frame.tunnel_id == d.plan.vni(0)

    def test_wrong_vni_not_delivered(self):
        """The tunnel id gates the tenant lookup: tenant 1's VNI with
        tenant 0's IP matches no ingress rule."""
        d = self._deploy()
        h = TestbedHarness(d)
        self._send(d, vni=d.plan.vni(1), tenant=0)
        assert h.sink.total == 0
        assert d.bridges[0].drops_no_match >= 1

    def test_untunneled_frame_dropped_when_tunneling_on(self):
        d = self._deploy()
        h = TestbedHarness(d)
        frame = Frame(src_mac=LG_MAC,
                      dst_mac=d.ingress_dmac_for_tenant(0, 0),
                      dst_ip=d.plan.tenant_ip(0))
        d.external_ingress(0).receive(frame)
        d.sim.run(until=d.sim.now + 1.0)
        assert h.sink.total == 0

    def test_harness_tunnels_flows_automatically(self):
        d = self._deploy()
        h = TestbedHarness(d)
        h.configure_tenant_flows(rate_per_flow_pps=1000,
                                 frame_bytes=64 + TUNNEL_OVERHEAD_BYTES)
        result = h.run(duration=0.01)
        assert result.delivered == result.sent


class TestProxyArp:
    """"or using the centralized controller and vswitch as a
    proxy-ARP/ARP-responder" """

    def test_responder_answers_gateway_queries(self):
        spec = make_spec(level=SecurityLevel.LEVEL_1, arp_mode=ArpMode.PROXY)
        d = build_deployment(spec, TrafficScenario.P2V)
        responder = d.controller.proxy_arp[0]
        for t in range(4):
            assert responder.respond(d.plan.tenant_gw_ip(t)) == d.gw_vf[(t, 0)].mac

    def test_responder_knows_tenant_bindings(self):
        spec = make_spec(level=SecurityLevel.LEVEL_1, arp_mode=ArpMode.PROXY)
        d = build_deployment(spec, TrafficScenario.P2V)
        responder = d.controller.proxy_arp[0]
        assert responder.respond(d.plan.tenant_ip(2)) == d.tenant_vf[(2, 0)].mac

    def test_proxy_mode_skips_static_entries(self):
        spec = make_spec(level=SecurityLevel.LEVEL_1, arp_mode=ArpMode.PROXY)
        d = build_deployment(spec, TrafficScenario.P2V)
        assert len(d.tenant_arp[0]) == 0

    def test_static_mode_skips_responder(self):
        spec = make_spec(level=SecurityLevel.LEVEL_1, arp_mode=ArpMode.STATIC)
        d = build_deployment(spec, TrafficScenario.P2V)
        assert d.controller.proxy_arp == {}

    def test_per_compartment_responders(self):
        spec = make_spec(level=SecurityLevel.LEVEL_2, vms=2,
                         arp_mode=ArpMode.PROXY)
        d = build_deployment(spec, TrafficScenario.P2V)
        assert set(d.controller.proxy_arp) == {0, 1}
        # Each responder only knows its own tenants.
        assert d.controller.proxy_arp[0].respond(d.plan.tenant_gw_ip(3)) is None


class TestControllerAccounting:
    def test_rule_count_scales_with_tenants_and_ports(self):
        two = build_deployment(make_spec(level=SecurityLevel.LEVEL_1,
                                         tenants=2),
                               TrafficScenario.P2V)
        four = build_deployment(make_spec(level=SecurityLevel.LEVEL_1,
                                          tenants=4),
                                TrafficScenario.P2V)
        assert four.controller.rules_installed == 2 * two.controller.rules_installed

    def test_egress_port_hairpins_on_single_port(self):
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_1,
                                       nic_ports=1),
                             TrafficScenario.P2V)
        assert d.egress_port_index() == 0

    def test_v2v_partner_wraps_within_compartment(self):
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_2, vms=2),
                             TrafficScenario.V2V)
        view = d.compartment_views[0]
        assert d.controller.v2v_partner(view, 0) == 1
        assert d.controller.v2v_partner(view, 1) == 0
        view1 = d.compartment_views[1]
        assert d.controller.v2v_partner(view1, 2) == 3
