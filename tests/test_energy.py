"""The energy model: §4.3's "expensive (physical CPU and energy costs)"."""

import pytest

from repro.core import ResourceMode, SecurityLevel, TrafficScenario, build_deployment
from repro.perfmodel.energy import EnergyReport, PowerModel, energy_report
from repro.units import KPPS
from tests.conftest import make_spec

P2V = TrafficScenario.P2V
LOAD = 100 * KPPS  # a modest common load every config sustains


def report(level, vms=1, us=False, bc=1, mode=ResourceMode.SHARED,
           load=LOAD):
    spec = make_spec(level=level, vms=vms, user_space=us, baseline_cores=bc,
                     mode=mode)
    d = build_deployment(spec, P2V)
    return energy_report(d, P2V, offered_pps=load)


class TestPowerModel:
    def test_idle_and_peak(self):
        model = PowerModel()
        assert model.core_watts(0.0) == 4.0
        assert model.core_watts(1.0) == 15.0
        assert model.core_watts(0.5) == 9.5

    def test_utilization_range_enforced(self):
        with pytest.raises(ValueError):
            PowerModel().core_watts(1.5)


class TestEnergyClaims:
    def test_dpdk_burns_more_power_at_the_same_load(self):
        """The paper's headline energy claim: busy-polling draws peak
        power regardless of offered load."""
        kernel = report(SecurityLevel.LEVEL_2, vms=2,
                        mode=ResourceMode.ISOLATED)
        dpdk = report(SecurityLevel.LEVEL_2, vms=2, us=True,
                      mode=ResourceMode.ISOLATED)
        assert dpdk.networking_watts > 1.4 * kernel.networking_watts

    def test_dpdk_power_is_load_independent(self):
        light = report(SecurityLevel.LEVEL_1, us=True,
                       mode=ResourceMode.ISOLATED, load=10 * KPPS)
        heavy = report(SecurityLevel.LEVEL_1, us=True,
                       mode=ResourceMode.ISOLATED, load=1000 * KPPS)
        assert light.networking_watts == pytest.approx(heavy.networking_watts)

    def test_kernel_power_scales_with_load(self):
        light = report(SecurityLevel.LEVEL_1, load=10 * KPPS)
        heavy = report(SecurityLevel.LEVEL_1, load=400 * KPPS)
        assert heavy.networking_watts > light.networking_watts

    def test_shared_mode_is_the_energy_sweet_spot(self):
        """Four compartments on one shared core draw barely more than
        the Baseline -- the energy angle of "biting the bullet for
        shared resources"."""
        base = report(SecurityLevel.BASELINE)
        shared = report(SecurityLevel.LEVEL_2, vms=4)
        isolated = report(SecurityLevel.LEVEL_2, vms=4,
                          mode=ResourceMode.ISOLATED)
        assert shared.networking_watts < isolated.networking_watts
        assert shared.networking_watts < base.networking_watts + 12.0

    def test_shared_compartments_stack_on_one_core(self):
        r = report(SecurityLevel.LEVEL_2, vms=4)
        assert r.networking_cores == 2  # host + the shared core

    def test_isolated_counts_each_compartment_core(self):
        r = report(SecurityLevel.LEVEL_2, vms=4, mode=ResourceMode.ISOLATED)
        assert r.networking_cores == 5

    def test_baseline_kernel_runs_on_the_host_core(self):
        r = report(SecurityLevel.BASELINE)
        assert r.networking_cores == 1
        # The host core is actually loaded by forwarding work.
        assert max(r.core_utilization.values()) > 0.0

    def test_utilization_saturates_at_one(self):
        r = report(SecurityLevel.BASELINE, load=5000 * KPPS)
        assert all(0 <= u <= 1 for u in r.core_utilization.values())

    def test_watts_per_mpps_favors_kernel_at_low_load(self):
        kernel = report(SecurityLevel.LEVEL_2, vms=2,
                        mode=ResourceMode.ISOLATED, load=50 * KPPS)
        dpdk = report(SecurityLevel.LEVEL_2, vms=2, us=True,
                      mode=ResourceMode.ISOLATED, load=50 * KPPS)
        assert kernel.watts_per_mpps < dpdk.watts_per_mpps

    def test_report_row_renders(self):
        row = report(SecurityLevel.LEVEL_1).row()
        assert "W/Mpps" in row and "L1" in row
