"""Runtime tenant lifecycle: hot-add, remove, migrate."""

import pytest

from repro.core import SecurityLevel, TrafficScenario, build_deployment
from repro.core.orchestrator import CONTROL_OP_LATENCY, MtsOrchestrator
from repro.errors import ConfigurationError
from repro.net import Frame, MacAddress
from repro.traffic import TestbedHarness
from tests.conftest import make_spec

LG_MAC = MacAddress.parse("02:1b:00:00:00:01")


def deploy(level=SecurityLevel.LEVEL_2, vms=2, **kwargs):
    d = build_deployment(make_spec(level=level, vms=vms, **kwargs),
                         TrafficScenario.P2V)
    return d, MtsOrchestrator(d), TestbedHarness(d)


def send_one(d, tenant):
    frame = Frame(
        src_mac=LG_MAC,
        dst_mac=d.ingress_dmac_for_tenant(tenant, 0),
        src_ip=d.plan.external_ip(0),
        dst_ip=d.plan.tenant_ip(tenant),
        flow_id=tenant,
    )
    d.external_ingress(0).receive(frame)
    d.sim.run(until=d.sim.now + 1.0)
    return frame


class TestAddTenant:
    def test_new_tenant_forwards_end_to_end(self):
        d, orch, h = deploy()
        tenant = orch.add_tenant()
        assert tenant == 4
        before = h.sink.total
        send_one(d, tenant)
        assert h.sink.total == before + 1

    def test_existing_tenants_unaffected(self):
        d, orch, h = deploy()
        orch.add_tenant()
        send_one(d, 0)
        send_one(d, 3)
        assert h.sink.per_flow[0] == 1 and h.sink.per_flow[3] == 1

    def test_least_loaded_placement(self):
        d, orch, _ = deploy()
        a = orch.add_tenant()   # both compartments hold 2 -> goes to 0
        b = orch.add_tenant()   # now 0 holds 3 -> goes to 1
        assert orch.compartment_of(a) == 0
        assert orch.compartment_of(b) == 1

    def test_explicit_compartment(self):
        d, orch, _ = deploy()
        tenant = orch.add_tenant(compartment=1)
        assert orch.compartment_of(tenant) == 1
        assert tenant in d.compartment_views[1].tenants

    def test_new_tenant_gets_spoof_checked_vfs_and_filters(self):
        d, orch, _ = deploy()
        tenant = orch.add_tenant()
        for p in range(2):
            assert d.tenant_vf[(tenant, p)].spoof_check
        names = {f.name for f in d.server.nic.filters._filters}
        assert f"allow-t{tenant}-gw-p0" in names

    def test_new_tenant_spoofing_blocked(self):
        d, orch, _ = deploy()
        tenant = orch.add_tenant()
        evil = Frame(src_mac=MacAddress.parse("02:66:66:66:66:66"),
                     dst_mac=d.gw_vf[(tenant, 0)].mac,
                     dst_ip=d.plan.tenant_ip(0))
        d.tenant_vf[(tenant, 0)].port.transmit(evil)
        d.sim.run(until=d.sim.now + 1.0)
        assert d.server.nic.total_drops().spoof == 1

    def test_new_tenant_static_arp(self):
        d, orch, _ = deploy()
        tenant = orch.add_tenant()
        gw_ip = d.plan.tenant_gw_ip(tenant)
        assert d.tenant_arp[tenant].is_static(gw_ip)

    def test_baseline_rejected(self):
        d = build_deployment(make_spec(level=SecurityLevel.BASELINE),
                             TrafficScenario.P2V)
        with pytest.raises(ConfigurationError):
            MtsOrchestrator(d)

    def test_invalid_compartment_rejected(self):
        _, orch, _ = deploy()
        with pytest.raises(ConfigurationError):
            orch.add_tenant(compartment=9)


class TestRemoveTenant:
    def test_removed_tenant_stops_forwarding(self):
        d, orch, h = deploy()
        orch.remove_tenant(1)
        send_one(d, 1)
        assert h.sink.per_flow.get(1, 0) == 0

    def test_resources_released(self):
        d, orch, _ = deploy()
        vfs_before = d.server.nic.total_vfs()
        cores_before = d.server.cores.available()
        orch.remove_tenant(1)
        assert d.server.nic.total_vfs() == vfs_before - 4  # 2 gw + 2 tenant
        assert d.server.cores.available() == cores_before + 2
        assert "tenant1" not in d.server.vms

    def test_other_tenants_keep_forwarding(self):
        d, orch, h = deploy()
        orch.remove_tenant(1)
        send_one(d, 0)
        assert h.sink.per_flow[0] == 1

    def test_add_after_remove_reuses_capacity(self):
        d, orch, _ = deploy()
        orch.remove_tenant(0)
        tenant = orch.add_tenant()
        assert tenant == 4
        assert orch.compartment_of(tenant) == 0  # compartment 0 is light

    def test_unknown_tenant_rejected(self):
        _, orch, _ = deploy()
        with pytest.raises(ConfigurationError):
            orch.remove_tenant(7)


class TestMigrateTenant:
    def test_migration_rehomes_and_forwards(self):
        d, orch, h = deploy()
        record = orch.migrate_tenant(0, target=1)
        d.sim.run(until=record.completed_at + 1e-6)
        assert orch.compartment_of(0) == 1
        before = h.sink.total
        send_one(d, 0)
        assert h.sink.total == before + 1
        # Flows now traverse compartment 1's bridge.
        assert 0 in d.compartment_views[1].tenants
        assert 0 not in d.compartment_views[0].tenants

    def test_downtime_is_measurable(self):
        d, orch, h = deploy()
        record = orch.migrate_tenant(0, target=1)
        assert record.downtime == pytest.approx(8 * CONTROL_OP_LATENCY)
        # During the window, the tenant is dark...
        send_one(d, 0)  # runs the sim past completion too
        # ...but the ingress dmac still points at the *old* compartment's
        # In/Out VF until the operator updates upstream routing; frames
        # arriving mid-migration at the old bridge have no rules:
        assert d.bridges[0].drops_no_match >= 0  # accounted, not crashed

    def test_frames_during_downtime_are_lost(self):
        d, orch, h = deploy()
        orch.migrate_tenant(0, target=1)
        # Inject immediately (still inside the downtime window).
        frame = Frame(src_mac=LG_MAC,
                      dst_mac=d.ingress_dmac_for_tenant(0, 0),
                      src_ip=d.plan.external_ip(0),
                      dst_ip=d.plan.tenant_ip(0), flow_id=0)
        d.external_ingress(0).receive(frame)
        d.sim.run(until=d.sim.now + 0.0005)  # < downtime
        assert h.sink.per_flow.get(0, 0) == 0

    def test_migration_to_same_compartment_rejected(self):
        _, orch, _ = deploy()
        with pytest.raises(ConfigurationError):
            orch.migrate_tenant(0, target=0)

    def test_other_tenants_unaffected_during_migration(self):
        d, orch, h = deploy()
        orch.migrate_tenant(0, target=1)
        send_one(d, 2)
        assert h.sink.per_flow[2] == 1

    def test_migration_record_log(self):
        d, orch, _ = deploy()
        record = orch.migrate_tenant(3, target=0)
        d.sim.run(until=record.completed_at + 1e-6)
        assert orch.migrations == [record]
        assert record.source == 1 and record.target == 0
