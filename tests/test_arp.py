"""ARP tables and the proxy-ARP responder."""

from repro.net import ArpTable, IPv4Address, MacAddress, ProxyArpResponder

GW_IP = IPv4Address.parse("10.0.0.1")
GW_MAC = MacAddress.parse("02:4d:54:00:00:01")
ROGUE_MAC = MacAddress.parse("02:66:66:66:66:66")


class TestArpTable:
    def test_static_entry_lookup(self):
        table = ArpTable()
        table.add_static(GW_IP, GW_MAC)
        assert table.lookup(GW_IP) == GW_MAC
        assert table.is_static(GW_IP)

    def test_static_entry_survives_poisoning_attempt(self):
        """The MTS defence: a gratuitous-ARP attack cannot displace the
        operator-injected gateway binding."""
        table = ArpTable()
        table.add_static(GW_IP, GW_MAC)
        assert not table.learn(GW_IP, ROGUE_MAC)
        assert table.lookup(GW_IP) == GW_MAC

    def test_dynamic_learning_and_update(self):
        table = ArpTable()
        ip = IPv4Address.parse("10.0.0.9")
        assert table.learn(ip, ROGUE_MAC)
        assert table.learn(ip, GW_MAC)
        assert table.lookup(ip) == GW_MAC
        assert not table.is_static(ip)

    def test_flush_dynamic_keeps_static(self):
        table = ArpTable()
        table.add_static(GW_IP, GW_MAC)
        table.learn(IPv4Address.parse("10.0.0.5"), ROGUE_MAC)
        assert table.flush_dynamic() == 1
        assert GW_IP in table
        assert len(table) == 1

    def test_lookup_miss_returns_none(self):
        assert ArpTable().lookup(GW_IP) is None


class TestProxyArp:
    def test_answers_installed_binding(self):
        responder = ProxyArpResponder()
        responder.install(GW_IP, GW_MAC)
        assert responder.respond(GW_IP) == GW_MAC
        assert responder.answered == 1

    def test_counts_misses(self):
        responder = ProxyArpResponder()
        assert responder.respond(GW_IP) is None
        assert responder.missed == 1

    def test_withdraw(self):
        responder = ProxyArpResponder()
        responder.install(GW_IP, GW_MAC)
        responder.withdraw(GW_IP)
        assert responder.respond(GW_IP) is None
        assert len(responder) == 0
