"""End-to-end proxy ARP: request from the tenant VF, reply from the
vswitch's responder, through the NIC both ways."""

import pytest

from repro.core import (
    ArpMode,
    SecurityLevel,
    TrafficScenario,
    build_deployment,
)
from repro.core.arp_responder import make_arp_request
from repro.net import EtherType, IPv4Address, MacAddress
from repro.traffic import TestbedHarness
from tests.conftest import make_spec


def proxy_deployment(level=SecurityLevel.LEVEL_1, vms=1):
    spec = make_spec(level=level, vms=vms, arp_mode=ArpMode.PROXY)
    d = build_deployment(spec, TrafficScenario.P2V)
    TestbedHarness(d)
    return d


def resolve(d, tenant, requested_ip, port=0):
    """Send a who-has from the tenant's VF; return captured replies."""
    replies = []
    vf = d.tenant_vf[(tenant, port)]
    vf.port.rx.connect(replies.append)
    request = make_arp_request(src_mac=vf.mac,
                               src_ip=d.plan.tenant_ip(tenant),
                               requested_ip=requested_ip)
    vf.port.transmit(request)
    d.sim.run(until=d.sim.now + 1.0)
    return replies


class TestProxyArpDataplane:
    def test_gateway_resolution_round_trip(self):
        d = proxy_deployment()
        replies = resolve(d, 0, d.plan.tenant_gw_ip(0))
        assert len(replies) == 1
        reply = replies[0]
        assert reply.ethertype is EtherType.ARP
        assert reply.src_mac == d.gw_vf[(0, 0)].mac
        assert reply.src_ip == d.plan.tenant_gw_ip(0)
        assert reply.dst_mac == d.tenant_vf[(0, 0)].mac

    def test_reply_carries_binding_the_tenant_can_learn(self):
        from repro.net.arp import ArpTable
        d = proxy_deployment()
        reply = resolve(d, 1, d.plan.tenant_gw_ip(1))[0]
        table = ArpTable()
        assert table.learn(reply.src_ip, reply.src_mac)
        assert table.lookup(d.plan.tenant_gw_ip(1)) == d.gw_vf[(1, 0)].mac

    def test_unknown_ip_gets_no_reply(self):
        d = proxy_deployment()
        replies = resolve(d, 0, IPv4Address.parse("203.0.113.7"))
        assert replies == []
        app_stats = d.controller.proxy_arp[0]
        assert app_stats.missed >= 1

    def test_every_tenant_can_resolve_its_gateway(self):
        d = proxy_deployment(level=SecurityLevel.LEVEL_2, vms=2)
        for tenant in range(4):
            replies = resolve(d, tenant, d.plan.tenant_gw_ip(tenant))
            assert len(replies) == 1, f"tenant {tenant}"

    def test_arp_punts_counted_on_the_bridge(self):
        d = proxy_deployment()
        resolve(d, 0, d.plan.tenant_gw_ip(0))
        assert d.bridges[0].punted >= 1

    def test_static_mode_blocks_arp_broadcast_at_the_nic(self):
        """The tighter posture: with static ARP configured, tenant
        broadcasts never even reach the vswitch."""
        spec = make_spec(level=SecurityLevel.LEVEL_1,
                         arp_mode=ArpMode.STATIC)
        d = build_deployment(spec, TrafficScenario.P2V)
        TestbedHarness(d)
        replies = resolve(d, 0, d.plan.tenant_gw_ip(0))
        assert replies == []
        assert d.server.nic.total_drops().filtered >= 1

    def test_spoofed_arp_request_dropped(self):
        """Spoof check applies to ARP too: a tenant cannot poison the
        responder's view of who asked."""
        d = proxy_deployment()
        vf = d.tenant_vf[(0, 0)]
        replies = []
        vf.port.rx.connect(replies.append)
        forged = make_arp_request(
            src_mac=MacAddress.parse("02:66:66:66:66:66"),
            src_ip=d.plan.tenant_ip(1),
            requested_ip=d.plan.tenant_gw_ip(1))
        vf.port.transmit(forged)
        d.sim.run(until=d.sim.now + 1.0)
        assert replies == []
        assert d.server.nic.total_drops().spoof >= 1

    def test_udp_traffic_unaffected_by_punt_rules(self):
        d = proxy_deployment()
        h = TestbedHarness(d)
        h.configure_tenant_flows(rate_per_flow_pps=1000)
        result = h.run(duration=0.01)
        assert result.delivered == result.sent

    def test_proxy_deployment_audits_clean(self):
        from repro.core.verification import audit_deployment
        report = audit_deployment(proxy_deployment())
        assert report.ok, report.render()
