"""DeploymentSpec validation and derived quantities."""

import pytest

from repro.core import DeploymentSpec, ResourceMode, SecurityLevel, TrafficScenario
from repro.errors import ValidationError
from tests.conftest import make_spec


class TestValidation:
    def test_level1_requires_single_vswitch_vm(self):
        with pytest.raises(ValidationError):
            make_spec(level=SecurityLevel.LEVEL_1, vms=2)

    def test_level2_requires_multiple_vms(self):
        with pytest.raises(ValidationError):
            make_spec(level=SecurityLevel.LEVEL_2, vms=1)

    def test_level2_cannot_exceed_tenants(self):
        with pytest.raises(ValidationError):
            make_spec(level=SecurityLevel.LEVEL_2, vms=5, tenants=4)

    def test_dpdk_requires_isolated_mode(self):
        """'only the isolated mode was used' for DPDK (section 4)."""
        with pytest.raises(ValidationError):
            make_spec(user_space=True, mode=ResourceMode.SHARED)

    def test_dpdk_isolated_accepted(self):
        spec = make_spec(user_space=True, mode=ResourceMode.ISOLATED)
        assert spec.label == "L1+L3"

    def test_baseline_needs_a_core(self):
        with pytest.raises(ValidationError):
            make_spec(level=SecurityLevel.BASELINE, baseline_cores=0)

    def test_nic_port_range(self):
        with pytest.raises(ValidationError):
            make_spec(nic_ports=3)

    def test_at_least_one_tenant(self):
        with pytest.raises(ValidationError):
            make_spec(tenants=0)


class TestScenarioValidation:
    def test_v2v_rejected_for_per_tenant_compartments(self):
        """The paper could not evaluate 4 vswitch VMs in v2v."""
        spec = make_spec(level=SecurityLevel.LEVEL_2, vms=4)
        with pytest.raises(ValidationError):
            spec.validate_scenario(TrafficScenario.V2V)

    def test_v2v_fine_with_two_tenants_per_compartment(self):
        spec = make_spec(level=SecurityLevel.LEVEL_2, vms=2)
        spec.validate_scenario(TrafficScenario.V2V)

    def test_v2v_fine_for_baseline(self):
        spec = make_spec(level=SecurityLevel.BASELINE)
        spec.validate_scenario(TrafficScenario.V2V)

    def test_p2p_always_fine(self):
        spec = make_spec(level=SecurityLevel.LEVEL_2, vms=4)
        spec.validate_scenario(TrafficScenario.P2P)


class TestTenantAssignment:
    def test_contiguous_blocks(self):
        spec = make_spec(level=SecurityLevel.LEVEL_2, vms=2)
        assert spec.tenants_of_compartment(0) == [0, 1]
        assert spec.tenants_of_compartment(1) == [2, 3]

    def test_per_tenant_compartments(self):
        spec = make_spec(level=SecurityLevel.LEVEL_2, vms=4)
        for k in range(4):
            assert spec.tenants_of_compartment(k) == [k]

    def test_uneven_split(self):
        spec = make_spec(level=SecurityLevel.LEVEL_2, vms=3, tenants=4)
        groups = [spec.tenants_of_compartment(k) for k in range(3)]
        assert sorted(sum(groups, [])) == [0, 1, 2, 3]
        assert max(len(g) for g in groups) - min(len(g) for g in groups) <= 1

    def test_baseline_has_all_tenants_together(self):
        spec = make_spec(level=SecurityLevel.BASELINE)
        assert spec.tenants_of_compartment(0) == [0, 1, 2, 3]

    def test_compartment_of_tenant_inverse(self):
        spec = make_spec(level=SecurityLevel.LEVEL_2, vms=2)
        for t in range(4):
            k = spec.compartment_of_tenant(t)
            assert t in spec.tenants_of_compartment(k)

    def test_unknown_tenant_rejected(self):
        spec = make_spec()
        with pytest.raises(ValidationError):
            spec.compartment_of_tenant(99)


class TestLabels:
    @pytest.mark.parametrize("kwargs,expected", [
        (dict(level=SecurityLevel.BASELINE), "Baseline(1)"),
        (dict(level=SecurityLevel.BASELINE, baseline_cores=2,
              user_space=True, mode=ResourceMode.ISOLATED), "Baseline(2)+L3"),
        (dict(level=SecurityLevel.LEVEL_1), "L1"),
        (dict(level=SecurityLevel.LEVEL_2, vms=2), "L2(2)"),
        (dict(level=SecurityLevel.LEVEL_2, vms=4, user_space=True,
              mode=ResourceMode.ISOLATED), "L2(4)+L3"),
    ])
    def test_labels(self, kwargs, expected):
        assert make_spec(**kwargs).label == expected

    def test_num_compartments(self):
        assert make_spec(level=SecurityLevel.BASELINE).num_compartments == 0
        assert make_spec(level=SecurityLevel.LEVEL_2, vms=2).num_compartments == 2
