"""Cross-validation: the analytic capacity model against the DES.

The two performance views share constants but not code paths; these
tests keep them honest against each other:

- below capacity, the DES delivers exactly the offered load;
- above capacity, the DES's delivered rate converges on the capacity
  model's prediction;
- the DES's unloaded median latency agrees with the analytic per-hop
  estimate within jitter tolerance.
"""

import pytest

from repro.core import ResourceMode, SecurityLevel, TrafficScenario, build_deployment
from repro.perfmodel.latency import estimate_oneway_latency
from repro.perfmodel.paths import throughput
from repro.traffic import TestbedHarness
from tests.conftest import make_spec


class TestThroughputAgreement:
    @pytest.mark.parametrize("level,vms", [
        (SecurityLevel.LEVEL_1, 1),
        (SecurityLevel.BASELINE, 1),
    ])
    def test_no_loss_below_predicted_capacity(self, level, vms):
        spec = make_spec(level=level, vms=vms)
        scenario = TrafficScenario.P2V
        d = build_deployment(spec, scenario)
        capacity = throughput(d, scenario).aggregate_pps
        d2 = build_deployment(spec, scenario)
        h = TestbedHarness(d2)
        h.configure_tenant_flows(rate_per_flow_pps=0.5 * capacity / 4)
        result = h.run(duration=0.05)
        assert result.loss_fraction < 0.01

    def test_des_saturates_at_predicted_capacity(self):
        """Offer 2x the predicted capacity: delivery lands within 20%
        of the prediction (queueing noise allowed)."""
        spec = make_spec(level=SecurityLevel.LEVEL_1)
        scenario = TrafficScenario.P2V
        d = build_deployment(spec, scenario)
        predicted = throughput(d, scenario).aggregate_pps

        d2 = build_deployment(spec, scenario)
        h = TestbedHarness(d2)
        h.configure_tenant_flows(rate_per_flow_pps=2 * predicted / 4)
        result = h.run(duration=0.08, warmup=0.03)
        assert result.delivered_pps == pytest.approx(predicted, rel=0.2)
        assert result.loss_fraction > 0.2  # overload must actually drop

    def test_baseline_des_saturation(self):
        spec = make_spec(level=SecurityLevel.BASELINE)
        scenario = TrafficScenario.P2P
        d = build_deployment(spec, scenario)
        predicted = throughput(d, scenario).aggregate_pps
        d2 = build_deployment(spec, scenario)
        h = TestbedHarness(d2)
        h.configure_tenant_flows(rate_per_flow_pps=2 * predicted / 4)
        result = h.run(duration=0.04, warmup=0.015)
        assert result.delivered_pps == pytest.approx(predicted, rel=0.2)


class TestLatencyAgreement:
    @pytest.mark.parametrize("level,vms,us,mode,scenario", [
        (SecurityLevel.BASELINE, 1, False, ResourceMode.SHARED,
         TrafficScenario.P2P),
        (SecurityLevel.BASELINE, 1, False, ResourceMode.SHARED,
         TrafficScenario.P2V),
        (SecurityLevel.LEVEL_1, 1, False, ResourceMode.ISOLATED,
         TrafficScenario.P2V),
        (SecurityLevel.LEVEL_2, 2, False, ResourceMode.ISOLATED,
         TrafficScenario.V2V),
        (SecurityLevel.LEVEL_1, 1, True, ResourceMode.ISOLATED,
         TrafficScenario.P2V),
    ])
    def test_analytic_matches_des_mean(self, level, vms, us, mode, scenario):
        spec = make_spec(level=level, vms=vms, user_space=us, mode=mode)
        d = build_deployment(spec, scenario)
        analytic = estimate_oneway_latency(d, scenario)

        d2 = build_deployment(spec, scenario, seed=3)
        h = TestbedHarness(d2)
        h.configure_tenant_flows(rate_per_flow_pps=2500)
        result = h.run(duration=0.1, warmup=0.02)
        measured = sum(result.latencies) / len(result.latencies)
        assert measured == pytest.approx(analytic, rel=0.25)
