"""Cross-validation: the analytic capacity model against the DES.

The two performance views share constants but not code paths; these
tests keep them honest against each other:

- below capacity, the DES delivers exactly the offered load;
- above capacity, the DES's delivered rate converges on the capacity
  model's prediction;
- the DES's unloaded median latency agrees with the analytic per-hop
  estimate within jitter tolerance.
"""

import pytest

from repro.core import ResourceMode, SecurityLevel, TrafficScenario, build_deployment
from repro.perfmodel.latency import estimate_oneway_latency
from repro.perfmodel.paths import throughput
from repro.traffic import TestbedHarness
from tests.conftest import make_spec


class TestThroughputAgreement:
    @pytest.mark.parametrize("level,vms", [
        (SecurityLevel.LEVEL_1, 1),
        (SecurityLevel.BASELINE, 1),
    ])
    def test_no_loss_below_predicted_capacity(self, level, vms):
        spec = make_spec(level=level, vms=vms)
        scenario = TrafficScenario.P2V
        d = build_deployment(spec, scenario)
        capacity = throughput(d, scenario).aggregate_pps
        d2 = build_deployment(spec, scenario)
        h = TestbedHarness(d2)
        h.configure_tenant_flows(rate_per_flow_pps=0.5 * capacity / 4)
        result = h.run(duration=0.05)
        assert result.loss_fraction < 0.01

    def test_des_saturates_at_predicted_capacity(self):
        """Offer 2x the predicted capacity: delivery lands within 20%
        of the prediction (queueing noise allowed)."""
        spec = make_spec(level=SecurityLevel.LEVEL_1)
        scenario = TrafficScenario.P2V
        d = build_deployment(spec, scenario)
        predicted = throughput(d, scenario).aggregate_pps

        d2 = build_deployment(spec, scenario)
        h = TestbedHarness(d2)
        h.configure_tenant_flows(rate_per_flow_pps=2 * predicted / 4)
        result = h.run(duration=0.08, warmup=0.03)
        assert result.delivered_pps == pytest.approx(predicted, rel=0.2)
        assert result.loss_fraction > 0.2  # overload must actually drop

    def test_baseline_des_saturation(self):
        spec = make_spec(level=SecurityLevel.BASELINE)
        scenario = TrafficScenario.P2P
        d = build_deployment(spec, scenario)
        predicted = throughput(d, scenario).aggregate_pps
        d2 = build_deployment(spec, scenario)
        h = TestbedHarness(d2)
        h.configure_tenant_flows(rate_per_flow_pps=2 * predicted / 4)
        result = h.run(duration=0.04, warmup=0.015)
        assert result.delivered_pps == pytest.approx(predicted, rel=0.2)


class TestLatencyAgreement:
    @pytest.mark.parametrize("level,vms,us,mode,scenario", [
        (SecurityLevel.BASELINE, 1, False, ResourceMode.SHARED,
         TrafficScenario.P2P),
        (SecurityLevel.BASELINE, 1, False, ResourceMode.SHARED,
         TrafficScenario.P2V),
        (SecurityLevel.LEVEL_1, 1, False, ResourceMode.ISOLATED,
         TrafficScenario.P2V),
        (SecurityLevel.LEVEL_2, 2, False, ResourceMode.ISOLATED,
         TrafficScenario.V2V),
        (SecurityLevel.LEVEL_1, 1, True, ResourceMode.ISOLATED,
         TrafficScenario.P2V),
    ])
    def test_analytic_matches_des_mean(self, level, vms, us, mode, scenario):
        spec = make_spec(level=level, vms=vms, user_space=us, mode=mode)
        d = build_deployment(spec, scenario)
        analytic = estimate_oneway_latency(d, scenario)

        d2 = build_deployment(spec, scenario, seed=3)
        h = TestbedHarness(d2)
        h.configure_tenant_flows(rate_per_flow_pps=2500)
        result = h.run(duration=0.1, warmup=0.02)
        measured = sum(result.latencies) / len(result.latencies)
        assert measured == pytest.approx(analytic, rel=0.25)


class TestHybridFabricAgreement:
    """The hybrid fabric engine against its own pure-DES oracle.

    Asymmetric, weight-skewed flows share one server's fabric uplink:
    a heavy background stream loads the link, then two study flows
    with 3:1 offered rates ride what remains.  The fluid solver hands
    the foreground DES residual capacities; the pure-DES oracle runs
    every stream as packets on the full link.  Their study-flow
    aggregates must agree within the pinned 5% bound.
    """

    def _deployment(self):
        from repro.core import DeploymentSpec
        from repro.fabric.hybrid import FabricDeployment, StudyFlow
        from repro.fabric.placement import Placement, TenantReq
        from repro.fabric.topology import FabricTopology
        from repro.units import GBPS

        # 0.5 Gbps access links: at 512B frames (+20B wire overhead)
        # one uplink carries ~117k pps, so the flows below load it to
        # ~90% -- the link, not the CPU, is the shared bottleneck.
        topo = FabricTopology(num_servers=4, servers_per_rack=16,
                              server_link_bps=0.5 * GBPS)
        link_pps = 0.5 * GBPS / ((512 + 20) * 8)
        reqs = [
            # background: t0 -> t4 consumes ~40% of uplink.s0
            TenantReq(0, demand_pps=0.40 * link_pps, frame_bytes=512,
                      group=0, peers=(4,)),
            # study endpoints (zero fluid demand of their own)
            TenantReq(1, frame_bytes=512, group=0),
            TenantReq(2, frame_bytes=512, group=0),
            TenantReq(3, frame_bytes=512, group=1),
            TenantReq(4, frame_bytes=512, group=1),
            TenantReq(5, frame_bytes=512, group=2),
        ]
        placement = Placement({0: (0, 0), 1: (0, 0), 2: (0, 0),
                               3: (1, 0), 4: (1, 0), 5: (2, 0)})
        # 3:1 weighted study flows, both leaving server 0
        flows = [
            StudyFlow(src=1, dst=3, rate_pps=0.375 * link_pps,
                      frame_bytes=512),
            StudyFlow(src=2, dst=5, rate_pps=0.125 * link_pps,
                      frame_bytes=512),
        ]
        spec = DeploymentSpec(level=SecurityLevel.LEVEL_2, num_tenants=4,
                              num_vswitch_vms=2, nic_ports=1)
        return FabricDeployment(spec, topo, reqs, flows,
                                placement=placement)

    def test_shared_link_is_loaded(self):
        deployment = self._deployment()
        fluid = deployment.solve_fluid()
        assert fluid.utilization["uplink.s0"] > 0.8

    def test_hybrid_within_5pct_of_pure_des(self):
        deployment = self._deployment()
        hybrid = deployment.run_hybrid(duration=0.1, warmup=0.025)
        oracle = deployment.run_pure_des(duration=0.1, warmup=0.025)
        assert oracle.aggregate_delivered_pps > 0
        rel = abs(hybrid.aggregate_delivered_pps
                  - oracle.aggregate_delivered_pps) \
            / oracle.aggregate_delivered_pps
        assert rel <= 0.05
        # the asymmetry must survive both engines: the heavy study
        # flow delivers ~3x the light one
        for result in (hybrid, oracle):
            heavy = result.delivered_pps["fg.t1-t3"]
            light = result.delivered_pps["fg.t2-t5"]
            assert heavy == pytest.approx(3 * light, rel=0.1)
