"""Section 3.2's VF budgeting formulas and the paper's examples."""

import pytest

from repro.core import SecurityLevel, vf_budget
from repro.core.vf_allocation import max_tenants, vf_budget_for_spec
from repro.errors import ValidationError
from tests.conftest import make_spec


class TestPaperExamples:
    """The exact numbers quoted in section 3.2."""

    def test_level1_one_tenant_is_3(self):
        assert vf_budget(SecurityLevel.LEVEL_1, 1, nic_ports=1).total == 3

    def test_level1_four_tenants_is_9(self):
        assert vf_budget(SecurityLevel.LEVEL_1, 4, nic_ports=1).total == 9

    def test_level2_two_tenants_is_6(self):
        assert vf_budget(SecurityLevel.LEVEL_2, 2, num_vswitch_vms=2,
                         nic_ports=1).total == 6

    def test_level2_four_tenants_is_12(self):
        assert vf_budget(SecurityLevel.LEVEL_2, 4, num_vswitch_vms=4,
                         nic_ports=1).total == 12


class TestGeneralized:
    def test_two_ports_double_the_budget(self):
        one = vf_budget(SecurityLevel.LEVEL_1, 4, nic_ports=1)
        two = vf_budget(SecurityLevel.LEVEL_1, 4, nic_ports=2)
        assert two.total == 2 * one.total

    def test_baseline_needs_no_vfs(self):
        assert vf_budget(SecurityLevel.BASELINE, 4).total == 0

    def test_level2_fewer_vms_than_tenants(self):
        budget = vf_budget(SecurityLevel.LEVEL_2, 4, num_vswitch_vms=2,
                           nic_ports=1)
        assert budget.in_out == 2
        assert budget.gateway == 4
        assert budget.tenant == 4

    def test_fits_against_64_limit(self):
        assert vf_budget(SecurityLevel.LEVEL_1, 20, nic_ports=1).fits()
        assert not vf_budget(SecurityLevel.LEVEL_1, 40, nic_ports=1).fits()

    def test_budget_matches_built_deployment(self):
        """The formulas must agree with what the builder actually
        creates on the NIC."""
        from repro.core import TrafficScenario, build_deployment
        spec = make_spec(level=SecurityLevel.LEVEL_2, vms=2, nic_ports=2)
        deployment = build_deployment(spec, TrafficScenario.P2V)
        assert deployment.server.nic.total_vfs() == vf_budget_for_spec(spec).total

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            vf_budget(SecurityLevel.LEVEL_1, 0)
        with pytest.raises(ValidationError):
            vf_budget(SecurityLevel.LEVEL_1, 1, nic_ports=0)


class TestScalingCeiling:
    def test_level1_max_tenants_at_64_vfs(self):
        # 1 + 2T <= 64  ->  T = 31
        assert max_tenants(SecurityLevel.LEVEL_1, nic_ports=1) == 31

    def test_per_tenant_level2_max(self):
        # 3T <= 64 -> T = 21
        assert max_tenants(SecurityLevel.LEVEL_2, nic_ports=1,
                           per_tenant_vswitch=True) == 21

    def test_smaller_nic_limit(self):
        assert max_tenants(SecurityLevel.LEVEL_1, nic_ports=1,
                           max_vfs_per_pf=8) == 3
