"""Chaos layer: fault plans, injection, self-healing, invariants."""

import json
import random

import pytest

from repro import obs
from repro.core import TrafficScenario, build_deployment
from repro.core.levels import ResourceMode, SecurityLevel
from repro.core.orchestrator import crash_bridge, restore_bridge
from repro.core.spec import DeploymentSpec
from repro.errors import ConfigurationError, ValidationError
from repro.faults import FaultKind, FaultPlan, FaultSpec, RestartPolicySpec, scripted_crash
from repro.faults.session import ChaosSession
from repro.scenario import (
    Engine,
    ProcessPoolBackend,
    ResultStore,
    ScenarioSpec,
    SequentialBackend,
    run_scenario,
)
from repro.traffic import TestbedHarness
from tests.conftest import make_spec


def chaos_spec(level=SecurityLevel.LEVEL_2, vms=2, faults=None, seed=0,
               duration=0.09, mode=ResourceMode.SHARED, **params):
    return ScenarioSpec(
        workload="ext.chaos",
        deployment=DeploymentSpec(level=level, num_vswitch_vms=vms,
                                  resource_mode=mode),
        traffic=TrafficScenario.P2V,
        duration=duration,
        seed=seed,
        params=params,
        faults=faults,
    )


def events_jsonl(result) -> str:
    return "\n".join(json.dumps(e, sort_keys=True, separators=(",", ":"))
                     for e in result.events)


class TestFaultPlanValidation:
    def test_exactly_one_schedule_style(self):
        with pytest.raises(ValidationError):
            FaultSpec(kind=FaultKind.VSWITCH_CRASH)  # neither at nor mtbf
        with pytest.raises(ValidationError):
            FaultSpec(kind=FaultKind.VSWITCH_CRASH, at=0.1, mtbf=0.1)

    def test_burst_needs_explicit_clearing(self):
        # The watchdog can't see degradation, so it can't self-heal.
        with pytest.raises(ValidationError):
            FaultSpec(kind=FaultKind.PACKET_LOSS, target="link:ingress",
                      at=0.01)
        FaultSpec(kind=FaultKind.PACKET_LOSS, target="link:ingress",
                  at=0.01, duration=0.02)  # fine

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValidationError):
            FaultSpec.from_dict({"kind": "vswitch-crash", "at": 0.1,
                                 "frobnicate": 1})
        with pytest.raises(ValidationError):
            FaultPlan.from_dict({"faults": [], "frobnicate": 1})
        with pytest.raises(ValidationError):
            RestartPolicySpec.from_dict({"max_restarts": 2, "nope": 1})

    def test_json_round_trip(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(kind=FaultKind.VSWITCH_CRASH,
                          target="compartment:1", at=0.02),
                FaultSpec(kind=FaultKind.PACKET_LOSS, target="link:egress",
                          mtbf=0.05, mttr=0.01, severity=0.5),
            ),
            heartbeat=0.002,
            policy=RestartPolicySpec(max_restarts=2),
            warm_standby=True,
        )
        clone = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert clone == plan

    def test_faults_key_the_content_hash(self):
        bare = chaos_spec()
        assert "faults" not in bare.to_dict()  # pre-chaos hashes intact
        crashed = chaos_spec(faults=scripted_crash(at=0.03))
        other = chaos_spec(faults=scripted_crash(at=0.04))
        assert bare.content_hash() != crashed.content_hash()
        assert crashed.content_hash() != other.content_hash()
        clone = ScenarioSpec.from_dict(
            json.loads(json.dumps(crashed.to_dict())))
        assert clone == crashed
        assert clone.content_hash() == crashed.content_hash()


class TestIdempotentCrashRestore:
    def _bridge(self):
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_2, vms=2),
                             TrafficScenario.P2V)
        return d, d.bridges[0]

    def _noops(self, op):
        return obs.REGISTRY.snapshot().get(
            f'fault_noop_operations_total{{op="{op}"}}', 0.0)

    def test_double_crash_is_counted_noop(self):
        _, bridge = self._bridge()
        saved = crash_bridge(bridge)
        before = self._noops("crash")
        again = crash_bridge(bridge)
        assert again is saved
        assert self._noops("crash") == before + 1
        restore_bridge(bridge)

    def test_restore_of_healthy_bridge_is_counted_noop(self):
        _, bridge = self._bridge()
        before = self._noops("restore")
        restore_bridge(bridge)
        assert self._noops("restore") == before + 1

    @staticmethod
    def _tenant_frame(d, tenant=0):
        from repro.net import Frame, MacAddress
        return Frame(src_mac=MacAddress.parse("02:1b:00:00:00:01"),
                     dst_mac=d.ingress_dmac_for_tenant(tenant, 0),
                     src_ip=d.plan.external_ip(0),
                     dst_ip=d.plan.tenant_ip(tenant),
                     flow_id=tenant, size_bytes=64)

    def test_crash_restore_cycle_still_works(self):
        d, bridge = self._bridge()
        h = TestbedHarness(d)
        crash_bridge(bridge)
        restore_bridge(bridge)
        d.external_ingress(0).receive(self._tenant_frame(d))
        d.sim.run(until=d.sim.now + 1.0)
        assert h.sink.per_flow[0] == 1

    def test_blackholed_frames_are_counted(self):
        d, bridge = self._bridge()
        TestbedHarness(d)
        crash_bridge(bridge)
        d.external_ingress(0).receive(self._tenant_frame(d))
        d.sim.run(until=d.sim.now + 1.0)
        assert bridge.fault_blackhole_drops >= 1

    def test_non_bridge_rejected(self):
        with pytest.raises(ConfigurationError):
            crash_bridge(None)
        with pytest.raises(ConfigurationError):
            restore_bridge(object())

    def test_unknown_compartment_target_rejected(self):
        spec = chaos_spec(faults=FaultPlan(faults=(
            FaultSpec(kind=FaultKind.VSWITCH_CRASH, target="compartment:9",
                      at=0.01),)))
        with pytest.raises(ConfigurationError):
            run_scenario(spec)

    def test_bad_target_scheme_rejected(self):
        spec = chaos_spec(faults=FaultPlan(faults=(
            FaultSpec(kind=FaultKind.VSWITCH_CRASH, target="teapot:3",
                      at=0.01),)))
        with pytest.raises(ConfigurationError):
            run_scenario(spec)


class TestBlastRadius:
    """The paper's availability claim, measured through the chaos layer."""

    def test_baseline_crash_blacks_out_every_tenant(self):
        result = run_scenario(chaos_spec(level=SecurityLevel.BASELINE,
                                         vms=1))
        assert result.values["blast_radius"] == 1.0
        assert result.values["violations"] == 0

    def test_level2_crash_confined_to_one_compartment(self):
        result = run_scenario(chaos_spec(level=SecurityLevel.LEVEL_2,
                                         vms=2))
        assert result.values["tenants_down"] == 2.0  # tenants 0 and 1
        assert result.values["outage:t2"] > 0.99
        assert result.values["outage:t3"] > 0.99
        assert result.values["violations"] == 0

    def test_supervised_recovery_decomposes_mttr(self):
        result = run_scenario(chaos_spec())
        assert result.values["recovered"] == 1.0
        policy = RestartPolicySpec()
        floor = policy.restart_latency  # + backoff + re-sync on top
        assert result.values["mttr"] > floor
        recover = [e for e in result.events if e["phase"] == "recover"]
        assert recover and recover[0]["detail"]["downtime"] == \
            pytest.approx(result.values["mttr"])

    def test_warm_standby_is_a_level2_capability(self):
        plan = scripted_crash(at=0.03, warm_standby=True)
        l2 = run_scenario(chaos_spec(faults=plan))
        base = run_scenario(chaos_spec(level=SecurityLevel.BASELINE, vms=1,
                                       faults=plan))
        l2_recover = [e for e in l2.events if e["phase"] == "recover"]
        base_recover = [e for e in base.events if e["phase"] == "recover"]
        assert l2_recover and all(e["detail"].get("mode_is_failover")
                                  for e in l2_recover)
        assert base_recover and all(e["detail"].get("mode_is_restart")
                                    for e in base_recover)
        # failover skips backoff + re-sync, so Level-2 heals faster
        assert l2.values["mttr"] < base.values["mttr"]


class TestDeterminism:
    def test_backends_produce_byte_identical_event_logs(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind=FaultKind.VSWITCH_CRASH, target="compartment:0",
                      mtbf=0.03),
            FaultSpec(kind=FaultKind.PACKET_LOSS, target="link:ingress",
                      mtbf=0.04, mttr=0.01, severity=0.5),
        ))
        specs = [chaos_spec(faults=plan, seed=s) for s in (3, 4)]
        seq = SequentialBackend().run(specs)
        pool = ProcessPoolBackend(max_workers=2).run(specs)
        assert [events_jsonl(r) for r in seq] == \
            [events_jsonl(r) for r in pool]
        assert [r.values for r in seq] == [r.values for r in pool]
        assert any(r.events for r in seq)

    def test_result_cache_replays_the_event_log(self, tmp_path):
        spec = chaos_spec(faults=scripted_crash(at=0.02), seed=11)
        engine = Engine(store=ResultStore(tmp_path))
        first = engine.run_one(spec)
        second = engine.run_one(spec)
        assert not first.cached and second.cached
        assert events_jsonl(first) == events_jsonl(second)
        assert first.values == second.values

    def test_same_seed_same_events_different_seed_different_times(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind=FaultKind.VSWITCH_CRASH, target="compartment:0",
                      mtbf=0.03),))
        a = run_scenario(chaos_spec(faults=plan, seed=5))
        b = run_scenario(chaos_spec(faults=plan, seed=5))
        c = run_scenario(chaos_spec(faults=plan, seed=6))
        assert events_jsonl(a) == events_jsonl(b)
        assert events_jsonl(a) != events_jsonl(c)


def random_plan(rng: random.Random, compartments: int) -> FaultPlan:
    faults = []
    for _ in range(rng.randint(1, 4)):
        kind = rng.choice((FaultKind.VSWITCH_CRASH, FaultKind.LINK_FLAP,
                           FaultKind.PACKET_LOSS))
        if kind is FaultKind.VSWITCH_CRASH:
            target = f"compartment:{rng.randrange(compartments)}"
        else:
            target = rng.choice(("link:ingress", "link:egress"))
        if kind is FaultKind.PACKET_LOSS:
            faults.append(FaultSpec(
                kind=kind, target=target, mtbf=rng.uniform(0.02, 0.06),
                mttr=rng.uniform(0.005, 0.02),
                severity=rng.uniform(0.2, 1.0)))
        elif rng.random() < 0.5:
            faults.append(FaultSpec(
                kind=kind, target=target, at=rng.uniform(0.005, 0.06),
                duration=rng.uniform(0.005, 0.03)))
        else:
            faults.append(FaultSpec(
                kind=kind, target=target, mtbf=rng.uniform(0.02, 0.08)))
    return FaultPlan(faults=tuple(faults),
                     heartbeat=rng.choice((0.002, 0.005)))


class TestChaosFuzz:
    """Seeded randomized campaigns; the session's violation counter is
    the oracle: packet conservation (offered == delivered + fault drops
    + component drops), no frame forwarded by a crashed bridge, and the
    supervisor never exceeding its restart budget."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_invariants_hold_under_random_schedules(self, seed):
        rng = random.Random(seed)
        vms = rng.choice((1, 2))
        level = SecurityLevel.LEVEL_2 if vms > 1 else SecurityLevel.BASELINE
        plan = random_plan(rng, compartments=vms)
        result = run_scenario(chaos_spec(level=level, vms=vms, faults=plan,
                                         seed=seed))
        v = result.values
        assert v["violations"] == 0, result.events
        assert v["unaccounted"] == 0
        assert v["offered"] == (v["delivered"] + v["fault_drops"]
                                + v["component_drops"])
        # every phase transition is well-formed and time-ordered per target
        last_t = {}
        for event in result.events:
            key = event["target"]
            assert event["t"] >= last_t.get(key, 0.0)
            last_t[key] = event["t"]


class TestSupervisorPolicies:
    def _session_for(self, plan, duration=0.1,
                     level=SecurityLevel.LEVEL_2, vms=2):
        d = build_deployment(make_spec(level=level, vms=vms),
                             TrafficScenario.P2V)
        h = TestbedHarness(d)
        h.configure_tenant_flows(rate_per_flow_pps=2_000)
        session = ChaosSession(d, h, plan, seed=0)
        session.arm(duration)
        h.run(duration=duration, warmup=0.0)
        return session, session.finish()

    def test_restart_budget_gives_up(self):
        # Budget of zero: detection must lead straight to give-up.
        plan = FaultPlan(
            faults=(FaultSpec(kind=FaultKind.VSWITCH_CRASH,
                              target="compartment:0", at=0.02),),
            policy=RestartPolicySpec(max_restarts=0))
        session, summary = self._session_for(plan)
        assert summary["giveups"] == 1
        assert summary["recovered"] == 0
        assert summary["restart_attempts"] == 0
        assert [e.phase for e in session.log.events].count("give-up") == 1

    def test_circuit_breaker_stops_a_crash_loop(self):
        crashes = tuple(
            FaultSpec(kind=FaultKind.VSWITCH_CRASH, target="compartment:0",
                      at=0.01 + 0.015 * i) for i in range(5))
        plan = FaultPlan(
            faults=crashes,
            policy=RestartPolicySpec(circuit_threshold=2,
                                     circuit_window=10.0,
                                     backoff_base=0.001,
                                     restart_latency=0.002))
        session, summary = self._session_for(plan, duration=0.15)
        phases = [e.phase for e in session.log.events]
        assert phases.count("circuit-open") == 1
        # once open, no further restart attempts are spent
        state = session.states["compartment:0"]
        assert state.circuit_open
        assert summary["restart_attempts"] < len(crashes)

    def test_controller_partition_defers_resync(self):
        crash_at = 0.02
        partition_until = 0.08
        plan = FaultPlan(faults=(
            FaultSpec(kind=FaultKind.CONTROLLER_PARTITION,
                      target="controller", at=0.0,
                      duration=partition_until),
            FaultSpec(kind=FaultKind.VSWITCH_CRASH, target="compartment:0",
                      at=crash_at),
        ))
        session, summary = self._session_for(plan, duration=0.15)
        recovers = session.log.by_phase("recover")
        assert len(recovers) == 1
        # re-sync could not start before the partition healed
        assert recovers[0].t > partition_until
        assert summary["violations"] == 0

    def test_vf_reset_heals_and_conserves(self):
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_2, vms=2),
                             TrafficScenario.P2V)
        vf_name = d.tenant_vf[(0, 0)].name
        plan = FaultPlan(faults=(
            FaultSpec(kind=FaultKind.VF_RESET, target=f"vf:{vf_name}",
                      at=0.02, duration=0.03),))
        h = TestbedHarness(d)
        h.configure_tenant_flows(rate_per_flow_pps=2_000)
        session = ChaosSession(d, h, plan, seed=0)
        session.arm(0.1)
        h.run(duration=0.1, warmup=0.0)
        summary = session.finish()
        assert summary["repaired"] == 1
        assert summary["violations"] == 0
        assert session.fault_drops.get(f"vf:{vf_name}", 0) > 0


class TestHarnessAutoAttach:
    def test_fault_plan_reaches_any_harness_workload(self):
        """A plan on a non-chaos-aware workload (fig5.latency) attaches
        through the harness hook and reports events."""
        spec = ScenarioSpec(
            workload="fig5.latency",
            deployment=DeploymentSpec(level=SecurityLevel.LEVEL_1),
            traffic=TrafficScenario.P2V, duration=0.04, warmup=0.008,
            seed=0,
            params={"frame_bytes": 64, "aggregate_pps": 10_000.0},
            faults=scripted_crash(at=0.01, duration=0.02))
        result = run_scenario(spec)
        phases = [e["phase"] for e in result.events]
        assert "inject" in phases and "clear" in phases
        import dataclasses
        no_faults = run_scenario(dataclasses.replace(spec, faults=None))
        assert no_faults.events == []
        # the crash actually cost delivered packets
        assert result.values["loss_fraction"] > \
            no_faults.values["loss_fraction"]
