"""Unified telemetry: metrics registry, packet tracer, and the e2e
journey reconstruction over the Fig. 3 mediation chain."""

import math

import pytest

from repro import obs
from repro.core import SecurityLevel, TrafficScenario, build_deployment
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry
from repro.obs.trace import NullTracer, PacketTracer, journeys_from_jsonl
from repro.traffic import TestbedHarness
from tests.conftest import make_spec


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test leaves the module-level tracer/registry pristine."""
    yield
    obs.disable_tracing()
    obs.REGISTRY.reset()


class _FakeFrame:
    """The minimal frame surface the tracer hooks touch."""

    def __init__(self, frame_id=1, tenant_id=0, size=64):
        self.frame_id = frame_id
        self.tenant_id = tenant_id
        self._size = size

    def wire_size(self):
        return self._size


class TestMetricsRegistry:
    def test_counter_records_sim_time_and_rate(self):
        t = [0.0]
        registry = MetricsRegistry(clock=lambda: t[0])
        c = registry.counter("frames_total", "frames seen")
        c.inc()
        t[0] = 2.0
        c.inc(3)
        child = c.labels() if c.label_names else c._only()
        assert child.value == 4
        assert child.first_t == 0.0 and child.last_t == 2.0
        assert child.rate() == pytest.approx(4 / 2.0)

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("x").inc(-1)

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        g = registry.gauge("depth")
        g.set(5)
        g.inc(2)
        g.dec()
        assert registry.snapshot()["depth"] == 6

    def test_labels_create_independent_children(self):
        registry = MetricsRegistry()
        c = registry.counter("drops_total", labels=("reason",))
        c.labels(reason="spoof").inc()
        c.labels(reason="spoof").inc()
        c.labels(reason="no_match").inc()
        snap = registry.snapshot()
        assert snap['drops_total{reason="spoof"}'] == 2
        assert snap['drops_total{reason="no_match"}'] == 1

    def test_label_schema_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x", labels=("a",))
        with pytest.raises(ValueError):
            registry.counter("x", labels=("b",))
        with pytest.raises(ValueError):
            registry.gauge("x", labels=("a",))
        with pytest.raises(ValueError):
            registry.counter("x", labels=("a",)).labels(wrong="v")

    def test_histogram_buckets_and_summary(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 2.0, 5.0, 50.0):
            h.observe(v)
        child = h._only()
        cum = child.cumulative_buckets()
        assert cum == [(1.0, 1), (10.0, 3), (math.inf, 4)]
        stats = child.summary()
        assert stats.count == 4
        assert stats.minimum == 0.5 and stats.maximum == 50.0

    def test_histogram_empty_summary_is_empty_safe(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat")
        stats = h._only().summary()
        assert stats.is_empty
        assert math.isnan(stats.median)

    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("frames_total", "frames").inc(7)
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        text = registry.prometheus_text()
        assert "# TYPE frames_total counter" in text
        assert "frames_total 7.0" in text
        assert '# TYPE lat histogram' in text
        assert 'lat_bucket{le="1.0"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text

    def test_collectors_run_at_snapshot(self):
        registry = MetricsRegistry()
        local = {"n": 3}
        registry.register_collector(
            lambda r: r.gauge("pulled").set(local["n"]))
        assert registry.snapshot()["pulled"] == 3
        local["n"] = 9
        assert registry.snapshot()["pulled"] == 9

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestNullTracer:
    def test_disabled_hooks_are_the_shared_noop(self):
        # Zero-cost disabled identity: every hook is literally the same
        # function object, returns None, and the class reports disabled.
        tracer = NullTracer()
        assert tracer.enabled is False
        hooks = [tracer.kernel_run, tracer.link_send, tracer.flow_lookup,
                 tracer.bridge_rx, tracer.bridge_tx, tracer.veb_forward,
                 tracer.nic_filter, tracer.vhost, tracer.drop,
                 tracer.run_complete]
        assert len({id(h) for h in hooks}) == 1
        assert tracer.drop("c", _FakeFrame(), "reason") is None

    def test_enable_disable_swaps_module_global(self):
        assert not obs.tracing_enabled()
        tracer = obs.enable_tracing()
        assert obs.TRACER is tracer and obs.tracing_enabled()
        obs.disable_tracing()
        assert not obs.tracing_enabled()
        assert isinstance(obs.TRACER, NullTracer)


class TestPacketTracer:
    def test_equal_timestamp_spans_keep_record_order(self):
        # A cached pipeline pass emits several spans at one sim instant;
        # the journey must replay them in exact record order via seq.
        tracer = PacketTracer(clock=lambda: 1.5)
        frame = _FakeFrame(frame_id=7)
        tracer.bridge_rx("br0", frame, 1, True)
        tracer.flow_lookup("br0.table0", frame, 1, None, "plan")
        tracer.bridge_tx("br0", frame, 2)
        journey = tracer.journey(7)
        assert [s.kind for s in journey] == [
            "vswitch.rx", "flowtable.lookup", "vswitch.tx"]
        assert [s.seq for s in journey] == sorted(s.seq for s in journey)
        assert all(s.start == 1.5 for s in journey)

    def test_drop_reason_recorded(self):
        tracer = PacketTracer()
        tracer.drop("nic.p0", _FakeFrame(frame_id=3, tenant_id=2), "spoof")
        drops = tracer.drops()
        assert len(drops) == 1
        assert drops[0].outcome == "spoof"
        assert drops[0].component == "nic.p0"
        assert drops[0].tenant == 2

    def test_filter_verdict_drops_are_drops(self):
        tracer = PacketTracer()
        tracer.nic_filter("nic.p0", "pf0vf1", _FakeFrame(), "spoof_drop")
        tracer.nic_filter("nic.p0", "pf0vf2", _FakeFrame(), "pass")
        assert len(tracer.drops()) == 1

    def test_capacity_bounds_memory(self):
        tracer = PacketTracer(capacity=2)
        frame = _FakeFrame()
        for _ in range(5):
            tracer.drop("c", frame, "r")
        assert len(tracer.spans) == 2
        assert tracer.spans_dropped == 3

    def test_link_send_splits_enqueue_and_tx(self):
        tracer = PacketTracer()
        frame = _FakeFrame(frame_id=9)
        # Queued behind a busy link: submit at 1.0, starts at 2.0.
        tracer.link_send("link.a", frame, 1.0, 2.0, 2.5, 3.0)
        kinds = [s.kind for s in tracer.journey(9)]
        assert kinds == ["link.enqueue", "link.tx"]
        # Idle link: no enqueue span.
        tracer.clear()
        tracer.link_send("link.a", frame, 1.0, 1.0, 1.5, 2.0)
        assert [s.kind for s in tracer.journey(9)] == ["link.tx"]

    def test_jsonl_round_trip(self):
        tracer = PacketTracer(clock=lambda: 0.25)
        frame = _FakeFrame(frame_id=11, tenant_id=1)
        tracer.bridge_rx("br0", frame, 1, False)
        tracer.drop("br0", frame, "no_match")
        journeys = journeys_from_jsonl(tracer.to_jsonl())
        assert set(journeys) == {11}
        spans = journeys[11]
        assert [s.kind for s in spans] == ["vswitch.rx", "drop"]
        assert spans[0].tenant == 1
        assert spans[1].outcome == "no_match"


def _traced_l2_run(tmp_path, duration=0.01):
    spec = make_spec(level=SecurityLevel.LEVEL_2, vms=2, tenants=2)
    deployment = build_deployment(spec, TrafficScenario.P2V)
    tracer = obs.enable_tracing(deployment.sim)
    harness = TestbedHarness(deployment)
    harness.configure_tenant_flows(rate_per_flow_pps=1000)
    result = harness.run(duration=duration)
    path = tmp_path / "spans.jsonl"
    from repro.obs.export import write_spans_jsonl
    write_spans_jsonl(tracer, str(path))
    return deployment, tracer, result, path


class TestEndToEndJourney:
    """Acceptance: a traced Level-2 run yields a JSONL dump from which a
    complete per-hop journey reconstructs, in Fig. 3 chain order, with
    monotonically non-decreasing sim timestamps."""

    def test_level2_journey_visits_fig3_chain_in_order(self, tmp_path):
        deployment, tracer, result, path = _traced_l2_run(tmp_path)
        assert result.delivered > 0
        journeys = journeys_from_jsonl(path.read_text())
        assert journeys  # at least one packet reconstructs

        spans = journeys[min(journeys)]
        hops = [(s.component, s.kind) for s in spans]
        # Fig. 3 ingress+egress chain: LG wire -> port-0 VEB -> vswitch
        # compartment (lookup + tx) -> NIC filter on the gateway VF ->
        # ... -> egress VEB -> sink wire.
        expected_order = [
            ("link.lg-dut", "link.tx"),
            ("veb0", "veb.forward"),
            ("vsw0.br0", "vswitch.rx"),
            ("vsw0.br0.table0", "flowtable.lookup"),
            ("vsw0.br0", "vswitch.tx"),
            ("nic.p0", "nic.filter"),
            ("link.dut-sink", "link.tx"),
        ]
        positions = []
        for hop in expected_order:
            assert hop in hops, f"journey missing {hop}: {hops}"
            positions.append(hops.index(hop))
        assert positions == sorted(positions), (
            f"chain hops out of order: {hops}")

        starts = [s.start for s in spans]
        assert starts == sorted(starts)
        assert all(s.end >= s.start for s in spans)

    def test_breakdown_matches_frame_wire_accounting(self, tmp_path):
        deployment, tracer, result, path = _traced_l2_run(tmp_path)
        trace_id = tracer.trace_ids()[0]
        breakdown = tracer.breakdown(trace_id)
        # Per-stage latency breakdown exists and the wire component is
        # the serialization+propagation the links actually charged.
        assert breakdown.get("link.tx", 0.0) > 0.0
        journey = tracer.journey(trace_id)
        elapsed = journey[-1].end - journey[0].start
        assert sum(breakdown.values()) <= elapsed + 1e-12

    def test_tenants_separate_in_summary_tables(self, tmp_path):
        from repro.obs.export import tenant_hop_table, tenant_latency_table
        deployment, tracer, result, path = _traced_l2_run(tmp_path)
        hop_table = tenant_hop_table(tracer).render()
        assert "tenant0" in hop_table and "tenant1" in hop_table
        assert "veb.forward" in hop_table
        latency_table = tenant_latency_table(tracer).render()
        assert "tenant0" in latency_table

    def test_harvest_is_delta_based(self, tmp_path):
        deployment, tracer, result, path = _traced_l2_run(tmp_path)
        # TestbedHarness.run already harvested once; a second harvest
        # with no traffic in between must contribute nothing.
        delta = obs.harvest(deployment, obs.REGISTRY)
        assert all(v == 0 for v in delta.values())
        line = obs.cache_efficacy_line(obs.REGISTRY)
        assert line is not None and "emc" in line

    def test_registry_cache_counters_populated(self, tmp_path):
        deployment, tracer, result, path = _traced_l2_run(tmp_path)
        snap = obs.REGISTRY.snapshot()
        assert snap.get('cache_lookups_total{cache="plan"}', 0) > 0
        assert snap.get('cache_lookups_total{cache="veb_memo"}', 0) > 0


class TestDisabledOverheadPath:
    def test_disabled_run_records_nothing(self):
        spec = make_spec(level=SecurityLevel.LEVEL_1)
        deployment = build_deployment(spec, TrafficScenario.P2V)
        assert not obs.tracing_enabled()
        harness = TestbedHarness(deployment)
        harness.configure_tenant_flows(rate_per_flow_pps=1000)
        result = harness.run(duration=0.005)
        assert result.delivered > 0
        assert isinstance(obs.TRACER, NullTracer)
        # The harness still harvests cache counters even when tracing
        # is off -- metrics are pull-based, tracing is the opt-in part.
        snap = obs.REGISTRY.snapshot()
        assert snap.get('cache_lookups_total{cache="plan"}', 0) > 0
