"""Links, serialization, taps and the latency monitor."""

import pytest

from repro.net import Frame, Link, MacAddress, OpticalTap, Port
from repro.sim import Simulator
from repro.traffic.sink import LatencyMonitor
from repro.units import GBPS


def frame(size=64, **kwargs):
    return Frame(src_mac=MacAddress(1), dst_mac=MacAddress(2),
                 size_bytes=size, **kwargs)


class TestLink:
    def test_delivery_after_serialization_and_propagation(self):
        sim = Simulator()
        received = []
        port = Port("dst", lambda f: received.append(sim.now))
        link = Link(sim, port, bandwidth_bps=10 * GBPS,
                    propagation_delay=1e-6)
        arrival = link.send(frame())
        sim.run()
        expected = (64 + 20) * 8 / 10e9 + 1e-6
        assert received == [pytest.approx(expected)]
        assert arrival == pytest.approx(expected)

    def test_back_to_back_frames_queue_on_the_wire(self):
        sim = Simulator()
        times = []
        port = Port("dst", lambda f: times.append(sim.now))
        link = Link(sim, port, bandwidth_bps=10 * GBPS)
        link.send(frame())
        link.send(frame())
        sim.run()
        gap = times[1] - times[0]
        assert gap == pytest.approx((64 + 20) * 8 / 10e9)

    def test_counters(self):
        sim = Simulator()
        link = Link(sim, Port("dst"))
        link.send(frame())
        assert link.tx_frames == 1
        assert link.tx_bytes == 64

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            Link(Simulator(), Port("dst"), bandwidth_bps=0)


class TestTapAndMonitor:
    def _wired(self):
        sim = Simulator()
        tap_in = OpticalTap("in")
        tap_out = OpticalTap("out")
        sink = Port("sink")
        link_out = Link(sim, sink, tap=tap_out)
        relay = Port("dut", lambda f: link_out.send(f))
        link_in = Link(sim, relay, tap=tap_in)
        monitor = LatencyMonitor(tap_in, tap_out)
        return sim, link_in, monitor

    def test_tap_sees_frames(self):
        sim, link_in, _ = self._wired()
        link_in.send(frame())
        sim.run()

    def test_monitor_pairs_frames_and_measures(self):
        sim, link_in, monitor = self._wired()
        link_in.send(frame())
        sim.run()
        assert len(monitor.samples) == 1
        assert monitor.samples[0].latency > 0

    def test_monitor_windows(self):
        sim, link_in, monitor = self._wired()
        for _ in range(3):
            link_in.send(frame())
        sim.run()
        t1 = sim.now + 1e-9
        assert len(monitor.latencies_in_window(0.0, t1)) == 3
        assert monitor.delivered_in_window(0.0, t1) == 3
        assert monitor.throughput_pps(0.0, 1.0) == 3.0
        # A window before any ingress is empty.
        assert monitor.latencies_in_window(-1.0, 0.0) == []

    def test_loss_count_tracks_unmatched_ingress(self):
        sim = Simulator()
        tap_in, tap_out = OpticalTap("in"), OpticalTap("out")
        blackhole = Port("dut", lambda f: None)
        link_in = Link(sim, blackhole, tap=tap_in)
        monitor = LatencyMonitor(tap_in, tap_out)
        link_in.send(frame())
        sim.run()
        assert monitor.loss_count() == 1
        assert monitor.samples == []

    def test_empty_window_rejected(self):
        _, _, monitor = self._wired()
        with pytest.raises(ValueError):
            monitor.throughput_pps(1.0, 1.0)
