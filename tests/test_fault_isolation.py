"""Vswitch crash fault isolation + orchestrator fault injection."""

import pytest

from repro.core import ResourceMode, SecurityLevel, TrafficScenario, build_deployment
from repro.core.orchestrator import (
    VSWITCH_RESTART_LATENCY,
    MtsOrchestrator,
)
from repro.core.spec import DeploymentSpec
from repro.errors import ConfigurationError
from repro.experiments.fault_isolation import measure
from repro.host.vm import VmState
from repro.traffic import TestbedHarness
from tests.conftest import make_spec

PHASE = 0.04
_memo = {}


def measured(spec):
    if spec not in _memo:
        _memo[spec] = measure(spec, phase=PHASE)
    return _memo[spec]


class TestBlastRadiusOfACrash:
    def test_baseline_crash_blacks_out_everyone(self):
        result = measured(DeploymentSpec(level=SecurityLevel.BASELINE))
        assert len(result.tenants_fully_down()) == 4

    def test_level1_crash_blacks_out_everyone(self):
        result = measured(DeploymentSpec(level=SecurityLevel.LEVEL_1))
        assert len(result.tenants_fully_down()) == 4

    def test_level2_crash_confined_to_the_compartment(self):
        result = measured(DeploymentSpec(level=SecurityLevel.LEVEL_2,
                                         num_vswitch_vms=2))
        assert result.tenants_fully_down() == [0, 1]
        assert result.tenants_unaffected() == [2, 3]

    def test_per_tenant_compartments_lose_exactly_one(self):
        result = measured(DeploymentSpec(level=SecurityLevel.LEVEL_2,
                                         num_vswitch_vms=4,
                                         resource_mode=ResourceMode.ISOLATED))
        assert result.tenants_fully_down() == [0]
        assert result.tenants_unaffected() == [1, 2, 3]

    def test_everyone_recovers_after_restart(self):
        for spec in (DeploymentSpec(level=SecurityLevel.BASELINE),
                     DeploymentSpec(level=SecurityLevel.LEVEL_2,
                                    num_vswitch_vms=2)):
            result = measured(spec)
            assert all(f > 0.9 for f in result.after_recovery.values()), (
                spec.label, result.after_recovery)


class TestOrchestratorFaultInjection:
    def _setup(self):
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_2, vms=2),
                             TrafficScenario.P2V)
        return d, MtsOrchestrator(d), TestbedHarness(d)

    def test_crash_marks_vm_stopped(self):
        d, orch, _ = self._setup()
        orch.crash_compartment(0)
        assert orch.is_down(0)
        assert d.vswitch_vms[0].state is VmState.STOPPED

    def test_restart_resumes_forwarding(self):
        d, orch, h = self._setup()
        orch.crash_compartment(0)
        completes = orch.restart_compartment(0)
        assert completes == pytest.approx(VSWITCH_RESTART_LATENCY)
        d.sim.run(until=completes + 1e-6)
        assert not orch.is_down(0)
        from repro.net import Frame, MacAddress
        frame = Frame(src_mac=MacAddress.parse("02:1b:00:00:00:01"),
                      dst_mac=d.ingress_dmac_for_tenant(0, 0),
                      dst_ip=d.plan.tenant_ip(0), flow_id=0)
        d.external_ingress(0).receive(frame)
        d.sim.run(until=d.sim.now + 1.0)
        assert h.sink.per_flow[0] == 1

    def test_double_crash_rejected(self):
        _, orch, _ = self._setup()
        orch.crash_compartment(0)
        with pytest.raises(ConfigurationError):
            orch.crash_compartment(0)

    def test_restart_of_healthy_compartment_rejected(self):
        _, orch, _ = self._setup()
        with pytest.raises(ConfigurationError):
            orch.restart_compartment(1)


class TestPremiumCompartments:
    """The §3.2 allocation spectrum: shared mode with selected
    compartments on dedicated cores."""

    def test_premium_compartment_gets_its_own_core(self):
        spec = make_spec(level=SecurityLevel.LEVEL_2, vms=4,
                         premium_compartments=(0,))
        d = build_deployment(spec, TrafficScenario.P2V)
        premium_core = d.vswitch_vms[0].compute[0].core
        other_cores = {d.vswitch_vms[k].compute[0].core.core_id
                       for k in (1, 2, 3)}
        assert premium_core.num_consumers == 1
        assert len(other_cores) == 1  # the rest still share one core
        assert premium_core.core_id not in other_cores

    def test_premium_throughput_advantage(self):
        from repro.perfmodel.paths import throughput
        spec = make_spec(level=SecurityLevel.LEVEL_2, vms=4,
                         premium_compartments=(0,))
        d = build_deployment(spec, TrafficScenario.P2V)
        result = throughput(d, TrafficScenario.P2V)
        premium = result.rates_pps["flow-t0"]
        economy = result.rates_pps["flow-t1"]
        assert premium > 2.5 * economy

    def test_costs_one_extra_core(self):
        base = build_deployment(make_spec(level=SecurityLevel.LEVEL_2,
                                          vms=4), TrafficScenario.P2V)
        premium = build_deployment(
            make_spec(level=SecurityLevel.LEVEL_2, vms=4,
                      premium_compartments=(0,)), TrafficScenario.P2V)
        assert (premium.resource_report().networking_cores
                == base.resource_report().networking_cores + 1)

    def test_validation(self):
        from repro.errors import ValidationError
        with pytest.raises(ValidationError):
            make_spec(level=SecurityLevel.LEVEL_2, vms=2,
                      premium_compartments=(5,))
        with pytest.raises(ValidationError):
            make_spec(level=SecurityLevel.LEVEL_2, vms=2,
                      mode=ResourceMode.ISOLATED,
                      premium_compartments=(0,))
        with pytest.raises(ValidationError):
            make_spec(level=SecurityLevel.BASELINE,
                      premium_compartments=(0,))
