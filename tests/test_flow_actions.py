"""Flow actions: rewrites, tunnel push/pop."""

import pytest

from repro.net import Frame, MacAddress
from repro.vswitch import Drop, Normal, Output, PopTunnel, PushTunnel, SetDstMac, SetSrcMac
from repro.vswitch.actions import TUNNEL_OVERHEAD_BYTES


def frame(**kwargs):
    defaults = dict(src_mac=MacAddress(1), dst_mac=MacAddress(2),
                    size_bytes=100)
    defaults.update(kwargs)
    return Frame(**defaults)


class TestMacRewrites:
    def test_set_dst_mac(self):
        f = frame()
        SetDstMac(MacAddress(9)).apply(f)
        assert f.dst_mac == MacAddress(9)
        assert f.src_mac == MacAddress(1)

    def test_set_src_mac(self):
        f = frame()
        SetSrcMac(MacAddress(8)).apply(f)
        assert f.src_mac == MacAddress(8)

    def test_rewrites_flag(self):
        assert SetDstMac(MacAddress(9)).rewrites()
        assert SetSrcMac(MacAddress(9)).rewrites()
        assert not Output(1).rewrites()
        assert not Drop().rewrites()
        assert not Normal().rewrites()


class TestTunnel:
    def test_push_sets_vni_and_grows_frame(self):
        f = frame()
        PushTunnel(5001).apply(f)
        assert f.tunnel_id == 5001
        assert f.size_bytes == 100 + TUNNEL_OVERHEAD_BYTES

    def test_pop_reverses_push(self):
        f = frame()
        PushTunnel(5001).apply(f)
        PopTunnel().apply(f)
        assert f.size_bytes == 100
        assert f.tunnel_id is None
        # The VNI stays visible as metadata for later tables, as the
        # paper's decap+dst-IP tenant lookup requires.
        assert f.decap_vni == 5001

    def test_push_after_pop_is_legal(self):
        f = frame()
        PushTunnel(1).apply(f)
        PopTunnel().apply(f)
        PushTunnel(2).apply(f)
        assert f.tunnel_id == 2

    def test_double_push_rejected(self):
        f = frame()
        PushTunnel(1).apply(f)
        with pytest.raises(ValueError):
            PushTunnel(2).apply(f)

    def test_pop_without_tunnel_rejected(self):
        with pytest.raises(ValueError):
            PopTunnel().apply(frame())

    def test_pop_clamps_to_minimum_frame(self):
        f = frame(size_bytes=64)
        f.tunnel_id = 7
        PopTunnel().apply(f)
        assert f.size_bytes == 64
