"""Flow cache and the policy-injection DoS (the paper's motivation)."""

import pytest

from repro.core import ResourceMode, SecurityLevel
from repro.core.spec import DeploymentSpec
from repro.experiments.policy_injection import ATTACK_RATE_PPS, measure
from repro.net import Frame, IPv4Address, MacAddress
from repro.vswitch.megaflow import (
    DEFAULT_CAPACITY,
    KERNEL_UPCALL_CYCLES,
    MegaflowCache,
    flow_signature,
)

DURATION = 0.06
_memo = {}


def measured(spec):
    if spec not in _memo:
        _memo[spec] = measure(spec, duration=DURATION)
    return _memo[spec]


def frame(src_port=0, dst="10.0.0.10"):
    return Frame(src_mac=MacAddress(1), dst_mac=MacAddress(2),
                 src_ip=IPv4Address.parse("192.168.1.10"),
                 dst_ip=IPv4Address.parse(dst), src_port=src_port)


class TestMegaflowCache:
    def test_first_lookup_misses_then_hits(self):
        cache = MegaflowCache()
        assert cache.lookup_cost(frame(), 1) == KERNEL_UPCALL_CYCLES
        assert cache.lookup_cost(frame(), 1) == 0.0
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_distinct_microflows_miss_separately(self):
        cache = MegaflowCache()
        cache.lookup_cost(frame(src_port=1), 1)
        assert cache.lookup_cost(frame(src_port=2), 1) > 0

    def test_in_port_is_part_of_the_key(self):
        cache = MegaflowCache()
        cache.lookup_cost(frame(), 1)
        assert cache.lookup_cost(frame(), 2) > 0

    def test_lru_eviction(self):
        cache = MegaflowCache(capacity=2)
        cache.lookup_cost(frame(src_port=1), 1)
        cache.lookup_cost(frame(src_port=2), 1)
        cache.lookup_cost(frame(src_port=3), 1)  # evicts port-1 entry
        assert cache.stats.evictions == 1
        assert cache.lookup_cost(frame(src_port=1), 1) > 0  # miss again

    def test_lru_refresh_on_hit(self):
        cache = MegaflowCache(capacity=2)
        cache.lookup_cost(frame(src_port=1), 1)
        cache.lookup_cost(frame(src_port=2), 1)
        cache.lookup_cost(frame(src_port=1), 1)  # refresh 1
        cache.lookup_cost(frame(src_port=3), 1)  # evicts 2, not 1
        assert cache.lookup_cost(frame(src_port=1), 1) == 0.0

    def test_invalidate_flushes(self):
        cache = MegaflowCache()
        cache.lookup_cost(frame(), 1)
        cache.invalidate()
        assert len(cache) == 0
        assert cache.lookup_cost(frame(), 1) > 0

    def test_signature_fields(self):
        a = flow_signature(frame(src_port=5), 1)
        b = flow_signature(frame(src_port=6), 1)
        assert a != b

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            MegaflowCache(capacity=0)

    def test_default_capacity(self):
        assert MegaflowCache().capacity == DEFAULT_CAPACITY


class TestPolicyInjectionDoS:
    def test_low_resource_attack_starves_baseline_victims(self):
        """40 kpps -- under 2% of the fast path -- collapses co-tenants
        on a shared vswitch, exactly the Csikor et al. result."""
        result = measured(DeploymentSpec(level=SecurityLevel.BASELINE,
                                         resource_mode=ResourceMode.SHARED))
        assert result.attacker_rate_pps == ATTACK_RATE_PPS
        assert result.victim_delivery_fraction < 0.4
        assert result.victim_p99_latency > 1e-3

    def test_per_tenant_mts_immune(self):
        result = measured(DeploymentSpec(level=SecurityLevel.LEVEL_2,
                                         num_vswitch_vms=4,
                                         resource_mode=ResourceMode.ISOLATED))
        assert result.victim_delivery_fraction > 0.99
        assert result.victim_p99_latency < 500e-6

    def test_attack_is_cache_driven(self):
        """The attacker's bridge shows a collapsed hit rate; the
        victims' compartments stay warm."""
        result = measured(DeploymentSpec(level=SecurityLevel.LEVEL_2,
                                         num_vswitch_vms=4,
                                         resource_mode=ResourceMode.ISOLATED))
        assert result.cache_hit_rate["vsw0.br0"] < 0.2   # attacker's
        assert result.cache_hit_rate["vsw1.br0"] > 0.95  # a victim's

    def test_attack_needs_50x_less_than_brute_force(self):
        """Same victim damage as the 2 Mpps noisy-neighbor flood from
        40 kpps: the cache asymmetry is a 50x amplifier."""
        from repro.experiments.noisy_neighbor import ATTACK_RATE_PPS as FLOOD
        assert FLOOD / ATTACK_RATE_PPS == pytest.approx(50.0)
        baseline = measured(DeploymentSpec(level=SecurityLevel.BASELINE,
                                           resource_mode=ResourceMode.SHARED))
        assert baseline.victim_delivery_fraction < 0.4


class TestCacheInSteadyState:
    def test_fixed_flows_converge_to_hits(self):
        """The paper's benchmarks (4 fixed flows) run from the cache:
        after warmup the hit rate is ~1, so enabling the cache does not
        disturb the Fig. 5 calibration."""
        from repro.core import TrafficScenario, build_deployment
        from repro.traffic import TestbedHarness
        from tests.conftest import make_spec
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_1),
                             TrafficScenario.P2V)
        h = TestbedHarness(d)
        h.configure_tenant_flows(rate_per_flow_pps=2500)
        h.run(duration=0.05)
        stats = d.bridges[0].cache.stats
        assert stats.hit_rate > 0.99
