"""The OVN-style multi-table controller mode."""

import pytest

from repro.core import SecurityLevel, TrafficScenario, build_deployment
from repro.core.controller import Controller
from repro.core.verification import audit_deployment
from repro.errors import ValidationError
from repro.traffic import TestbedHarness
from tests.conftest import make_spec


def deploy(**kwargs):
    spec = make_spec(level=SecurityLevel.LEVEL_1, multi_table=True, **kwargs)
    return build_deployment(spec, TrafficScenario.P2V)


class TestMultiTableMode:
    def test_per_tenant_tables_exist(self):
        d = deploy()
        bridge = d.bridges[0]
        for t in range(4):
            table = bridge.tables[Controller.TENANT_TABLE_BASE + t]
            assert table.tenants() == [t]
        # Table 0 only classifies.
        from repro.vswitch.actions import ActionType
        for rule in bridge.table:
            kinds = {a.type for a in rule.actions}
            assert kinds == {ActionType.GOTO_TABLE}

    def test_forwards_identically_to_flat_mode(self):
        flat = build_deployment(make_spec(level=SecurityLevel.LEVEL_1),
                                TrafficScenario.P2V)
        multi = deploy()
        for d in (flat, multi):
            h = TestbedHarness(d)
            h.configure_tenant_flows(rate_per_flow_pps=1000)
            result = h.run(duration=0.02)
            assert result.delivered == result.sent

    def test_audits_clean(self):
        report = audit_deployment(deploy())
        assert report.ok, report.render()

    def test_tunneled_multi_table(self):
        d = deploy(tunneling=True)
        h = TestbedHarness(d)
        h.configure_tenant_flows(rate_per_flow_pps=1000, frame_bytes=114)
        result = h.run(duration=0.01)
        assert result.delivered == result.sent

    def test_level2_multi_table(self):
        spec = make_spec(level=SecurityLevel.LEVEL_2, vms=2,
                         multi_table=True)
        d = build_deployment(spec, TrafficScenario.P2V)
        assert audit_deployment(d).ok
        h = TestbedHarness(d)
        h.configure_tenant_flows(rate_per_flow_pps=1000)
        assert h.run(duration=0.01).loss_fraction == 0.0

    def test_other_scenarios_rejected(self):
        spec = make_spec(level=SecurityLevel.LEVEL_1, multi_table=True)
        with pytest.raises(ValidationError):
            build_deployment(spec, TrafficScenario.P2P)

    def test_round_trips_through_json(self):
        from repro.core import DeploymentSpec
        spec = make_spec(level=SecurityLevel.LEVEL_1, multi_table=True)
        assert DeploymentSpec.from_dict(spec.to_dict()).multi_table

    def test_tenant_withdrawal_empties_only_its_table(self):
        d = deploy()
        bridge = d.bridges[0]
        removed = 0
        for table in bridge.tables.values():
            removed += table.remove_tenant(2)
        assert removed > 0
        assert len(bridge.tables[Controller.TENANT_TABLE_BASE + 2]) == 0
        assert len(bridge.tables[Controller.TENANT_TABLE_BASE + 1]) > 0
