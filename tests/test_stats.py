"""Statistics helpers: percentiles, CIs, summaries."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.measure import SummaryStats, mean_confidence_interval, percentile, summarize


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        values = [5, 1, 9]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 9

    def test_quartiles(self):
        values = list(range(1, 101))
        assert percentile(values, 25) == pytest.approx(25.75)
        assert percentile(values, 75) == pytest.approx(75.25)

    def test_single_value(self):
        assert percentile([7], 99) == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1),
           st.floats(min_value=0, max_value=100))
    def test_percentile_within_range(self, values, q):
        p = percentile(values, q)
        assert min(values) <= p <= max(values)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2))
    def test_percentile_monotone_in_q(self, values):
        qs = [0, 25, 50, 75, 100]
        ps = [percentile(values, q) for q in qs]
        assert ps == sorted(ps)


class TestConfidenceInterval:
    def test_single_sample_zero_width(self):
        mean, half = mean_confidence_interval([5.0])
        assert mean == 5.0
        assert half == 0.0

    def test_identical_samples_zero_width(self):
        mean, half = mean_confidence_interval([2.0] * 5)
        assert mean == 2.0
        assert half == 0.0

    def test_known_case(self):
        # n=5, t(4) = 2.776
        values = [10.0, 12.0, 14.0, 16.0, 18.0]
        mean, half = mean_confidence_interval(values)
        assert mean == 14.0
        std_err = math.sqrt(10.0 / 5)  # sample variance 10
        assert half == pytest.approx(2.776 * std_err)

    def test_more_samples_tighter_interval(self):
        import random
        rng = random.Random(0)
        small = [rng.gauss(0, 1) for _ in range(5)]
        large = small * 10
        _, half_small = mean_confidence_interval(small)
        _, half_large = mean_confidence_interval(large)
        assert half_large < half_small

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])

    def test_only_95_supported(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0], confidence=0.99)


class TestSummarize:
    def test_known_values(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == 2.5
        assert stats.median == 2.5
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.iqr == pytest.approx(stats.p75 - stats.p25)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1))
    def test_ordering_invariants(self, values):
        stats = summarize(values)
        assert (stats.minimum <= stats.p25 <= stats.median
                <= stats.p75 <= stats.p99 <= stats.maximum)
        eps = 1e-9 * max(1.0, abs(stats.minimum), abs(stats.maximum))
        assert stats.minimum - eps <= stats.mean <= stats.maximum + eps
        assert stats.std >= 0


class TestReporting:
    def test_table_render_contains_series_and_values(self):
        from repro.measure import Series, Table
        table = Table(title="demo", unit="Mpps", fmt=lambda v: f"{v:.1f}")
        s = Series(label="L1")
        s.add("p2p", 1.0)
        s.add("p2v", 0.5)
        table.add_series(s)
        text = table.render()
        assert "demo" in text and "L1" in text
        assert "1.0" in text and "0.5" in text

    def test_missing_cells_render_dash(self):
        from repro.measure import Series, Table
        table = Table(title="demo")
        a = Series(label="a")
        a.add("x", 1.0)
        b = Series(label="b")
        b.add("y", 2.0)
        table.add_series(a)
        table.add_series(b)
        text = table.render()
        assert "-" in text

    def test_series_by_label(self):
        from repro.measure import Series, Table
        table = Table(title="t")
        table.add_series(Series(label="a"))
        assert table.series_by_label("a").label == "a"
        with pytest.raises(KeyError):
            table.series_by_label("missing")

    def test_columns_in_first_seen_order(self):
        from repro.measure import Series, Table
        table = Table(title="t")
        s1 = Series(label="one")
        s1.add("p2p", 1)
        s1.add("p2v", 2)
        table.add_series(s1)
        s2 = Series(label="two")
        s2.add("v2v", 3)
        table.add_series(s2)
        assert table.columns() == ["p2p", "p2v", "v2v"]
