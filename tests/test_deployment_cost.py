"""The deployment-cost (incremental deployability) experiment."""

import pytest

from repro.core import SecurityLevel, TrafficScenario
from repro.core.spec import DeploymentSpec
from repro.experiments.deployment_cost import op_counts, run


class TestDeploymentCost:
    def test_upgrade_delta_is_modest(self):
        """"an inexpensive deployment experience": Level-1 over the
        Baseline is ~20 extra scripted primitives, all VF config."""
        base = op_counts(DeploymentSpec(level=SecurityLevel.BASELINE))
        l1 = op_counts(DeploymentSpec(level=SecurityLevel.LEVEL_1))
        delta = l1["total"] - base["total"]
        assert 0 < delta < 30
        # The delta is dominated by VF plumbing, not new software.
        assert l1["VFs"] - base["VFs"] >= delta * 0.8

    def test_vf_ops_match_vf_budget(self):
        from repro.core.vf_allocation import vf_budget_for_spec
        for spec in (DeploymentSpec(level=SecurityLevel.LEVEL_1),
                     DeploymentSpec(level=SecurityLevel.LEVEL_2,
                                    num_vswitch_vms=4)):
            counts = op_counts(spec)
            assert counts["VFs"] == vf_budget_for_spec(spec).total

    def test_cost_grows_linearly_with_compartments(self):
        l2_2 = op_counts(DeploymentSpec(level=SecurityLevel.LEVEL_2,
                                        num_vswitch_vms=2))["total"]
        l2_4 = op_counts(DeploymentSpec(level=SecurityLevel.LEVEL_2,
                                        num_vswitch_vms=4))["total"]
        l1 = op_counts(DeploymentSpec(level=SecurityLevel.LEVEL_1))["total"]
        per_compartment = (l2_4 - l2_2) / 2
        assert l2_2 == pytest.approx(l1 + per_compartment, abs=1)

    def test_table_renders_with_delta_row(self):
        table = run()
        assert table.series_by_label("Baseline(1)").get("delta vs Baseline") == 0
        assert table.series_by_label("L2(4)").get("delta vs Baseline") > 0

    def test_scenarios_change_only_flow_programming(self):
        p2v = op_counts(DeploymentSpec(level=SecurityLevel.LEVEL_1),
                        TrafficScenario.P2V)
        v2v = op_counts(DeploymentSpec(level=SecurityLevel.LEVEL_1),
                        TrafficScenario.V2V)
        assert p2v["VFs"] == v2v["VFs"]
        assert p2v["VMs"] == v2v["VMs"]
