"""Load generator and testbed harness."""

import pytest

from repro.core import SecurityLevel, TrafficScenario, build_deployment
from repro.net import Frame, IPv4Address, Link, MacAddress, Port
from repro.sim import Simulator
from repro.traffic import FlowConfig, LoadGenerator, TestbedHarness
from tests.conftest import make_spec


def flow(flow_id=0, rate=1000.0, **kwargs):
    defaults = dict(
        flow_id=flow_id,
        dst_mac=MacAddress(2),
        dst_ip=IPv4Address.parse("10.0.0.10"),
        src_mac=MacAddress(1),
        src_ip=IPv4Address.parse("192.168.1.10"),
        rate_pps=rate,
    )
    defaults.update(kwargs)
    return FlowConfig(**defaults)


class TestLoadGenerator:
    def _lg(self):
        sim = Simulator()
        received = []
        port = Port("dut", lambda f: received.append(f))
        link = Link(sim, port)
        return sim, LoadGenerator(sim, link), received

    def test_emits_at_configured_rate(self):
        sim, lg, received = self._lg()
        lg.add_flow(flow(rate=1000))
        lg.start(duration=0.1)
        sim.run()
        assert len(received) == pytest.approx(100, abs=2)

    def test_stops_at_duration(self):
        sim, lg, received = self._lg()
        lg.add_flow(flow(rate=1000))
        lg.start(duration=0.01)
        sim.run()
        first_burst = len(received)
        sim2_events = sim.pending()
        assert sim2_events == 0  # generator fully stopped

    def test_multiple_flows_phase_shifted(self):
        sim, lg, received = self._lg()
        for i in range(4):
            lg.add_flow(flow(flow_id=i, rate=1000))
        lg.start(duration=0.01)
        sim.run()
        # First four frames do not arrive at the same instant.
        times = sorted({f.created_at for f in received[:4]})
        assert len(times) == 4

    def test_frames_carry_flow_identity(self):
        sim, lg, received = self._lg()
        lg.add_flow(flow(flow_id=3, tenant_id=3))
        lg.start(duration=0.002)
        sim.run()
        assert all(f.flow_id == 3 and f.tenant_id == 3 for f in received)

    def test_aggregate_rate(self):
        _, lg, _ = self._lg()
        for i in range(4):
            lg.add_flow(flow(flow_id=i, rate=2500))
        assert lg.aggregate_rate_pps == 10_000

    def test_no_flows_rejected(self):
        _, lg, _ = self._lg()
        with pytest.raises(ValueError):
            lg.start(duration=1.0)

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            flow(rate=0)


class TestHarness:
    def test_result_fields_consistent(self):
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_1),
                             TrafficScenario.P2V)
        h = TestbedHarness(d)
        h.configure_tenant_flows(rate_per_flow_pps=1000)
        result = h.run(duration=0.02)
        assert result.sent == result.delivered
        assert result.loss_fraction == 0.0
        assert result.offered_pps == 4000
        assert len(result.latencies) > 0

    def test_flow_subset(self):
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_1),
                             TrafficScenario.P2V)
        h = TestbedHarness(d)
        h.configure_tenant_flows(rate_per_flow_pps=1000, tenants=[1, 3])
        h.run(duration=0.01)
        assert set(h.sink.per_flow) == {1, 3}

    def test_offered_rate_hint_propagated(self):
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_1),
                             TrafficScenario.P2V)
        h = TestbedHarness(d)
        h.configure_tenant_flows(rate_per_flow_pps=2500)
        h.run(duration=0.005)
        assert d.bridges[0].model.offered_rate_hint_pps == 10_000
