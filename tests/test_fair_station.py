"""The fair (per-ring round-robin) service station."""

import pytest

from repro.sim import Simulator
from repro.sim.resources import FairServiceStation


def station(sim, capacity=None, service=1.0):
    done = []
    s = FairServiceStation(sim, service_time=lambda item: service,
                           on_done=lambda item: done.append((sim.now, item)),
                           queue_capacity=capacity)
    return s, done


class TestFairness:
    def test_round_robin_across_keys(self):
        sim = Simulator()
        s, done = station(sim)
        for i in range(3):
            s.submit("a", f"a{i}")
        for i in range(3):
            s.submit("b", f"b{i}")
        sim.run()
        order = [item for _, item in done]
        # a0 starts immediately (station idle); afterwards strict
        # alternation between the rings.
        assert order == ["a0", "b0", "a1", "b1", "a2", "b2"]

    def test_flooded_ring_cannot_starve_the_other(self):
        sim = Simulator()
        s, done = station(sim, capacity=4)
        for i in range(100):
            s.submit("flood", i)
        s.submit("victim", "v")
        sim.run()
        items = [item for _, item in done]
        assert "v" in items
        # The victim is served second (round robin), not after the flood.
        assert items.index("v") == 1

    def test_per_ring_capacity_drops(self):
        sim = Simulator()
        s, done = station(sim, capacity=2)
        # First submit begins service immediately; next two queue; the
        # rest drop.
        results = [s.submit("a", i) for i in range(6)]
        assert results == [True, True, True, False, False, False]
        assert s.dropped() == 3
        sim.run()
        assert s.served == 3

    def test_keys_created_lazily(self):
        sim = Simulator()
        s, done = station(sim)
        s.submit("late-ring", "x")
        sim.run()
        assert [item for _, item in done] == ["x"]

    def test_work_conserving_when_one_ring_empties(self):
        sim = Simulator()
        s, done = station(sim)
        s.submit("a", "a0")
        s.submit("a", "a1")
        s.submit("b", "b0")
        sim.run()
        assert len(done) == 3
        assert done[-1][0] == pytest.approx(3.0)  # no idle gaps

    def test_utilization(self):
        sim = Simulator()
        s, _ = station(sim, service=0.5)
        s.submit("a", 1)
        s.submit("a", 2)
        sim.run()
        assert s.utilization(2.0) == pytest.approx(0.5)

    def test_negative_service_time_rejected(self):
        sim = Simulator()
        s = FairServiceStation(sim, service_time=lambda item: -1.0,
                               on_done=lambda item: None)
        with pytest.raises(ValueError):
            s.submit("a", 1)

    def test_idle_station_reports_zero_utilization(self):
        sim = Simulator()
        s, _ = station(sim)
        assert s.utilization(0.0) == 0.0
