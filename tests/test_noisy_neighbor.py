"""Performance isolation under a flooding tenant (§6 extension)."""

import pytest

from repro.core import ResourceMode, SecurityLevel
from repro.core.spec import DeploymentSpec
from repro.experiments.noisy_neighbor import VICTIMS
from repro.experiments.noisy_neighbor import measure as _measure

DURATION = 0.03
_memo = {}


def measure(spec, duration=DURATION):
    """The DES flood runs are expensive; several tests share results."""
    key = (spec, duration)
    if key not in _memo:
        _memo[key] = _measure(spec, duration=duration)
    return _memo[key]


def spec(level, vms=1, mode=ResourceMode.SHARED, zones=None):
    return DeploymentSpec(level=level, num_vswitch_vms=vms,
                          resource_mode=mode, zone_of_tenant=zones)


class TestNoisyNeighbor:
    def test_baseline_victims_starved(self):
        """Shared datapath + shared ingress ring: the flood crowds the
        victims out almost entirely."""
        result = measure(spec(SecurityLevel.BASELINE), duration=DURATION)
        assert result.victim_delivery_fraction < 0.3

    def test_level1_still_shares_the_vswitch(self):
        result = measure(spec(SecurityLevel.LEVEL_1), duration=DURATION)
        assert result.victim_delivery_fraction < 0.5

    def test_per_tenant_compartments_fully_isolate(self):
        """Least common mechanism, measured: per-tenant vswitch VMs keep
        victims at 100% delivery and flat latency under a 2 Mpps flood
        next door."""
        result = measure(spec(SecurityLevel.LEVEL_2, vms=4,
                              mode=ResourceMode.ISOLATED),
                         duration=DURATION)
        assert result.victim_delivery_fraction > 0.99
        assert result.victim_p99_latency < 500e-6

    def test_level2_partial_isolation_hits_the_cohoused_victim(self):
        """With 2 compartments, the victim sharing the attacker's
        compartment suffers; the other two are clean -- delivery lands
        around 2/3."""
        result = measure(spec(SecurityLevel.LEVEL_2, vms=2),
                         duration=DURATION)
        assert 0.5 < result.victim_delivery_fraction < 0.9

    def test_isolation_ordering(self):
        fractions = [
            measure(spec(SecurityLevel.BASELINE),
                    duration=DURATION).victim_delivery_fraction,
            measure(spec(SecurityLevel.LEVEL_2, vms=2),
                    duration=DURATION).victim_delivery_fraction,
            measure(spec(SecurityLevel.LEVEL_2, vms=4,
                         mode=ResourceMode.ISOLATED),
                    duration=DURATION).victim_delivery_fraction,
        ]
        assert fractions == sorted(fractions)

    def test_zoning_the_attacker_alone_protects_everyone(self):
        """Security zones (§3.1): put the untrusted tenant in its own
        zone and the three victims together in another -- two
        compartments suffice for full victim protection."""
        zoned = measure(
            spec(SecurityLevel.LEVEL_2, vms=2, zones=(0, 1, 1, 1)),
            duration=DURATION)
        assert zoned.victim_delivery_fraction > 0.99

    def test_attacker_cannot_exceed_its_compartment_capacity(self):
        result = measure(spec(SecurityLevel.LEVEL_2, vms=4,
                              mode=ResourceMode.ISOLATED),
                         duration=DURATION)
        # One dedicated core, two VF passes per packet: ~0.5 Mpps.
        assert result.attacker_delivered_pps < 0.6e6


class TestZoneSpec:
    def test_zone_map_respected(self):
        s = spec(SecurityLevel.LEVEL_2, vms=2, zones=(0, 1, 1, 1))
        assert s.tenants_of_compartment(0) == [0]
        assert s.tenants_of_compartment(1) == [1, 2, 3]
        assert s.compartment_of_tenant(2) == 1

    def test_zone_map_must_cover_all_tenants(self):
        from repro.errors import ValidationError
        with pytest.raises(ValidationError):
            spec(SecurityLevel.LEVEL_2, vms=2, zones=(0, 1))

    def test_zone_map_rejects_unknown_compartment(self):
        from repro.errors import ValidationError
        with pytest.raises(ValidationError):
            spec(SecurityLevel.LEVEL_2, vms=2, zones=(0, 1, 2, 1))

    def test_zone_map_rejects_empty_compartment(self):
        from repro.errors import ValidationError
        with pytest.raises(ValidationError):
            spec(SecurityLevel.LEVEL_2, vms=2, zones=(0, 0, 0, 0))

    def test_zone_map_not_for_baseline(self):
        from repro.errors import ValidationError
        with pytest.raises(ValidationError):
            spec(SecurityLevel.BASELINE, zones=(0, 0, 0, 0))

    def test_zoned_deployment_builds_and_forwards(self):
        from repro.core import TrafficScenario, build_deployment
        from repro.traffic import TestbedHarness
        d = build_deployment(spec(SecurityLevel.LEVEL_2, vms=2,
                                  zones=(0, 1, 1, 1)),
                             TrafficScenario.P2V)
        h = TestbedHarness(d)
        h.configure_tenant_flows(rate_per_flow_pps=1000)
        result = h.run(duration=0.01)
        assert result.delivered == result.sent
