"""Packet capture, filtering, rendering and replay."""

import pytest

from repro.core import SecurityLevel, TrafficScenario, build_deployment
from repro.net import Frame, IPv4Address, IpProto, MacAddress, Port
from repro.sim import Simulator
from repro.traffic import TestbedHarness
from repro.traffic.capture import Capture, CaptureFilter
from tests.conftest import make_spec


def frame(**kwargs):
    defaults = dict(src_mac=MacAddress(0xA), dst_mac=MacAddress(0xB),
                    src_ip=IPv4Address.parse("192.168.1.10"),
                    dst_ip=IPv4Address.parse("10.0.0.10"))
    defaults.update(kwargs)
    return Frame(**defaults)


class TestFilter:
    def test_empty_filter_matches_everything(self):
        assert CaptureFilter().matches(frame())

    def test_field_filters(self):
        assert CaptureFilter(dst_ip=IPv4Address.parse("10.0.0.10")).matches(
            frame())
        assert not CaptureFilter(vlan=100).matches(frame())
        assert CaptureFilter(vlan=100).matches(frame(vlan=100))
        assert not CaptureFilter(proto=IpProto.TCP).matches(frame())
        assert CaptureFilter(min_bytes=100).matches(frame(size_bytes=128))
        assert not CaptureFilter(min_bytes=100).matches(frame())

    def test_conjunction(self):
        flt = CaptureFilter(src_mac=MacAddress(0xA), vlan=100)
        assert flt.matches(frame(vlan=100))
        assert not flt.matches(frame(src_mac=MacAddress(0xC), vlan=100))


class TestCaptureBuffer:
    def test_counts_seen_and_matched(self):
        cap = Capture(flt=CaptureFilter(tenant_id=1))
        cap._observe(frame(tenant_id=1), 0.1)
        cap._observe(frame(tenant_id=2), 0.2)
        assert cap.seen == 2
        assert cap.matched == 1
        assert len(cap) == 1

    def test_ring_buffer_bounded(self):
        cap = Capture(max_records=3)
        for i in range(10):
            cap._observe(frame(), float(i))
        assert len(cap) == 3
        assert cap.records[0].timestamp == 7.0

    def test_render_summary_lines(self):
        cap = Capture()
        cap._observe(frame(vlan=100), 0.000123)
        text = cap.render()
        assert "vlan 100" in text
        assert "192.168.1.10 > 10.0.0.10" in text
        assert "UDP 64B" in text
        assert "1/1 frames matched" in text

    def test_render_limit(self):
        cap = Capture()
        for i in range(5):
            cap._observe(frame(), float(i))
        text = cap.render(limit=2)
        assert text.count("\n") == 2  # header + 2 records

    def test_invalid_buffer_size(self):
        with pytest.raises(ValueError):
            Capture(max_records=0)


class TestAttachment:
    def test_attach_to_harness_tap(self):
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_1),
                             TrafficScenario.P2V)
        h = TestbedHarness(d)
        cap = Capture(flt=CaptureFilter(tenant_id=2)).attach_tap(h.egress_tap)
        h.configure_tenant_flows(rate_per_flow_pps=1000)
        h.run(duration=0.01)
        assert cap.matched > 0
        assert all(r.frame.tenant_id == 2 for r in cap.records)

    def test_attach_port_preserves_delivery(self):
        sim = Simulator()
        received = []
        port = Port("dst", received.append)
        cap = Capture().attach_port(port, sim)
        port.receive(frame())
        assert len(received) == 1
        assert len(cap) == 1


class TestReplay:
    def test_replay_preserves_relative_timing(self):
        sim = Simulator()
        cap = Capture()
        cap._observe(frame(), 5.0)
        cap._observe(frame(), 5.3)
        arrivals = []
        dst = Port("dst", lambda f: arrivals.append(sim.now))
        assert cap.replay(sim, dst) == 2
        sim.run()
        assert arrivals == [pytest.approx(0.0), pytest.approx(0.3)]

    def test_replay_speedup(self):
        sim = Simulator()
        cap = Capture()
        cap._observe(frame(), 0.0)
        cap._observe(frame(), 1.0)
        arrivals = []
        dst = Port("dst", lambda f: arrivals.append(sim.now))
        cap.replay(sim, dst, speedup=10.0)
        sim.run()
        assert arrivals[1] == pytest.approx(0.1)

    def test_replay_uses_copies(self):
        sim = Simulator()
        cap = Capture()
        original = frame()
        cap._observe(original, 0.0)
        out = []
        dst = Port("dst", out.append)
        cap.replay(sim, dst)
        sim.run()
        assert out[0].frame_id != original.frame_id

    def test_empty_replay(self):
        sim = Simulator()
        assert Capture().replay(sim, Port("dst")) == 0

    def test_replayed_traffic_forwards_through_deployment(self):
        """Capture at ingress, replay into a fresh deployment: the
        regression-debugging loop."""
        spec = make_spec(level=SecurityLevel.LEVEL_1)
        d1 = build_deployment(spec, TrafficScenario.P2V)
        h1 = TestbedHarness(d1)
        cap = Capture().attach_tap(h1.ingress_tap)
        h1.configure_tenant_flows(rate_per_flow_pps=1000)
        h1.run(duration=0.01)
        assert cap.matched > 0

        d2 = build_deployment(spec, TrafficScenario.P2V)
        h2 = TestbedHarness(d2)
        cap.replay(d2.sim, d2.external_ingress(0))
        d2.sim.run(until=d2.sim.now + 1.0)
        assert h2.sink.total == cap.matched
