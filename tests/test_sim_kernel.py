"""The discrete-event kernel: ordering, cancellation, windows."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, order.append, "b")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(3.0, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        order = []
        for tag in ("first", "second", "third"):
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_call_later_is_relative(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.call_later(2.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [3.0]

    def test_cannot_schedule_into_the_past(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.call_later(-1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []
        assert sim.events_fired == 0

    def test_pending_skips_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.pending() == 1
        keep.cancel()
        assert sim.pending() == 0


class TestRunWindows:
    def test_until_excludes_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(5.0, fired.append, 5)
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0  # clock lands exactly on the window edge

    def test_remaining_events_fire_on_next_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(5.0, fired.append, 5)
        sim.run(until=2.0)
        sim.run()
        assert fired == [1, 5]

    def test_max_events_bounds_execution(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_peek_returns_next_timestamp(self):
        sim = Simulator()
        assert sim.peek() is None
        sim.schedule(4.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.peek() == 2.0

    def test_run_returns_fired_count(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i), lambda: None)
        assert sim.run() == 4

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def recurse():
            sim.run()

        sim.schedule(1.0, recurse)
        with pytest.raises(SimulationError):
            sim.run()

    def test_cascading_events(self):
        """An event scheduling another event at the same instant."""
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.call_later(0.0, lambda: order.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "second"]
