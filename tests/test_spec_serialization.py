"""Spec JSON round-tripping and CLI config files."""

import json

import pytest
from hypothesis import given, settings

from repro.cli import main
from repro.core import DeploymentSpec, ResourceMode, SecurityLevel
from repro.core.spec import ArpMode, CompartmentKind
from repro.errors import ValidationError
from tests.test_deployment_properties import specs


class TestRoundTrip:
    def test_simple_round_trip(self):
        spec = DeploymentSpec(level=SecurityLevel.LEVEL_2,
                              num_vswitch_vms=2)
        assert DeploymentSpec.from_dict(spec.to_dict()) == spec

    def test_everything_set_round_trip(self):
        spec = DeploymentSpec(
            level=SecurityLevel.LEVEL_2, num_tenants=4, num_vswitch_vms=2,
            resource_mode=ResourceMode.SHARED, user_space=False,
            baseline_cores=2, nic_ports=1, tenant_cores=3,
            arp_mode=ArpMode.PROXY, tunneling=True, tunnel_vni_base=7000,
            zone_of_tenant=(0, 1, 1, 1),
            compartment_kind=CompartmentKind.CONTAINER,
            premium_compartments=(0,),
        )
        restored = DeploymentSpec.from_dict(spec.to_dict())
        assert restored == spec

    def test_json_serializable(self):
        spec = DeploymentSpec(level=SecurityLevel.LEVEL_1, tunneling=True)
        text = json.dumps(spec.to_dict())
        assert DeploymentSpec.from_dict(json.loads(text)) == spec

    @settings(max_examples=40, deadline=None)
    @given(specs())
    def test_round_trip_property(self, spec):
        assert DeploymentSpec.from_dict(spec.to_dict()) == spec

    def test_partial_dict_uses_defaults(self):
        spec = DeploymentSpec.from_dict({"level": "level1"})
        assert spec.num_tenants == 4
        assert spec.resource_mode is ResourceMode.SHARED

    def test_unknown_field_rejected(self):
        with pytest.raises(ValidationError):
            DeploymentSpec.from_dict({"level": "level1", "typo": 1})

    def test_invalid_values_still_validated(self):
        with pytest.raises(ValidationError):
            DeploymentSpec.from_dict({"level": "level2",
                                      "num_vswitch_vms": 1})


class TestCliConfig:
    def test_describe_from_config_file(self, tmp_path, capsys):
        config = tmp_path / "spec.json"
        spec = DeploymentSpec(level=SecurityLevel.LEVEL_2,
                              num_vswitch_vms=4)
        config.write_text(json.dumps(spec.to_dict()))
        assert main(["describe", "--config", str(config)]) == 0
        out = capsys.readouterr().out
        assert "L2(4)" in out
        assert "vsw3" in out

    def test_config_overrides_flags(self, tmp_path, capsys):
        config = tmp_path / "spec.json"
        config.write_text(json.dumps(
            DeploymentSpec(level=SecurityLevel.BASELINE).to_dict()))
        assert main(["describe", "--level", "l2", "--vms", "2",
                     "--config", str(config)]) == 0
        assert "Baseline(1)" in capsys.readouterr().out
