"""The OVS-like bridge: ports, pipeline, NORMAL switching, timing."""

import pytest

from repro.host.cpu import CorePool
from repro.net import Frame, IPv4Address, MacAddress
from repro.net.interfaces import PortPair
from repro.perfmodel.calibration import kernel_pass_costs
from repro.sim import Simulator
from repro.vswitch import (
    DatapathMode,
    Drop,
    FlowMatch,
    FlowRule,
    Normal,
    Output,
    OvsBridge,
    PortClass,
    SetDstMac,
)


def frame(dst_ip="10.0.0.10", **kwargs):
    defaults = dict(src_mac=MacAddress(0xA), dst_mac=MacAddress(0xB),
                    dst_ip=IPv4Address.parse(dst_ip))
    defaults.update(kwargs)
    return Frame(**defaults)


def functional_bridge(num_ports=2):
    """Bridge in functional mode (no compute -> synchronous)."""
    bridge = OvsBridge("br0")
    pairs = []
    received = []
    for i in range(num_ports):
        pair = PortPair(f"p{i}")
        pair.attach_tx(lambda f, i=i: received.append((i, f)))
        bridge.add_port(f"port{i}", PortClass.PHYSICAL, pair)
        pairs.append(pair)
    return bridge, pairs, received


class TestPorts:
    def test_port_numbers_start_at_one(self):
        bridge, _, _ = functional_bridge()
        assert [p.port_no for p in bridge.ports()] == [1, 2]

    def test_port_by_name(self):
        bridge, _, _ = functional_bridge()
        assert bridge.port_by_name("port1").port_no == 2

    def test_port_by_name_missing(self):
        from repro.errors import ConfigurationError
        bridge, _, _ = functional_bridge()
        with pytest.raises(ConfigurationError):
            bridge.port_by_name("nope")

    def test_del_port_stops_delivery(self):
        bridge, pairs, received = functional_bridge()
        bridge.add_flow(FlowRule(match=FlowMatch(), actions=[Output(2)]))
        bridge.del_port(1)
        pairs[0].rx.receive(frame())
        assert received == []


class TestPipeline:
    def test_output_action_forwards(self):
        bridge, pairs, received = functional_bridge()
        bridge.add_flow(FlowRule(match=FlowMatch(in_port=1),
                                 actions=[Output(2)]))
        pairs[0].rx.receive(frame())
        assert len(received) == 1
        assert received[0][0] == 1  # egress out pair index 1

    def test_no_match_drops(self):
        bridge, pairs, received = functional_bridge()
        pairs[0].rx.receive(frame())
        assert received == []
        assert bridge.drops_no_match == 1

    def test_drop_action(self):
        bridge, pairs, received = functional_bridge()
        bridge.add_flow(FlowRule(match=FlowMatch(), actions=[Drop()]))
        pairs[0].rx.receive(frame())
        assert received == []
        assert bridge.drops_action == 1

    def test_rewrite_then_output(self):
        bridge, pairs, received = functional_bridge()
        bridge.add_flow(FlowRule(
            match=FlowMatch(in_port=1),
            actions=[SetDstMac(MacAddress(0xFF)), Output(2)]))
        pairs[0].rx.receive(frame())
        assert received[0][1].dst_mac == MacAddress(0xFF)

    def test_multi_output_copies(self):
        bridge, pairs, received = functional_bridge(3)
        bridge.add_flow(FlowRule(match=FlowMatch(in_port=1),
                                 actions=[Output(2), Output(3)]))
        pairs[0].rx.receive(frame())
        assert len(received) == 2
        assert received[0][1].frame_id != received[1][1].frame_id

    def test_frames_stamped_through_bridge(self):
        bridge, pairs, _ = functional_bridge()
        bridge.add_flow(FlowRule(match=FlowMatch(in_port=1),
                                 actions=[Output(2)]))
        f = frame()
        pairs[0].rx.receive(f)
        assert "br0.p1.rx" in f.trace
        assert "br0.p2.tx" in f.trace


class TestNormalAction:
    def test_unknown_unicast_floods_except_ingress(self):
        bridge, pairs, received = functional_bridge(3)
        bridge.add_flow(FlowRule(match=FlowMatch(), actions=[Normal()]))
        pairs[0].rx.receive(frame())
        assert sorted(i for i, _ in received) == [1, 2]

    def test_learning_converts_flood_to_unicast(self):
        bridge, pairs, received = functional_bridge(3)
        bridge.add_flow(FlowRule(match=FlowMatch(), actions=[Normal()]))
        # Host with MAC 0xA announces itself on port 1.
        pairs[0].rx.receive(frame())
        received.clear()
        # Reply towards 0xA arrives on port 2: unicast to port 1 only.
        pairs[1].rx.receive(frame(src_mac=MacAddress(0xB),
                                  dst_mac=MacAddress(0xA)))
        assert [i for i, _ in received] == [0]

    def test_hairpin_suppressed(self):
        bridge, pairs, received = functional_bridge()
        bridge.add_flow(FlowRule(match=FlowMatch(), actions=[Normal()]))
        pairs[0].rx.receive(frame())           # learn 0xA on port 1
        received.clear()
        pairs[0].rx.receive(frame(src_mac=MacAddress(0xC),
                                  dst_mac=MacAddress(0xA)))
        assert received == []  # destination is the ingress port


class TestTimedMode:
    def _timed_bridge(self):
        sim = Simulator()
        bridge = OvsBridge("br0", mode=DatapathMode.KERNEL, sim=sim,
                           costs=kernel_pass_costs())
        pairs = []
        received = []
        for i in range(2):
            pair = PortPair(f"p{i}")
            pair.attach_tx(lambda f, i=i: received.append((sim.now, i)))
            bridge.add_port(f"port{i}", PortClass.PHYSICAL, pair)
            pairs.append(pair)
        pool = CorePool(num_cores=4)
        bridge.set_compute([pool.allocate_dedicated("ovs.pmd0")])
        bridge.add_flow(FlowRule(match=FlowMatch(in_port=1),
                                 actions=[Output(2)]))
        return sim, bridge, pairs, received

    def test_forwarding_takes_simulated_time(self):
        sim, bridge, pairs, received = self._timed_bridge()
        pairs[0].rx.receive(frame())
        sim.run()
        assert len(received) == 1
        # kernel pass: >= fixed interrupt latency + service time
        assert received[0][0] > 8e-6

    def test_utilization_reported(self):
        sim, bridge, pairs, _ = self._timed_bridge()
        for _ in range(10):
            pairs[0].rx.receive(frame())
        sim.run()
        assert 0 < bridge.utilization(sim.now) <= 1.0

    def test_compute_requires_sim_and_costs(self):
        from repro.errors import ConfigurationError
        bridge = OvsBridge("br0")
        with pytest.raises(ConfigurationError):
            bridge.set_compute([])
