"""The ``repro sweep`` subcommand end to end."""

import json
import os

import pytest

from repro.cli import main


def run_sweep(tmp_path, capsys, *extra):
    out = tmp_path / "sweep.jsonl"
    rc = main([
        "sweep", "--workload", "fig5.latency",
        "--levels", "baseline", "l1",
        "--duration", "0.02", "--jobs", "1",
        "--cache-dir", str(tmp_path / "cache"),
        "--out", str(out), *extra,
    ])
    captured = capsys.readouterr()
    lines = [json.loads(line) for line in out.read_text().splitlines()]
    return rc, captured.out, lines


class TestSweepCommand:
    def test_runs_and_writes_jsonl(self, tmp_path, capsys):
        rc, out, lines = run_sweep(tmp_path, capsys)
        assert rc == 0
        assert "sweep fig5.latency: 2 points" in out
        assert "2 points: 2 computed, 0 cached" in out
        assert len(lines) == 2
        for line in lines:
            assert line["spec"]["workload"] == "fig5.latency"
            assert line["result"]["values"]["median_us"] > 0
            assert len(line["spec_hash"]) == 64

    def test_second_run_hits_cache_everywhere(self, tmp_path, capsys):
        _, _, first = run_sweep(tmp_path, capsys)
        rc, out, second = run_sweep(tmp_path, capsys)
        assert rc == 0
        assert "2 points: 0 computed, 2 cached" in out
        assert [l["result_hash"] for l in first] == \
            [l["result_hash"] for l in second]
        assert all(l["result"]["cached"] for l in second)

    def test_no_cache_escape_hatch(self, tmp_path, capsys):
        run_sweep(tmp_path, capsys)
        rc, out, lines = run_sweep(tmp_path, capsys, "--no-cache")
        assert rc == 0
        assert "2 points: 2 computed, 0 cached" in out
        assert not any(l["result"]["cached"] for l in lines)

    def test_seed_changes_results(self, tmp_path, capsys):
        _, _, base = run_sweep(tmp_path, capsys)
        _, _, other = run_sweep(tmp_path, capsys, "--seed", "5")
        assert [l["spec_hash"] for l in base] != \
            [l["spec_hash"] for l in other]

    def test_empty_grid_fails_cleanly(self, tmp_path, capsys):
        rc = main([
            "sweep", "--levels", "baseline", "--datapaths", "dpdk",
            "--modes", "shared",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        captured = capsys.readouterr()
        assert rc == 1
        assert "[skip]" in captured.err


class TestSeedFlags:
    def test_latency_seed_flag(self, capsys):
        assert main(["latency", "--level", "l1", "--duration", "0.02",
                     "--seed", "3"]) == 0
        first = capsys.readouterr().out
        assert main(["latency", "--level", "l1", "--duration", "0.02",
                     "--seed", "3"]) == 0
        assert capsys.readouterr().out == first

    def test_experiments_seed_flag(self, capsys):
        assert main(["experiments", "--only", "fig5-resources-shared",
                     "--seed", "11"]) == 0
        assert "Fig. 5(c)" in capsys.readouterr().out
