"""Host substrate: cores, memory, VMs, hypervisor, virtio paths."""

import pytest

from repro.errors import ConfigurationError, CoreExhaustedError, MemoryExhaustedError
from repro.host import HostMemory, Hypervisor, Server, VhostPath, Vm, VmRole, VmSpec
from repro.host.cpu import CorePool
from repro.host.hypervisor import PinPolicy
from repro.host.vm import VmState
from repro.net import Frame, MacAddress
from repro.sim import Simulator
from repro.units import GIB


class TestCorePool:
    def test_host_core_reserved_not_consumed(self):
        pool = CorePool(4)
        assert pool.available() == 3
        assert pool.used_cores() == 1  # the host core counts

    def test_dedicated_allocation_is_exclusive(self):
        pool = CorePool(4)
        share = pool.allocate_dedicated("vm0.vcpu0")
        assert share.effective_hz() == share.core.freq_hz
        assert pool.available() == 2

    def test_exhaustion(self):
        pool = CorePool(2)
        pool.allocate_dedicated("a")
        with pytest.raises(CoreExhaustedError):
            pool.allocate_dedicated("b")

    def test_shared_allocation_stacks_on_one_core(self):
        pool = CorePool(8)
        shares = [pool.allocate_shared(f"vsw{i}.vcpu0") for i in range(4)]
        cores = {s.core.core_id for s in shares}
        assert len(cores) == 1
        assert shares[0].effective_hz() == pytest.approx(
            shares[0].core.freq_hz / 4)
        assert pool.used_cores() == 2  # host core + shared core

    def test_effective_hz_reflects_late_joiners(self):
        """Shares are evaluated at use time, after all pinning."""
        pool = CorePool(8)
        first = pool.allocate_shared("a")
        before = first.effective_hz()
        pool.allocate_shared("b")
        assert first.effective_hz() == pytest.approx(before / 2)

    def test_host_share_runs_on_host_core(self):
        pool = CorePool(4)
        share = pool.allocate_host_share("ovs.pmd0")
        assert share.core is pool.host_core
        # The host OS is idle during measurements: full cycle supply.
        assert share.effective_hz() == share.core.freq_hz

    def test_release_frees_core(self):
        pool = CorePool(2)
        pool.allocate_dedicated("a")
        pool.release("a")
        pool.allocate_dedicated("b")  # no raise

    def test_double_pin_rejected(self):
        pool = CorePool(4)
        pool.allocate_shared("a")
        with pytest.raises(ValueError):
            pool.cores[1].pin("a")


class TestHostMemory:
    def test_host_reserves_one_hugepage(self):
        mem = HostMemory(total_bytes=64 * GIB, hugepages_1g=16)
        assert mem.allocated_hugepages() == 1

    def test_allocate_and_release(self):
        mem = HostMemory()
        mem.allocate("vm0", ram_bytes=4 * GIB, hugepages_1g=1)
        assert mem.allocated_hugepages() == 2
        mem.release("vm0")
        assert mem.allocated_hugepages() == 1

    def test_ram_exhaustion(self):
        mem = HostMemory(total_bytes=8 * GIB, hugepages_1g=2)
        with pytest.raises(MemoryExhaustedError):
            mem.allocate("big", ram_bytes=8 * GIB)

    def test_hugepage_exhaustion(self):
        mem = HostMemory(total_bytes=64 * GIB, hugepages_1g=2)
        with pytest.raises(MemoryExhaustedError):
            mem.allocate("vm0", ram_bytes=4 * GIB, hugepages_1g=2)

    def test_duplicate_owner_rejected(self):
        mem = HostMemory()
        mem.allocate("vm0", ram_bytes=GIB)
        with pytest.raises(MemoryExhaustedError):
            mem.allocate("vm0", ram_bytes=GIB)

    def test_ram_must_cover_hugepages(self):
        mem = HostMemory()
        with pytest.raises(ValueError):
            mem.allocate("vm0", ram_bytes=GIB // 2, hugepages_1g=1)


class TestHypervisor:
    def _server(self):
        return Server(Simulator(), num_cores=8)

    def test_define_start_stop_undefine(self):
        server = self._server()
        hv = Hypervisor(server)
        vm = hv.define_vm(VmSpec(name="t0", role=VmRole.TENANT, vcpus=2))
        assert vm.state is VmState.DEFINED
        hv.start(vm)
        assert vm.is_running
        hv.undefine(vm)
        assert "t0" not in server.vms
        assert server.cores.available() == 7

    def test_double_start_rejected(self):
        hv = Hypervisor(self._server())
        vm = hv.define_vm(VmSpec(name="t0", role=VmRole.TENANT))
        hv.start(vm)
        with pytest.raises(ConfigurationError):
            hv.start(vm)

    def test_duplicate_name_rejected(self):
        hv = Hypervisor(self._server())
        hv.define_vm(VmSpec(name="t0", role=VmRole.TENANT))
        with pytest.raises(ConfigurationError):
            hv.define_vm(VmSpec(name="t0", role=VmRole.TENANT))

    def test_failed_define_rolls_back(self):
        """Core exhaustion mid-define must not leak memory allocations."""
        server = Server(Simulator(), num_cores=2)
        hv = Hypervisor(server)
        before = server.memory.allocated_bytes()
        with pytest.raises(CoreExhaustedError):
            hv.define_vm(VmSpec(name="big", role=VmRole.TENANT, vcpus=4))
        assert server.memory.allocated_bytes() == before
        assert "big" not in server.vms

    def test_shared_pinning(self):
        server = self._server()
        hv = Hypervisor(server)
        a = hv.define_vm(VmSpec(name="v0", role=VmRole.VSWITCH,
                                pin_policy=PinPolicy.SHARED))
        b = hv.define_vm(VmSpec(name="v1", role=VmRole.VSWITCH,
                                pin_policy=PinPolicy.SHARED))
        assert a.compute[0].core is b.compute[0].core

    def test_attach_vf(self):
        server = self._server()
        hv = Hypervisor(server)
        vm = hv.define_vm(VmSpec(name="t0", role=VmRole.TENANT))
        vf = server.nic.port(0).create_vf()
        hv.attach_vf(vm, vf, 0)
        assert vf.attached_to == "t0"
        assert vm.vfs == [vf]

    def test_vm_app_registry(self):
        vm = Vm(name="x", role=VmRole.TENANT)
        vm.install_app("a", object())
        with pytest.raises(ValueError):
            vm.install_app("a", object())


class TestVhostPath:
    def test_bidirectional_delivery_with_latency(self):
        sim = Simulator()
        path = VhostPath(sim, "vh0")
        host_got, guest_got = [], []
        path.host_side.rx.connect(lambda f: host_got.append(sim.now))
        path.guest_side.rx.connect(lambda f: guest_got.append(sim.now))
        f = Frame(src_mac=MacAddress(1), dst_mac=MacAddress(2))
        path.host_side.transmit(f)
        sim.run()
        assert guest_got == [pytest.approx(path.costs.latency)]
        path.guest_side.transmit(f.copy())
        sim.run()
        assert len(host_got) == 1
        assert path.crossings == 2

    def test_frames_stamped(self):
        sim = Simulator()
        path = VhostPath(sim, "vh0")
        path.guest_side.rx.connect(lambda f: None)
        f = Frame(src_mac=MacAddress(1), dst_mac=MacAddress(2))
        path.host_side.transmit(f)
        sim.run()
        assert "vh0.h2g" in f.trace
