"""Frame model: VLAN handling, sizes, tracing, copies."""

import pytest
from hypothesis import given, strategies as st

from repro.net import Frame, MacAddress
from repro.net.packet import VLAN_TAG_BYTES


def frame(**kwargs):
    defaults = dict(src_mac=MacAddress(1), dst_mac=MacAddress(2))
    defaults.update(kwargs)
    return Frame(**defaults)


class TestVlan:
    def test_push_pop_roundtrip(self):
        f = frame()
        f.push_vlan(100)
        assert f.vlan == 100
        assert f.pop_vlan() == 100
        assert f.vlan is None

    def test_double_push_rejected(self):
        f = frame(vlan=5)
        with pytest.raises(ValueError):
            f.push_vlan(6)

    def test_pop_untagged_rejected(self):
        with pytest.raises(ValueError):
            frame().pop_vlan()

    @pytest.mark.parametrize("bad", [0, 4095, -1, 5000])
    def test_vlan_range_enforced(self, bad):
        with pytest.raises(ValueError):
            frame().push_vlan(bad)

    def test_constructor_vlan_range(self):
        with pytest.raises(ValueError):
            frame(vlan=0)


class TestSize:
    def test_minimum_frame_enforced(self):
        with pytest.raises(ValueError):
            frame(size_bytes=63)

    def test_wire_size_includes_tag(self):
        f = frame(size_bytes=64)
        assert f.wire_size() == 64
        f.push_vlan(100)
        assert f.wire_size() == 64 + VLAN_TAG_BYTES


class TestTraceAndCopy:
    def test_stamp_appends(self):
        f = frame()
        f.stamp("a")
        f.stamp("b")
        assert f.trace == ["a", "b"]

    def test_copy_gets_fresh_identity_and_empty_trace(self):
        f = frame(vlan=7, flow_id=3, tenant_id=1)
        f.stamp("hop")
        c = f.copy()
        assert c.frame_id != f.frame_id
        assert c.trace == []
        assert c.vlan == 7
        assert c.flow_id == 3
        assert c.tenant_id == 1

    def test_copy_is_independent(self):
        f = frame()
        c = f.copy()
        c.dst_mac = MacAddress(99)
        assert f.dst_mac == MacAddress(2)

    def test_frame_ids_monotonic(self):
        a, b = frame(), frame()
        assert b.frame_id > a.frame_id

    @given(st.integers(min_value=64, max_value=9000))
    def test_wire_size_never_smaller_than_frame(self, size):
        f = frame(size_bytes=size)
        assert f.wire_size() >= size
