"""Differential fuzzing of the lookup fast path.

The tuple-space classifier + EMC (``FlowTable(fastpath=True)``) and the
VEB decision cache must be *observationally identical* to their retained
O(n) reference paths -- same matched rules, same forwarding decisions,
same counters, byte for byte -- across arbitrary rule/table churn.  These
tests drive tens of thousands of randomized frames through both
implementations in lockstep and compare every observable after every
step.

The value universe is deliberately tiny (a handful of MACs/IPs/ports) so
the random streams produce a rich mix of hits, misses, EMC hits, prefix
matches, priority ties, and post-churn invalidations.
"""

import random

import pytest

from repro.net.addresses import IPv4Address, MacAddress
from repro.net.packet import EtherType, Frame, IpProto
from repro.sriov.switch import UPLINK, VebSwitch
from repro.sriov.vf import FunctionKind, VirtualFunction
from repro.vswitch.actions import Drop, Output
from repro.vswitch.flowtable import FlowRule, FlowTable
from repro.vswitch.matches import FlowMatch

MACS = [MacAddress(0x020000000000 + i) for i in range(6)]
IPS = [IPv4Address(0x0A000000 + i) for i in range(6)]
SUBNETS = [(IPv4Address(0x0A000000), 24), (IPv4Address(0x0A000000), 30),
           (IPv4Address(0x0B000000), 8)]
PORTS = [0, 53, 80, 4789]
VLANS = [None, 10, 20]
TUNNELS = [None, 100, 200]
IN_PORTS = [1, 2, 3]
PROTOS = [IpProto.UDP, IpProto.TCP]


def random_match(rng: random.Random) -> FlowMatch:
    """A random conjunction: each field independently wildcarded."""
    kwargs = {}
    if rng.random() < 0.3:
        kwargs["in_port"] = rng.choice(IN_PORTS)
    if rng.random() < 0.3:
        kwargs["src_mac"] = rng.choice(MACS)
    if rng.random() < 0.4:
        kwargs["dst_mac"] = rng.choice(MACS)
    if rng.random() < 0.2:
        kwargs["ethertype"] = EtherType.IPV4
    if rng.random() < 0.3:
        kwargs["vlan"] = rng.choice([v for v in VLANS if v is not None])
    if rng.random() < 0.3:
        kwargs["src_ip"] = rng.choice(IPS)
    if rng.random() < 0.5:
        if rng.random() < 0.5:
            kwargs["dst_ip"] = rng.choice(IPS)
        else:
            net, prefix = rng.choice(SUBNETS)
            kwargs["dst_ip"] = net
            kwargs["dst_ip_prefix"] = prefix
    if rng.random() < 0.2:
        kwargs["proto"] = rng.choice(PROTOS)
    if rng.random() < 0.2:
        kwargs["src_port"] = rng.choice(PORTS)
    if rng.random() < 0.3:
        kwargs["dst_port"] = rng.choice(PORTS)
    if rng.random() < 0.2:
        kwargs["tunnel_id"] = rng.choice([t for t in TUNNELS if t is not None])
    return FlowMatch(**kwargs)


def random_frame(rng: random.Random) -> Frame:
    return Frame(
        src_mac=rng.choice(MACS),
        dst_mac=rng.choice(MACS),
        vlan=rng.choice(VLANS),
        src_ip=rng.choice(IPS) if rng.random() < 0.9 else None,
        dst_ip=rng.choice(IPS) if rng.random() < 0.9 else None,
        proto=rng.choice(PROTOS),
        src_port=rng.choice(PORTS),
        dst_port=rng.choice(PORTS),
        tunnel_id=rng.choice(TUNNELS),
        size_bytes=rng.choice([64, 512, 1500]),
    )


def make_rule(rng: random.Random, seq: int) -> dict:
    """Rule ingredients, instantiated twice (one per table)."""
    return dict(
        match=random_match(rng),
        priority=rng.choice([50, 100, 100, 100, 200, 300]),
        tenant_id=rng.choice([None, 0, 1, 2, 3]),
        actions_factory=(lambda: [Drop()]) if seq % 5 == 0
        else (lambda p=rng.choice([1, 2, 3, 4]): [Output(port_no=p)]),
    )


def assert_tables_agree(fast: FlowTable, oracle: FlowTable) -> None:
    assert fast.lookups == oracle.lookups
    assert fast.misses == oracle.misses
    assert len(fast) == len(oracle)
    assert fast.dump() == oracle.dump()  # cookies, priorities, counters


class TestFlowTableDifferential:
    """fastpath=True vs the linear-scan oracle, frame by frame."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_lockstep_with_churn(self, seed):
        rng = random.Random(seed)
        fast = FlowTable("fuzz.fast", fastpath=True)
        oracle = FlowTable("fuzz.oracle", fastpath=False)
        live_cookies = []

        def add_rule():
            spec = make_rule(rng, len(live_cookies))
            a = fast.add(FlowRule(match=spec["match"],
                                  actions=spec["actions_factory"](),
                                  priority=spec["priority"],
                                  tenant_id=spec["tenant_id"]))
            b = oracle.add(FlowRule(match=spec["match"],
                                    actions=spec["actions_factory"](),
                                    priority=spec["priority"],
                                    tenant_id=spec["tenant_id"]))
            assert a.cookie == b.cookie  # per-table allocators in lockstep
            live_cookies.append(a.cookie)

        for _ in range(30):
            add_rule()

        n_frames = 4000  # x3 seeds >= 10k frames overall
        for i in range(n_frames):
            frame_spec = random_frame(rng)
            in_port = rng.choice(IN_PORTS)
            # Same header content, distinct Frame objects so counter
            # mutations (n_bytes via wire_size) cannot alias.
            r_fast = fast.lookup(frame_spec, in_port)
            r_oracle = oracle.lookup(frame_spec, in_port)
            if r_oracle is None:
                assert r_fast is None
            else:
                assert r_fast is not None
                assert r_fast.cookie == r_oracle.cookie
                assert r_fast.priority == r_oracle.priority
                assert r_fast.n_packets == r_oracle.n_packets
                assert r_fast.n_bytes == r_oracle.n_bytes

            # Interleaved churn: add/remove/withdraw-tenant/clear.
            if i % 97 == 0:
                add_rule()
            if i % 211 == 0 and live_cookies:
                cookie = rng.choice(live_cookies)
                assert (fast.remove_by_cookie(cookie)
                        == oracle.remove_by_cookie(cookie))
                live_cookies.remove(cookie)
            if i % 503 == 0:
                tenant = rng.choice([0, 1, 2, 3])
                assert (fast.remove_tenant(tenant)
                        == oracle.remove_tenant(tenant))
                live_cookies[:] = [r.cookie for r in fast]
            if i == n_frames // 2:
                fast.clear()
                oracle.clear()
                live_cookies.clear()
                for _ in range(20):
                    add_rule()
            if i % 251 == 0:
                assert_tables_agree(fast, oracle)

        assert_tables_agree(fast, oracle)
        assert fast.emc_stats.misses > 0

        # Steady-state phase: replay a handful of fixed headers so the
        # EMC actually serves hits (the random universe above is too
        # large for organic repeats), and verify cached hits keep
        # counters exact.
        steady = [(random_frame(rng), rng.choice(IN_PORTS))
                  for _ in range(8)]
        for _ in range(50):
            for frame, in_port in steady:
                r_fast = fast.lookup(frame, in_port)
                r_oracle = oracle.lookup(frame, in_port)
                if r_oracle is None:
                    assert r_fast is None
                else:
                    assert r_fast.cookie == r_oracle.cookie
                    assert r_fast.n_packets == r_oracle.n_packets
                    assert r_fast.n_bytes == r_oracle.n_bytes
        assert_tables_agree(fast, oracle)
        # The fast path must actually have been serving from the EMC.
        assert fast.emc_stats.hits > 0

    def test_conflict_detection_untouched(self):
        """check_conflicts walks self._rules, not the index: identical
        on both paths."""
        rng = random.Random(7)
        fast = FlowTable(fastpath=True)
        oracle = FlowTable(fastpath=False)
        for i in range(40):
            spec = make_rule(rng, i)
            fast.add(FlowRule(match=spec["match"],
                              actions=spec["actions_factory"](),
                              priority=spec["priority"],
                              tenant_id=spec["tenant_id"]))
            oracle.add(FlowRule(match=spec["match"],
                                actions=spec["actions_factory"](),
                                priority=spec["priority"],
                                tenant_id=spec["tenant_id"]))
        pairs_fast = [(a.cookie, b.cookie) for a, b in fast.check_conflicts()]
        pairs_oracle = [(a.cookie, b.cookie)
                        for a, b in oracle.check_conflicts()]
        assert pairs_fast == pairs_oracle
        assert pairs_fast  # the universe is small enough that some exist

    def test_priority_tie_breaks_by_insertion_order(self):
        """Two identical-priority overlapping rules: first added wins on
        both paths, even when they land in different mask groups."""
        fast = FlowTable(fastpath=True)
        oracle = FlowTable(fastpath=False)
        m_wide = FlowMatch(dst_ip=IPS[0], dst_ip_prefix=8)
        m_narrow = FlowMatch(dst_ip=IPS[0])
        for t in (fast, oracle):
            t.add(FlowRule(match=m_wide, actions=[Output(port_no=1)],
                           priority=100))
            t.add(FlowRule(match=m_narrow, actions=[Output(port_no=2)],
                           priority=100))
        frame = Frame(src_mac=MACS[0], dst_mac=MACS[1], dst_ip=IPS[0])
        assert fast.lookup(frame, 1).cookie == oracle.lookup(frame, 1).cookie


class TestVebDecisionCacheDifferential:
    """The cached VebSwitch.forward vs a mirror that always takes the
    uncached walk, across learning churn and attach/detach."""

    def _build(self):
        sw = VebSwitch("fuzz")
        vfs = []
        for i, vlan in enumerate([10, 10, 20, None]):
            vf = VirtualFunction(index=i, pf_index=0,
                                 kind=FunctionKind.TENANT,
                                 mac=MACS[i], vlan=vlan)
            sw.attach(vf)
            vfs.append(vf)
        return sw, vfs

    @pytest.mark.parametrize("seed", [0, 1])
    def test_lockstep(self, seed):
        rng = random.Random(seed)
        cached, vfs_c = self._build()
        mirror, vfs_m = self._build()
        ingresses = [vf.name for vf in vfs_c] + [UPLINK]
        domains = [10, 20, 0]

        for i in range(3000):
            frame = Frame(src_mac=rng.choice(MACS),
                          dst_mac=rng.choice(MACS + [MacAddress((1 << 48) - 1)]))
            ingress = rng.choice(ingresses)
            vlan = rng.choice(domains)
            now = i * 1e-6
            d_cached = cached.forward(ingress, vlan, frame, now)
            d_mirror = mirror._forward_uncached(ingress, vlan, frame, now)
            assert d_cached.destinations == d_mirror.destinations
            assert d_cached.flooded == d_mirror.flooded
            assert d_cached.reason == d_mirror.reason
            assert cached.lookups == mirror.lookups
            assert cached.floods == mirror.floods
            assert cached.unknown_unicasts == mirror.unknown_unicasts
            assert cached.table_size() == mirror.table_size()

            if i % 379 == 0:
                j = rng.randrange(len(vfs_c))
                cached.detach(vfs_c[j])
                mirror.detach(vfs_m[j])
                cached.attach(vfs_c[j])
                mirror.attach(vfs_m[j])

        assert cached.decision_cache_hits > 0

    def test_last_seen_refreshed_on_cached_hit(self):
        sw, vfs = self._build()
        frame = Frame(src_mac=MACS[5], dst_mac=MACS[0])
        sw.forward(UPLINK, 10, frame, now=1.0)
        entry = sw.lookup(10, MACS[5])
        assert entry is not None and entry.last_seen == 1.0
        sw.forward(UPLINK, 10, frame, now=2.0)  # cached hit
        assert sw.decision_cache_hits == 1
        assert sw._table[(10, MACS[5])].last_seen == 2.0


# -- batched mediation chain vs per-frame oracle -------------------------

#: t_out on the batched path carries a bounded wire-occupancy
#: approximation when a held burst retro-serializes (see
#: repro/net/link.py); everything else must be byte-identical.
TOUT_ABS_TOL = 5e-6
TOUT_FRACTION = 0.02

#: A mid-run vswitch crash that heals: exercises the batch blackhole
#: handlers installed by the orchestrator and the chaos_pending() gate
#: that keeps fused routes off while faults are armed.
CRASH_PLAN = None  # built lazily; FaultPlan import is heavier


def _crash_plan():
    global CRASH_PLAN
    if CRASH_PLAN is None:
        from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
        CRASH_PLAN = FaultPlan(faults=(
            FaultSpec(kind=FaultKind.VSWITCH_CRASH, target="compartment:0",
                      at=0.003, duration=0.003),
        ))
    return CRASH_PLAN


def _run_fig5(batch, burst, tracing, metering, faulted, duration):
    """One Fig. 5 L2 run; returns every observable the exactness
    contract compares."""
    import math
    from collections import defaultdict

    import repro.billing as billing
    from repro.billing.meter import TenantMeter
    from repro import obs
    from repro.core import SecurityLevel, TrafficScenario, build_deployment
    from repro.core.spec import DeploymentSpec
    from repro.faults import runtime as chaos
    from repro.traffic import TestbedHarness

    if metering:
        billing.install(TenantMeter())
    if faulted:
        chaos.activate(_crash_plan(), seed=7)
    spec = DeploymentSpec(level=SecurityLevel.LEVEL_2, num_vswitch_vms=2)
    d = build_deployment(spec, TrafficScenario.P2V)
    tracer = obs.enable_tracing(d.sim) if tracing else None
    try:
        h = TestbedHarness(d, batch=batch)
        if burst is not None:
            h.lg.burst = burst
        h.configure_tenant_flows(rate_per_flow_pps=200_000)
        result = h.run(duration=duration)
        mon = h.monitor
        per_flow_eg = defaultdict(int)
        for _t, f in mon.egress_times:
            per_flow_eg[f] += 1
        meter = billing.METER.totals() if metering else None
        drop_spans = (sorted((s.component, s.outcome, s.trace_id)
                             for s in tracer.drops())
                      if tracing else None)
        bridge_drops = {
            b.name: (b.drops_no_match, b.drops_action, b.rx_drops(),
                     b.plan_cache_hits, b.passes)
            for b in d.bridges
        }
        nicd = d.server.nic.total_drops()
        return {
            "sent": result.sent,
            "delivered": result.delivered,
            "per_flow": dict(h.sink.per_flow),
            "samples_tin": sorted((s.flow_id, round(s.t_in, 12))
                                  for s in mon.samples),
            "tout_by_key": {(s.flow_id, round(s.t_in, 12)): s.t_out
                            for s in mon.samples},
            "eg_count": dict(per_flow_eg),
            "bridge_drops": bridge_drops,
            "nic_drops": (nicd.spoof, nicd.filtered, nicd.no_destination,
                          nicd.unconfigured_vf, nicd.rate_limited),
            "meter": meter,
            "drop_spans": drop_spans,
            "unmatched": mon.unmatched_egress,
            "loss": mon.loss_count(),
        }
    finally:
        if tracing:
            obs.disable_tracing()
        if faulted:
            chaos.deactivate()
        if metering:
            billing.uninstall(billing.METER)


def _assert_exact(oracle, batched):
    """The exactness contract: everything byte-identical except the
    bounded t_out approximation and FP-accumulated CPU meters."""
    import math

    for key in ("sent", "delivered", "per_flow", "samples_tin",
                "eg_count", "bridge_drops", "nic_drops", "drop_spans",
                "unmatched", "loss"):
        assert oracle[key] == batched[key], key
    if oracle["meter"] is not None:
        for cat in oracle["meter"]:
            av, bv = oracle["meter"][cat], batched["meter"][cat]
            if cat == "cpu":
                for t in set(av) | set(bv):
                    assert math.isclose(av.get(t, 0.0), bv.get(t, 0.0),
                                        rel_tol=1e-9, abs_tol=1e-15), \
                        f"meter.cpu[{t}]"
            else:
                assert av == bv, f"meter.{cat}"
    devs = []
    for key, t in oracle["tout_by_key"].items():
        tb = batched["tout_by_key"].get(key)
        assert tb is not None, f"missing egress sample {key}"
        devs.append(abs(tb - t))
    if devs:
        deviating = sum(1 for dv in devs if dv > 1e-12)
        assert max(devs) <= TOUT_ABS_TOL
        assert deviating <= TOUT_FRACTION * len(devs)


class TestBatchedChainDifferential:
    """The struct-of-arrays mediation chain vs the per-frame oracle on
    the full Fig. 5 L2 topology: identical delivery sets and order,
    drop reasons, metering totals -- across batch shapes, tracing,
    metering, and a mid-run crash/heal fault plan."""

    @pytest.mark.parametrize("burst", [1, 7, 32])
    def test_burst_shapes(self, burst):
        oracle = _run_fig5(batch=False, burst=None, tracing=False,
                           metering=False, faulted=False, duration=0.008)
        batched = _run_fig5(batch=True, burst=burst, tracing=False,
                            metering=False, faulted=False, duration=0.008)
        _assert_exact(oracle, batched)

    @pytest.mark.parametrize("metering", [False, True])
    @pytest.mark.parametrize("tracing", [False, True])
    def test_tracing_metering_matrix(self, tracing, metering):
        oracle = _run_fig5(batch=False, burst=None, tracing=tracing,
                           metering=metering, faulted=False,
                           duration=0.006)
        batched = _run_fig5(batch=True, burst=None, tracing=tracing,
                            metering=metering, faulted=False,
                            duration=0.006)
        _assert_exact(oracle, batched)

    @pytest.mark.parametrize("metering", [False, True])
    def test_fault_plan(self, metering):
        """A vswitch crash mid-run: a pending fault plan forces the
        per-frame oracle path (fault/heal instants land at arbitrary
        sim times, and a batch straddling one would deliver or drop as
        a unit where the oracle splits it), so a batch-requested run
        must produce byte-identical results."""
        oracle = _run_fig5(batch=False, burst=None, tracing=False,
                           metering=metering, faulted=True,
                           duration=0.008)
        batched = _run_fig5(batch=True, burst=None, tracing=False,
                            metering=metering, faulted=True,
                            duration=0.008)
        assert oracle["delivered"] < oracle["sent"]  # crash actually bit
        _assert_exact(oracle, batched)

    def test_fault_plan_forces_per_frame_path(self):
        """The chaos_pending() gate itself: with a plan armed the
        harness must not flip the generator into batched emission."""
        from repro.core import (SecurityLevel, TrafficScenario,
                                build_deployment)
        from repro.core.spec import DeploymentSpec
        from repro.faults import runtime as chaos
        from repro.traffic import TestbedHarness

        chaos.activate(_crash_plan(), seed=7)
        try:
            spec = DeploymentSpec(level=SecurityLevel.LEVEL_2,
                                  num_vswitch_vms=2)
            d = build_deployment(spec, TrafficScenario.P2V)
            h = TestbedHarness(d, batch=True)
            h.configure_tenant_flows(rate_per_flow_pps=200_000)
            h.run(duration=0.002)
            assert h.lg.batch is False
        finally:
            chaos.deactivate()

    def _run_churn_case(self, batch, duration=0.008):
        """One scripted-churn run: a live migration armed before the
        harness starts, scheduled mid-run via ChurnScript."""
        from collections import defaultdict

        from repro.controlplane.driver import ChurnScript
        from repro.core import (SecurityLevel, TrafficScenario,
                                build_deployment)
        from repro.core.spec import DeploymentSpec
        from repro.traffic import TestbedHarness

        spec = DeploymentSpec(level=SecurityLevel.LEVEL_2,
                              num_vswitch_vms=2)
        d = build_deployment(spec, TrafficScenario.P2V)
        h = TestbedHarness(d, batch=batch)
        h.configure_tenant_flows(rate_per_flow_pps=200_000)
        script = ChurnScript(d)
        try:
            script.schedule_migration(0.003, tenant_id=0, target=1)
            result = h.run(duration=duration)
        finally:
            script.close()
        mon = h.monitor
        per_flow_eg = defaultdict(int)
        for _t, f in mon.egress_times:
            per_flow_eg[f] += 1
        return {
            "sent": result.sent,
            "delivered": result.delivered,
            "per_flow": dict(h.sink.per_flow),
            "samples_tin": sorted((s.flow_id, round(s.t_in, 12))
                                  for s in mon.samples),
            "tout_by_key": {(s.flow_id, round(s.t_in, 12)): s.t_out
                            for s in mon.samples},
            "eg_count": dict(per_flow_eg),
            "unmatched": mon.unmatched_egress,
            "loss": mon.loss_count(),
            "lg_batch": h.lg.batch,
            "migrations": list(script.completed),
        }

    def test_churn_migration_differential(self):
        """A ChurnScript-scheduled live migration mid-run: the armed
        lifecycle hold must force the per-frame oracle path (a batch
        straddling the migration instant would deliver as a unit where
        connectivity actually dropped mid-burst), and a batch-requested
        run must be byte-identical to the oracle."""
        oracle = self._run_churn_case(batch=False)
        batched = self._run_churn_case(batch=True)
        assert batched["lg_batch"] is False  # the gate held
        assert oracle["migrations"] == batched["migrations"]
        assert len(oracle["migrations"]) == 1
        assert oracle["delivered"] < oracle["sent"]  # downtime bit
        for key in ("sent", "delivered", "per_flow", "samples_tin",
                    "tout_by_key", "eg_count", "unmatched", "loss"):
            assert oracle[key] == batched[key], key

    def test_churn_holds_drain(self):
        """Lifecycle holds must not leak: pending before the ops fire,
        clear after the run (else every later run is deoptimized)."""
        from repro.controlplane.driver import ChurnScript
        from repro.core import (SecurityLevel, TrafficScenario,
                                build_deployment)
        from repro.core.spec import DeploymentSpec
        from repro.faults import runtime as chaos
        from repro.traffic import TestbedHarness

        assert chaos.chaos_pending() is False
        spec = DeploymentSpec(level=SecurityLevel.LEVEL_2,
                              num_vswitch_vms=2)
        d = build_deployment(spec, TrafficScenario.P2V)
        h = TestbedHarness(d, batch=True)
        h.configure_tenant_flows(rate_per_flow_pps=200_000)
        script = ChurnScript(d)
        try:
            script.schedule_migration(0.001, tenant_id=0, target=1)
            assert chaos.chaos_pending() is True  # armed = pending
            h.run(duration=0.004)
        finally:
            script.close()
        assert chaos.chaos_pending() is False  # drained, no leak

    def test_billing_reconciliation_on_batched_path(self):
        """MeteringSession windows + invariants must reconcile on the
        batched path, not just match the oracle's totals."""
        from repro.billing.session import MeteringSession
        from repro.core import (SecurityLevel, TrafficScenario,
                                build_deployment)
        from repro.core.spec import DeploymentSpec
        from repro.traffic import TestbedHarness

        spec = DeploymentSpec(level=SecurityLevel.LEVEL_2,
                              num_vswitch_vms=2)
        d = build_deployment(spec, TrafficScenario.P2V)
        h = TestbedHarness(d, batch=True)
        h.configure_tenant_flows(rate_per_flow_pps=200_000)
        session = MeteringSession(d, h, interval=0.002)
        session.arm(0.01)
        result = h.run(duration=0.01)
        summary = session.finish()
        assert summary["reconciled"], summary["failures"]
        assert summary["windows"] >= 5
        assert result.sent == 8001
