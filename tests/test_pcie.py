"""PCIe bus model: effective bandwidth, transfer times."""

import pytest

from repro.sriov import PcieBus, PcieGen


class TestBandwidth:
    def test_x8_gen3_is_about_50_gbps(self):
        """The figure the paper quotes from Neugebauer et al."""
        bus = PcieBus(gen=PcieGen.GEN3, lanes=8)
        assert bus.effective_bandwidth_bps() == pytest.approx(50e9, rel=0.02)

    def test_x16_doubles_bandwidth(self):
        """The paper's proposed workaround for 40/100G deployments."""
        x8 = PcieBus(gen=PcieGen.GEN3, lanes=8)
        x16 = PcieBus(gen=PcieGen.GEN3, lanes=16)
        assert x16.effective_bandwidth_bps() == pytest.approx(
            2 * x8.effective_bandwidth_bps())

    def test_gen4_doubles_bandwidth(self):
        g3 = PcieBus(gen=PcieGen.GEN3, lanes=8)
        g4 = PcieBus(gen=PcieGen.GEN4, lanes=8)
        assert g4.effective_bandwidth_bps() == pytest.approx(
            2 * g3.effective_bandwidth_bps(), rel=0.01)

    def test_invalid_lane_count(self):
        with pytest.raises(ValueError):
            PcieBus(lanes=3)


class TestTransfers:
    def test_small_transfer_dominated_by_dma_latency(self):
        bus = PcieBus()
        t = bus.transfer_time(64)
        assert 0.5e-6 < t < 2e-6

    def test_transfer_time_grows_with_size(self):
        bus = PcieBus()
        assert bus.transfer_time(4096) > bus.transfer_time(64)

    def test_bytes_accounted(self):
        bus = PcieBus()
        bus.transfer_time(100)
        bus.transfer_time(28)
        assert bus.bytes_transferred == 128

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            PcieBus().transfer_time(-1)

    def test_capacity_pps(self):
        bus = PcieBus()
        assert bus.capacity_pps(64) == pytest.approx(
            bus.effective_bandwidth_bps() / 512)
