"""Experiment modules produce complete, shape-correct tables."""

import pytest

from repro.experiments import EvalMode, configs_for_mode
from repro.experiments import (
    fig5_latency,
    fig5_resources,
    fig5_throughput,
    fig6_apache,
    fig6_iperf,
    fig6_memcached,
    table1_survey,
    vf_table,
)
from repro.experiments.common import repeat_with_noise


class TestConfigMatrices:
    def test_shared_has_four_points(self):
        labels = [c.label for c in configs_for_mode(EvalMode.SHARED)]
        assert labels == ["Baseline", "L1", "L2(2)", "L2(4)"]

    def test_isolated_has_proportional_baselines(self):
        labels = [c.label for c in configs_for_mode(EvalMode.ISOLATED)]
        assert "Baseline(2)" in labels and "Baseline(4)" in labels

    def test_dpdk_all_level3(self):
        assert all(c.user_space for c in configs_for_mode(EvalMode.DPDK))

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            configs_for_mode("bogus")

    def test_l2_4_does_not_support_v2v(self):
        from repro.core import TrafficScenario
        l2_4 = next(c for c in configs_for_mode(EvalMode.SHARED)
                    if c.label == "L2(4)")
        assert not l2_4.supports(TrafficScenario.V2V)
        assert l2_4.supports(TrafficScenario.P2V)


class TestRepetitions:
    def test_mean_close_to_base_value(self):
        mean, half = repeat_with_noise(lambda: 100.0, rel_sigma=0.01, seed=1)
        assert mean == pytest.approx(100.0, rel=0.05)
        assert half > 0

    def test_seed_reproducible(self):
        a = repeat_with_noise(lambda: 50.0, seed=7)
        b = repeat_with_noise(lambda: 50.0, seed=7)
        assert a == b


class TestFig5Tables:
    def test_throughput_table_complete(self):
        table = fig5_throughput.run(EvalMode.SHARED)
        assert len(table.series) == 4
        baseline = table.series_by_label("Baseline")
        assert set(baseline.xs()) == {"p2p", "p2v", "v2v"}
        l2_4 = table.series_by_label("L2(4)")
        assert "v2v" not in l2_4.xs()  # the paper's gap

    def test_throughput_values_positive_and_bounded(self):
        table = fig5_throughput.run(EvalMode.DPDK)
        for series in table.series:
            for x in series.xs():
                assert 0 < series.get(x) <= 14.89

    def test_latency_table(self):
        table = fig5_latency.run(EvalMode.SHARED, duration=0.05)
        assert table.series_by_label("L1").get("p2v") > 0

    def test_resources_table_values(self):
        table = fig5_resources.run(EvalMode.SHARED)
        assert table.series_by_label("Baseline").get("networking-cores") == 1
        assert table.series_by_label("L2(4)").get("networking-cores") == 2
        iso = fig5_resources.run(EvalMode.ISOLATED)
        assert iso.series_by_label("L2(4)").get("networking-cores") == 5


class TestFig6Tables:
    def test_iperf_table(self):
        table = fig6_iperf.run(EvalMode.SHARED)
        base = table.series_by_label("Baseline").get("p2v")
        mts = table.series_by_label("L2(4)").get("p2v")
        assert mts > 2 * base

    def test_apache_tables(self):
        tput = fig6_apache.run_throughput(EvalMode.SHARED)
        rt = fig6_apache.run_response_time(EvalMode.SHARED)
        assert tput.series_by_label("L1").get("p2v") > 0
        assert rt.series_by_label("Baseline").get("p2v") > rt.series_by_label(
            "L1").get("p2v")

    def test_memcached_tables(self):
        tput = fig6_memcached.run_throughput(EvalMode.SHARED)
        assert (tput.series_by_label("L2(2)").get("p2v")
                > tput.series_by_label("Baseline").get("p2v"))


class TestStaticTables:
    def test_table1_summary(self):
        table = table1_survey.run()
        fraction = table.series_by_label("fraction")
        assert fraction.get("monolithic") > 0.9

    def test_vf_budget_table_matches_paper(self):
        table = vf_table.run()
        l1 = table.series_by_label("Level-1")
        assert l1.get("1T") == 3
        assert l1.get("4T") == 9
        l2 = table.series_by_label("Level-2 (per-tenant)")
        assert l2.get("2T") == 6
        assert l2.get("4T") == 12

    def test_all_tables_render(self):
        for table in (table1_survey.run(), vf_table.run(),
                      fig5_resources.run(EvalMode.SHARED)):
            text = table.render()
            assert text.startswith("==")
