"""Controller internals: rule structure, priorities, address plan."""

import pytest

from repro.core import SecurityLevel, TrafficScenario, build_deployment
from repro.core.controller import (
    AddressPlan,
    PRIO_EGRESS,
    PRIO_INGRESS,
    PRIO_V2V,
)
from repro.net import MacAddress
from repro.vswitch.actions import ActionType
from tests.conftest import make_spec


class TestAddressPlan:
    def _plan(self, site=0):
        return AddressPlan(external_gw_mac=MacAddress(1), site_id=site)

    def test_tenant_subnets_disjoint(self):
        plan = self._plan()
        ips = {str(plan.tenant_ip(t)) for t in range(10)}
        assert len(ips) == 10

    def test_gateway_in_tenant_subnet(self):
        plan = self._plan()
        for t in range(4):
            assert plan.tenant_gw_ip(t).in_subnet(plan.tenant_ip(t), 24)

    def test_vlans_start_at_100(self):
        plan = self._plan()
        assert plan.vlan(0) == 100
        assert plan.vlan(3) == 103

    def test_site_offsets_subnets_and_vnis(self):
        a, b = self._plan(0), self._plan(1)
        assert a.tenant_ip(0) != b.tenant_ip(0)
        assert a.vni(0) != b.vni(0)
        assert a.vlan(0) == b.vlan(0)  # VLANs are NIC-local

    def test_external_ips_outside_tenant_space(self):
        plan = self._plan()
        assert plan.external_ip(0).in_subnet(plan.external_subnet,
                                             plan.external_prefix)


class TestRuleStructure:
    def test_priorities_ordered(self):
        assert PRIO_V2V > PRIO_INGRESS > PRIO_EGRESS

    def test_p2v_rule_shape(self):
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_1),
                             TrafficScenario.P2V)
        table = d.bridges[0].table
        ingress = [r for r in table if r.priority == PRIO_INGRESS]
        egress = [r for r in table if r.priority == PRIO_EGRESS]
        # 4 tenants x 2 ports each way.
        assert len(ingress) == 8
        assert len(egress) == 8
        for rule in ingress:
            kinds = [a.type for a in rule.actions]
            assert kinds == [ActionType.SET_DST_MAC, ActionType.OUTPUT]
        for rule in egress:
            assert rule.match.in_port is not None
            assert rule.match.dst_ip is None  # catch-all default

    def test_v2v_adds_chain_rules(self):
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_1),
                             TrafficScenario.V2V)
        chain = [r for r in d.bridges[0].table if r.priority == PRIO_V2V]
        # hop-2 + hop-3 per tenant per port.
        assert len(chain) == 4 * 2 * 2

    def test_every_rule_has_an_output(self):
        for level in (SecurityLevel.BASELINE, SecurityLevel.LEVEL_1):
            d = build_deployment(make_spec(level=level),
                                 TrafficScenario.V2V)
            for bridge in d.bridges:
                for rule in bridge.table:
                    assert rule.has_output()

    def test_all_rules_tagged_with_tenant(self):
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_2, vms=2),
                             TrafficScenario.P2V)
        for bridge in d.bridges:
            for rule in bridge.table:
                assert rule.tenant_id is not None

    def test_tunneling_changes_ingress_matches(self):
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_1,
                                       tunneling=True),
                             TrafficScenario.P2V)
        ingress = [r for r in d.bridges[0].table
                   if r.priority == PRIO_INGRESS]
        assert all(r.match.tunnel_id is not None for r in ingress)
        for rule in ingress:
            kinds = [a.type for a in rule.actions]
            assert ActionType.POP_TUNNEL in kinds


class TestSingleTenantProgramming:
    def test_program_then_unprogram_roundtrip(self):
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_1),
                             TrafficScenario.P2V)
        view = d.compartment_views[0]
        before = len(view.bridge.table)
        removed = d.controller.unprogram_tenant(view, 2)
        assert removed == 4  # 2 ingress + 2 egress rules
        d.controller.program_single_tenant(view, 2)
        assert len(view.bridge.table) == before
