"""Datapath cost/timing models: pass cycles, jitter, the drain anomaly."""

import random

import pytest

from repro.perfmodel.calibration import dpdk_pass_costs, kernel_pass_costs
from repro.vswitch.datapath import DatapathMode, DatapathModel, PortClass


class TestPassCycles:
    def test_baseline_p2p_pass_is_one_mpps_per_core(self):
        costs = kernel_pass_costs()
        cycles = costs.pass_cycles(PortClass.PHYSICAL, PortClass.PHYSICAL,
                                   rewrites=False, num_ports=2)
        assert 2.1e9 / cycles == pytest.approx(0.98e6, rel=0.01)

    def test_mts_vf_pass_slightly_cheaper_than_baseline(self):
        """The paper's Fig. 5(d): MTS p2p slightly above Baseline."""
        costs = kernel_pass_costs()
        baseline = costs.pass_cycles(PortClass.PHYSICAL, PortClass.PHYSICAL,
                                     rewrites=False, num_ports=2)
        mts = costs.pass_cycles(PortClass.VF, PortClass.VF,
                                rewrites=True, num_ports=2)
        assert mts < baseline

    def test_vhost_crossing_dominates_kernel_p2v(self):
        costs = kernel_pass_costs()
        vhost = costs.pass_cycles(PortClass.PHYSICAL, PortClass.VHOST,
                                  rewrites=False, num_ports=10)
        phys = costs.pass_cycles(PortClass.PHYSICAL, PortClass.PHYSICAL,
                                 rewrites=False, num_ports=10)
        assert vhost > 2 * phys

    def test_rewrite_adds_cost(self):
        costs = kernel_pass_costs()
        plain = costs.pass_cycles(PortClass.VF, PortClass.VF, False, 2)
        rewritten = costs.pass_cycles(PortClass.VF, PortClass.VF, True, 2)
        assert rewritten - plain == costs.rewrite_cycles

    def test_dpdk_poll_tax_scales_with_ports(self):
        costs = dpdk_pass_costs()
        few = costs.pass_cycles(PortClass.VF, PortClass.VF, False, 4)
        many = costs.pass_cycles(PortClass.VF, PortClass.VF, False, 10)
        assert many - few == 6 * costs.poll_tax_cycles_per_port

    def test_dpdk_order_of_magnitude_faster_than_kernel(self):
        kernel = kernel_pass_costs().pass_cycles(
            PortClass.PHYSICAL, PortClass.PHYSICAL, False, 2)
        dpdk = dpdk_pass_costs().pass_cycles(
            PortClass.PHYSICAL, PortClass.PHYSICAL, False, 2)
        assert kernel / dpdk > 5


class TestTiming:
    def test_kernel_pass_includes_interrupt_latency(self):
        model = DatapathModel(DatapathMode.KERNEL, kernel_pass_costs())
        timing = model.timing(2100, effective_hz=2.1e9, sharers=1,
                              num_queues=1, rng=random.Random(0))
        assert timing.fixed_wait >= model.costs.fixed_latency
        assert timing.service == pytest.approx(1e-6)

    def test_shared_core_adds_sched_jitter(self):
        model = DatapathModel(DatapathMode.KERNEL, kernel_pass_costs())
        rng = random.Random(0)
        waits = [model.timing(2100, 0.525e9, sharers=4, num_queues=1,
                              rng=rng).sched_wait for _ in range(200)]
        assert max(waits) > 0
        assert max(waits) <= 3 * model.costs.sched_slice

    def test_isolated_core_no_sched_jitter(self):
        model = DatapathModel(DatapathMode.KERNEL, kernel_pass_costs())
        timing = model.timing(2100, 2.1e9, sharers=1, num_queues=1,
                              rng=random.Random(0))
        assert timing.sched_wait == 0.0

    def test_dpdk_drain_jitter_bounded(self):
        model = DatapathModel(DatapathMode.DPDK, dpdk_pass_costs())
        rng = random.Random(0)
        waits = [model.timing(300, 2.1e9, 1, 1, rng).drain_wait
                 for _ in range(200)]
        assert all(w <= model.costs.drain_jitter for w in waits)


class TestDrainAnomaly:
    """The ~1 ms Baseline multi-queue effect at 10 kpps (section 4.2)."""

    def _model(self, rate):
        model = DatapathModel(DatapathMode.DPDK, dpdk_pass_costs())
        model.offered_rate_hint_pps = rate
        return model

    def test_multi_queue_low_rate_shows_1ms(self):
        model = self._model(10_000)
        timing = model.timing(300, 2.1e9, 1, num_queues=2,
                              rng=random.Random(0))
        assert timing.drain_wait > 0.5e-3

    def test_single_queue_unaffected(self):
        model = self._model(10_000)
        timing = model.timing(300, 2.1e9, 1, num_queues=1,
                              rng=random.Random(0))
        assert timing.drain_wait < 0.2e-3

    def test_high_rate_unaffected(self):
        """At 100 kpps and above the paper measures ~2 us."""
        model = self._model(100_000)
        timing = model.timing(300, 2.1e9, 1, num_queues=2,
                              rng=random.Random(0))
        assert timing.drain_wait < 0.2e-3

    def test_no_hint_no_anomaly(self):
        model = DatapathModel(DatapathMode.DPDK, dpdk_pass_costs())
        timing = model.timing(300, 2.1e9, 1, num_queues=4,
                              rng=random.Random(0))
        assert timing.drain_wait < 0.2e-3
