"""Fabric-scale simulation: topology, placement, hybrid DES + fluid.

The fabric package embeds tenants onto a multi-rack substrate under
security constraints, then simulates designated flows per-packet while
everything else flows through the capacity solver.  These tests pin:

- the topology's rack/hop geometry and link naming;
- every placement security constraint (group purity, isolation
  tiers, anti-affinity, compartment and VF caps);
- the optimizer's strict win over uniform striping on an asymmetric
  mix, and its feasibility at near-full fleet occupancy;
- hybrid-vs-pure-DES agreement within the pinned 5% bound;
- the fabric-switch counters and their obs export.
"""

import pytest

from repro import obs
from repro.core import DeploymentSpec, SecurityLevel
from repro.errors import ValidationError
from repro.fabric.hybrid import FabricDeployment, StudyFlow
from repro.fabric.placement import (
    NIC_VF_CEILING, Placement, PlacementError, TenantReq, greedy_place,
    pair_hops, place, placement_cost, server_tenant_capacity,
    uniform_striping, validate_placement,
)
from repro.fabric.topology import FabricTopology
from repro.fabric.workload import (
    pick_probe_flows, pick_study_flows, synth_reqs,
)
from repro.net import Frame, Link, MacAddress, Port
from repro.net.fabric import FabricSwitch
from repro.obs.metrics import MetricsRegistry
from repro.scenario.sweep import SweepGrid, build_grid
from repro.sim import Simulator
from repro.units import GBPS


def l2_spec(vms=2, tenants=4):
    return DeploymentSpec(level=SecurityLevel.LEVEL_2, num_tenants=tenants,
                          num_vswitch_vms=vms, nic_ports=1)


class TestTopology:
    def test_single_rack_geometry(self):
        topo = FabricTopology(num_servers=8, servers_per_rack=16)
        assert topo.num_racks == 1
        assert topo.hops(0, 0) == 0
        assert topo.hops(0, 7) == 2
        assert topo.path_links(3, 3) == []

    def test_multi_rack_geometry(self):
        topo = FabricTopology(num_servers=32, servers_per_rack=16)
        assert topo.num_racks == 2
        assert topo.rack_of(15) == 0 and topo.rack_of(16) == 1
        assert topo.hops(0, 15) == 2   # same rack: via the ToR
        assert topo.hops(0, 16) == 4   # cross rack: via the spine

    def test_cross_rack_path_links(self):
        topo = FabricTopology(num_servers=32, servers_per_rack=16)
        links = topo.path_links(0, 16)
        assert "uplink.s0" in links and "downlink.s16" in links
        assert any(name.startswith("tor0") for name in links)
        assert any(name.startswith("tor1") for name in links)

    def test_link_resources_cover_every_server(self):
        topo = FabricTopology(num_servers=4, servers_per_rack=16,
                              server_link_bps=GBPS)
        caps = topo.link_resources()
        for s in range(4):
            assert caps[f"uplink.s{s}"].capacity == GBPS
            assert caps[f"downlink.s{s}"].capacity == GBPS


class TestPlacementConstraints:
    topo = FabricTopology(num_servers=4, servers_per_rack=16)

    def _place(self, reqs, policy="greedy", cap=8):
        return place(reqs, self.topo, policy=policy,
                     compartments_per_server=2, tenants_per_compartment=cap)

    def test_compartments_stay_group_pure(self):
        reqs = [TenantReq(t, demand_pps=100.0, group=t % 3)
                for t in range(12)]
        placement = self._place(reqs)
        by_slot = {}
        for r in reqs:
            by_slot.setdefault(placement.assignment[r.tenant_id],
                               set()).add(r.group)
        assert all(len(groups) == 1 for groups in by_slot.values())

    def test_isolation_2_gets_dedicated_compartment(self):
        reqs = [TenantReq(0, group=0, isolation=2),
                TenantReq(1, group=0), TenantReq(2, group=0)]
        placement = self._place(reqs)
        slot0 = placement.assignment[0]
        assert all(placement.assignment[t] != slot0 for t in (1, 2))

    def test_isolation_3_gets_group_pure_server(self):
        reqs = [TenantReq(0, group=0, isolation=3)] + [
            TenantReq(t, group=1) for t in range(1, 6)]
        placement = self._place(reqs)
        server0 = placement.server_of(0)
        assert all(placement.server_of(t) != server0 for t in range(1, 6))

    def test_distrust_is_server_anti_affinity(self):
        reqs = [TenantReq(0, group=0, distrusts=(1,)),
                TenantReq(1, group=1)]
        placement = self._place(reqs)
        assert placement.server_of(0) != placement.server_of(1)

    def test_compartment_cap_enforced(self):
        reqs = [TenantReq(t, group=0) for t in range(6)]
        placement = self._place(reqs, cap=2)
        by_slot = {}
        for t in range(6):
            by_slot.setdefault(placement.assignment[t], []).append(t)
        assert max(len(v) for v in by_slot.values()) <= 2

    def test_vf_ceiling(self):
        assert server_tenant_capacity(2) == (NIC_VF_CEILING - 2) // 2
        topo = FabricTopology(num_servers=1, servers_per_rack=16)
        too_many = server_tenant_capacity(2) + 1
        reqs = [TenantReq(t, group=0) for t in range(too_many)]
        with pytest.raises(PlacementError):
            place(reqs, topo, compartments_per_server=2,
                  tenants_per_compartment=too_many)

    def test_validate_rejects_mixed_compartment(self):
        reqs = [TenantReq(0, group=0), TenantReq(1, group=1)]
        bad = Placement({0: (0, 0), 1: (0, 0)})
        with pytest.raises(PlacementError):
            validate_placement(reqs, bad, self.topo, 2, 8)

    def test_unknown_policy_rejected(self):
        with pytest.raises(PlacementError):
            place([TenantReq(0)], self.topo, policy="anneal")


class TestPlacementObjective:
    def test_greedy_colocates_heavy_pair(self):
        topo = FabricTopology(num_servers=4, servers_per_rack=16)
        reqs = [TenantReq(0, demand_pps=50_000.0, group=0, peers=(1,)),
                TenantReq(1, demand_pps=1_000.0, group=0, peers=(0,)),
                TenantReq(2, demand_pps=10.0, group=1)]
        placement = place(reqs, topo, policy="greedy",
                          compartments_per_server=2,
                          tenants_per_compartment=8)
        assert pair_hops(topo, placement, 0, 1) == 0

    def test_greedy_strictly_beats_striping(self):
        """The acceptance mix: 64 tenants on 16 servers; the optimizer
        must land strictly below uniform striping on hop cost."""
        topo = FabricTopology(num_servers=16, servers_per_rack=16)
        reqs = synth_reqs(64, seed=0)
        greedy = place(reqs, topo, policy="greedy",
                       compartments_per_server=2, tenants_per_compartment=8)
        striped = place(reqs, topo, policy="striping",
                        compartments_per_server=2, tenants_per_compartment=8)
        cost_g = placement_cost(reqs, greedy, topo)
        cost_s = placement_cost(reqs, striped, topo)
        assert cost_g.hop_cost < cost_s.hop_cost
        assert cost_g.inter_server_pps <= cost_s.inter_server_pps

    def test_local_search_never_worse_than_greedy(self):
        topo = FabricTopology(num_servers=8, servers_per_rack=16)
        reqs = synth_reqs(48, seed=3)
        greedy = place(reqs, topo, policy="greedy",
                       compartments_per_server=2, tenants_per_compartment=8)
        local = place(reqs, topo, policy="local",
                      compartments_per_server=2, tenants_per_compartment=8)
        assert (placement_cost(reqs, local, topo).hop_cost
                <= placement_cost(reqs, greedy, topo).hop_cost + 1e-9)

    def test_greedy_feasible_at_near_full_occupancy(self):
        """248 tenants on 16 servers leave 8 spare compartment slots
        fleet-wide; the reservation guard must keep greedy feasible
        where naive compartment-opening runs the fleet dry."""
        topo = FabricTopology(num_servers=16, servers_per_rack=16)
        reqs = synth_reqs(248, seed=0)
        placement = place(reqs, topo, policy="greedy",
                          compartments_per_server=2,
                          tenants_per_compartment=8)
        assert len(placement.assignment) == 248

    def test_striping_spill_stays_valid(self):
        topo = FabricTopology(num_servers=2, servers_per_rack=16)
        reqs = [TenantReq(t, group=t // 8) for t in range(20)]
        placement = uniform_striping(reqs, topo, 2, 8)
        validate_placement(reqs, placement, topo, 2, 8)


class TestSynthMix:
    def test_deterministic_in_seed(self):
        assert synth_reqs(40, seed=7) == synth_reqs(40, seed=7)
        a = synth_reqs(40, seed=7)
        b = synth_reqs(40, seed=8)
        assert [r.demand_pps for r in a] != [r.demand_pps for r in b]

    def test_zones_are_groups(self):
        reqs = synth_reqs(32, seed=0, zone_size=8)
        assert all(r.group == r.tenant_id // 8 for r in reqs)

    def test_cross_zone_partner_edges_exist(self):
        reqs = synth_reqs(64, seed=0, zone_size=8)
        cross = [(r.tenant_id, p) for r in reqs for p in r.peers
                 if abs(p - r.tenant_id) >= 8]
        assert cross  # heads of distant zones talk

    def test_study_flow_pickers(self):
        reqs = synth_reqs(64, seed=0)
        pairs = pick_study_flows(reqs, 3)
        assert len(pairs) == 3
        assert pairs[0].rate_pps >= pairs[-1].rate_pps
        probes = pick_probe_flows(reqs, 2, rate_pps=5_000.0)
        groups = {next(r.group for r in reqs if r.tenant_id == f.src)
                  for f in probes} | \
                 {next(r.group for r in reqs if r.tenant_id == f.dst)
                  for f in probes}
        assert len(groups) == 4  # four distinct zones probed

    def test_tiny_mix_rejected(self):
        with pytest.raises(ValidationError):
            synth_reqs(1, seed=0)


def small_fabric(num_servers=4, link_bps=0.5 * GBPS):
    return FabricTopology(num_servers=num_servers, servers_per_rack=16,
                          server_link_bps=link_bps)


class TestHybrid:
    def test_residuals_shrink_foreground_capacity(self):
        """Background demand on the shared uplink must be visible to
        the fluid solution the foreground DES runs against."""
        topo = small_fabric()
        reqs = [
            TenantReq(0, demand_pps=40_000.0, frame_bytes=512, group=0,
                      peers=(2,)),
            TenantReq(1, group=0), TenantReq(2, group=1),
        ]
        placement = Placement({0: (0, 0), 1: (0, 0), 2: (1, 0)})
        flows = [StudyFlow(src=1, dst=2, rate_pps=5_000.0, frame_bytes=512)]
        deployment = FabricDeployment(l2_spec(), topo, reqs, flows,
                                      placement=placement)
        background = deployment.solve_background()
        assert background.residual_of("uplink.s0") \
            < background.capacity_of["uplink.s0"]

    def test_hybrid_matches_pure_des_within_5pct(self):
        """The acceptance bound: on a small validation deployment the
        hybrid's study-flow aggregate lands within 5% of the pure-DES
        oracle's."""
        topo = small_fabric()
        reqs = synth_reqs(16, seed=0, demand_pps=10_000.0)
        flows = pick_probe_flows(reqs, 2, rate_pps=8_000.0)
        deployment = FabricDeployment(l2_spec(), topo, reqs, flows,
                                      placement="greedy")
        hybrid = deployment.run_hybrid(duration=0.1, warmup=0.025)
        oracle = deployment.run_pure_des(duration=0.1, warmup=0.025)
        assert oracle.aggregate_delivered_pps > 0
        rel = abs(hybrid.aggregate_delivered_pps
                  - oracle.aggregate_delivered_pps) \
            / oracle.aggregate_delivered_pps
        assert rel <= 0.05
        assert hybrid.des_events < oracle.des_events

    def test_hybrid_instantiates_only_study_servers(self):
        topo = small_fabric(num_servers=8)
        reqs = synth_reqs(32, seed=0)
        flows = pick_probe_flows(reqs, 1, rate_pps=2_000.0)
        deployment = FabricDeployment(l2_spec(), topo, reqs, flows,
                                      placement="striping")
        result = deployment.run_hybrid(duration=0.05, warmup=0.01)
        assert result.des_servers <= 2
        assert deployment.last_cloud is not None

    def test_unknown_study_tenant_rejected(self):
        topo = small_fabric()
        reqs = [TenantReq(0, group=0), TenantReq(1, group=0)]
        with pytest.raises(ValidationError):
            FabricDeployment(l2_spec(), topo, reqs,
                             [StudyFlow(src=0, dst=99, rate_pps=1.0)])


class TestFabricObs:
    def _run_switch(self):
        sim = Simulator()
        switch = FabricSwitch(sim, num_ports=3)
        inboxes = []
        for i in range(3):
            rx, set_link = switch.attach(i)
            inbox = []
            set_link(Link(sim, Port(f"dev{i}", inbox.append)))
            inboxes.append((rx, inbox))
        switch.install_static(MacAddress(0x42), 2)
        inboxes[0][0].receive(Frame(src_mac=MacAddress(0x1),
                                    dst_mac=MacAddress(0x42)))
        inboxes[0][0].receive(Frame(src_mac=MacAddress(0x1),
                                    dst_mac=MacAddress(0x99)))
        sim.run()
        return switch

    def test_harvest_fabric_counts_and_deltas(self):
        switch = self._run_switch()
        registry = MetricsRegistry()
        delta = obs.harvest_fabric([switch], registry)
        assert delta["forwarded"] == 2  # floods count as egressed frames
        assert delta["floods"] == 1
        forwarded = registry.counter("fabric_forwarded_total",
                                     labels=("switch",))
        assert forwarded.labels(switch=switch.name).value == 2
        # second harvest with no new traffic folds in nothing
        again = obs.harvest_fabric([switch], registry)
        assert all(v == 0 for v in again.values())
        assert forwarded.labels(switch=switch.name).value == 2

    def test_per_port_gauges(self):
        switch = self._run_switch()
        registry = obs.fabric_gauges([switch], MetricsRegistry())
        tx = registry.gauge("fabric_port_tx",
                            labels=("switch", "port"))
        assert tx.labels(switch=switch.name, port="p2").value >= 1


class TestFabricSweepAxes:
    def test_servers_and_placements_expand(self):
        grid = SweepGrid(workload="fabric.placement", levels=("l2",),
                         servers=(4, 8), placements=("striping", "greedy"))
        specs, skipped = build_grid(grid)
        assert len(specs) == 4
        assert {(s.param("servers"), s.param("placement"))
                for s in specs} == {(4, "striping"), (4, "greedy"),
                                    (8, "striping"), (8, "greedy")}
        assert all(s.deployment.nic_ports == 1 for s in specs)

    def test_baseline_fabric_corner_skipped(self):
        grid = SweepGrid(workload="fabric.hybrid",
                         levels=("baseline", "l2"), servers=(4,))
        specs, skipped = build_grid(grid)
        assert any("MTS level" in sk.reason for sk in skipped)
        assert all(s.deployment.level.is_mts for s in specs)

    def test_non_fabric_grids_unchanged(self):
        grid = SweepGrid(workload="fig5.latency", levels=("l1",))
        specs, _ = build_grid(grid)
        names = {name for name, _v in specs[0].params}
        assert "servers" not in names and "placement" not in names
