"""Fig. 6 claims: iperf, Apache and Memcached under MTS vs Baseline."""

import pytest

from repro.core import ResourceMode, SecurityLevel, TrafficScenario, build_deployment
from repro.workloads import ApacheModel, IperfModel, MemcachedModel
from tests.conftest import make_spec

B, L1, L2 = SecurityLevel.BASELINE, SecurityLevel.LEVEL_1, SecurityLevel.LEVEL_2
SH, ISO = ResourceMode.SHARED, ResourceMode.ISOLATED
P2V, V2V = TrafficScenario.P2V, TrafficScenario.V2V


def deploy(level, vms=1, us=False, bc=1, mode=SH, scenario=P2V):
    spec = make_spec(level=level, vms=vms, user_space=us, baseline_cores=bc,
                     mode=mode, nic_ports=1)
    return build_deployment(spec, scenario)


class TestIperf:
    def test_mts_more_than_2x_in_shared_mode(self):
        """"here too we observe that MTS has a higher throughput (more
        than 2x in the shared mode) than the Baseline" """
        base = IperfModel(deploy(B)).run().aggregate_gbps
        mts = IperfModel(deploy(L2, vms=4)).run().aggregate_gbps
        assert mts / base > 2.0

    def test_mts_saturates_10g_when_isolated(self):
        """"MTS saturated the 10G link in the p2v scenario when isolated
        and DPDK modes were used" """
        mts = IperfModel(deploy(L2, vms=4, mode=ISO)).run().aggregate_gbps
        assert mts > 9.0  # goodput at MTU on a 10G wire is ~9.4G

    def test_mts_saturates_10g_with_dpdk(self):
        mts = IperfModel(deploy(L2, vms=2, us=True, mode=ISO)).run()
        assert mts.aggregate_gbps > 9.0

    def test_baseline_wins_v2v_with_dpdk(self):
        """"except when DPDK is used in the v2v topology" """
        base = IperfModel(deploy(B, us=True, bc=2, mode=ISO, scenario=V2V),
                          V2V).run().aggregate_gbps
        mts = IperfModel(deploy(L2, vms=2, us=True, mode=ISO, scenario=V2V),
                         V2V).run().aggregate_gbps
        assert base > mts

    def test_per_tenant_rates_equal(self):
        report = IperfModel(deploy(L2, vms=2)).run()
        rates = list(report.per_tenant_gbps.values())
        assert max(rates) - min(rates) < 0.01 * max(rates)


class TestApache:
    def test_mts_nearly_2x_throughput_shared(self):
        """"MTS can offer nearly 2x throughput and 4x isolation
        (Level-2) in the shared mode" """
        base = ApacheModel(deploy(B)).run().aggregate_rps
        mts = ApacheModel(deploy(L2, vms=4)).run().aggregate_rps
        assert 1.8 <= mts / base <= 3.0

    def test_mts_response_time_about_half(self):
        """"maintain a lower response time (approximately twice as
        fast) than the Baseline" """
        base = ApacheModel(deploy(B)).run().mean_response_time
        mts = ApacheModel(deploy(L2, vms=4)).run().mean_response_time
        assert 1.8 <= base / mts <= 3.0

    def test_v2v_runs_two_client_server_pairs(self):
        """"In the v2v scenario, we used only two client-servers" """
        report = ApacheModel(deploy(L2, vms=2, scenario=V2V), V2V).run()
        assert sorted(report.per_tenant_rps) == [0, 2]

    def test_response_time_closed_loop_consistency(self):
        """Little's law: rate x response time = concurrency."""
        model = ApacheModel(deploy(L1))
        report = model.run()
        for t, rate in report.per_tenant_rps.items():
            rt = report.result.response_times[t]
            assert rate * rt == pytest.approx(model.concurrency, rel=0.01)


class TestMemcached:
    def test_mts_throughput_higher_shared(self):
        base = MemcachedModel(deploy(B)).run().aggregate_ops
        mts = MemcachedModel(deploy(L2, vms=4)).run().aggregate_ops
        assert mts / base > 1.8

    def test_mts_response_time_lower(self):
        base = MemcachedModel(deploy(B)).run().mean_response_time
        mts = MemcachedModel(deploy(L2, vms=4)).run().mean_response_time
        assert base / mts > 1.8

    def test_set_fraction_validated(self):
        with pytest.raises(ValueError):
            MemcachedModel(deploy(L1), set_fraction=1.5)

    def test_get_heavy_mix_shifts_bytes_to_reverse_path(self):
        model_set = MemcachedModel(deploy(L1), set_fraction=0.9)
        model_get = MemcachedModel(deploy(L1), set_fraction=0.1)
        assert (model_set.profile().forward_bytes()
                > model_get.profile().forward_bytes())
        assert (model_set.profile().reverse_bytes()
                < model_get.profile().reverse_bytes())


class TestDpdkCostBenefit:
    def test_dpdk_fractional_benefit_for_workloads(self):
        """"for user-space packet processing, the resource costs go up
        for a fractional benefit in throughput or latency": going from
        isolated kernel to DPDK gains little for Apache under MTS."""
        kernel = ApacheModel(deploy(L2, vms=2, mode=ISO)).run().aggregate_rps
        dpdk = ApacheModel(deploy(L2, vms=2, us=True, mode=ISO)).run().aggregate_rps
        assert dpdk < kernel * 2.0
