"""Path construction and the analytic latency estimator."""

import math

import pytest

from repro.core import ResourceMode, SecurityLevel, TrafficScenario, build_deployment
from repro.perfmodel.latency import estimate_oneway_latency, estimate_rtt
from repro.perfmodel.paths import (
    ResourceRegistry,
    build_flow_paths,
    passes_for_flow,
    throughput,
)
from repro.vswitch.datapath import PortClass
from tests.conftest import make_spec

P2P, P2V, V2V = (TrafficScenario.P2P, TrafficScenario.P2V,
                 TrafficScenario.V2V)


def deploy(level=SecurityLevel.LEVEL_1, scenario=P2V, **kwargs):
    return build_deployment(make_spec(level=level, **kwargs), scenario)


class TestPassProfiles:
    def test_mts_pass_counts(self):
        d = deploy()
        assert len(passes_for_flow(d, P2P, 0)) == 1
        assert len(passes_for_flow(d, P2V, 0)) == 2
        d2 = deploy(scenario=V2V)
        assert len(passes_for_flow(d2, V2V, 0)) == 3

    def test_mts_passes_use_vf_ports_and_rewrite(self):
        d = deploy()
        for prof in passes_for_flow(d, P2V, 0):
            assert prof.in_class is PortClass.VF
            assert prof.out_class is PortClass.VF
            assert prof.rewrites

    def test_baseline_p2v_crosses_vhost_twice(self):
        d = deploy(level=SecurityLevel.BASELINE)
        passes = passes_for_flow(d, P2V, 0)
        assert sum(p.vhost_crossings for p in passes) == 2

    def test_baseline_v2v_crosses_vhost_four_times(self):
        d = deploy(level=SecurityLevel.BASELINE, scenario=V2V)
        passes = passes_for_flow(d, V2V, 0)
        assert sum(p.vhost_crossings for p in passes) == 4

    def test_level2_flows_map_to_own_compartment(self):
        d = deploy(level=SecurityLevel.LEVEL_2, vms=2)
        assert passes_for_flow(d, P2V, 0)[0].bridge_index == 0
        assert passes_for_flow(d, P2V, 3)[0].bridge_index == 1


class TestPathConstruction:
    def test_one_path_per_tenant(self):
        paths = build_flow_paths(deploy(), P2V)
        assert len(paths) == 4
        assert {p.name for p in paths} == {f"flow-t{t}" for t in range(4)}

    def test_registry_dedups_resources(self):
        d = deploy()
        registry = ResourceRegistry()
        a = build_flow_paths(d, P2V, frame_bytes=64, registry=registry)
        b = build_flow_paths(d, P2V, frame_bytes=1514, registry=registry)
        res_a = {dem.resource.name: dem.resource for p in a for dem in p.demands}
        res_b = {dem.resource.name: dem.resource for p in b for dem in p.demands}
        for name in res_a.keys() & res_b.keys():
            assert res_a[name] is res_b[name]

    def test_reverse_swaps_link_directions(self):
        d = deploy()
        registry = ResourceRegistry()
        fwd = build_flow_paths(d, P2V, registry=registry)[0]
        rev = build_flow_paths(d, P2V, registry=registry, reverse=True,
                               name_suffix=".r")[0]

        def link_demand(path, name):
            return sum(dem.units_per_packet for dem in path.demands
                       if dem.resource.name == name)

        assert link_demand(fwd, "link.in") == link_demand(rev, "link.out")

    def test_mts_p2v_has_hairpin_demand(self):
        path = build_flow_paths(deploy(), P2V)[0]
        names = {dem.resource.name for dem in path.demands}
        assert "nic.hairpin" in names
        assert "nic.hairpin_bw" in names

    def test_baseline_has_no_hairpin_demand(self):
        path = build_flow_paths(deploy(level=SecurityLevel.BASELINE), P2V)[0]
        names = {dem.resource.name for dem in path.demands}
        assert "nic.hairpin" not in names

    def test_offered_rate_respected(self):
        result = throughput(deploy(), P2V, offered_per_flow_pps=1000)
        assert result.aggregate_pps == pytest.approx(4000)

    def test_larger_frames_fewer_pps_for_baseline(self):
        """The vhost per-byte copy cost bites at MTU (Baseline only;
        MTS's SR-IOV path is DMA-offloaded and stays CPU-bound at the
        same pps)."""
        base = deploy(level=SecurityLevel.BASELINE)
        d64 = throughput(base, P2V, frame_bytes=64).aggregate_pps
        d1500 = throughput(base, P2V, frame_bytes=1514).aggregate_pps
        assert d64 > d1500

    def test_mts_pps_size_independent_when_cpu_bound(self):
        d64 = throughput(deploy(), P2V, frame_bytes=64).aggregate_pps
        d1500 = throughput(deploy(), P2V, frame_bytes=1514).aggregate_pps
        assert d64 == pytest.approx(d1500, rel=0.01)


class TestAnalyticLatency:
    def test_increases_with_path_length(self):
        d_p2p = deploy(scenario=P2P)
        d_p2v = deploy(scenario=P2V)
        d_v2v = deploy(scenario=V2V)
        lat = [estimate_oneway_latency(d_p2p, P2P),
               estimate_oneway_latency(d_p2v, P2V),
               estimate_oneway_latency(d_v2v, V2V)]
        assert lat[0] < lat[1] < lat[2]

    def test_sharing_increases_latency(self):
        shared = deploy(level=SecurityLevel.LEVEL_2, vms=4)
        isolated = build_deployment(
            make_spec(level=SecurityLevel.LEVEL_2, vms=4,
                      mode=ResourceMode.ISOLATED), P2V)
        assert (estimate_oneway_latency(shared, P2V)
                > estimate_oneway_latency(isolated, P2V))

    def test_rtt_is_sum_of_directions(self):
        d = deploy()
        rtt = estimate_rtt(d, P2V, request_bytes=128, response_bytes=1500)
        fwd = estimate_oneway_latency(d, P2V, 128)
        rev = estimate_oneway_latency(d, P2V, 1500)
        assert rtt == pytest.approx(fwd + rev)

    def test_all_scenarios_sub_millisecond_kernel(self):
        for scenario in (P2P, P2V):
            d = deploy(scenario=scenario)
            assert estimate_oneway_latency(d, scenario) < 1e-3
