"""Shared fixtures: specs and deployments for every security level."""

import pytest

from repro.core import (
    DeploymentSpec,
    ResourceMode,
    SecurityLevel,
    TrafficScenario,
    build_deployment,
)


def make_spec(level=SecurityLevel.LEVEL_1, vms=1, mode=ResourceMode.SHARED,
              user_space=False, baseline_cores=1, nic_ports=2, tenants=4,
              **kwargs):
    return DeploymentSpec(
        level=level,
        num_tenants=tenants,
        num_vswitch_vms=vms,
        resource_mode=mode,
        user_space=user_space,
        baseline_cores=baseline_cores,
        nic_ports=nic_ports,
        **kwargs,
    )


@pytest.fixture
def baseline_spec():
    return make_spec(level=SecurityLevel.BASELINE)


@pytest.fixture
def l1_spec():
    return make_spec(level=SecurityLevel.LEVEL_1)


@pytest.fixture
def l2_spec():
    return make_spec(level=SecurityLevel.LEVEL_2, vms=2)


@pytest.fixture
def l2_per_tenant_spec():
    return make_spec(level=SecurityLevel.LEVEL_2, vms=4)


@pytest.fixture
def baseline_deployment(baseline_spec):
    return build_deployment(baseline_spec, TrafficScenario.P2V)


@pytest.fixture
def l1_deployment(l1_spec):
    return build_deployment(l1_spec, TrafficScenario.P2V)


@pytest.fixture
def l2_deployment(l2_spec):
    return build_deployment(l2_spec, TrafficScenario.P2V)
