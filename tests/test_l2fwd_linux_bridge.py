"""Tenant-side forwarders: the adapted DPDK l2fwd and the Linux bridge."""

import pytest

from repro.net import Frame, MacAddress
from repro.net.interfaces import PortPair
from repro.sim import Simulator
from repro.vswitch import L2Fwd, LinuxBridge


def frame(**kwargs):
    defaults = dict(src_mac=MacAddress(0xA), dst_mac=MacAddress(0xB))
    defaults.update(kwargs)
    return Frame(**defaults)


class TestL2Fwd:
    def _app(self, sim=None):
        app = L2Fwd("l2fwd", sim=sim)
        out = []
        p0, p1 = PortPair("vf0"), PortPair("vf1")
        p0.attach_tx(lambda f: out.append((0, f)))
        p1.attach_tx(lambda f: out.append((1, f)))
        app.add_port(p0)
        app.add_port(p1)
        return app, p0, p1, out

    def test_rewrites_dst_and_src_mac(self):
        """The paper's adaptation: dst MAC -> gateway VF; src MAC ->
        the egress VF (passing the NIC spoof check)."""
        app, p0, p1, out = self._app()
        gw = MacAddress(0x11)
        own = MacAddress(0x22)
        app.set_route(0, 1, new_dst_mac=gw, new_src_mac=own)
        p0.rx.receive(frame())
        assert len(out) == 1
        port, f = out[0]
        assert port == 1
        assert f.dst_mac == gw
        assert f.src_mac == own

    def test_src_mac_preserved_when_not_configured(self):
        app, p0, p1, out = self._app()
        app.set_route(0, 1, new_dst_mac=MacAddress(0x11))
        p0.rx.receive(frame())
        assert out[0][1].src_mac == MacAddress(0xA)

    def test_unrouted_port_drops(self):
        app, p0, p1, out = self._app()
        p1.rx.receive(frame())
        assert out == []
        assert app.unrouted == 1

    def test_hairpin_route_same_port(self):
        app, p0, p1, out = self._app()
        app.set_route(0, 0, new_dst_mac=MacAddress(0x33))
        p0.rx.receive(frame())
        assert out[0][0] == 0

    def test_route_to_unknown_port_rejected(self):
        app, *_ = self._app()
        with pytest.raises(KeyError):
            app.set_route(0, 9, new_dst_mac=MacAddress(1))

    def test_timed_mode_adds_drain_wait(self):
        sim = Simulator()
        app, p0, p1, out = self._app(sim=sim)
        app.set_route(0, 1, new_dst_mac=MacAddress(0x11))
        p0.rx.receive(frame())
        assert out == []  # not yet delivered
        sim.run()
        assert len(out) == 1
        assert sim.now <= app.drain_interval + 1e-6

    def test_forward_counter(self):
        app, p0, p1, _ = self._app()
        app.set_route(0, 1, new_dst_mac=MacAddress(0x11))
        for _ in range(5):
            p0.rx.receive(frame())
        assert app.forwarded == 5


class TestLinuxBridge:
    def _bridge(self, sim=None, ports=2):
        bridge = LinuxBridge("br0", sim=sim)
        out = []
        pairs = []
        for i in range(ports):
            pair = PortPair(f"eth{i}")
            pair.attach_tx(lambda f, i=i: out.append((i, f)))
            bridge.add_port(pair)
            pairs.append(pair)
        return bridge, pairs, out

    def test_floods_unknown_unicast(self):
        bridge, pairs, out = self._bridge(ports=3)
        pairs[0].rx.receive(frame())
        assert sorted(i for i, _ in out) == [1, 2]
        assert bridge.flooded == 1

    def test_two_port_bridge_acts_as_pipe(self):
        bridge, pairs, out = self._bridge()
        pairs[0].rx.receive(frame())
        assert [i for i, _ in out] == [1]

    def test_learns_and_unicasts(self):
        bridge, pairs, out = self._bridge(ports=3)
        pairs[2].rx.receive(frame(src_mac=MacAddress(0xB),
                                  dst_mac=MacAddress(0x1)))
        out.clear()
        pairs[0].rx.receive(frame())  # dst 0xB learned on port 2
        assert [i for i, _ in out] == [2]

    def test_drops_hairpin(self):
        bridge, pairs, out = self._bridge()
        pairs[0].rx.receive(frame(src_mac=MacAddress(0xB)))  # learn B@0
        out.clear()
        pairs[1].rx.receive(frame(src_mac=MacAddress(0xC),
                                  dst_mac=MacAddress(0xB)))
        assert [i for i, _ in out] == [0]
        out.clear()
        pairs[0].rx.receive(frame(src_mac=MacAddress(0xD),
                                  dst_mac=MacAddress(0xB)))
        assert out == []  # destination behind the ingress port

    def test_timed_mode_delays_forwarding(self):
        sim = Simulator()
        bridge, pairs, out = self._bridge(sim=sim)
        pairs[0].rx.receive(frame())
        assert out == []
        sim.run()
        assert len(out) == 1
        assert sim.now >= 30e-6  # the kernel bridge latency
