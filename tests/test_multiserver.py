"""Multi-server MTS behind a leaf fabric (datacenter extension)."""

import pytest

from repro.core import DeploymentSpec, ResourceMode, SecurityLevel
from repro.core.multiserver import MultiServerCloud
from repro.errors import ConfigurationError, ValidationError
from repro.net.fabric import FabricSwitch
from repro.net import Frame, Link, MacAddress, Port
from repro.sim import Simulator


def cloud(tunneling=False, servers=2, vms=2):
    spec = DeploymentSpec(level=SecurityLevel.LEVEL_2, num_tenants=4,
                          num_vswitch_vms=vms, nic_ports=1,
                          tunneling=tunneling)
    return MultiServerCloud(spec, num_servers=servers)


class TestFabricSwitch:
    def _wired(self, ports=3):
        sim = Simulator()
        fabric = FabricSwitch(sim, num_ports=ports)
        inboxes = []
        for i in range(ports):
            rx, set_link = fabric.attach(i)
            inbox = []
            dev = Port(f"dev{i}", inbox.append)
            set_link(Link(sim, dev))
            inboxes.append((rx, inbox))
        return sim, fabric, inboxes

    def test_static_entry_forwards(self):
        sim, fabric, inboxes = self._wired()
        mac = MacAddress(0x42)
        fabric.install_static(mac, 2)
        frame = Frame(src_mac=MacAddress(0x1), dst_mac=mac)
        inboxes[0][0].receive(frame)
        sim.run()
        assert len(inboxes[2][1]) == 1
        assert inboxes[0][1] == [] and inboxes[1][1] == []

    def test_unknown_unicast_floods(self):
        sim, fabric, inboxes = self._wired()
        frame = Frame(src_mac=MacAddress(0x1), dst_mac=MacAddress(0x99))
        inboxes[0][0].receive(frame)
        sim.run()
        assert len(inboxes[1][1]) == 1 and len(inboxes[2][1]) == 1
        assert inboxes[0][1] == []  # not reflected

    def test_learning_from_sources(self):
        sim, fabric, inboxes = self._wired()
        inboxes[1][0].receive(Frame(src_mac=MacAddress(0x7),
                                    dst_mac=MacAddress(0x99)))
        sim.run()
        inboxes[0][0].receive(Frame(src_mac=MacAddress(0x1),
                                    dst_mac=MacAddress(0x7)))
        sim.run()
        assert len(inboxes[1][1]) == 1  # unicast after learning
        assert len(inboxes[2][1]) == 1  # only the earlier flood

    def test_invalid_static_port(self):
        sim = Simulator()
        fabric = FabricSwitch(sim, num_ports=2)
        with pytest.raises(ValueError):
            fabric.install_static(MacAddress(1), 5)


class TestCloudConstruction:
    def test_two_servers_eight_tenants(self):
        c = cloud()
        assert len(c.deployments) == 2
        assert len(c.tenants) == 8
        assert "2 servers" in c.describe()

    def test_global_ips_unique(self):
        c = cloud()
        ips = {t.ip for t in c.tenants.values()}
        assert len(ips) == 8

    def test_macs_unique_across_servers(self):
        c = cloud()
        macs = [vf.mac for d in c.deployments
                for vf in list(d.inout_vf.values())
                + list(d.gw_vf.values()) + list(d.tenant_vf.values())]
        assert len(set(macs)) == len(macs)

    def test_fabric_knows_every_inout_mac(self):
        c = cloud()
        for tenant in c.tenants.values():
            assert tenant.compartment_inout_mac in c.fabric._static

    def test_inter_server_rules_collapsed_per_compartment(self):
        """One dst-ip rule per (compartment, remote tenant): the old
        per-(gateway-port, remote) programming installed a copy for
        every local tenant, multiplying the table by the compartment's
        occupancy for no behavioral gain."""
        c = cloud()
        # 2 servers x 2 compartments x 4 remote tenants
        assert c.inter_server_rules == 16
        per_port_shape = 2 * 2 * 4 * 4  # x4 local gateway ports
        assert c.inter_server_rules < per_port_shape

    def test_rules_scale_with_servers_not_occupancy(self):
        small = cloud(servers=2)
        big = cloud(servers=3)
        # each server learns (servers-1) x 4 remotes per compartment
        assert small.inter_server_rules == 2 * 2 * 4
        assert big.inter_server_rules == 3 * 2 * 8

    def test_baseline_rejected(self):
        spec = DeploymentSpec(level=SecurityLevel.BASELINE, nic_ports=1)
        with pytest.raises(ConfigurationError):
            MultiServerCloud(spec)

    def test_two_port_spec_rejected(self):
        spec = DeploymentSpec(level=SecurityLevel.LEVEL_1, nic_ports=2)
        with pytest.raises(ValidationError):
            MultiServerCloud(spec)


class TestInterServerDataplane:
    def test_cross_server_delivery(self):
        """Tenant 0 (server 0) -> tenant 6 (server 1), through both
        vswitches and the leaf."""
        c = cloud()
        received = c.attach_sink(6)
        frame = c.send_between_tenants(0, 6)
        c.run()
        assert len(received) == 1
        trace = " ".join(frame.trace)
        assert "leaf0" in trace            # crossed the fabric
        assert "vsw0.br0" in trace         # source server's compartment

    def test_reverse_direction(self):
        c = cloud()
        received = c.attach_sink(1)
        c.send_between_tenants(6, 1)
        c.run()
        assert len(received) == 1

    def test_same_server_cross_compartment_stays_local(self):
        """Tenant 0 -> tenant 2 (other compartment, same server): no
        inter-server rule matches, traffic defaults out to the fabric
        and back in -- still delivered, via the leaf."""
        c = cloud()
        received = c.attach_sink(6)
        c.send_between_tenants(0, 6)
        c.run()
        assert len(received) == 1

    def test_fabric_unicasts_rather_than_floods(self):
        c = cloud()
        c.attach_sink(6)
        c.send_between_tenants(0, 6)
        c.run()
        assert c.fabric.floods == 0

    def test_tunneled_cross_server_delivery(self):
        c = cloud(tunneling=True)
        received = c.attach_sink(5)
        c.send_between_tenants(0, 5, size_bytes=114)
        c.run()
        assert len(received) == 1
        # Decapsulated on arrival: the tenant sees no outer header.
        assert received[0].tunnel_id is None
        assert received[0].decap_vni is not None

    def test_cross_server_latency_is_bounded(self):
        c = cloud()
        tenant = c.tenants[6]
        deployment = c.deployments[tenant.server_index]
        arrivals = []
        vf = deployment.tenant_vf[(tenant.local_id, 0)]
        vf.port.rx.connect(lambda f: arrivals.append(c.sim.now))
        c.send_between_tenants(0, 6)
        c.run()
        assert len(arrivals) == 1
        # Two vswitch traversals + leaf + wires: well under a millisecond
        # at low load (kernel datapaths, no queueing).
        assert arrivals[0] < 1e-3

    def test_unknown_tenant_rejected(self):
        c = cloud()
        with pytest.raises(KeyError):
            c.send_between_tenants(0, 99)
