"""Scaling sweeps and heterogeneous workload mixes (extensions)."""

import pytest

from repro.core import (
    DeploymentSpec,
    SecurityLevel,
    TrafficScenario,
    build_deployment,
)
from repro.experiments.scaling import frame_size_throughput, tenant_scaling
from repro.workloads import solve_mixed_workloads
from repro.workloads.httpd import ApacheModel
from repro.workloads.iperf import IperfModel, MSS_BYTES
from repro.workloads.memcached import MemcachedModel


class TestTenantScaling:
    def test_aggregate_flat_per_tenant_fair_share(self):
        table = tenant_scaling(tenant_counts=[2, 4, 8])
        agg = table.series_by_label("L2(2) agg")
        per = table.series_by_label("L2(2) per-tenant")
        # CPU-bound aggregate is tenant-count invariant...
        assert agg.get("2T") == pytest.approx(agg.get("8T"), rel=0.02)
        # ...so the fair share decays inversely.
        assert per.get("2T") == pytest.approx(4 * per.get("8T"), rel=0.05)

    def test_mts_advantage_holds_at_every_scale(self):
        table = tenant_scaling(tenant_counts=[2, 6])
        for col in ("2T", "6T"):
            assert (table.series_by_label("L2(2) agg").get(col)
                    > 1.8 * table.series_by_label("Baseline agg").get(col))


class TestFrameSizeThroughput:
    def test_goodput_grows_with_frame_size(self):
        table = frame_size_throughput()
        for label in ("Baseline(2)", "L2(2)", "L2(4)"):
            series = table.series_by_label(label)
            values = [series.get(f"{s}B") for s in (64, 512, 1514)]
            assert values == sorted(values)

    def test_mts_reaches_the_wire_baseline_does_not(self):
        """At MTU the Baseline's per-byte vhost copies keep it off the
        10G wire; MTS saturates it."""
        table = frame_size_throughput()
        assert table.series_by_label("L2(2)").get("1514B") > 9.5
        assert table.series_by_label("Baseline(2)").get("1514B") < 6.0


class TestMixedWorkloads:
    def _deploy(self, vms=2):
        spec = DeploymentSpec(level=SecurityLevel.LEVEL_2,
                              num_vswitch_vms=vms, nic_ports=1)
        return build_deployment(spec, TrafficScenario.P2V)

    def _profiles(self, d):
        return {
            0: IperfModel(d).profile(),
            1: ApacheModel(d).profile(),
            2: MemcachedModel(d).profile(),
            3: ApacheModel(d).profile(),
        }

    def test_each_tenant_gets_its_own_workload_result(self):
        d = self._deploy()
        results = solve_mixed_workloads(d, TrafficScenario.P2V,
                                        self._profiles(d))
        assert set(results) == {0, 1, 2, 3}
        assert results[0].profile_name == "iperf"
        assert results[2].profile_name == "memcached"
        for t, r in results.items():
            assert r.rates[t] > 0
            assert r.response_times[t] > 0

    def test_memcached_faster_than_apache_under_the_same_roof(self):
        """Small transactions beat page loads in response time even on
        shared pools."""
        d = self._deploy()
        results = solve_mixed_workloads(d, TrafficScenario.P2V,
                                        self._profiles(d))
        assert (results[2].response_times[2]
                < results[1].response_times[1] / 3)

    def test_neighbor_workload_cannot_shrink_your_cycle_share(self):
        """Cycle-share fairness: tenant 1's Apache gets the same rate
        whether its compartment-mate runs memcached or bulk iperf --
        the polite-tenant counterpart of the noisy-neighbor result."""
        d1 = self._deploy()
        light = solve_mixed_workloads(d1, TrafficScenario.P2V, {
            0: MemcachedModel(d1).profile(),
            1: ApacheModel(d1).profile(),
            2: ApacheModel(d1).profile(),
            3: ApacheModel(d1).profile(),
        })
        d2 = self._deploy()
        heavy = solve_mixed_workloads(d2, TrafficScenario.P2V, {
            0: IperfModel(d2).profile(),
            1: ApacheModel(d2).profile(),
            2: ApacheModel(d2).profile(),
            3: ApacheModel(d2).profile(),
        })
        assert heavy[1].rates[1] == pytest.approx(light[1].rates[1],
                                                  rel=0.05)
        assert heavy[3].rates[3] == pytest.approx(light[3].rates[3],
                                                  rel=0.01)

    def test_compartment_mates_get_equal_cycle_shares(self):
        """The fairness invariant itself: txn_rate x cycle_cost equal
        for tenants sharing a compartment's core."""
        d = self._deploy()
        profiles = self._profiles(d)
        results = solve_mixed_workloads(d, TrafficScenario.P2V, profiles)

        def compartment_cycles(tenant):
            from repro.perfmodel.paths import ResourceRegistry, build_flow_paths
            registry = ResourceRegistry()
            total = 0.0
            k = d.compartment_of_tenant(tenant)
            pool = f"cpu.{d.bridges[k].name}"
            for phase in profiles[tenant].phases:
                paths = build_flow_paths(d, TrafficScenario.P2V,
                                         frame_bytes=phase.frame_bytes,
                                         registry=registry,
                                         reverse=phase.reverse)
                for demand in paths[tenant].demands:
                    if demand.resource.name == pool:
                        total += demand.units_per_packet * phase.count
            return total

        share_0 = results[0].rates[0] * compartment_cycles(0)
        share_1 = results[1].rates[1] * compartment_cycles(1)
        assert share_0 == pytest.approx(share_1, rel=0.02)

    def test_single_profile_mix_matches_solve_workload(self):
        """A homogeneous mix must agree with the single-profile solver."""
        from repro.workloads import solve_workload
        d = self._deploy()
        profile = ApacheModel(d).profile()
        mixed = solve_mixed_workloads(d, TrafficScenario.P2V,
                                      {t: profile for t in range(4)})
        single = solve_workload(d, TrafficScenario.P2V, profile)
        for t in range(4):
            assert mixed[t].rates[t] == pytest.approx(single.rates[t],
                                                      rel=0.01)

    def test_iperf_tenant_goodput_derivable(self):
        d = self._deploy()
        results = solve_mixed_workloads(d, TrafficScenario.P2V,
                                        self._profiles(d))
        gbps = results[0].rates[0] * MSS_BYTES * 8 / 1e9
        assert 0.5 < gbps < 10.0
