"""Per-VF hardware rate limiting (SR-IOV QoS) + VEB property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import SecurityLevel, TrafficScenario, build_deployment
from repro.errors import ConfigurationError
from repro.net import Frame, MacAddress
from repro.sim import Simulator
from repro.sriov import FunctionKind, SriovNic
from repro.sriov.vf import VirtualFunction
from repro.sriov.switch import VebSwitch
from tests.conftest import make_spec


class TestTokenBucket:
    def _vf_pair(self, rate):
        sim = Simulator()
        nic = SriovNic(sim)
        port = nic.port(0)
        src = port.create_vf()
        dst = port.create_vf()
        port.configure_vf(src, MacAddress(0x10), vlan=100)
        port.configure_vf(dst, MacAddress(0x20), vlan=100)
        received = []
        dst.port.rx.connect(received.append)
        port.set_vf_rate_limit(src, rate)
        return sim, port, src, dst, received

    def test_burst_passes_then_policed(self):
        sim, port, src, dst, received = self._vf_pair(rate=1000)
        for _ in range(100):  # instantaneous burst at t=0
            src.port.transmit(Frame(src_mac=MacAddress(0x10),
                                    dst_mac=MacAddress(0x20)))
        sim.run()
        assert len(received) == 32  # the bucket depth
        assert src.stats.rate_limit_drops == 68
        assert port.drops.rate_limited == 68

    def test_tokens_refill_over_time(self):
        sim, port, src, dst, received = self._vf_pair(rate=1000)
        for i in range(50):
            sim.schedule(i * 1e-3,  # exactly the refill rate
                         src.port.transmit,
                         Frame(src_mac=MacAddress(0x10),
                               dst_mac=MacAddress(0x20)))
        sim.run()
        assert len(received) == 50
        assert src.stats.rate_limit_drops == 0

    def test_sustained_overload_clamped_to_rate(self):
        sim, port, src, dst, received = self._vf_pair(rate=1000)
        # 10x the limit for 100 ms.
        for i in range(1000):
            sim.schedule(i * 1e-4,
                         src.port.transmit,
                         Frame(src_mac=MacAddress(0x10),
                               dst_mac=MacAddress(0x20)))
        sim.run()
        # ~100 ms x 1000 pps + the initial burst allowance.
        assert len(received) == pytest.approx(132, abs=5)

    def test_limit_removal(self):
        sim, port, src, dst, received = self._vf_pair(rate=1000)
        port.set_vf_rate_limit(src, None)
        for _ in range(100):
            src.port.transmit(Frame(src_mac=MacAddress(0x10),
                                    dst_mac=MacAddress(0x20)))
        sim.run()
        assert len(received) == 100

    def test_invalid_rate_rejected(self):
        sim, port, src, *_ = self._vf_pair(rate=1000)
        with pytest.raises(ConfigurationError):
            port.set_vf_rate_limit(src, 0)

    def test_foreign_vf_rejected(self):
        sim = Simulator()
        nic = SriovNic(sim)
        vf = nic.port(0).create_vf()
        with pytest.raises(ConfigurationError):
            nic.port(1).set_vf_rate_limit(vf, 100)


class TestRateLimitedTenant:
    def test_policed_attacker_cannot_flood_its_compartment(self):
        """Operator caps the suspicious tenant's VF: even a shared
        compartment stays usable for the co-housed victim."""
        from repro.traffic import TestbedHarness
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_1),
                             TrafficScenario.P2V)
        h = TestbedHarness(d)
        # Cap tenant 0's VFs at 5 kpps each.
        for p in range(2):
            vf = d.tenant_vf[(0, p)]
            d.server.nic.port(p).set_vf_rate_limit(vf, 5000)
        # Tenant 0's own return traffic (bounced by its l2fwd) is now
        # policed; its *ingress* from the wire still lands, so a full
        # flood defence also rate-limits at the ToR -- here we check the
        # VF policer alone.
        h.add_tenant_flow(0, 100_000)   # flood towards tenant 0
        h.add_tenant_flow(1, 5_000)     # victim
        result = h.run(duration=0.05, warmup=0.01)
        drops = d.server.nic.total_drops()
        assert drops.rate_limited > 0
        victim_got = h.monitor.delivered_in_window(0.01, 0.05, flow_id=1)
        assert victim_got >= 0.9 * 5000 * 0.04


@st.composite
def _veb_setup(draw):
    """Random VF population across VLANs."""
    num_vfs = draw(st.integers(min_value=2, max_value=10))
    vlans = draw(st.lists(st.integers(min_value=1, max_value=4),
                          min_size=num_vfs, max_size=num_vfs))
    return num_vfs, vlans


class TestVebIsolationProperty:
    @settings(max_examples=60, deadline=None)
    @given(_veb_setup(), st.data())
    def test_unicast_never_crosses_vlans(self, setup, data):
        """For any VF population and any frame between configured MACs,
        the VEB never delivers across VLAN domains."""
        num_vfs, vlans = setup
        veb = VebSwitch()
        vfs = []
        for i in range(num_vfs):
            vf = VirtualFunction(index=i, pf_index=0)
            vf.mac = MacAddress(0x100 + i)
            vf.vlan = 100 + vlans[i]
            veb.attach(vf)
            vfs.append(vf)
        src = data.draw(st.sampled_from(vfs))
        dst = data.draw(st.sampled_from(vfs))
        frame = Frame(src_mac=src.mac, dst_mac=dst.mac)
        decision = veb.forward(src.name, src.vlan, frame)
        for destination in decision.destinations:
            if destination == "uplink":
                continue
            target = next(v for v in vfs if v.name == destination)
            assert target.vlan == src.vlan, (
                f"{src.name} (vlan {src.vlan}) delivered to "
                f"{destination} (vlan {target.vlan})")

    @settings(max_examples=60, deadline=None)
    @given(_veb_setup(), st.data())
    def test_broadcast_confined_to_vlan(self, setup, data):
        from repro.net import BROADCAST_MAC
        num_vfs, vlans = setup
        veb = VebSwitch()
        vfs = []
        for i in range(num_vfs):
            vf = VirtualFunction(index=i, pf_index=0)
            vf.mac = MacAddress(0x100 + i)
            vf.vlan = 100 + vlans[i]
            veb.attach(vf)
            vfs.append(vf)
        src = data.draw(st.sampled_from(vfs))
        frame = Frame(src_mac=src.mac, dst_mac=BROADCAST_MAC)
        decision = veb.forward(src.name, src.vlan, frame)
        same_vlan = {v.name for v in vfs
                     if v.vlan == src.vlan and v.name != src.name}
        delivered = {d for d in decision.destinations if d != "uplink"}
        assert delivered == same_vlan
