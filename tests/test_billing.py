"""Per-tenant metering, attribution, invoices and reconciliation."""

import json
import math

import pytest

from repro import billing, obs
from repro.billing import attribution
from repro.billing.invoice import invoices_from_records
from repro.billing.meter import UNATTRIBUTED, NullMeter, TenantMeter, UsageRecord
from repro.billing.session import MeteringSession
from repro.core import (
    ResourceMode,
    SecurityLevel,
    TrafficScenario,
    build_deployment,
)
from repro.core.accounting import NetworkingMeter, PricingModel, bill
from repro.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.traffic import TestbedHarness
from tests.conftest import make_spec


@pytest.fixture(autouse=True)
def _clean_billing():
    """Every test leaves the module-level tap and registry pristine."""
    yield
    billing.METER = NullMeter()
    obs.REGISTRY.reset()


def metered_run(level, vms=1, mode=ResourceMode.SHARED, user_space=False,
                interval=0.01, duration=0.05, flows=None):
    """Run traffic with a MeteringSession armed; returns (deployment,
    session summary, usage records, truth usages)."""
    d = build_deployment(
        make_spec(level=level, vms=vms, mode=mode, user_space=user_space),
        TrafficScenario.P2V)
    h = TestbedHarness(d)
    if flows is None:
        h.configure_tenant_flows(rate_per_flow_pps=2000)
    else:
        for tenant, rate, size in flows:
            h.add_tenant_flow(tenant, rate, frame_bytes=size)
    truth = NetworkingMeter(d)
    truth.snapshot()
    session = MeteringSession(d, h, interval=interval)
    session.arm(duration)
    h.run(duration=duration)
    summary = session.finish()
    return d, summary, session.records, truth.read()


class TestMeterPrimitives:
    def test_null_meter_is_disabled_and_inert(self):
        meter = NullMeter()
        assert not meter.enabled
        meter.cpu(0, 1.0)
        meter.pcie(0, 64)
        meter.drop(0, "x")
        meter.fault_drop(0)
        assert not hasattr(meter, "cpu_seconds")

    def test_tenant_meter_accumulates_per_tenant(self):
        meter = TenantMeter()
        assert meter.enabled
        meter.cpu(0, 1e-6)
        meter.cpu(0, 2e-6)
        meter.cpu(1, 5e-6)
        meter.pcie(0, 64)
        meter.drop(1, "spoof")
        meter.drop(1, "spoof")
        meter.fault_drop(0)
        assert meter.cpu_seconds[0] == pytest.approx(3e-6)
        assert meter.passes == {0: 2, 1: 1}
        assert meter.pcie_bytes == {0: 64}
        assert meter.drops == {(1, "spoof"): 2}
        assert meter.fault_drops == {0: 1}

    def test_none_tenant_folds_into_unattributed(self):
        meter = TenantMeter()
        meter.cpu(None, 1e-6)
        meter.drop(None, "x")
        assert meter.cpu_seconds == {UNATTRIBUTED: 1e-6}
        assert meter.drops == {(UNATTRIBUTED, "x"): 1}

    def test_totals_returns_copies(self):
        meter = TenantMeter()
        meter.cpu(0, 1e-6)
        totals = meter.totals()
        totals["cpu"][0] = 99.0
        assert meter.cpu_seconds[0] == pytest.approx(1e-6)

    def test_usage_record_rates_never_nan_at_zero_window(self):
        rec = UsageRecord(tenant_id=0, compartment=0, t0=1.0, t1=1.0,
                          cpu_seconds=0.0, io_bytes=0)
        assert rec.cpu_utilization == 0.0
        assert rec.io_bytes_per_second == 0.0
        assert not math.isnan(rec.cpu_utilization)

    def test_usage_record_round_trips(self):
        rec = UsageRecord(tenant_id=2, compartment=1, t0=0.0, t1=0.01,
                          cpu_seconds=1e-4, cpu_seconds_exact=9e-5,
                          core_seconds=5e-5, io_bytes=640, pcie_bytes=1280,
                          passes=10, drops={"spoof": 2}, fault_seconds=0.1,
                          fault_drops=3, memory_byte_seconds=100.0,
                          quality="exact")
        assert UsageRecord.from_dict(rec.to_dict()) == rec


class TestSimulatorEvery:
    def test_fires_at_interval_up_to_horizon(self):
        sim = Simulator()
        hits = []
        sim.every(0.01, lambda: hits.append(sim.now), until=0.05)
        sim.run(until=1.0)
        assert len(hits) == 5
        assert hits[0] == pytest.approx(0.01)
        assert hits[-1] == pytest.approx(0.05)

    def test_cancel_stops_the_chain(self):
        sim = Simulator()
        hits = []
        timer = sim.every(0.01, lambda: hits.append(sim.now))
        sim.run(until=0.035)
        timer.cancel()
        sim.run(until=0.1)
        assert len(hits) == 3

    def test_callback_may_cancel_its_own_timer(self):
        sim = Simulator()
        hits = []
        timer = sim.every(0.01, lambda: (hits.append(sim.now),
                                         timer.cancel()))
        sim.run(until=0.1)
        assert len(hits) == 1

    def test_rejects_non_positive_interval(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.every(0.0, lambda: None)


class TestAccountingEdges:
    def test_zero_duration_window_reads_empty(self):
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_1),
                             TrafficScenario.P2V)
        meter = NetworkingMeter(d)
        meter.snapshot()
        assert meter.read() == []

    def test_pre_traffic_read_is_zero_valued_and_finite(self):
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_1),
                             TrafficScenario.P2V)
        meter = NetworkingMeter(d)
        meter.snapshot()
        d.sim.run(until=d.sim.now + 0.01)
        usages = meter.read()
        assert len(usages) == d.spec.num_tenants
        for u in usages:
            assert u.io_bytes == 0
            assert u.vswitch_cpu_seconds == pytest.approx(0.0)
            assert not math.isnan(u.cpu_utilization)
            assert u.io_bytes_per_second == 0.0

    def test_idle_shared_window_still_attributes_memory(self):
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_1),
                             TrafficScenario.P2V)
        meter = NetworkingMeter(d)
        meter.snapshot()
        d.sim.run(until=d.sim.now + 0.01)
        total_mem = sum(u.vswitch_memory_byte_seconds for u in meter.read())
        ram = d.vswitch_vms[0].memory.ram_bytes
        assert total_mem == pytest.approx(ram * 0.01)


class TestAttributionMath:
    def test_identical_distributions_score_zero(self):
        assert attribution.misattribution_score(
            {0: 2.0, 1: 2.0}, {0: 4.0, 1: 4.0}) == pytest.approx(0.0)

    def test_disjoint_distributions_score_one(self):
        assert attribution.misattribution_score(
            {0: 1.0}, {1: 1.0}) == pytest.approx(1.0)

    def test_empty_side_scores_zero(self):
        assert attribution.misattribution_score({}, {0: 1.0}) == 0.0
        assert attribution.misattribution_score({0: 1.0}, {0: 0.0}) == 0.0

    def test_proportional_split_conserves_total(self):
        split = attribution.proportional_split(10.0, {0: 1.0, 1: 3.0})
        assert split == {0: 2.5, 1: 7.5}

    def test_proportional_split_zero_weights_goes_even(self):
        split = attribution.proportional_split(10.0, {0: 0.0, 1: 0.0})
        assert split == {0: 5.0, 1: 5.0}


LEVELS = [
    pytest.param(SecurityLevel.BASELINE, 1, ResourceMode.SHARED, False,
                 id="baseline"),
    pytest.param(SecurityLevel.LEVEL_1, 1, ResourceMode.SHARED, False,
                 id="l1"),
    pytest.param(SecurityLevel.LEVEL_2, 2, ResourceMode.SHARED, False,
                 id="l2-shared"),
    pytest.param(SecurityLevel.LEVEL_2, 4, ResourceMode.ISOLATED, False,
                 id="l2-isolated"),
    pytest.param(SecurityLevel.LEVEL_2, 4, ResourceMode.ISOLATED, True,
                 id="l3-dpdk"),
]


class TestReconciliation:
    @pytest.mark.parametrize("level,vms,mode,user_space", LEVELS)
    def test_windowed_usage_reconciles_with_accounting(
            self, level, vms, mode, user_space):
        d, summary, records, truth = metered_run(
            level, vms=vms, mode=mode, user_space=user_space)
        assert summary["reconciled"], summary["failures"]
        assert summary["windows"] > 1
        # I/O conservation is exact, per tenant, in integer bytes.
        windowed_io = {}
        for rec in records:
            windowed_io[rec.tenant_id] = (
                windowed_io.get(rec.tenant_id, 0) + rec.io_bytes)
        for usage in truth:
            assert windowed_io.get(usage.tenant_id, 0) == usage.io_bytes

    def test_tap_uninstalled_after_finish(self):
        metered_run(SecurityLevel.LEVEL_1)
        assert not billing.METER.enabled

    def test_finish_is_idempotent(self):
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_1),
                             TrafficScenario.P2V)
        h = TestbedHarness(d)
        h.configure_tenant_flows(rate_per_flow_pps=1000)
        session = MeteringSession(d, h, interval=0.01)
        session.arm(0.02)
        h.run(duration=0.02)
        first = session.finish()
        count = len(session.records)
        assert session.finish() == first
        assert len(session.records) == count

    def test_quality_tracks_architecture(self):
        _, _, records, _ = metered_run(SecurityLevel.LEVEL_2, vms=4,
                                       mode=ResourceMode.ISOLATED)
        assert {r.quality for r in records if r.compartment >= 0} == {"exact"}
        _, _, records, _ = metered_run(SecurityLevel.BASELINE)
        assert {r.quality for r in records} == {"self-reported"}


class TestMisattribution:
    #: Tenant 0 hammers small frames (cycle-heavy, byte-light); tenant 1
    #: sends few large frames (byte-heavy).  Billing by bytes then
    #: charges tenant 1 for tenant 0's cycles -- in a shared
    #: compartment only.
    MIX = [(0, 4000, 64), (1, 500, 1500), (2, 500, 1500), (3, 500, 1500)]

    def test_shared_compartment_misattributes_cycle_heavy_tenant(self):
        _, summary, _, _ = metered_run(SecurityLevel.LEVEL_1, flows=self.MIX)
        assert summary["reconciled"], summary["failures"]
        assert summary["misattribution_score"] > 0.1

    def test_per_tenant_compartments_bill_exactly(self):
        _, summary, _, _ = metered_run(SecurityLevel.LEVEL_2, vms=4,
                                       mode=ResourceMode.ISOLATED,
                                       flows=self.MIX)
        assert summary["reconciled"], summary["failures"]
        assert summary["misattribution_score"] == pytest.approx(0.0, abs=1e-9)


class TestChaosAttribution:
    def _crash_spec(self, level, vms, mode, duration=0.12):
        from repro.faults.plan import scripted_crash
        from repro.scenario import ScenarioSpec
        return ScenarioSpec(
            workload="fig5.latency",
            deployment=make_spec(level=level, vms=vms, mode=mode),
            duration=duration, warmup=0.01, seed=7,
            params=(("metering", True), ("metering_interval", 0.02),
                    ("aggregate_pps", 8000.0)),
            faults=scripted_crash(compartment=0, at=duration / 3.0),
        )

    @pytest.mark.parametrize("level,vms,mode", [
        pytest.param(SecurityLevel.BASELINE, 1, ResourceMode.SHARED,
                     id="baseline"),
        pytest.param(SecurityLevel.LEVEL_1, 1, ResourceMode.SHARED,
                     id="l1"),
        pytest.param(SecurityLevel.LEVEL_2, 2, ResourceMode.SHARED,
                     id="l2-shared"),
        pytest.param(SecurityLevel.LEVEL_2, 4, ResourceMode.ISOLATED,
                     id="l2-isolated"),
    ])
    def test_crash_charges_only_the_faulty_compartments_tenants(
            self, level, vms, mode):
        from repro.scenario import run_scenario
        result = run_scenario(self._crash_spec(level, vms, mode))
        summaries = [u for u in result.usage if u.get("kind") == "summary"]
        assert len(summaries) == 1
        summary = summaries[0]
        assert summary["reconciled"], summary["failures"]
        payers = {int(t) for t, s in summary["fault_payers"].items() if s > 0}
        spec = self._crash_spec(level, vms, mode).deployment
        assert payers == set(spec.tenants_of_compartment(0))
        # Fault seconds also landed on the records themselves.
        charged = {u["tenant"] for u in result.usage
                   if u.get("kind") == "usage" and u["fault_seconds"] > 0}
        assert charged == payers

    def test_noisy_neighbor_crash_composition(self):
        """The ISSUE scenario: vswitch crash during the noisy-neighbor
        flood -- recovery work lands on the faulty compartment's
        tenants and the books still reconcile."""
        from repro.faults.plan import scripted_crash
        from repro.scenario import ScenarioSpec, run_scenario
        spec = ScenarioSpec(
            workload="ext.noisy-neighbor",
            deployment=make_spec(level=SecurityLevel.LEVEL_2, vms=2,
                                 mode=ResourceMode.SHARED),
            duration=0.03, warmup=0.005, seed=11,
            params=(("metering", True), ("metering_interval", 0.01)),
            faults=scripted_crash(compartment=0, at=0.01),
        )
        result = run_scenario(spec)
        summary = [u for u in result.usage if u.get("kind") == "summary"][0]
        assert summary["reconciled"], summary["failures"]
        payers = {int(t) for t, s in summary["fault_payers"].items() if s > 0}
        assert payers == {0, 1}  # compartment 0 hosts tenants 0 and 1
        # The attacker's flood was blackholed at the dead bridge, so its
        # fault drops dominate -- misattribution of drop *work* is the
        # paper's retransmit story.
        drops = {int(t): n for t, n in summary["fault_drops"].items()}
        assert drops.get(0, 0) > drops.get(2, 0)


class TestScenarioThreading:
    def _metered_spec(self, seed=0):
        from repro.scenario import ScenarioSpec
        return ScenarioSpec(
            workload="fig5.latency",
            deployment=make_spec(level=SecurityLevel.LEVEL_1),
            duration=0.03, warmup=0.005, seed=seed,
            params=(("metering", True), ("metering_interval", 0.01),
                    ("aggregate_pps", 8000.0)),
        )

    def test_usage_rides_the_result_and_the_cache(self, tmp_path):
        from repro.scenario import Engine, ResultStore, SequentialBackend
        store = ResultStore(str(tmp_path / "cache"))
        engine = Engine(backend=SequentialBackend(), store=store)
        first = engine.run([self._metered_spec()])[0]
        assert not first.cached
        assert any(u.get("kind") == "summary" for u in first.usage)
        again = engine.run([self._metered_spec()])[0]
        assert again.cached
        assert again.usage == first.usage

    def test_unmetered_spec_carries_no_usage(self):
        from repro.scenario import ScenarioSpec, run_scenario
        spec = ScenarioSpec(
            workload="fig5.latency",
            deployment=make_spec(level=SecurityLevel.LEVEL_1),
            duration=0.02, seed=1, params=(("aggregate_pps", 4000.0),))
        assert run_scenario(spec).usage == []

    def test_result_dict_without_usage_key_still_loads(self):
        from repro.scenario import ScenarioResult, run_scenario
        data = run_scenario(self._metered_spec()).to_dict()
        data.pop("usage")
        assert ScenarioResult.from_dict(data).usage == []

    def test_billing_counters_ship_in_result_metrics(self):
        from repro.scenario import run_scenario
        from repro.scenario.engine import fold_metrics
        from repro.obs.metrics import MetricsRegistry
        result = run_scenario(self._metered_spec())
        billing_keys = [k for k in result.metrics if k.startswith("billing_")]
        assert any(k.startswith("billing_cpu_seconds_total")
                   for k in billing_keys)
        assert any(k.startswith("billing_windows_total")
                   for k in billing_keys)
        registry = MetricsRegistry()
        fold_metrics(registry, result.metrics)
        snap = registry.snapshot()
        for key in billing_keys:
            assert snap[key] == pytest.approx(result.metrics[key])

    def test_metering_params_change_the_content_hash(self):
        from repro.scenario import ScenarioSpec
        base = ScenarioSpec(
            workload="fig5.latency",
            deployment=make_spec(level=SecurityLevel.LEVEL_1),
            duration=0.02)
        metered = ScenarioSpec(
            workload="fig5.latency",
            deployment=make_spec(level=SecurityLevel.LEVEL_1),
            duration=0.02, params=(("metering", True),))
        assert base.content_hash() != metered.content_hash()


class TestInvoices:
    def test_invoice_totals_match_the_accounting_bill(self):
        d, summary, records, truth = metered_run(
            SecurityLevel.LEVEL_2, vms=4, mode=ResourceMode.ISOLATED)
        assert summary["reconciled"]
        pricing = PricingModel()
        windowed = {inv.tenant_id: inv
                    for inv in invoices_from_records(records, pricing)}
        for invoice in bill(d, truth, pricing):
            got = windowed[invoice.tenant_id]
            assert got.item("vswitch_cpu") == pytest.approx(invoice.cpu_cost)
            assert got.item("vswitch_memory") == pytest.approx(
                invoice.memory_cost)
            assert got.item("nic_io") == pytest.approx(invoice.io_cost)

    def test_invoice_quality_is_worst_window(self):
        records = [
            UsageRecord(tenant_id=0, compartment=0, t0=0, t1=1,
                        cpu_seconds=1.0, quality="exact"),
            UsageRecord(tenant_id=0, compartment=0, t0=1, t1=2,
                        cpu_seconds=1.0, quality="estimated"),
        ]
        invoices = invoices_from_records(records)
        assert invoices[0].quality == "estimated"

    def test_fault_seconds_become_a_line_item(self):
        records = [UsageRecord(tenant_id=0, compartment=0, t0=0, t1=1,
                               fault_seconds=36.0)]
        inv = invoices_from_records(records)[0]
        assert inv.item("fault_recovery") == pytest.approx(
            36.0 / 3600.0 * PricingModel().per_cpu_hour)


class TestExporters:
    def test_usage_and_invoice_jsonl_round_trip(self, tmp_path):
        from repro.obs.export import write_invoices_jsonl, write_usage_jsonl
        records = [UsageRecord(tenant_id=t, compartment=0, t0=0.0, t1=0.01,
                               cpu_seconds=1e-4 * (t + 1), io_bytes=640)
                   for t in range(3)]
        upath = tmp_path / "usage.jsonl"
        assert write_usage_jsonl(records, str(upath)) == 3
        lines = [json.loads(line) for line in
                 upath.read_text().strip().splitlines()]
        assert [l["tenant"] for l in lines] == [0, 1, 2]
        ipath = tmp_path / "invoices.jsonl"
        assert write_invoices_jsonl(
            invoices_from_records(records), str(ipath)) == 3
        parsed = [json.loads(line) for line in
                  ipath.read_text().strip().splitlines()]
        assert all("total" in p and "items" in p for p in parsed)

    def test_prometheus_text_exports_histogram_buckets(self):
        from repro.obs.metrics import MetricsRegistry
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", "latency",
                                  labels=("tenant",),
                                  buckets=(0.001, 0.01, 0.1))
        hist.labels(tenant="0").observe(0.005)
        hist.labels(tenant="0").observe(0.05)
        text = registry.prometheus_text()
        assert 'lat_seconds_bucket{tenant="0",le="0.001"} 0' in text
        assert 'lat_seconds_bucket{tenant="0",le="0.01"} 1' in text
        assert 'lat_seconds_bucket{tenant="0",le="0.1"} 2' in text
        assert 'le="+Inf"} 2' in text
        assert 'lat_seconds_count{tenant="0"} 2' in text

    def test_pool_workers_gauge_exported_on_sequential_fallback(self):
        from repro.scenario import Engine, NullStore, ProcessPoolBackend
        backend = ProcessPoolBackend(max_workers=2)
        try:
            spec = TestScenarioThreading()._metered_spec(seed=3)
            # One spec -> the pool degenerates to sequential; the gauge
            # must still record the configured width.
            Engine(backend=backend, store=NullStore()).run([spec])
        finally:
            backend.close()
        assert obs.REGISTRY.snapshot().get("scenario_pool_workers") == 2
