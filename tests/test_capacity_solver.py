"""Max-min fair capacity solver: exact cases + invariants via hypothesis."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.perfmodel import FlowPath, Resource, solve


def flow(name, demands, offered=math.inf):
    path = FlowPath(name=name, offered_pps=offered)
    for resource, units in demands:
        path.add(resource, units)
    return path


class TestExactCases:
    def test_single_flow_single_resource(self):
        r = Resource("cpu", 1000.0)
        result = solve([flow("f", [(r, 10.0)])])
        assert result.rates_pps["f"] == pytest.approx(100.0)
        assert result.bottleneck_of["f"] == "cpu"

    def test_symmetric_flows_share_equally(self):
        r = Resource("cpu", 1000.0)
        paths = [flow(f"f{i}", [(r, 10.0)]) for i in range(4)]
        result = solve(paths)
        for i in range(4):
            assert result.rates_pps[f"f{i}"] == pytest.approx(25.0)

    def test_min_over_resources(self):
        cpu = Resource("cpu", 1000.0)
        link = Resource("link", 50.0)
        result = solve([flow("f", [(cpu, 1.0), (link, 1.0)])])
        assert result.rates_pps["f"] == pytest.approx(50.0)
        assert result.bottleneck_of["f"] == "link"

    def test_offered_load_caps_rate(self):
        r = Resource("cpu", 1000.0)
        result = solve([flow("f", [(r, 1.0)], offered=10.0)])
        assert result.rates_pps["f"] == pytest.approx(10.0)
        assert result.bottleneck_of["f"] == "offered-load"

    def test_max_min_fairness_classic(self):
        """Two flows through a shared link; one also through a slow
        private link: the constrained flow frees capacity for the other."""
        shared = Resource("shared", 10.0)
        private = Resource("private", 2.0)
        result = solve([
            flow("constrained", [(shared, 1.0), (private, 1.0)]),
            flow("free", [(shared, 1.0)]),
        ])
        assert result.rates_pps["constrained"] == pytest.approx(2.0)
        assert result.rates_pps["free"] == pytest.approx(8.0)

    def test_disjoint_flows_independent(self):
        a, b = Resource("a", 100.0), Resource("b", 30.0)
        result = solve([flow("fa", [(a, 1.0)]), flow("fb", [(b, 1.0)])])
        assert result.rates_pps["fa"] == pytest.approx(100.0)
        assert result.rates_pps["fb"] == pytest.approx(30.0)

    def test_unconstrained_flow(self):
        result = solve([flow("f", [], offered=math.inf)])
        assert result.bottleneck_of["f"] == "unconstrained"

    def test_utilization_reported(self):
        r = Resource("cpu", 100.0)
        result = solve([flow("f", [(r, 1.0)])])
        assert result.utilization["cpu"] == pytest.approx(1.0)

    def test_aggregate(self):
        r = Resource("cpu", 100.0)
        result = solve([flow("a", [(r, 1.0)]), flow("b", [(r, 1.0)])])
        assert result.aggregate_pps == pytest.approx(100.0)

    def test_duplicate_flow_names_rejected(self):
        r = Resource("cpu", 100.0)
        with pytest.raises(ValueError):
            solve([flow("f", [(r, 1.0)]), flow("f", [(r, 1.0)])])

    def test_duplicate_resource_names_rejected(self):
        a = Resource("cpu", 100.0)
        b = Resource("cpu", 200.0)
        with pytest.raises(ValueError):
            solve([flow("f", [(a, 1.0)]), flow("g", [(b, 1.0)])])

    def test_empty_input(self):
        assert solve([]).rates_pps == {}

    def test_invalid_resource(self):
        with pytest.raises(ValueError):
            Resource("bad", 0.0)

    def test_negative_demand_rejected(self):
        r = Resource("cpu", 10.0)
        with pytest.raises(ValueError):
            from repro.perfmodel import ResourceDemand
            ResourceDemand(r, -1.0)


@st.composite
def _problem(draw):
    num_resources = draw(st.integers(min_value=1, max_value=4))
    resources = [
        Resource(f"r{i}", draw(st.floats(min_value=1.0, max_value=1e4)))
        for i in range(num_resources)
    ]
    num_flows = draw(st.integers(min_value=1, max_value=5))
    paths = []
    for i in range(num_flows):
        demands = []
        for resource in resources:
            units = draw(st.floats(min_value=0.0, max_value=10.0))
            if units > 0:
                demands.append((resource, units))
        offered = draw(st.one_of(
            st.just(math.inf), st.floats(min_value=0.1, max_value=1e4)))
        paths.append(flow(f"f{i}", demands, offered))
    return resources, paths


class TestInvariants:
    @settings(max_examples=150, deadline=None)
    @given(_problem())
    def test_no_resource_oversubscribed(self, problem):
        resources, paths = problem
        result = solve(paths)
        for resource in resources:
            used = sum(p.demand_on(resource) * result.rates_pps[p.name]
                       for p in paths)
            assert used <= resource.capacity * (1 + 1e-6)

    @settings(max_examples=150, deadline=None)
    @given(_problem())
    def test_rates_nonnegative_and_within_offered(self, problem):
        _, paths = problem
        result = solve(paths)
        for p in paths:
            rate = result.rates_pps[p.name]
            assert rate >= 0
            assert rate <= p.offered_pps * (1 + 1e-9)

    @settings(max_examples=150, deadline=None)
    @given(_problem())
    def test_every_flow_is_blocked_by_something(self, problem):
        """Max-min optimality: no flow can be raised unilaterally --
        each is frozen at its offered load or at a saturated resource."""
        resources, paths = problem
        result = solve(paths)
        for p in paths:
            rate = result.rates_pps[p.name]
            if rate >= p.offered_pps * (1 - 1e-9):
                continue
            if result.bottleneck_of.get(p.name) == "unconstrained":
                continue  # no demands, no cap: nothing can block it
            saturated = False
            for resource in resources:
                if p.demand_on(resource) <= 0:
                    continue
                used = sum(q.demand_on(resource) * result.rates_pps[q.name]
                           for q in paths)
                if used >= resource.capacity * (1 - 1e-6):
                    saturated = True
                    break
            assert saturated, f"{p.name} not blocked by anything"

    @settings(max_examples=100, deadline=None)
    @given(_problem())
    def test_deterministic(self, problem):
        _, paths = problem
        a = solve(paths).rates_pps
        b = solve(paths).rates_pps
        assert a == b


class TestWeightedFairness:
    def test_weights_split_a_resource_proportionally(self):
        r = Resource("cpu", 1000.0)
        heavy = flow("heavy", [(r, 1.0)])
        heavy.weight = 3.0
        light = flow("light", [(r, 1.0)])
        result = solve([heavy, light])
        assert result.rates_pps["heavy"] == pytest.approx(750.0)
        assert result.rates_pps["light"] == pytest.approx(250.0)

    def test_inverse_cost_weights_equalize_resource_shares(self):
        """The cycle-fairness pattern the mixed-workload solver uses."""
        r = Resource("cpu", 1200.0)
        cheap = flow("cheap", [(r, 2.0)])
        cheap.weight = 1.0 / 2.0
        costly = flow("costly", [(r, 10.0)])
        costly.weight = 1.0 / 10.0
        result = solve([cheap, costly])
        assert (result.rates_pps["cheap"] * 2.0
                == pytest.approx(result.rates_pps["costly"] * 10.0))
        assert result.utilization["cpu"] == pytest.approx(1.0)

    def test_offered_cap_still_respected_with_weights(self):
        r = Resource("cpu", 1000.0)
        capped = flow("capped", [(r, 1.0)], offered=10.0)
        capped.weight = 5.0
        free = flow("free", [(r, 1.0)])
        result = solve([capped, free])
        assert result.rates_pps["capped"] == pytest.approx(10.0)
        assert result.rates_pps["free"] == pytest.approx(990.0)

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            FlowPath(name="bad", weight=0.0)

    @settings(max_examples=100, deadline=None)
    @given(_problem(), st.lists(st.floats(min_value=0.1, max_value=10.0),
                                min_size=5, max_size=5))
    def test_no_oversubscription_with_weights(self, problem, weights):
        resources, paths = problem
        for path, weight in zip(paths, weights):
            path.weight = weight
        result = solve(paths)
        for resource in resources:
            used = sum(p.demand_on(resource) * result.rates_pps[p.name]
                       for p in paths)
            assert used <= resource.capacity * (1 + 1e-6)
