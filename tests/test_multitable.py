"""The multi-table OpenFlow pipeline (goto_table)."""

import pytest

from repro.errors import ConfigurationError
from repro.net import Frame, IPv4Address, MacAddress
from repro.net.interfaces import PortPair
from repro.vswitch import Drop, FlowMatch, FlowRule, Output, OvsBridge, PortClass, SetDstMac
from repro.vswitch.actions import GotoTable, PushTunnel


def frame(dst_ip="10.0.0.10", vlan=None):
    return Frame(src_mac=MacAddress(0xA), dst_mac=MacAddress(0xB),
                 dst_ip=IPv4Address.parse(dst_ip), vlan=vlan)


def bridge_with_ports(n=2):
    bridge = OvsBridge("br0")
    pairs, received = [], []
    for i in range(n):
        pair = PortPair(f"p{i}")
        pair.attach_tx(lambda f, i=i: received.append((i, f)))
        bridge.add_port(f"port{i}", PortClass.PHYSICAL, pair)
        pairs.append(pair)
    return bridge, pairs, received


class TestGotoTable:
    def test_two_stage_classify_then_forward(self):
        """OVN-style: table 0 classifies (and rewrites), table 1
        forwards on the rewritten header."""
        bridge, pairs, received = bridge_with_ports()
        bridge.add_flow(FlowRule(
            match=FlowMatch(in_port=1),
            actions=[SetDstMac(MacAddress(0xFF)), GotoTable(1)],
            table_id=0))
        bridge.add_flow(FlowRule(
            match=FlowMatch(dst_mac=MacAddress(0xFF)),
            actions=[Output(2)],
            table_id=1))
        pairs[0].rx.receive(frame())
        assert len(received) == 1
        assert received[0][1].dst_mac == MacAddress(0xFF)

    def test_later_table_matches_modified_packet(self):
        """A table-1 rule matching the ORIGINAL dst MAC must not fire
        after table 0 rewrote it."""
        bridge, pairs, received = bridge_with_ports()
        bridge.add_flow(FlowRule(
            match=FlowMatch(in_port=1),
            actions=[SetDstMac(MacAddress(0xFF)), GotoTable(1)]))
        bridge.add_flow(FlowRule(
            match=FlowMatch(dst_mac=MacAddress(0xB)),  # the original
            actions=[Output(2)], table_id=1))
        pairs[0].rx.receive(frame())
        assert received == []
        assert bridge.drops_no_match == 1

    def test_miss_in_target_table_drops(self):
        bridge, pairs, received = bridge_with_ports()
        bridge.add_flow(FlowRule(match=FlowMatch(), actions=[GotoTable(3)]))
        pairs[0].rx.receive(frame())
        assert bridge.drops_no_match == 1

    def test_goto_must_increase(self):
        bridge, _, _ = bridge_with_ports()
        with pytest.raises(ConfigurationError):
            bridge.add_flow(FlowRule(match=FlowMatch(),
                                     actions=[GotoTable(1)], table_id=1))
        with pytest.raises(ConfigurationError):
            bridge.add_flow(FlowRule(match=FlowMatch(),
                                     actions=[GotoTable(0)], table_id=2))

    def test_three_stage_pipeline(self):
        bridge, pairs, received = bridge_with_ports()
        bridge.add_flow(FlowRule(match=FlowMatch(in_port=1),
                                 actions=[GotoTable(2)], table_id=0))
        bridge.add_flow(FlowRule(match=FlowMatch(),
                                 actions=[PushTunnel(7), GotoTable(5)],
                                 table_id=2))
        bridge.add_flow(FlowRule(match=FlowMatch(tunnel_id=7),
                                 actions=[Output(2)], table_id=5))
        pairs[0].rx.receive(frame())
        assert len(received) == 1
        assert received[0][1].tunnel_id == 7

    def test_drop_in_later_table(self):
        bridge, pairs, received = bridge_with_ports()
        bridge.add_flow(FlowRule(match=FlowMatch(), actions=[GotoTable(1)]))
        bridge.add_flow(FlowRule(match=FlowMatch(), actions=[Drop()],
                                 table_id=1))
        pairs[0].rx.receive(frame())
        assert received == []
        assert bridge.drops_action == 1

    def test_output_then_goto_collects_both(self):
        """OpenFlow apply-actions semantics: an output before goto still
        happens."""
        bridge, pairs, received = bridge_with_ports(3)
        bridge.add_flow(FlowRule(match=FlowMatch(in_port=1),
                                 actions=[Output(2), GotoTable(1)]))
        bridge.add_flow(FlowRule(match=FlowMatch(), actions=[Output(3)],
                                 table_id=1))
        pairs[0].rx.receive(frame())
        assert sorted(i for i, _ in received) == [1, 2]

    def test_per_table_statistics(self):
        bridge, pairs, _ = bridge_with_ports()
        bridge.add_flow(FlowRule(match=FlowMatch(), actions=[GotoTable(1)]))
        bridge.add_flow(FlowRule(match=FlowMatch(), actions=[Output(2)],
                                 table_id=1))
        pairs[0].rx.receive(frame())
        assert bridge.flow_table(0).lookups == 1
        assert bridge.flow_table(1).lookups == 1

    def test_dump_shows_all_tables(self):
        bridge, _, _ = bridge_with_ports()
        bridge.add_flow(FlowRule(match=FlowMatch(), actions=[GotoTable(1)]))
        bridge.add_flow(FlowRule(match=FlowMatch(), actions=[Output(2)],
                                 table_id=1))
        dump = bridge.dump_flows()
        assert "table 0:" in dump and "table 1:" in dump

    def test_negative_table_rejected(self):
        bridge, _, _ = bridge_with_ports()
        with pytest.raises(ConfigurationError):
            bridge.flow_table(-1)

    def test_single_table_view_back_compat(self):
        bridge, _, _ = bridge_with_ports()
        rule = bridge.add_flow(FlowRule(match=FlowMatch(),
                                        actions=[Output(2)]))
        assert rule in list(bridge.table)
