"""PMU-style latency breakdown: accounting integrity + the SR-IOV story."""

import pytest

from repro.core import ResourceMode, SecurityLevel, TrafficScenario
from repro.core.spec import DeploymentSpec
from repro.experiments.latency_breakdown import measure_breakdown
from repro.units import USEC

DURATION = 0.06
_memo = {}


def breakdown(level, vms=1, mode=ResourceMode.SHARED,
              scenario=TrafficScenario.P2V):
    key = (level, vms, mode, scenario)
    if key not in _memo:
        spec = DeploymentSpec(level=level, num_vswitch_vms=vms,
                              resource_mode=mode)
        _memo[key] = measure_breakdown(spec, scenario, duration=DURATION)
    return _memo[key]


class TestAccountingIntegrity:
    @pytest.mark.parametrize("level,vms", [
        (SecurityLevel.BASELINE, 1),
        (SecurityLevel.LEVEL_1, 1),
        (SecurityLevel.LEVEL_2, 2),
    ])
    def test_components_sum_to_measured_latency(self, level, vms):
        """The breakdown must account for (almost) the whole end-to-end
        latency the DAG-style monitor measures."""
        from repro.traffic import TestbedHarness
        from repro.core import build_deployment
        spec = DeploymentSpec(level=level, num_vswitch_vms=vms)
        d = build_deployment(spec, TrafficScenario.P2V)
        h = TestbedHarness(d)
        h.configure_tenant_flows(rate_per_flow_pps=2500)
        result = h.run(duration=DURATION, warmup=0.02)
        measured_mean = sum(result.latencies) / len(result.latencies)
        parts = breakdown(level, vms)
        assert sum(parts.values()) == pytest.approx(measured_mean, rel=0.1)

    def test_no_negative_charges(self):
        parts = breakdown(SecurityLevel.LEVEL_1)
        assert all(v >= 0 for v in parts.values())


class TestTheSrIovStory:
    """The §4.2 explanation, quantified per component."""

    def test_baseline_latency_lives_in_vhost_and_linux_bridge(self):
        parts = breakdown(SecurityLevel.BASELINE)
        software_tenant_path = parts["vhost"] + parts["tenant"]
        assert software_tenant_path > 0.6 * sum(parts.values())

    def test_mts_replaces_vhost_with_microsecond_nic_hops(self):
        parts = breakdown(SecurityLevel.LEVEL_1)
        assert parts["vhost"] == 0.0
        assert parts["nic"] < 10 * USEC  # "negligible" round trips
        assert parts["nic"] < breakdown(SecurityLevel.BASELINE)["vhost"] / 4

    def test_mts_remaining_budget_is_the_tenant_poll_loop(self):
        parts = breakdown(SecurityLevel.LEVEL_1)
        assert parts["tenant"] > 0.5 * sum(parts.values())

    def test_sharing_shows_up_as_vswitch_wait(self):
        l1 = breakdown(SecurityLevel.LEVEL_1)
        l2_4 = breakdown(SecurityLevel.LEVEL_2, vms=4)
        assert l2_4["vswitch.wait"] > 3 * l1["vswitch.wait"]
        # ...while everything else stays put.
        assert l2_4["tenant"] == pytest.approx(l1["tenant"], rel=0.15)
        assert l2_4["nic"] == pytest.approx(l1["nic"], rel=0.15)

    def test_unloaded_paths_do_not_queue(self):
        for level in (SecurityLevel.BASELINE, SecurityLevel.LEVEL_1):
            assert breakdown(level)["vswitch.queue"] < 1 * USEC

    def test_wire_time_is_negligible_at_64b(self):
        parts = breakdown(SecurityLevel.LEVEL_1)
        assert parts["wire"] < 1 * USEC
