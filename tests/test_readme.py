"""The README's quickstart block must actually run."""

import pathlib
import re

README = pathlib.Path(__file__).resolve().parent.parent / "README.md"


class TestReadme:
    def test_quickstart_block_executes(self):
        text = README.read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, re.DOTALL)
        assert blocks, "README lost its python quickstart"
        # Redirect prints; the block must run without error.
        namespace = {"print": lambda *a, **k: None}
        exec(blocks[0], namespace)  # noqa: S102 - our own README

    def test_cli_commands_in_readme_parse(self):
        from repro.cli import build_parser
        parser = build_parser()
        text = README.read_text()
        for line in text.splitlines():
            line = line.strip()
            if line.startswith("python -m repro "):
                argv = line.split()[3:]
                # parse_args would *run* nothing; just validate syntax.
                args = parser.parse_args(argv)
                assert hasattr(args, "func")

    def test_docs_files_exist(self):
        root = README.parent
        for name in ("DESIGN.md", "EXPERIMENTS.md",
                     "docs/CALIBRATION.md", "docs/ARCHITECTURE.md"):
            assert (root / name).exists(), name

    def test_readme_mentions_every_example(self):
        text = README.read_text()
        examples = (README.parent / "examples").glob("*.py")
        for example in examples:
            assert example.name in text, example.name
