"""SR-IOV NIC: VF lifecycle, VEB forwarding, filters, spoof check."""

import pytest

from repro.errors import ConfigurationError, VFExhaustedError
from repro.net import Frame, Link, MacAddress, Port
from repro.sim import Simulator
from repro.sriov import FilterAction, FunctionKind, SriovNic, WildcardFilter
from repro.sriov.switch import UNTAGGED, UPLINK


def build_nic(sim=None, **kwargs):
    return SriovNic(sim if sim is not None else Simulator(), **kwargs)


def frame(src, dst, **kwargs):
    return Frame(src_mac=src, dst_mac=dst, **kwargs)


class TestVfLifecycle:
    def test_create_and_configure(self):
        nic = build_nic()
        port = nic.port(0)
        vf = port.create_vf()
        mac = MacAddress(0x10)
        port.configure_vf(vf, mac, vlan=100, spoof_check=True,
                          kind=FunctionKind.TENANT)
        assert vf.mac == mac
        assert vf.vlan == 100
        assert vf.spoof_check
        assert vf.name == "pf0vf0"

    def test_vf_limit_is_64_per_pf(self):
        nic = build_nic()
        port = nic.port(0)
        for _ in range(64):
            port.create_vf()
        with pytest.raises(VFExhaustedError):
            port.create_vf()

    def test_custom_vf_limit(self):
        nic = build_nic(max_vfs_per_pf=2)
        port = nic.port(0)
        port.create_vf()
        port.create_vf()
        with pytest.raises(VFExhaustedError):
            port.create_vf()

    def test_double_attach_rejected(self):
        nic = build_nic()
        port = nic.port(0)
        vf = port.create_vf()
        port.attach_vf(vf, "vm-a")
        with pytest.raises(ConfigurationError):
            port.attach_vf(vf, "vm-b")

    def test_total_vfs_across_ports(self):
        nic = build_nic()
        nic.port(0).create_vf()
        nic.port(1).create_vf()
        nic.port(1).create_vf()
        assert nic.total_vfs() == 3

    def test_reconfigure_rehomes_vlan_domain(self):
        nic = build_nic()
        port = nic.port(0)
        vf = port.create_vf()
        port.configure_vf(vf, MacAddress(0x1), vlan=100)
        assert vf.name in port.veb.members(100)
        port.configure_vf(vf, MacAddress(0x1), vlan=200)
        assert vf.name not in port.veb.members(100)
        assert vf.name in port.veb.members(200)

    def test_invalid_port_count(self):
        with pytest.raises(ConfigurationError):
            build_nic(num_ports=0)

    def test_foreign_vf_rejected(self):
        nic = build_nic()
        vf = nic.port(0).create_vf()
        with pytest.raises(ConfigurationError):
            nic.port(1).configure_vf(vf, MacAddress(1))


class _Wired:
    """Two VFs in one VLAN, one untagged VF, an uplink, and VM stubs."""

    def __init__(self, spoof=False):
        self.sim = Simulator()
        self.nic = build_nic(self.sim)
        port = self.nic.port(0)
        self.port = port

        self.received = {}

        def make_vf(name, mac, vlan, kind, spoof_check=False):
            vf = port.create_vf()
            port.configure_vf(vf, mac, vlan=vlan, spoof_check=spoof_check,
                              kind=kind)
            port.attach_vf(vf, name)
            self.received[name] = []
            vf.port.rx.connect(
                lambda f, n=name: self.received[n].append(f))
            return vf

        self.t0 = make_vf("tenant0", MacAddress(0x10), 100,
                          FunctionKind.TENANT, spoof_check=spoof)
        self.gw0 = make_vf("gw0", MacAddress(0x20), 100,
                           FunctionKind.GATEWAY)
        self.inout = make_vf("inout", MacAddress(0x30), None,
                             FunctionKind.IN_OUT)
        self.other = make_vf("other", MacAddress(0x40), 200,
                             FunctionKind.TENANT)

        self.wire = []
        sink = Port("sink", lambda f: self.wire.append(f))
        port.connect_fabric(Link(self.sim, sink))


class TestVebForwarding:
    def test_same_vlan_vf_to_vf(self):
        w = _Wired()
        w.t0.port.transmit(frame(MacAddress(0x10), MacAddress(0x20)))
        w.sim.run()
        assert len(w.received["gw0"]) == 1

    def test_vlan_tag_popped_on_access_delivery(self):
        w = _Wired()
        w.t0.port.transmit(frame(MacAddress(0x10), MacAddress(0x20)))
        w.sim.run()
        assert w.received["gw0"][0].vlan is None

    def test_cross_vlan_unicast_does_not_reach_other_tenant(self):
        """VLAN isolation: tenant0 addressing tenant 'other' directly is
        not delivered to it (unknown in VLAN 100 -> goes to the wire,
        tagged)."""
        w = _Wired()
        w.t0.port.transmit(frame(MacAddress(0x10), MacAddress(0x40)))
        w.sim.run()
        assert w.received["other"] == []

    def test_unknown_unicast_from_vf_goes_to_uplink_tagged(self):
        w = _Wired()
        w.t0.port.transmit(frame(MacAddress(0x10), MacAddress(0x99)))
        w.sim.run()
        assert len(w.wire) == 1
        assert w.wire[0].vlan == 100  # leaves tagged with the VLAN

    def test_untagged_domain_to_uplink_untagged(self):
        w = _Wired()
        w.inout.port.transmit(frame(MacAddress(0x30), MacAddress(0x99)))
        w.sim.run()
        assert len(w.wire) == 1
        assert w.wire[0].vlan is None

    def test_frame_from_wire_delivered_by_dmac(self):
        w = _Wired()
        w.port.fabric_rx.receive(frame(MacAddress(0x99), MacAddress(0x30)))
        w.sim.run()
        assert len(w.received["inout"]) == 1

    def test_broadcast_floods_vlan_domain_only(self):
        from repro.net import BROADCAST_MAC
        w = _Wired()
        w.t0.port.transmit(frame(MacAddress(0x10), BROADCAST_MAC))
        w.sim.run()
        assert len(w.received["gw0"]) == 1
        assert w.received["other"] == []     # different VLAN
        assert w.received["inout"] == []     # untagged domain
        assert len(w.wire) == 1              # uplink is a domain member

    def test_hairpin_to_self_dropped(self):
        w = _Wired()
        w.t0.port.transmit(frame(MacAddress(0x10), MacAddress(0x10)))
        w.sim.run()
        assert all(not v for v in w.received.values())
        assert w.port.drops.no_destination == 1

    def test_crossing_latency_is_microseconds(self):
        w = _Wired()
        w.t0.port.transmit(frame(MacAddress(0x10), MacAddress(0x20)))
        w.sim.run()
        # 2 DMA transfers + VEB: a few microseconds, "negligible".
        assert 1e-6 < w.sim.now < 10e-6


class TestSpoofCheck:
    def test_spoofed_source_dropped(self):
        w = _Wired(spoof=True)
        w.t0.port.transmit(frame(MacAddress(0x66), MacAddress(0x20)))
        w.sim.run()
        assert w.received["gw0"] == []
        assert w.t0.stats.spoof_drops == 1
        assert w.nic.total_drops().spoof == 1

    def test_correct_source_passes(self):
        w = _Wired(spoof=True)
        w.t0.port.transmit(frame(MacAddress(0x10), MacAddress(0x20)))
        w.sim.run()
        assert len(w.received["gw0"]) == 1

    def test_spoof_check_disabled_allows_any_source(self):
        w = _Wired(spoof=False)
        w.t0.port.transmit(frame(MacAddress(0x66), MacAddress(0x20)))
        w.sim.run()
        assert len(w.received["gw0"]) == 1


class TestWildcardFilters:
    def test_drop_filter_blocks_tenant(self):
        w = _Wired()
        w.nic.install_filter(WildcardFilter(
            action=FilterAction.DROP, priority=5, ingress_vf="pf0vf0",
            name="drop-tenant0"))
        w.t0.port.transmit(frame(MacAddress(0x10), MacAddress(0x20)))
        w.sim.run()
        assert w.received["gw0"] == []
        assert w.t0.stats.filter_drops == 1

    def test_higher_priority_allow_overrides(self):
        w = _Wired()
        w.nic.install_filter(WildcardFilter(
            action=FilterAction.ALLOW, priority=10, ingress_vf="pf0vf0",
            dst_mac=MacAddress(0x20), name="allow-gw"))
        w.nic.install_filter(WildcardFilter(
            action=FilterAction.DROP, priority=5, ingress_vf="pf0vf0",
            name="drop-rest"))
        w.t0.port.transmit(frame(MacAddress(0x10), MacAddress(0x20)))
        w.t0.port.transmit(frame(MacAddress(0x10), MacAddress(0x30)))
        w.sim.run()
        assert len(w.received["gw0"]) == 1
        assert w.received["inout"] == []

    def test_filters_do_not_apply_to_other_vfs(self):
        w = _Wired()
        w.nic.install_filter(WildcardFilter(
            action=FilterAction.DROP, priority=5, ingress_vf="pf0vf0",
            name="drop-tenant0"))
        w.gw0.port.transmit(frame(MacAddress(0x20), MacAddress(0x10)))
        w.sim.run()
        assert len(w.received["tenant0"]) == 1

    def test_filter_removal(self):
        w = _Wired()
        w.nic.install_filter(WildcardFilter(
            action=FilterAction.DROP, priority=5, ingress_vf="pf0vf0",
            name="tmp"))
        assert w.nic.filters.remove("tmp") == 1
        w.t0.port.transmit(frame(MacAddress(0x10), MacAddress(0x20)))
        w.sim.run()
        assert len(w.received["gw0"]) == 1


class TestVebTable:
    def test_static_entries_pinned_by_config(self):
        w = _Wired()
        entry = w.port.veb.lookup(100, MacAddress(0x10))
        assert entry is not None and entry.static

    def test_learning_does_not_displace_static(self):
        w = _Wired()
        assert not w.port.veb.learn(100, MacAddress(0x10), UPLINK)

    def test_learning_from_uplink_frames(self):
        w = _Wired()
        w.port.fabric_rx.receive(frame(MacAddress(0x99), MacAddress(0x30)))
        w.sim.run()
        # Reverse traffic now unicasts to the uplink without flooding.
        entry = w.port.veb.lookup(UNTAGGED, MacAddress(0x99))
        assert entry is not None and entry.dest == UPLINK
