"""End-to-end dataplane integration: the Fig. 3 chains, isolation,
and the NIC's enforcement, all at packet level through the DES."""

import pytest

from repro.core import (
    ResourceMode,
    SecurityLevel,
    TrafficScenario,
    build_deployment,
)
from repro.net import Frame, MacAddress
from repro.traffic import TestbedHarness
from tests.conftest import make_spec

LG_MAC = MacAddress.parse("02:1b:00:00:00:01")


def run_one_frame(deployment, tenant=0):
    """Inject one frame for a tenant and run the sim to completion."""
    frame = Frame(
        src_mac=LG_MAC,
        dst_mac=deployment.ingress_dmac_for_tenant(tenant, 0),
        src_ip=deployment.plan.external_ip(0),
        dst_ip=deployment.plan.tenant_ip(tenant),
        flow_id=tenant,
        tenant_id=tenant,
    )
    deployment.external_ingress(0).receive(frame)
    deployment.sim.run(until=deployment.sim.now + 1.0)
    return frame


class TestIngressEgressChains:
    """The step-by-step chains of Fig. 3, asserted on frame traces."""

    def test_p2v_chain_visits_every_station(self):
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_1),
                             TrafficScenario.P2V)
        h = TestbedHarness(d)
        frame = run_one_frame(d)
        trace = frame.trace
        # (1)-(2) in through the NIC to the vswitch's In/Out VF
        assert trace[0] == "nic.p0.fabric.in"
        assert any("pf0vf0.out" in t for t in trace)  # In/Out VF delivery
        # (3) the vswitch forwards to the gateway VF
        assert any(t.startswith("vsw0.br0") and t.endswith("rx") for t in trace)
        # (4)-(5) NIC delivers to the tenant VF; tenant l2fwd bounces it
        assert any("tenant0.l2fwd.rx" == t for t in trace)
        assert any("tenant0.l2fwd.tx" == t for t in trace)
        # (6)-(10) egress through port 1 to the wire
        assert trace[-1] == "nic.p1.fabric.out"
        assert h.sink.total == 1

    def test_p2v_frame_delivered_to_sink_with_external_gw_mac(self):
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_1),
                             TrafficScenario.P2V)
        h = TestbedHarness(d)
        frame = run_one_frame(d)
        assert h.sink.per_flow[0] == 1
        assert frame.dst_mac == d.plan.external_gw_mac

    def test_tenant_never_sees_vlan_tag(self):
        """VST semantics: tags exist only inside the NIC."""
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_1),
                             TrafficScenario.P2V)
        TestbedHarness(d)
        seen = []
        app = d.tenant_vms[0].app("l2fwd")
        original = app._ingress

        def spy(index, frame):
            seen.append(frame.vlan)
            original(index, frame)

        app._ingress = spy
        for i, pair in enumerate([d.tenant_vf[(0, 0)].port,
                                  d.tenant_vf[(0, 1)].port]):
            pair.rx.connect(lambda f, i=i: spy(i, f))
        run_one_frame(d)
        assert seen and all(v is None for v in seen)

    def test_p2p_bypasses_tenants(self):
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_1),
                             TrafficScenario.P2P)
        h = TestbedHarness(d)
        frame = run_one_frame(d)
        assert h.sink.total == 1
        assert not any("l2fwd" in t for t in frame.trace)

    def test_v2v_chains_two_tenants(self):
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_1),
                             TrafficScenario.V2V)
        h = TestbedHarness(d)
        frame = run_one_frame(d, tenant=0)
        assert h.sink.total == 1
        assert any("tenant0.l2fwd.rx" == t for t in frame.trace)
        assert any("tenant1.l2fwd.rx" == t for t in frame.trace)

    def test_all_four_tenants_reachable(self):
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_2, vms=2),
                             TrafficScenario.P2V)
        h = TestbedHarness(d)
        for t in range(4):
            run_one_frame(d, tenant=t)
        assert dict(h.sink.per_flow) == {0: 1, 1: 1, 2: 1, 3: 1}

    def test_baseline_p2v_through_vhost_and_linux_bridge(self):
        d = build_deployment(make_spec(level=SecurityLevel.BASELINE),
                             TrafficScenario.P2V)
        h = TestbedHarness(d)
        frame = run_one_frame(d)
        assert h.sink.total == 1
        assert any("vhost-t0-0.h2g" == t for t in frame.trace)
        assert any("tenant0.br0.rx" == t for t in frame.trace)
        assert any("vhost-t0-1.g2h" == t for t in frame.trace)

    def test_baseline_v2v(self):
        d = build_deployment(make_spec(level=SecurityLevel.BASELINE),
                             TrafficScenario.V2V)
        h = TestbedHarness(d)
        frame = run_one_frame(d, tenant=2)
        assert h.sink.total == 1
        assert any("tenant2.br0" in t for t in frame.trace)
        assert any("tenant3.br0" in t for t in frame.trace)


class TestCompleteMediation:
    """Every tenant<->vswitch frame crosses the NIC: no software path."""

    def test_mts_p2v_trace_alternates_through_nic(self):
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_1),
                             TrafficScenario.P2V)
        TestbedHarness(d)
        frame = run_one_frame(d)
        stations = [t for t in frame.trace if t.startswith(("nic.", "vsw", "tenant"))]
        # Between any vswitch hop and tenant hop there must be NIC hops.
        tenant_idx = [i for i, t in enumerate(stations) if t.startswith("tenant")]
        vsw_idx = [i for i, t in enumerate(stations) if t.startswith("vsw")]
        for ti in tenant_idx:
            for vi in vsw_idx:
                low, high = min(ti, vi), max(ti, vi)
                assert any(stations[i].startswith("nic.")
                           for i in range(low + 1, high)), (
                    "tenant and vswitch adjacent without NIC mediation")

    def test_mediation_count_matches_hairpin_model(self):
        """The DES's actual NIC switching count equals the capacity
        model's hairpin assumption (2 per p2v packet)."""
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_1),
                             TrafficScenario.P2V)
        TestbedHarness(d)
        before = sum(p.frames_switched for p in d.server.nic.ports)
        run_one_frame(d)
        switched = sum(p.frames_switched for p in d.server.nic.ports) - before
        # fabric-in, to-gw, from-tenant, egress = 4 VEB decisions,
        # of which 2 are VF-to-VF hairpins.
        assert switched == 4


class TestTenantIsolation:
    def test_spoofed_tenant_frame_dropped_at_nic(self):
        """A malicious tenant forging its source MAC is stopped by the
        NIC spoof check before reaching any vswitch."""
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_1),
                             TrafficScenario.P2V)
        TestbedHarness(d)
        evil = Frame(src_mac=MacAddress.parse("02:66:66:66:66:66"),
                     dst_mac=d.gw_vf[(0, 0)].mac,
                     dst_ip=d.plan.tenant_ip(1))
        d.tenant_vf[(0, 0)].port.transmit(evil)
        d.sim.run(until=d.sim.now + 1.0)
        assert d.server.nic.total_drops().spoof == 1
        assert d.bridges[0].passes == 0

    def test_tenant_cannot_address_other_tenant_directly(self):
        """With correct source MAC but a foreign destination, the
        wildcard filter drops the frame (complete mediation: only the
        gateway is reachable)."""
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_1),
                             TrafficScenario.P2V)
        TestbedHarness(d)
        received = []
        d.tenant_vf[(1, 0)].port.rx.connect(lambda f: received.append(f))
        sneaky = Frame(src_mac=d.tenant_vf[(0, 0)].mac,
                       dst_mac=d.tenant_vf[(1, 0)].mac,
                       dst_ip=d.plan.tenant_ip(1))
        d.tenant_vf[(0, 0)].port.transmit(sneaky)
        d.sim.run(until=d.sim.now + 1.0)
        assert received == []
        assert d.server.nic.total_drops().filtered == 1

    def test_vlan_isolation_without_filters(self):
        """Even with the wildcard filters removed, VLAN separation keeps
        tenant0's frames out of tenant1's VM (defence in depth)."""
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_1),
                             TrafficScenario.P2V)
        TestbedHarness(d)
        d.server.nic.filters._filters.clear()
        received = []
        d.tenant_vf[(1, 0)].port.rx.connect(lambda f: received.append(f))
        sneaky = Frame(src_mac=d.tenant_vf[(0, 0)].mac,
                       dst_mac=d.tenant_vf[(1, 0)].mac,
                       dst_ip=d.plan.tenant_ip(1))
        d.tenant_vf[(0, 0)].port.transmit(sneaky)
        d.sim.run(until=d.sim.now + 1.0)
        assert received == []

    def test_flow_tables_have_no_cross_tenant_conflicts(self):
        for spec in (make_spec(level=SecurityLevel.BASELINE),
                     make_spec(level=SecurityLevel.LEVEL_1),
                     make_spec(level=SecurityLevel.LEVEL_2, vms=2)):
            d = build_deployment(spec, TrafficScenario.P2V)
            for bridge in d.bridges:
                assert bridge.table.check_conflicts() == []

    def test_level2_compartment_tables_hold_only_own_tenants(self):
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_2, vms=2),
                             TrafficScenario.P2V)
        assert d.bridges[0].table.tenants() == [0, 1]
        assert d.bridges[1].table.tenants() == [2, 3]

    def test_baseline_shares_one_table_across_tenants(self):
        d = build_deployment(make_spec(level=SecurityLevel.BASELINE),
                             TrafficScenario.P2V)
        assert d.bridges[0].table.tenants() == [0, 1, 2, 3]


class TestSustainedTraffic:
    @pytest.mark.parametrize("level,vms", [
        (SecurityLevel.BASELINE, 1),
        (SecurityLevel.LEVEL_1, 1),
        (SecurityLevel.LEVEL_2, 2),
    ])
    def test_no_loss_below_capacity(self, level, vms):
        d = build_deployment(make_spec(level=level, vms=vms),
                             TrafficScenario.P2V)
        h = TestbedHarness(d)
        h.configure_tenant_flows(rate_per_flow_pps=2500)
        result = h.run(duration=0.02)
        assert result.delivered == result.sent

    def test_single_port_workload_topology(self):
        """Fig. 6's one-port wiring: ingress and egress hairpin on
        port 0."""
        d = build_deployment(make_spec(level=SecurityLevel.LEVEL_1,
                                       nic_ports=1),
                             TrafficScenario.P2V)
        h = TestbedHarness(d)
        h.configure_tenant_flows(rate_per_flow_pps=1000)
        result = h.run(duration=0.02)
        assert result.delivered == result.sent
