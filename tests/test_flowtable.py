"""Flow table: priorities, tenant datapaths, conflict detection."""

import pytest

from repro.errors import FlowTableError
from repro.net import Frame, IPv4Address, MacAddress
from repro.vswitch import Drop, FlowMatch, FlowRule, FlowTable, Output


def frame(dst="10.0.0.10", **kwargs):
    defaults = dict(src_mac=MacAddress(1), dst_mac=MacAddress(2),
                    dst_ip=IPv4Address.parse(dst))
    defaults.update(kwargs)
    return Frame(**defaults)


def rule(priority=100, tenant=None, dst=None, in_port=None, out=1):
    match = FlowMatch(
        in_port=in_port,
        dst_ip=IPv4Address.parse(dst) if dst else None,
    )
    return FlowRule(match=match, actions=[Output(out)], priority=priority,
                    tenant_id=tenant)


class TestLookup:
    def test_highest_priority_wins(self):
        table = FlowTable()
        low = table.add(rule(priority=10, out=1))
        high = table.add(rule(priority=200, out=2))
        assert table.lookup(frame(), 1) is high
        assert low.n_packets == 0

    def test_insertion_order_breaks_ties(self):
        table = FlowTable()
        first = table.add(rule(priority=100, out=1))
        table.add(rule(priority=100, out=2))
        assert table.lookup(frame(), 1) is first

    def test_miss_counts(self):
        table = FlowTable()
        table.add(rule(dst="10.9.9.9"))
        assert table.lookup(frame(), 1) is None
        assert table.misses == 1
        assert table.lookups == 1

    def test_counters_update_on_hit(self):
        table = FlowTable()
        r = table.add(rule())
        table.lookup(frame(), 1)
        table.lookup(frame(), 1)
        assert r.n_packets == 2
        assert r.n_bytes == 128

    def test_rule_without_actions_rejected(self):
        with pytest.raises(FlowTableError):
            FlowTable().add(FlowRule(match=FlowMatch(), actions=[]))


class TestTenantDatapaths:
    def test_tenants_listing(self):
        table = FlowTable()
        table.add(rule(tenant=0))
        table.add(rule(tenant=2))
        table.add(rule(tenant=0))
        assert table.tenants() == [0, 2]

    def test_rules_of_tenant(self):
        table = FlowTable()
        table.add(rule(tenant=0))
        table.add(rule(tenant=1))
        assert len(table.rules_of(0)) == 1

    def test_remove_tenant_withdraws_logical_datapath(self):
        table = FlowTable()
        table.add(rule(tenant=0))
        table.add(rule(tenant=0))
        table.add(rule(tenant=1))
        assert table.remove_tenant(0) == 2
        assert table.tenants() == [1]

    def test_remove_by_cookie(self):
        table = FlowTable()
        r = table.add(rule())
        assert table.remove_by_cookie(r.cookie)
        assert not table.remove_by_cookie(r.cookie)
        assert len(table) == 0


class TestConflicts:
    def test_cross_tenant_same_priority_overlap_detected(self):
        """The misconfiguration class the paper warns about: one sloppy
        rule can make tenant traffic visible to another tenant."""
        table = FlowTable()
        table.add(rule(tenant=0, dst="10.0.0.10", priority=100))
        # Tenant 1's operator fat-fingers a wildcard over tenant 0's IP.
        table.add(FlowRule(match=FlowMatch(
            dst_ip=IPv4Address.parse("10.0.0.0"), dst_ip_prefix=8),
            actions=[Output(9)], priority=100, tenant_id=1))
        conflicts = table.check_conflicts()
        assert len(conflicts) == 1
        a, b = conflicts[0]
        assert {a.tenant_id, b.tenant_id} == {0, 1}

    def test_same_tenant_overlap_not_flagged(self):
        table = FlowTable()
        table.add(rule(tenant=0, priority=100))
        table.add(rule(tenant=0, priority=100))
        assert table.check_conflicts() == []

    def test_different_priorities_not_flagged(self):
        table = FlowTable()
        table.add(rule(tenant=0, priority=100))
        table.add(rule(tenant=1, priority=200))
        assert table.check_conflicts() == []

    def test_disjoint_matches_not_flagged(self):
        table = FlowTable()
        table.add(rule(tenant=0, dst="10.0.0.1", priority=100))
        table.add(rule(tenant=1, dst="10.0.0.2", priority=100))
        assert table.check_conflicts() == []


class TestDump:
    def test_dump_contains_cookies_and_priorities(self):
        table = FlowTable()
        r = table.add(rule(priority=42))
        dump = table.dump()
        assert f"cookie={r.cookie}" in dump
        assert "prio=42" in dump
