"""The paper's latency claims, verified in the packet-level DES."""

import pytest

from repro.core import ResourceMode, SecurityLevel, TrafficScenario
from repro.experiments.common import ConfigPoint
from repro.experiments.fig5_latency import measure_latency
from repro.units import MSEC, USEC

B, L1, L2 = SecurityLevel.BASELINE, SecurityLevel.LEVEL_1, SecurityLevel.LEVEL_2
SH, ISO = ResourceMode.SHARED, ResourceMode.ISOLATED
P2P, P2V, V2V = (TrafficScenario.P2P, TrafficScenario.P2V,
                 TrafficScenario.V2V)


def cfg(label, level, vms=1, bc=1, mode=SH, us=False):
    return ConfigPoint(label, level, vms, bc, mode, us)


def median(config, scenario, **kwargs):
    return measure_latency(config, scenario, duration=0.1, **kwargs).stats


BASE_K = cfg("Baseline", B)
L1_K = cfg("L1", L1)
L2_2 = cfg("L2(2)", L2, vms=2)
L2_4 = cfg("L2(4)", L2, vms=4)
L1_ISO = cfg("L1", L1, mode=ISO)
BASE_DPDK1 = cfg("Baseline(1)+L3", B, bc=1, mode=ISO, us=True)
BASE_DPDK2 = cfg("Baseline(2)+L3", B, bc=2, mode=ISO, us=True)
L1_DPDK = cfg("L1+L3", L1, mode=ISO, us=True)


class TestKernelLatency:
    def test_mts_p2p_latency_higher_than_baseline(self):
        """"the p2p scenario shows that MTS increases the latency" --
        the extra NIC round trip."""
        assert (median(L1_K, P2P).median
                > median(BASE_K, P2P).median)

    def test_mts_p2v_slightly_faster(self):
        """"the p2v and v2v scenarios show that MTS is slightly faster
        than the Baseline" (SR-IOV beats vhost + Linux bridge)."""
        base = median(BASE_K, P2V).median
        mts = median(L1_ISO, P2V).median
        assert mts < base
        assert mts > 0.5 * base  # "slightly", not an order of magnitude

    def test_mts_v2v_faster(self):
        assert (median(L1_ISO, V2V).median
                < median(BASE_K, V2V).median)

    def test_latency_grows_with_path_length(self):
        for config in (BASE_K, L1_K):
            p2p = median(config, P2P).median
            p2v = median(config, P2V).median
            v2v = median(config, V2V).median
            assert p2p < p2v < v2v

    def test_shared_mode_variance_grows_with_compartments(self):
        """"The variance in latency increases as more compartments share
        the same physical core" """
        iqr_1 = median(L1_K, P2V).iqr
        iqr_2 = median(L2_2, P2V).iqr
        iqr_4 = median(L2_4, P2V).iqr
        assert iqr_1 < iqr_2 < iqr_4

    def test_isolated_mode_is_predictable(self):
        """"Isolating the vswitch VM cores leads to more predictable
        latency" """
        shared = measure_latency(L2_4, P2V, duration=0.1).stats
        isolated = measure_latency(cfg("L2(4)", L2, vms=4, mode=ISO),
                                   P2V, duration=0.1).stats
        assert isolated.iqr < shared.iqr
        assert isolated.median < shared.median


class TestDpdkLatency:
    def test_mts_dpdk_slower_than_mts_kernel(self):
        """"MTS takes longer to forward packets than without using
        DPDK" (untuned drain parameters)."""
        assert (median(L1_DPDK, P2V).median
                > median(L1_ISO, P2V).median)

    def test_baseline_multiqueue_anomaly_at_10kpps(self):
        """"the latency for Baseline with 2 and 4 cores for dpdk ...
        is unexpectedly high (around 1 ms)" """
        stats = median(BASE_DPDK2, P2P)
        assert 0.5 * MSEC < stats.median < 2.5 * MSEC

    def test_single_core_baseline_dpdk_unaffected(self):
        stats = median(BASE_DPDK1, P2P)
        assert stats.median < 100 * USEC

    def test_anomaly_vanishes_at_100kpps(self):
        """"At 100 kpps and 1 Mpps, we measured an approximately 2
        microsecond latency for the p2p scenario." """
        stats = measure_latency(BASE_DPDK2, P2P, aggregate_pps=100_000,
                                duration=0.02).stats
        assert stats.median < 100 * USEC

    def test_baseline_1core_dpdk_fastest_in_p2v(self):
        """"the Baseline with a single core for dpdk (2 in total) is
        always faster than MTS" """
        assert (median(BASE_DPDK1, P2V).median
                > 0)  # sanity
        assert (median(BASE_DPDK1, P2V).median
                < median(L1_DPDK, P2V).median)


class TestNicRoundTripOverhead:
    def test_extra_nic_round_trip_is_microseconds(self):
        """"the only downside is the extra round-trip to the NIC ...
        negligible latency overhead" -- p2p delta between MTS and
        Baseline is a few microseconds."""
        delta = (median(L1_K, P2P).median
                 - median(BASE_K, P2P).median)
        assert 0 < delta < 10 * USEC
