"""Fig. 5(a,d,g): aggregate forwarding throughput (64 B frames).

Each benchmark regenerates one figure row via the capacity model and
asserts the paper's headline shape before reporting the rows.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments import EvalMode
from repro.experiments.fig5_throughput import run


@pytest.mark.benchmark(group="fig5-throughput")
def test_fig5a_shared(benchmark):
    table = benchmark(run, EvalMode.SHARED)
    emit(table)
    base = table.series_by_label("Baseline")
    mts = table.series_by_label("L2(4)")
    assert mts.get("p2v") / base.get("p2v") > 1.8


@pytest.mark.benchmark(group="fig5-throughput")
def test_fig5d_isolated(benchmark):
    table = benchmark(run, EvalMode.ISOLATED)
    emit(table)
    assert table.series_by_label("Baseline(4)").get("p2p") == pytest.approx(
        4.0, abs=0.3)
    assert (table.series_by_label("L2(4)").get("p2p")
            > table.series_by_label("Baseline(4)").get("p2p"))


@pytest.mark.benchmark(group="fig5-throughput")
def test_fig5g_dpdk(benchmark):
    table = benchmark(run, EvalMode.DPDK)
    emit(table)
    assert table.series_by_label("Baseline(2)+L3").get("p2p") > 12.0
    assert table.series_by_label("L2(4)+L3").get("p2v") == pytest.approx(
        2.3, abs=0.2)
