"""Fig. 5(c,f,i): CPU core and hugepage consumption."""

import pytest

from benchmarks.conftest import emit
from repro.experiments import EvalMode
from repro.experiments.fig5_resources import run


@pytest.mark.benchmark(group="fig5-resources")
def test_fig5c_shared(benchmark):
    table = benchmark(run, EvalMode.SHARED)
    emit(table)
    # The headline: multiple compartments for one extra core.
    assert table.series_by_label("Baseline").get("networking-cores") == 1
    for label in ("L1", "L2(2)", "L2(4)"):
        assert table.series_by_label(label).get("networking-cores") == 2


@pytest.mark.benchmark(group="fig5-resources")
def test_fig5f_isolated(benchmark):
    table = benchmark(run, EvalMode.ISOLATED)
    emit(table)
    assert table.series_by_label("L2(4)").get("networking-cores") == 5
    # MTS costs exactly one core more than the proportional Baseline.
    for n, base, mts in ((1, "Baseline(1)", "L1"),
                         (2, "Baseline(2)", "L2(2)"),
                         (4, "Baseline(4)", "L2(4)")):
        delta = (table.series_by_label(mts).get("networking-cores")
                 - table.series_by_label(base).get("networking-cores"))
        assert delta == 1


@pytest.mark.benchmark(group="fig5-resources")
def test_fig5i_dpdk(benchmark):
    table = benchmark(run, EvalMode.DPDK)
    emit(table)
    # With DPDK, MTS and Baseline consume equal cores (paper 4.3).
    for n, base, mts in ((1, "Baseline(1)+L3", "L1+L3"),
                         (2, "Baseline(2)+L3", "L2(2)+L3"),
                         (4, "Baseline(4)+L3", "L2(4)+L3")):
        assert (table.series_by_label(mts).get("networking-cores")
                == table.series_by_label(base).get("networking-cores"))
