"""Extension bench: the flow-cache (policy-injection) DoS."""

import pytest

from benchmarks.conftest import emit
from repro.experiments.policy_injection import run


@pytest.mark.benchmark(group="extensions")
def test_policy_injection(benchmark):
    table = benchmark.pedantic(run, kwargs=dict(duration=0.08),
                               iterations=1, rounds=1)
    emit(table)
    delivery = table.series_by_label("victim delivery fraction")
    assert delivery.get("Baseline(1)") < 0.4
    assert delivery.get("L2(4)") > 0.99
