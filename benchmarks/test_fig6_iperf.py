"""Fig. 6(a,f,k): aggregate iperf TCP throughput."""

import pytest

from benchmarks.conftest import emit
from repro.experiments import EvalMode
from repro.experiments.fig6_iperf import run


@pytest.mark.benchmark(group="fig6-iperf")
def test_fig6a_shared(benchmark):
    table = benchmark(run, EvalMode.SHARED)
    emit(table)
    assert (table.series_by_label("L2(4)").get("p2v")
            / table.series_by_label("Baseline").get("p2v") > 2.0)


@pytest.mark.benchmark(group="fig6-iperf")
def test_fig6f_isolated(benchmark):
    table = benchmark(run, EvalMode.ISOLATED)
    emit(table)
    # MTS saturates the 10G link in p2v when isolated.
    assert table.series_by_label("L2(4)").get("p2v") > 9.0


@pytest.mark.benchmark(group="fig6-iperf")
def test_fig6k_dpdk(benchmark):
    table = benchmark(run, EvalMode.DPDK)
    emit(table)
    assert table.series_by_label("L2(2)+L3").get("p2v") > 9.0
    # ... except v2v, where the Baseline wins under DPDK.
    assert (table.series_by_label("Baseline(2)+L3").get("v2v")
            > table.series_by_label("L2(2)+L3").get("v2v"))
