"""Extension bench: performance isolation under a noisy neighbor."""

import pytest

from benchmarks.conftest import emit
from repro.experiments.noisy_neighbor import run


@pytest.mark.benchmark(group="extensions")
def test_noisy_neighbor(benchmark):
    table = benchmark.pedantic(run, kwargs=dict(duration=0.06),
                               iterations=1, rounds=1)
    emit(table)
    delivery = table.series_by_label("victim delivery fraction")
    assert delivery.get("Baseline(1)") < 0.3
    assert delivery.get("L2(4)") > 0.99
