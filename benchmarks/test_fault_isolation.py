"""Extension bench: availability blast radius of a vswitch crash."""

import pytest

from benchmarks.conftest import emit
from repro.experiments.fault_isolation import run


@pytest.mark.benchmark(group="extensions")
def test_fault_isolation(benchmark):
    table = benchmark.pedantic(run, kwargs=dict(phase=0.04),
                               iterations=1, rounds=1)
    emit(table)
    baseline = table.series_by_label("Baseline(1)")
    l2 = table.series_by_label("L2(2)")
    assert all(baseline.get(f"t{t}") < 0.05 for t in range(4))
    assert l2.get("t2") > 0.99 and l2.get("t3") > 0.99
