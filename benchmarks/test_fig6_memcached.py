"""Fig. 6(c,h,m) + (e,j,o): Memcached throughput and response time."""

import pytest

from benchmarks.conftest import emit
from repro.experiments import EvalMode
from repro.experiments.fig6_memcached import run_response_time, run_throughput


@pytest.mark.benchmark(group="fig6-memcached")
def test_fig6c_6e_shared(benchmark):
    def both():
        return (run_throughput(EvalMode.SHARED),
                run_response_time(EvalMode.SHARED))

    tput, rt = benchmark(both)
    emit(tput)
    emit(rt)
    assert (tput.series_by_label("L2(4)").get("p2v")
            / tput.series_by_label("Baseline").get("p2v") > 1.8)
    assert (rt.series_by_label("Baseline").get("p2v")
            / rt.series_by_label("L2(4)").get("p2v") > 1.8)


@pytest.mark.benchmark(group="fig6-memcached")
def test_fig6h_6j_isolated(benchmark):
    def both():
        return (run_throughput(EvalMode.ISOLATED),
                run_response_time(EvalMode.ISOLATED))

    tput, rt = benchmark(both)
    emit(tput)
    emit(rt)
    assert (tput.series_by_label("L2(4)").get("p2v")
            > tput.series_by_label("Baseline(4)").get("p2v"))


@pytest.mark.benchmark(group="fig6-memcached")
def test_fig6m_6o_dpdk(benchmark):
    def both():
        return (run_throughput(EvalMode.DPDK),
                run_response_time(EvalMode.DPDK))

    tput, rt = benchmark(both)
    emit(tput)
    emit(rt)
    for label in ("L1+L3", "L2(2)+L3"):
        assert tput.series_by_label(label).get("p2v") > 0
