"""Section 3.2 VF budgets: the 3/9 and 6/12 examples + the 64-VF ceiling."""

import pytest

from benchmarks.conftest import emit
from repro.experiments.vf_table import run


@pytest.mark.benchmark(group="vf-budgets")
def test_vf_budgets(benchmark):
    table = benchmark(run)
    emit(table)
    l1 = table.series_by_label("Level-1")
    assert (l1.get("1T"), l1.get("4T")) == (3, 9)
    l2 = table.series_by_label("Level-2 (per-tenant)")
    assert (l2.get("2T"), l2.get("4T")) == (6, 12)
