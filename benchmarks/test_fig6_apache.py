"""Fig. 6(b,g,l) + (d,i,n): Apache throughput and response time."""

import pytest

from benchmarks.conftest import emit
from repro.experiments import EvalMode
from repro.experiments.fig6_apache import run_response_time, run_throughput


@pytest.mark.benchmark(group="fig6-apache")
def test_fig6b_6d_shared(benchmark):
    def both():
        return run_throughput(EvalMode.SHARED), run_response_time(EvalMode.SHARED)

    tput, rt = benchmark(both)
    emit(tput)
    emit(rt)
    base_rps = tput.series_by_label("Baseline").get("p2v")
    mts_rps = tput.series_by_label("L2(4)").get("p2v")
    assert mts_rps / base_rps > 1.8
    # response time ~2x faster under MTS
    assert (rt.series_by_label("Baseline").get("p2v")
            / rt.series_by_label("L2(4)").get("p2v") > 1.8)


@pytest.mark.benchmark(group="fig6-apache")
def test_fig6g_6i_isolated(benchmark):
    def both():
        return (run_throughput(EvalMode.ISOLATED),
                run_response_time(EvalMode.ISOLATED))

    tput, rt = benchmark(both)
    emit(tput)
    emit(rt)
    assert (tput.series_by_label("L2(2)").get("p2v")
            > tput.series_by_label("Baseline(2)").get("p2v"))


@pytest.mark.benchmark(group="fig6-apache")
def test_fig6l_6n_dpdk(benchmark):
    def both():
        return (run_throughput(EvalMode.DPDK),
                run_response_time(EvalMode.DPDK))

    tput, rt = benchmark(both)
    emit(tput)
    emit(rt)
    # DPDK buys little for the workloads relative to its core cost.
    assert (tput.series_by_label("L2(2)+L3").get("p2v")
            < 2.5 * tput.series_by_label("L2(2)+L3").get("v2v"))
