"""Extension bench: the PMU-style latency breakdown table."""

import pytest

from benchmarks.conftest import emit
from repro.experiments import EvalMode
from repro.experiments.latency_breakdown import run


@pytest.mark.benchmark(group="extensions")
def test_latency_breakdown_shared(benchmark):
    table = benchmark.pedantic(run, kwargs=dict(duration=0.06),
                               iterations=1, rounds=1)
    emit(table)
    baseline = table.series_by_label("Baseline")
    l1 = table.series_by_label("L1")
    assert baseline.get("vhost") > 4 * l1.get("nic")
