"""Micro-benchmarks of the simulator's own hot paths.

These keep the reproduction usable: the DES must push enough simulated
packets per wall-clock second that the latency experiments stay cheap.
"""

import pytest

from repro.net import Frame, IPv4Address, MacAddress
from repro.net.interfaces import PortPair
from repro.sim import Simulator
from repro.sriov.switch import VebSwitch, UNTAGGED
from repro.sriov.vf import VirtualFunction
from repro.vswitch import FlowMatch, FlowRule, FlowTable, Output


@pytest.mark.benchmark(group="micro")
def test_flow_table_lookup_rate(benchmark):
    table = FlowTable()
    for t in range(4):
        for port in range(1, 11):
            table.add(FlowRule(
                match=FlowMatch(in_port=port,
                                dst_ip=IPv4Address.parse(f"10.0.{t}.10")),
                actions=[Output(1)], priority=200, tenant_id=t))
    frame = Frame(src_mac=MacAddress(1), dst_mac=MacAddress(2),
                  dst_ip=IPv4Address.parse("10.0.3.10"))
    result = benchmark(table.lookup, frame, 10)
    assert result is not None


@pytest.mark.benchmark(group="micro")
def test_veb_forwarding_rate(benchmark):
    veb = VebSwitch()
    vfs = []
    for i in range(16):
        vf = VirtualFunction(index=i, pf_index=0)
        vf.mac = MacAddress(0x100 + i)
        vf.vlan = 100 + (i % 4)
        veb.attach(vf)
        vfs.append(vf)
    frame = Frame(src_mac=MacAddress(0x100), dst_mac=MacAddress(0x104))
    decision = benchmark(veb.forward, "pf0vf0", 100, frame)
    assert decision.destinations


@pytest.mark.benchmark(group="micro")
def test_des_event_rate(benchmark):
    def run_chain():
        sim = Simulator()
        count = [0]

        def hop():
            count[0] += 1
            if count[0] < 5000:
                sim.call_later(1e-6, hop)

        sim.call_later(0.0, hop)
        sim.run()
        return count[0]

    assert benchmark(run_chain) == 5000


@pytest.mark.benchmark(group="micro")
def test_frame_copy_rate(benchmark):
    frame = Frame(src_mac=MacAddress(1), dst_mac=MacAddress(2),
                  dst_ip=IPv4Address.parse("10.0.0.10"), vlan=100)
    copy = benchmark(frame.copy)
    assert copy.vlan == 100


@pytest.mark.benchmark(group="micro")
def test_megaflow_hit_rate(benchmark):
    from repro.vswitch.megaflow import MegaflowCache
    cache = MegaflowCache()
    frame = Frame(src_mac=MacAddress(1), dst_mac=MacAddress(2),
                  dst_ip=IPv4Address.parse("10.0.0.10"), src_port=1234)
    cache.lookup_cost(frame, 1)  # install
    cost = benchmark(cache.lookup_cost, frame, 1)
    assert cost == 0.0


@pytest.mark.benchmark(group="micro")
def test_ofctl_parse_rate(benchmark):
    from repro.vswitch.ofctl import parse_flow
    rule = benchmark(
        parse_flow,
        "table=0,priority=200,in_port=1,ip,nw_dst=10.0.0.10,"
        "actions=mod_dl_dst:02:4d:54:00:00:07,output:3")
    assert rule.priority == 200


@pytest.mark.benchmark(group="micro")
def test_deployment_build_rate(benchmark):
    """Building a full L2(2) deployment (VMs, VFs, rules, filters) --
    the cost of one experiment iteration."""
    from repro.core import SecurityLevel, TrafficScenario, build_deployment
    from repro.core.spec import DeploymentSpec

    def build():
        spec = DeploymentSpec(level=SecurityLevel.LEVEL_2,
                              num_vswitch_vms=2)
        return build_deployment(spec, TrafficScenario.P2V)

    deployment = benchmark(build)
    assert len(deployment.vswitch_vms) == 2


@pytest.mark.benchmark(group="micro")
def test_capacity_solve_rate(benchmark):
    from repro.core import SecurityLevel, TrafficScenario, build_deployment
    from repro.core.spec import DeploymentSpec
    from repro.perfmodel.paths import throughput
    spec = DeploymentSpec(level=SecurityLevel.LEVEL_2, num_vswitch_vms=2)
    d = build_deployment(spec, TrafficScenario.P2V)
    result = benchmark(throughput, d, TrafficScenario.P2V)
    assert result.aggregate_pps > 0
