"""Micro-benchmarks of the simulator's own hot paths.

These keep the reproduction usable: the DES must push enough simulated
packets per wall-clock second that the latency experiments stay cheap.
"""

import pytest

from repro.net import Frame, IPv4Address, MacAddress
from repro.net.interfaces import PortPair
from repro.sim import Simulator
from repro.sriov.switch import VebSwitch, UNTAGGED
from repro.sriov.vf import VirtualFunction
from repro.vswitch import FlowMatch, FlowRule, FlowTable, Output


def _build_1k_table(fastpath: bool) -> FlowTable:
    """A 1000-rule table with mixed wildcard masks and priorities --
    the scale at which the linear scan collapses and tuple-space search
    does not."""
    table = FlowTable(fastpath=fastpath)
    for i in range(1000):
        t = i % 4
        ip = IPv4Address.parse(f"10.{t}.{(i // 4) % 25}.10")
        port = (i % 10) + 1
        shape = i % 3
        if shape == 0:
            match = FlowMatch(in_port=port, dst_ip=ip)
        elif shape == 1:
            match = FlowMatch(dst_ip=ip, dst_port=1000 + (i % 5))
        else:
            match = FlowMatch(in_port=port, dst_ip=ip,
                              dst_port=1000 + (i % 5))
        table.add(FlowRule(match=match, actions=[Output(1)],
                           priority=100 + shape * 100, tenant_id=t))
    return table


def _lookup_workload(n: int = 256):
    """(frame, in_port) pairs spread across the 1k-rule table's keyspace
    (a steady-state working set the EMC can hold)."""
    pairs = []
    for j in range(n):
        frame = Frame(src_mac=MacAddress(1), dst_mac=MacAddress(2),
                      dst_ip=IPv4Address.parse(f"10.{j % 4}.{j % 25}.10"),
                      dst_port=1000 + (j % 5))
        pairs.append((frame, (j % 10) + 1))
    return pairs


@pytest.mark.benchmark(group="micro")
def test_flow_table_lookup_rate(benchmark):
    """Steady-state lookups against a 1k-rule table (fast path on)."""
    table = _build_1k_table(fastpath=True)
    workload = _lookup_workload()

    def sweep():
        hits = 0
        for frame, in_port in workload:
            if table.lookup(frame, in_port) is not None:
                hits += 1
        return hits

    assert benchmark(sweep) > 0


@pytest.mark.benchmark(group="micro")
def test_flow_table_lookup_linear_1k(benchmark):
    """The retained linear-scan oracle on the same table/workload --
    the pre-fast-path baseline the speedup criterion compares against."""
    table = _build_1k_table(fastpath=False)
    workload = _lookup_workload()

    def sweep():
        hits = 0
        for frame, in_port in workload:
            if table.lookup(frame, in_port) is not None:
                hits += 1
        return hits

    assert benchmark(sweep) > 0


@pytest.mark.benchmark(group="micro")
def test_flow_table_classifier_miss_rate(benchmark):
    """Tuple-space search alone (the EMC-miss path): probes the private
    classifier directly so the EMC cannot absorb the repeats."""
    table = _build_1k_table(fastpath=True)
    frame = Frame(src_mac=MacAddress(1), dst_mac=MacAddress(2),
                  dst_ip=IPv4Address.parse("10.3.24.10"), dst_port=1003)
    result = benchmark(table._classify, frame, 10)
    assert result is not None


@pytest.mark.benchmark(group="micro")
def test_flow_table_emc_hit_rate(benchmark):
    """Single-flow steady state: every lookup after the first is one
    EMC dict probe."""
    table = _build_1k_table(fastpath=True)
    frame = Frame(src_mac=MacAddress(1), dst_mac=MacAddress(2),
                  dst_ip=IPv4Address.parse("10.3.24.10"), dst_port=1003)
    table.lookup(frame, 10)  # install
    result = benchmark(table.lookup, frame, 10)
    assert result is not None
    assert table.emc_stats.hits > 0


def test_fastpath_speedup_vs_linear():
    """Acceptance gate: the fast path must be >=10x the linear scan on
    a 1k-rule table (plain timing, no benchmark fixture, so the ratio
    is enforced on every benchmark run)."""
    import time

    fast = _build_1k_table(fastpath=True)
    linear = _build_1k_table(fastpath=False)
    workload = _lookup_workload()

    def timed(table, rounds):
        for frame, in_port in workload:  # warm the caches
            table.lookup(frame, in_port)
        t0 = time.perf_counter()
        for _ in range(rounds):
            for frame, in_port in workload:
                table.lookup(frame, in_port)
        return (time.perf_counter() - t0) / (rounds * len(workload))

    linear_us = timed(linear, rounds=3) * 1e6
    fast_us = timed(fast, rounds=50) * 1e6
    speedup = linear_us / fast_us
    print(f"\nlinear={linear_us:.2f}us fast={fast_us:.3f}us "
          f"speedup={speedup:.0f}x")
    assert speedup >= 10.0


@pytest.mark.benchmark(group="micro")
def test_veb_forwarding_rate(benchmark):
    veb = VebSwitch()
    vfs = []
    for i in range(16):
        vf = VirtualFunction(index=i, pf_index=0)
        vf.mac = MacAddress(0x100 + i)
        vf.vlan = 100 + (i % 4)
        veb.attach(vf)
        vfs.append(vf)
    frame = Frame(src_mac=MacAddress(0x100), dst_mac=MacAddress(0x104))
    decision = benchmark(veb.forward, "pf0vf0", 100, frame)
    assert decision.destinations


@pytest.mark.benchmark(group="micro")
def test_des_event_rate(benchmark):
    def run_chain():
        sim = Simulator()
        count = [0]

        def hop():
            count[0] += 1
            if count[0] < 5000:
                sim.call_later(1e-6, hop)

        sim.call_later(0.0, hop)
        sim.run()
        return count[0]

    assert benchmark(run_chain) == 5000


@pytest.mark.benchmark(group="micro")
def test_frame_copy_rate(benchmark):
    frame = Frame(src_mac=MacAddress(1), dst_mac=MacAddress(2),
                  dst_ip=IPv4Address.parse("10.0.0.10"), vlan=100)
    copy = benchmark(frame.copy)
    assert copy.vlan == 100


@pytest.mark.benchmark(group="micro")
def test_megaflow_hit_rate(benchmark):
    from repro.vswitch.megaflow import MegaflowCache
    cache = MegaflowCache()
    frame = Frame(src_mac=MacAddress(1), dst_mac=MacAddress(2),
                  dst_ip=IPv4Address.parse("10.0.0.10"), src_port=1234)
    cache.lookup_cost(frame, 1)  # install
    cost = benchmark(cache.lookup_cost, frame, 1)
    assert cost == 0.0


@pytest.mark.benchmark(group="micro")
def test_ofctl_parse_rate(benchmark):
    from repro.vswitch.ofctl import parse_flow
    rule = benchmark(
        parse_flow,
        "table=0,priority=200,in_port=1,ip,nw_dst=10.0.0.10,"
        "actions=mod_dl_dst:02:4d:54:00:00:07,output:3")
    assert rule.priority == 200


@pytest.mark.benchmark(group="micro")
def test_deployment_build_rate(benchmark):
    """Building a full L2(2) deployment (VMs, VFs, rules, filters) --
    the cost of one experiment iteration."""
    from repro.core import SecurityLevel, TrafficScenario, build_deployment
    from repro.core.spec import DeploymentSpec

    def build():
        spec = DeploymentSpec(level=SecurityLevel.LEVEL_2,
                              num_vswitch_vms=2)
        return build_deployment(spec, TrafficScenario.P2V)

    deployment = benchmark(build)
    assert len(deployment.vswitch_vms) == 2


@pytest.mark.benchmark(group="micro")
def test_burst_emission_rate(benchmark):
    """LoadGenerator with the DPDK-style burst=32 emitter: DES events
    per simulated packet drop ~32x vs per-frame scheduling."""
    from repro.net.link import Link
    from repro.traffic.generator import FlowConfig, LoadGenerator
    from repro.traffic.sink import Sink
    from repro.units import GBPS

    def run():
        sim = Simulator()
        sink = Sink()
        link = Link(sim, dst=sink.port, bandwidth_bps=10 * GBPS)
        lg = LoadGenerator(sim, link)
        lg.add_flow(FlowConfig(
            flow_id=0, dst_mac=MacAddress(2),
            dst_ip=IPv4Address.parse("10.0.0.10"),
            src_mac=MacAddress(1),
            src_ip=IPv4Address.parse("192.168.0.1"),
            rate_pps=1_000_000))
        lg.start(duration=0.01)
        sim.run()
        return lg.sent

    # FP accumulation of the analytic timestamps can land one frame a
    # hair inside the stop time: 10k +/- 1.
    assert benchmark(run) >= 10_000


@pytest.mark.benchmark(group="e2e")
def test_e2e_des_packet_rate(benchmark):
    """End-to-end Fig. 5 throughput topology (MTS L2, 2 vswitch VMs,
    4 tenant flows) -- the wall-clock cost of one DES experiment run.
    Simulated packets per wall-second is the tentpole metric; the
    window here is short so the benchmark stays cheap."""
    from repro.core import SecurityLevel, TrafficScenario, build_deployment
    from repro.core.spec import DeploymentSpec
    from repro.traffic import TestbedHarness

    def run():
        spec = DeploymentSpec(level=SecurityLevel.LEVEL_2,
                              num_vswitch_vms=2)
        d = build_deployment(spec, TrafficScenario.P2V)
        h = TestbedHarness(d)
        h.configure_tenant_flows(rate_per_flow_pps=200_000)
        result = h.run(duration=0.01)
        return result.sent

    assert benchmark(run) == 8001


@pytest.mark.benchmark(group="e2e")
def test_e2e_batched_packet_rate(benchmark):
    """The same Fig. 5 e2e run through the batched mediation chain
    (struct-of-arrays FrameBatch + fused routes) -- the fast path's
    wall-clock cost.  tool/bench.py divides test_e2e_des_packet_rate's
    min by this benchmark's for the batch speedup factor (gated
    >= 2.5x, ROADMAP target 3x).  The oracle is run once, untimed, and
    the batched path must deliver the identical frame count."""
    from repro.core import SecurityLevel, TrafficScenario, build_deployment
    from repro.core.spec import DeploymentSpec
    from repro.traffic import TestbedHarness

    def run(batch):
        spec = DeploymentSpec(level=SecurityLevel.LEVEL_2,
                              num_vswitch_vms=2)
        d = build_deployment(spec, TrafficScenario.P2V)
        h = TestbedHarness(d, batch=batch)
        h.configure_tenant_flows(rate_per_flow_pps=200_000)
        result = h.run(duration=0.01)
        return result.sent, result.delivered

    oracle_sent, oracle_delivered = run(batch=False)
    sent, delivered = benchmark(run, True)
    assert (sent, delivered) == (oracle_sent, oracle_delivered)
    assert sent == 8001


@pytest.mark.benchmark(group="e2e")
def test_e2e_metered_packet_rate(benchmark):
    """The same Fig. 5 e2e run with per-tenant METERING armed -- the
    billing tap + windowing cost.  tool/bench.py divides this
    benchmark's min by test_e2e_des_packet_rate's for the
    metering-enabled overhead factor (gated <= 1.6x); the metering-OFF
    path rides the regular 20% regression gate on the des benchmark."""
    from repro.billing.session import MeteringSession
    from repro.core import SecurityLevel, TrafficScenario, build_deployment
    from repro.core.spec import DeploymentSpec
    from repro.traffic import TestbedHarness

    def run():
        spec = DeploymentSpec(level=SecurityLevel.LEVEL_2,
                              num_vswitch_vms=2)
        d = build_deployment(spec, TrafficScenario.P2V)
        h = TestbedHarness(d)
        h.configure_tenant_flows(rate_per_flow_pps=200_000)
        session = MeteringSession(d, h, interval=0.002)
        session.arm(0.01)
        result = h.run(duration=0.01)
        summary = session.finish()
        assert summary["reconciled"], summary["failures"]
        assert summary["windows"] >= 5
        return result.sent

    assert benchmark(run) == 8001


@pytest.mark.benchmark(group="e2e")
def test_e2e_traced_packet_rate(benchmark):
    """The same Fig. 5 e2e run with the packet tracer ENABLED -- the
    recording path's cost.  tool/bench.py divides this benchmark's min
    by test_e2e_des_packet_rate's to report the enabled-tracer overhead
    factor; the disabled path is what the 20% regression gate protects."""
    from repro import obs
    from repro.core import SecurityLevel, TrafficScenario, build_deployment
    from repro.core.spec import DeploymentSpec
    from repro.traffic import TestbedHarness

    def run():
        spec = DeploymentSpec(level=SecurityLevel.LEVEL_2,
                              num_vswitch_vms=2)
        d = build_deployment(spec, TrafficScenario.P2V)
        tracer = obs.enable_tracing(d.sim)
        try:
            h = TestbedHarness(d)
            h.configure_tenant_flows(rate_per_flow_pps=200_000)
            result = h.run(duration=0.01)
            # len(tracer) counts accepted records without forcing the
            # lazy Span materialization (a query-time cost by design).
            assert len(tracer) > result.sent  # actually recording
            return result.sent
        finally:
            obs.disable_tracing()

    assert benchmark(run) == 8001


@pytest.mark.benchmark(group="e2e")
def test_e2e_controlplane_packet_rate(benchmark):
    """The same Fig. 5 e2e run with an IDLE resident control plane
    sharing the simulator -- heartbeat probes and autoscaler ticks ride
    the event loop, but no tenants arrive, so this prices the service's
    standing overhead.  tool/bench.py divides this benchmark's min by
    test_e2e_des_packet_rate's for the control-plane overhead factor
    (gated <= 1.1x).  Probe/tick periods are shrunk to fire ~10x/5x in
    the 10 ms window; at the default 50 ms heartbeat they would never
    fire and the benchmark would price nothing."""
    from repro.controlplane import AutoscalePolicySpec, ChurnPlan, ControlPlane
    from repro.core import SecurityLevel, TrafficScenario, build_deployment
    from repro.core.spec import DeploymentSpec
    from repro.traffic import TestbedHarness

    def run():
        spec = DeploymentSpec(level=SecurityLevel.LEVEL_2,
                              num_vswitch_vms=2)
        d = build_deployment(spec, TrafficScenario.P2V)
        h = TestbedHarness(d)
        h.configure_tenant_flows(rate_per_flow_pps=200_000)
        plan = ChurnPlan(
            duration=0.01, arrival_rate=0.0, heartbeat=0.001,
            autoscale=AutoscalePolicySpec(interval=0.002, cooldown=0.004))
        service = ControlPlane(plan, seed=0, sim=d.sim)
        service.start(horizon=0.01)
        result = h.run(duration=0.01)
        values = service.finish()
        assert values["violations"] == 0
        return result.sent

    assert benchmark(run) == 8001


@pytest.mark.benchmark(group="micro")
def test_capacity_solve_rate(benchmark):
    from repro.core import SecurityLevel, TrafficScenario, build_deployment
    from repro.core.spec import DeploymentSpec
    from repro.perfmodel.paths import throughput
    spec = DeploymentSpec(level=SecurityLevel.LEVEL_2, num_vswitch_vms=2)
    d = build_deployment(spec, TrafficScenario.P2V)
    result = benchmark(throughput, d, TrafficScenario.P2V)
    assert result.aggregate_pps > 0
