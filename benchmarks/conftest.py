"""Benchmark harness plumbing.

Every benchmark regenerates one of the paper's tables/figures and
prints the rows it produced (run with ``-s`` to see them inline; they
are also collected into ``bench_tables.txt`` in the repo root).
"""

import os

import pytest

_RENDERED = []


def emit(table) -> None:
    """Record and display a rendered table."""
    text = table.render()
    _RENDERED.append(text)
    print("\n" + text)


@pytest.fixture(scope="session", autouse=True)
def _write_tables_at_exit():
    yield
    if not _RENDERED:
        return
    path = os.path.join(os.path.dirname(__file__), "..", "bench_tables.txt")
    with open(os.path.abspath(path), "w") as handle:
        handle.write("\n\n".join(_RENDERED) + "\n")
