"""Extension bench: networking energy per configuration (§4.3)."""

import pytest

from benchmarks.conftest import emit
from repro.core import ResourceMode, SecurityLevel, TrafficScenario, build_deployment
from repro.core.spec import DeploymentSpec
from repro.measure.reporting import Series, Table
from repro.perfmodel.energy import energy_report
from repro.units import KPPS


def _configs():
    return [
        ("Baseline", DeploymentSpec(level=SecurityLevel.BASELINE)),
        ("L2(4) shared", DeploymentSpec(level=SecurityLevel.LEVEL_2,
                                        num_vswitch_vms=4)),
        ("L2(4) isolated", DeploymentSpec(level=SecurityLevel.LEVEL_2,
                                          num_vswitch_vms=4,
                                          resource_mode=ResourceMode.ISOLATED)),
        ("L2(4)+L3", DeploymentSpec(level=SecurityLevel.LEVEL_2,
                                    num_vswitch_vms=4, user_space=True,
                                    resource_mode=ResourceMode.ISOLATED)),
    ]


@pytest.mark.benchmark(group="extensions")
def test_energy_by_configuration(benchmark):
    def sweep():
        table = Table(title="Networking power draw at 100 kpps p2v "
                            "(extension of the paper's energy claim)",
                      unit="W", fmt=lambda v: f"{v:.1f}")
        watts = Series(label="networking watts")
        cores = Series(label="physical cores")
        for label, spec in _configs():
            d = build_deployment(spec, TrafficScenario.P2V)
            report = energy_report(d, TrafficScenario.P2V,
                                   offered_pps=100 * KPPS)
            watts.add(label, report.networking_watts)
            cores.add(label, float(report.networking_cores))
        table.add_series(watts)
        table.add_series(cores)
        return table

    table = benchmark(sweep)
    emit(table)
    w = table.series_by_label("networking watts")
    # DPDK's busy-polling is the energy cliff the paper warns about.
    assert w.get("L2(4)+L3") > 1.5 * w.get("L2(4) isolated")
    assert w.get("L2(4) shared") < w.get("L2(4) isolated")
