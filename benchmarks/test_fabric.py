"""Fabric-engine benchmarks: the hybrid against its pure-DES oracle.

The pair runs the same 8-server / 32-tenant fabric scenario twice --
once with the background as fluid demand and only the study flows as
packets, once with every stream as packets.  ``tool/bench.py`` turns
the pair into ``fabric_hybrid_speedup_factor`` (recorded into
``BENCH_fastpath.json`` on every run) and fails the run when the
hybrid stops paying at least 5x, which is the whole reason it exists.

Both sides assert the same delivered aggregate (within the pinned 5%
agreement bound), so the speedup is never bought with drift.
"""

import pytest

from repro.core import DeploymentSpec, SecurityLevel
from repro.fabric.hybrid import FabricDeployment
from repro.fabric.topology import FabricTopology
from repro.fabric.workload import pick_probe_flows, synth_reqs

DURATION = 0.1
WARMUP = 0.025

_EXPECTED_AGG = []


@pytest.fixture(scope="module")
def deployment():
    """One placed fabric for the whole module: construction (placement
    + calibration template) is shared setup, not part of either side's
    measured time."""
    spec = DeploymentSpec(level=SecurityLevel.LEVEL_2, num_tenants=4,
                          num_vswitch_vms=2, nic_ports=1)
    topology = FabricTopology(num_servers=8, servers_per_rack=16)
    reqs = synth_reqs(32, seed=0)
    flows = pick_probe_flows(reqs, 2, rate_pps=20_000.0)
    return FabricDeployment(spec, topology, reqs, flows,
                            placement="greedy")


def _check(result) -> float:
    agg = result.aggregate_delivered_pps
    assert agg > 0
    if not _EXPECTED_AGG:
        _EXPECTED_AGG.append(agg)
    assert agg == pytest.approx(_EXPECTED_AGG[0], rel=0.05)
    return agg


@pytest.mark.benchmark(group="fabric")
def test_fabric_hybrid_8s32t(benchmark, deployment):
    """Fluid background + per-packet study flows (the numerator's
    denominator: the fast side of the speedup factor)."""
    result = benchmark.pedantic(
        lambda: deployment.run_hybrid(duration=DURATION, warmup=WARMUP),
        rounds=2, iterations=1)
    _check(result)


@pytest.mark.benchmark(group="fabric")
def test_fabric_pure_des_8s32t(benchmark, deployment):
    """Every tenant instantiated, every background edge as packets
    (the oracle, and the speedup baseline)."""
    result = benchmark.pedantic(
        lambda: deployment.run_pure_des(duration=DURATION, warmup=WARMUP),
        rounds=2, iterations=1)
    _check(result)
