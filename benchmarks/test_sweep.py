"""Sweep-runner benchmarks: spec hashing, and the backend pair.

The e2e pair runs the same 8-scenario sweep once through each backend;
``tool/bench.py`` reports pool-vs-sequential as a speedup factor the
same way it reports the tracer-overhead pair.  Both benchmarks assert
value-identical results, so the speedup is never bought with drift.

The pool side measures the **warm** backend: the worker pool is
created once per module (the fixture) and reused across rounds, which
is exactly how sweeps use it -- process spawn and simulation-stack
imports are a one-time cost per backend, not per run.  The first
(warm-up) round pays them; the timed rounds measure steady state.
"""

import os

import pytest

from repro.core.levels import SecurityLevel
from repro.core.spec import DeploymentSpec
from repro.scenario import (
    Engine,
    ProcessPoolBackend,
    ScenarioSpec,
    SequentialBackend,
    SweepGrid,
    build_grid,
)

#: 4 configurations x 2 traffic patterns = 8 scenario points.
GRID = SweepGrid(
    workload="fig5.latency",
    levels=("baseline", "l1", "l2"),
    compartments=(2, 4),
    traffic=("p2p", "p2v"),
    duration=0.05,
)

POOL_WORKERS = 4

_EXPECTED_HASHES = []


@pytest.fixture(scope="module")
def warm_pool():
    """One persistent pool for the whole module, released at the end."""
    backend = ProcessPoolBackend(max_workers=POOL_WORKERS)
    yield backend
    backend.close()


def _run(backend) -> list:
    specs, skipped = build_grid(GRID)
    assert len(specs) == 8 and not skipped
    results = Engine(backend=backend).run(specs)
    hashes = [r.result_hash() for r in results]
    if not _EXPECTED_HASHES:
        _EXPECTED_HASHES.extend(hashes)
    assert hashes == _EXPECTED_HASHES  # backends must agree exactly
    return results


@pytest.mark.benchmark(group="sweep")
def test_sweep_sequential_8pt(benchmark):
    """The 8-point sweep, one process (the speedup denominator)."""
    results = benchmark.pedantic(
        lambda: _run(SequentialBackend()), rounds=2, iterations=1)
    assert len(results) == 8


@pytest.mark.benchmark(group="sweep")
def test_sweep_pool_8pt(benchmark, warm_pool):
    """The same sweep fanned out over the warm worker pool."""
    results = benchmark.pedantic(
        lambda: _run(warm_pool), rounds=2, iterations=1, warmup_rounds=1)
    assert len(results) == 8


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="speedup criterion targets a >=4-core runner")
def test_pool_speedup_on_multicore():
    """On a 4-core runner the warm pool must halve the sweep's wall
    time (the cold spawn is excluded: one warm-up run primes it)."""
    import time
    specs, _ = build_grid(GRID)
    start = time.perf_counter()
    seq = Engine(backend=SequentialBackend()).run(specs)
    t_seq = time.perf_counter() - start
    with ProcessPoolBackend(max_workers=POOL_WORKERS) as backend:
        Engine(backend=backend).run(specs)  # spawn + import warm-up
        start = time.perf_counter()
        pool = Engine(backend=backend).run(specs)
        t_pool = time.perf_counter() - start
    assert [r.result_hash() for r in seq] == \
        [r.result_hash() for r in pool]
    assert t_seq / t_pool >= 2.0, (
        f"pool speedup {t_seq / t_pool:.2f}x < 2x "
        f"({t_seq:.2f}s sequential vs {t_pool:.2f}s pooled)")


def _hash_spec(seed=42) -> ScenarioSpec:
    return ScenarioSpec(
        workload="fig5.latency",
        deployment=DeploymentSpec(level=SecurityLevel.LEVEL_2,
                                  num_vswitch_vms=2),
        duration=0.1, warmup=0.02, seed=seed,
        params={"frame_bytes": 64, "aggregate_pps": 10_000.0})


@pytest.mark.benchmark(group="micro")
def test_spec_content_hash_rate(benchmark):
    """Amortized hashing cost: the engine/store/result path asks for
    the same spec's hash repeatedly, so repeats must hit the memo."""
    spec = _hash_spec()

    def hash_many():
        digest = None
        for _ in range(100):
            digest = spec.content_hash()
        return digest

    assert benchmark(hash_many) == spec.content_hash()


@pytest.mark.benchmark(group="micro")
def test_spec_content_hash_cold(benchmark):
    """First-call hashing cost on a fresh spec: the canonical-JSON
    serialization itself, which the memo cannot hide."""

    def hash_fresh():
        return _hash_spec().content_hash()

    assert benchmark(hash_fresh) == _hash_spec().content_hash()
