"""Extension bench: the incremental-deployability op-count table."""

import pytest

from benchmarks.conftest import emit
from repro.experiments.deployment_cost import run


@pytest.mark.benchmark(group="extensions")
def test_deployment_cost(benchmark):
    table = benchmark(run)
    emit(table)
    assert table.series_by_label("L1").get("delta vs Baseline") < 30
