"""Fig. 5(b,e,h): one-way latency distributions at 10 kpps (DES)."""

import pytest

from benchmarks.conftest import emit
from repro.experiments import EvalMode
from repro.experiments.fig5_latency import run

#: Short window: the distributions are stationary, the benchmark only
#: needs enough samples for stable medians.
DURATION = 0.1


@pytest.mark.benchmark(group="fig5-latency")
def test_fig5b_shared(benchmark):
    table = benchmark.pedantic(run, args=(EvalMode.SHARED,),
                               kwargs=dict(duration=DURATION),
                               iterations=1, rounds=1)
    emit(table)
    # MTS slower in p2p, faster in p2v.
    assert (table.series_by_label("L1").get("p2p")
            > table.series_by_label("Baseline").get("p2p"))
    assert (table.series_by_label("L1").get("p2v")
            < table.series_by_label("Baseline").get("p2v"))


@pytest.mark.benchmark(group="fig5-latency")
def test_fig5e_isolated(benchmark):
    table = benchmark.pedantic(run, args=(EvalMode.ISOLATED,),
                               kwargs=dict(duration=DURATION),
                               iterations=1, rounds=1)
    emit(table)
    assert (table.series_by_label("L2(4)").get("p2v")
            < table.series_by_label("Baseline(4)").get("p2v"))


@pytest.mark.benchmark(group="fig5-latency")
def test_fig5h_dpdk(benchmark):
    table = benchmark.pedantic(run, args=(EvalMode.DPDK,),
                               kwargs=dict(duration=DURATION),
                               iterations=1, rounds=1)
    emit(table)
    # The ~1 ms multi-queue Baseline anomaly at 10 kpps.
    assert table.series_by_label("Baseline(2)+L3").get("p2p") > 500.0
    assert table.series_by_label("L1+L3").get("p2p") < 100.0
