"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation sweeps one calibration constant or design parameter and
reports how the headline results move -- quantifying which mechanism is
responsible for which effect.
"""

import pytest

from benchmarks.conftest import emit
from repro.core import (
    ResourceMode,
    SecurityLevel,
    TrafficScenario,
    build_deployment,
)
from repro.core.spec import DeploymentSpec
from repro.experiments.fig5_latency import measure_latency
from repro.experiments.common import ConfigPoint
from repro.measure.reporting import Series, Table
from repro.perfmodel.calibration import DEFAULT_CALIBRATION
from repro.perfmodel.paths import throughput
from repro.units import MPPS, USEC


def _spec(level=SecurityLevel.LEVEL_2, vms=4, us=True,
          mode=ResourceMode.ISOLATED, **kwargs):
    return DeploymentSpec(level=level, num_vswitch_vms=vms, user_space=us,
                          resource_mode=mode, **kwargs)


@pytest.mark.benchmark(group="ablations")
def test_hairpin_capacity_sweep(benchmark):
    """How the NIC's VF-to-VF switching capacity sets the MTS DPDK p2v
    plateau (the paper's 2.3 Mpps saturation)."""

    def sweep():
        table = Table(title="Ablation: NIC hairpin capacity vs MTS DPDK "
                            "p2v saturation", unit="Mpps",
                      fmt=lambda v: f"{v:.2f}")
        series = Series(label="L2(4)+L3 p2v")
        for capacity in (2.3e6, 4.6e6, 9.2e6, 18.4e6):
            cal = DEFAULT_CALIBRATION.with_overrides(
                nic_hairpin_capacity=capacity)
            d = build_deployment(_spec(), TrafficScenario.P2V,
                                 calibration=cal)
            series.add(f"{capacity / 1e6:.1f}M/s",
                       throughput(d, TrafficScenario.P2V).aggregate_pps / MPPS)
        table.add_series(series)
        return table

    table = benchmark(sweep)
    emit(table)
    # Doubling hairpin capacity doubles the plateau until CPU binds.
    assert table.series_by_label("L2(4)+L3 p2v").get("9.2M/s") > 2 * \
        table.series_by_label("L2(4)+L3 p2v").get("4.6M/s") * 0.9


@pytest.mark.benchmark(group="ablations")
def test_vhost_cost_sweep(benchmark):
    """The Baseline's p2v deficit is the vhost crossing cost: halving it
    halves the MTS advantage."""

    def sweep():
        table = Table(title="Ablation: vhost crossing cycles vs Baseline "
                            "kernel p2v throughput", unit="Mpps",
                      fmt=lambda v: f"{v:.3f}")
        series = Series(label="Baseline p2v")
        base_costs = DEFAULT_CALIBRATION.kernel_costs
        for factor in (0.5, 1.0, 2.0):
            from dataclasses import replace
            from repro.vswitch.datapath import PortClass
            rx = dict(base_costs.rx_cycles)
            tx = dict(base_costs.tx_cycles)
            rx[PortClass.VHOST] = rx[PortClass.VHOST] * factor
            tx[PortClass.VHOST] = tx[PortClass.VHOST] * factor
            cal = DEFAULT_CALIBRATION.with_overrides(
                kernel_costs=replace(base_costs, rx_cycles=rx, tx_cycles=tx))
            d = build_deployment(
                _spec(level=SecurityLevel.BASELINE, vms=1, us=False,
                      mode=ResourceMode.SHARED),
                TrafficScenario.P2V, calibration=cal)
            series.add(f"x{factor}",
                       throughput(d, TrafficScenario.P2V).aggregate_pps / MPPS)
        table.add_series(series)
        return table

    table = benchmark(sweep)
    emit(table)
    s = table.series_by_label("Baseline p2v")
    assert s.get("x0.5") > s.get("x1.0") > s.get("x2.0")


@pytest.mark.benchmark(group="ablations")
def test_frame_size_latency_sweep(benchmark):
    """The paper's latency study covers 64/512/1500/2048 B frames."""

    def sweep():
        table = Table(title="Ablation: frame size vs one-way latency "
                            "(L1, p2v, 10 kpps)", unit="us",
                      fmt=lambda v: f"{v:.1f}")
        config = ConfigPoint("L1", SecurityLevel.LEVEL_1, 1, 1,
                             ResourceMode.ISOLATED, False)
        series = Series(label="L1 p2v median")
        for size in (64, 512, 1500, 2048):
            stats = measure_latency(config, TrafficScenario.P2V,
                                    frame_bytes=size, duration=0.05).stats
            series.add(f"{size}B", stats.median / USEC)
        table.add_series(series)
        return table

    table = benchmark.pedantic(sweep, iterations=1, rounds=1)
    emit(table)
    s = table.series_by_label("L1 p2v median")
    assert s.get("2048B") > s.get("64B")


@pytest.mark.benchmark(group="ablations")
def test_spoof_filter_overhead(benchmark):
    """The NIC security filters are free at the pps level (hardware
    match) -- verify the DES agrees: delivery and latency unchanged."""

    def run_pair():
        from repro.traffic import TestbedHarness
        results = {}
        for strip_filters in (False, True):
            d = build_deployment(
                _spec(level=SecurityLevel.LEVEL_1, vms=1, us=False,
                      mode=ResourceMode.SHARED),
                TrafficScenario.P2V)
            if strip_filters:
                d.server.nic.filters._filters.clear()
            h = TestbedHarness(d)
            h.configure_tenant_flows(rate_per_flow_pps=2500)
            result = h.run(duration=0.05)
            stats = result.latency_stats()
            results["off" if strip_filters else "on"] = stats.median
        return results

    results = benchmark.pedantic(run_pair, iterations=1, rounds=1)
    table = Table(title="Ablation: NIC wildcard filters on/off (L1 p2v "
                        "median latency)", unit="us", fmt=lambda v: f"{v:.2f}")
    series = Series(label="median latency")
    series.add("filters-on", results["on"] / USEC)
    series.add("filters-off", results["off"] / USEC)
    table.add_series(series)
    emit(table)
    assert results["on"] == pytest.approx(results["off"], rel=0.05)


@pytest.mark.benchmark(group="ablations")
def test_compartment_count_scaling(benchmark):
    """Beyond the paper: how far does Level-2 scale on a 16-core box?"""

    def sweep():
        table = Table(title="Ablation: compartments vs isolated-mode p2p "
                            "throughput (kernel)", unit="Mpps",
                      fmt=lambda v: f"{v:.2f}")
        series = Series(label="L2(n) p2p")
        for vms in (2, 3, 4):
            spec = DeploymentSpec(level=SecurityLevel.LEVEL_2,
                                  num_vswitch_vms=vms,
                                  resource_mode=ResourceMode.ISOLATED)
            d = build_deployment(spec, TrafficScenario.P2P)
            series.add(f"{vms}VM",
                       throughput(d, TrafficScenario.P2P).aggregate_pps / MPPS)
        table.add_series(series)
        return table

    table = benchmark(sweep)
    emit(table)
    s = table.series_by_label("L2(n) p2p")
    assert s.get("4VM") > s.get("2VM")
