"""Extension benches: tenant scaling and frame-size throughput sweeps."""

import pytest

from benchmarks.conftest import emit
from repro.experiments.scaling import frame_size_throughput, tenant_scaling


@pytest.mark.benchmark(group="extensions")
def test_tenant_scaling(benchmark):
    table = benchmark(tenant_scaling)
    emit(table)
    per = table.series_by_label("L2(2) per-tenant")
    assert per.get("2T") > per.get("8T")
    agg = table.series_by_label("L2(2) agg")
    assert agg.get("2T") == pytest.approx(agg.get("8T"), rel=0.02)


@pytest.mark.benchmark(group="extensions")
def test_frame_size_throughput(benchmark):
    table = benchmark(frame_size_throughput)
    emit(table)
    assert table.series_by_label("L2(2)").get("1514B") > 9.5
    assert table.series_by_label("Baseline(2)").get("1514B") < 6.0
