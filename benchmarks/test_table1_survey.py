"""Table 1: the vswitch survey and its section 2.1 statistics."""

import pytest

from benchmarks.conftest import emit
from repro.experiments.table1_survey import render_full, run


@pytest.mark.benchmark(group="table1")
def test_table1(benchmark):
    table = benchmark(run)
    emit(table)
    print("\n" + render_full())
    fraction = table.series_by_label("fraction")
    assert fraction.get("monolithic") > 0.9
    assert fraction.get("co-located") == pytest.approx(0.64, abs=0.05)
    assert fraction.get("kernel-involved") == pytest.approx(0.68, abs=0.05)
