"""Apache webserver + ApacheBench model (Fig. 6 b/g/l and d/i/n).

The paper benchmarks each tenant's Apache with ``ab``, requesting a
static 11.3 KB page over up to 1000 concurrent non-keepalive
connections for 100 s.  One transaction = one full HTTP request:

- forward (client -> server): SYN, handshake ACK, the HTTP request,
  delayed ACKs for the response data, and the connection teardown;
- reverse (server -> client): SYN-ACK, the response (9 MSS segments for
  11.3 KB page + headers), FIN.

Throughput is requests/s; the reported response time follows the
closed-loop law at 1000 outstanding connections.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.deployment import Deployment
from repro.core.spec import TrafficScenario
from repro.workloads.iperf import DATA_FRAME_BYTES, MSS_BYTES
from repro.workloads.tcp import (
    PacketPhase,
    TransactionProfile,
    WorkloadResult,
    solve_workload,
)

#: The paper's static page.
PAGE_BYTES = 11_300
HTTP_RESPONSE_HEADER_BYTES = 300
HTTP_REQUEST_FRAME_BYTES = 350

#: Apache worker cycles per static-file request (accept + read + sendfile).
SERVER_CYCLES_PER_REQUEST = 90_000.0

#: ApacheBench concurrency per tenant ("up to 1,000 concurrent
#: connections").
DEFAULT_CONCURRENCY = 1000


@dataclass
class ApacheReport:
    aggregate_rps: float
    per_tenant_rps: Dict[int, float]
    mean_response_time: float
    result: WorkloadResult


class ApacheModel:
    """Static-page serving under ApacheBench load."""

    def __init__(self, deployment: Deployment,
                 scenario: TrafficScenario = TrafficScenario.P2V,
                 page_bytes: int = PAGE_BYTES,
                 concurrency: int = DEFAULT_CONCURRENCY) -> None:
        self.deployment = deployment
        self.scenario = scenario
        self.page_bytes = page_bytes
        self.concurrency = concurrency

    def response_segments(self) -> int:
        return math.ceil(
            (self.page_bytes + HTTP_RESPONSE_HEADER_BYTES) / MSS_BYTES
        )

    def profile(self) -> TransactionProfile:
        segments = self.response_segments()
        forward_small = (
            1.0          # SYN
            + 1.0        # handshake ACK
            + segments / 2.0  # delayed ACKs for response data
            + 2.0        # FIN + final ACK
        )
        return TransactionProfile(
            name="apache",
            phases=[
                PacketPhase(frame_bytes=64, count=forward_small),
                PacketPhase(frame_bytes=HTTP_REQUEST_FRAME_BYTES, count=1.0),
                PacketPhase(frame_bytes=64, count=2.0, reverse=True),  # SYN-ACK, FIN
                PacketPhase(frame_bytes=DATA_FRAME_BYTES, count=float(segments),
                            reverse=True),
            ],
            server_cycles=SERVER_CYCLES_PER_REQUEST,
            concurrency=self.concurrency,
        )

    def run(self, tenants: Optional[List[int]] = None) -> ApacheReport:
        result = solve_workload(self.deployment, self.scenario,
                                self.profile(), tenants=tenants)
        return ApacheReport(
            aggregate_rps=result.aggregate_rate,
            per_tenant_rps=dict(result.rates),
            mean_response_time=result.mean_response_time,
            result=result,
        )
