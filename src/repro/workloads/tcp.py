"""The composite TCP transaction solver.

A *transaction* is the workload's unit of progress: one bulk-data
segment (iperf), one HTTP request (Apache/ApacheBench) or one set/get
operation (Memcached/memslap).  Each transaction costs a mix of packets
in each direction (:class:`PacketPhase`) plus server CPU inside the
tenant VM; every packet drags the full per-packet footprint of the
deployment's dataplane path (vswitch passes, NIC hairpins, PCIe, link
bits) derived by :mod:`repro.perfmodel.paths`.

Solving the resulting max-min program yields the per-tenant transaction
rate; response times follow the closed-loop law the benchmarking tools
impose: with ``C`` concurrent outstanding requests per tenant,

    rate = min(capacity, C / (RTT + server_time))
    response_time = C / rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.deployment import Deployment
from repro.core.spec import TrafficScenario
from repro.perfmodel.capacity import FlowPath, Resource, solve
from repro.perfmodel.latency import estimate_oneway_latency
from repro.perfmodel.paths import ResourceRegistry, build_flow_paths


@dataclass(frozen=True)
class PacketPhase:
    """One packet-mix component of a transaction."""

    frame_bytes: int
    count: float            # packets per transaction
    reverse: bool = False   # True: DUT -> load generator direction

    def __post_init__(self) -> None:
        if self.frame_bytes < 64:
            raise ValueError("frames are at least 64 B on Ethernet")
        if self.count < 0:
            raise ValueError("negative packet count")


@dataclass(frozen=True)
class TransactionProfile:
    """A workload's per-transaction footprint."""

    name: str
    phases: List[PacketPhase]
    server_cycles: float = 0.0
    #: Outstanding transactions per tenant (the tool's concurrency).
    concurrency: int = 1

    def forward_bytes(self) -> float:
        return sum(p.frame_bytes * p.count for p in self.phases
                   if not p.reverse)

    def reverse_bytes(self) -> float:
        return sum(p.frame_bytes * p.count for p in self.phases if p.reverse)


@dataclass
class WorkloadResult:
    """Per-tenant transaction rates and response times."""

    profile_name: str
    rates: Dict[int, float]               # tenant -> transactions/s
    response_times: Dict[int, float]      # tenant -> seconds
    bottleneck_of: Dict[str, str]
    base_rtt: float

    @property
    def aggregate_rate(self) -> float:
        return sum(self.rates.values())

    @property
    def mean_response_time(self) -> float:
        if not self.response_times:
            return 0.0
        return sum(self.response_times.values()) / len(self.response_times)


def solve_workload(
    deployment: Deployment,
    scenario: TrafficScenario,
    profile: TransactionProfile,
    tenants: Optional[List[int]] = None,
) -> WorkloadResult:
    """Solve the transaction-rate program for ``profile``.

    ``tenants`` restricts which tenants run servers (the paper's v2v
    workload runs only two client-server pairs; the other tenants
    forward).  Defaults to all tenants for p2v, every second tenant for
    v2v.
    """
    spec = deployment.spec
    if tenants is None:
        if scenario is TrafficScenario.V2V:
            tenants = list(range(0, spec.num_tenants, 2))
        else:
            tenants = list(range(spec.num_tenants))

    registry = ResourceRegistry()
    # Build per-phase path sets against the shared registry, then merge
    # each tenant's demands into one transaction-level FlowPath.
    merged: Dict[int, Dict[Resource, float]] = {t: {} for t in tenants}
    for i, phase in enumerate(profile.phases):
        phase_paths = build_flow_paths(
            deployment, scenario,
            frame_bytes=phase.frame_bytes,
            registry=registry,
            reverse=phase.reverse,
            name_suffix=f".phase{i}",
        )
        for t in tenants:
            for demand in phase_paths[t].demands:
                merged[t][demand.resource] = (
                    merged[t].get(demand.resource, 0.0)
                    + demand.units_per_packet * phase.count
                )

    # Server CPU per transaction, charged to the serving tenant's cores.
    cal = deployment.calibration
    for t in tenants:
        server_pool = registry.get(f"cpu.tenant{t}",
                                   spec.tenant_cores * cal.cpu_freq_hz)
        merged[t][server_pool] = (
            merged[t].get(server_pool, 0.0) + profile.server_cycles
        )

    # Closed-loop offered-rate cap: C outstanding per tenant against the
    # unloaded round trip + server time.
    rtt = _base_rtt(deployment, scenario, profile)
    server_time = profile.server_cycles / cal.cpu_freq_hz
    think_bound = profile.concurrency / max(rtt + server_time, 1e-9)

    paths = []
    for t in tenants:
        path = FlowPath(name=f"txn-t{t}", offered_pps=think_bound)
        for resource, units in merged[t].items():
            path.add(resource, units)
        paths.append(path)
    result = solve(paths)

    rates = {t: result.rates_pps[f"txn-t{t}"] for t in tenants}
    response_times = {
        t: (profile.concurrency / rates[t] if rates[t] > 0 else math.inf)
        for t in tenants
    }
    return WorkloadResult(
        profile_name=profile.name,
        rates=rates,
        response_times=response_times,
        bottleneck_of=result.bottleneck_of,
        base_rtt=rtt,
    )


def solve_mixed_workloads(
    deployment: Deployment,
    scenario: TrafficScenario,
    profiles: Dict[int, TransactionProfile],
) -> Dict[int, WorkloadResult]:
    """Heterogeneous tenants: each runs its *own* workload against the
    same shared pools (the realistic cloud mix the paper's intro
    motivates -- webservers next to key-value stores next to bulk
    transfers).

    Fairness unit: cycle shares, not transaction rates.  Tenants
    sharing a compartment get equal slices of its core (the round-robin
    per-ring service the datapath actually implements), so a cheap-
    transaction workload runs more transactions in its slice rather
    than starving a neighbor.  Returns a per-tenant result (query each
    tenant's own entry).
    """
    spec = deployment.spec
    registry = ResourceRegistry()
    cal = deployment.calibration

    paths: List[FlowPath] = []
    meta: Dict[int, Tuple[TransactionProfile, float]] = {}
    for tenant, profile in sorted(profiles.items()):
        merged: Dict[Resource, float] = {}
        for i, phase in enumerate(profile.phases):
            phase_paths = build_flow_paths(
                deployment, scenario,
                frame_bytes=phase.frame_bytes,
                registry=registry,
                reverse=phase.reverse,
                name_suffix=f".t{tenant}.phase{i}",
            )
            for demand in phase_paths[tenant].demands:
                merged[demand.resource] = (
                    merged.get(demand.resource, 0.0)
                    + demand.units_per_packet * phase.count)
        server_pool = registry.get(f"cpu.tenant{tenant}",
                                   spec.tenant_cores * cal.cpu_freq_hz)
        merged[server_pool] = (merged.get(server_pool, 0.0)
                               + profile.server_cycles)

        rtt = _base_rtt(deployment, scenario, profile)
        server_time = profile.server_cycles / cal.cpu_freq_hz
        think_bound = profile.concurrency / max(rtt + server_time, 1e-9)
        meta[tenant] = (profile, rtt)

        # Equal-cycle-share fairness: rate x cost must equalize, so the
        # fill weight is the *inverse* of the transaction's cycle
        # demand on its own compartment (rate = weight x level).
        compartment = deployment.compartment_of_tenant(tenant)
        bridge_pool_name = f"cpu.{deployment.bridges[compartment].name}"
        weight = 1.0
        for resource, units in merged.items():
            if resource.name == bridge_pool_name and units > 0:
                weight = 1.0 / units
                break
        path = FlowPath(name=f"txn-t{tenant}", offered_pps=think_bound,
                        weight=weight)
        for resource, units in merged.items():
            path.add(resource, units)
        paths.append(path)

    solved = solve(paths)
    results: Dict[int, WorkloadResult] = {}
    for tenant, (profile, rtt) in meta.items():
        rate = solved.rates_pps[f"txn-t{tenant}"]
        results[tenant] = WorkloadResult(
            profile_name=profile.name,
            rates={tenant: rate},
            response_times={
                tenant: (profile.concurrency / rate if rate > 0
                         else math.inf)},
            bottleneck_of=solved.bottleneck_of,
            base_rtt=rtt,
        )
    return results


def _base_rtt(deployment: Deployment, scenario: TrafficScenario,
              profile: TransactionProfile) -> float:
    """Unloaded round trip, weighted by the transaction's frame sizes."""
    fwd_frames = sum(p.count for p in profile.phases if not p.reverse)
    rev_frames = sum(p.count for p in profile.phases if p.reverse)
    fwd_size = int(profile.forward_bytes() / fwd_frames) if fwd_frames else 64
    rev_size = int(profile.reverse_bytes() / rev_frames) if rev_frames else 64
    fwd = estimate_oneway_latency(deployment, scenario,
                                  max(64, fwd_size))
    rev = estimate_oneway_latency(deployment, scenario,
                                  max(64, rev_size))
    return fwd + rev
