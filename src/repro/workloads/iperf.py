"""Iperf bulk-TCP model (Fig. 6 a/f/k).

One transaction = one MSS-sized data segment from the iperf client (the
load generator) to the server in the tenant VM, plus the delayed ACK
flowing back (one ACK per two segments).  Aggregate goodput is the sum
of per-tenant segment rates times the MSS payload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.deployment import Deployment
from repro.core.spec import TrafficScenario
from repro.workloads.tcp import (
    PacketPhase,
    TransactionProfile,
    WorkloadResult,
    solve_workload,
)

#: Standard Ethernet TCP segment: 1448 B payload in a 1514 B frame
#: (we quote the frame at 1500 B MTU + 14 B L2 like the paper's MTU
#: framing; the 4 B FCS is inside our modelled frame size).
MSS_BYTES = 1448
DATA_FRAME_BYTES = 1514

#: Delayed ACK: one 66 B ACK per two data segments (modelled at the
#: 64 B Ethernet minimum).
ACKS_PER_SEGMENT = 0.5

#: Per-segment server-side cycles (socket receive + copy to user).
SERVER_CYCLES_PER_SEGMENT = 3500.0

#: Segments in flight per stream; a stand-in for the bandwidth-delay
#: window of a single iperf stream on a sub-millisecond RTT path.
WINDOW_SEGMENTS = 256


@dataclass
class IperfReport:
    """Aggregate and per-tenant iperf goodput."""

    aggregate_gbps: float
    per_tenant_gbps: Dict[int, float]
    result: WorkloadResult


class IperfModel:
    """Single-stream-per-tenant iperf3 clients, 100 s runs."""

    def __init__(self, deployment: Deployment,
                 scenario: TrafficScenario = TrafficScenario.P2V) -> None:
        self.deployment = deployment
        self.scenario = scenario

    def profile(self) -> TransactionProfile:
        return TransactionProfile(
            name="iperf",
            phases=[
                PacketPhase(frame_bytes=DATA_FRAME_BYTES, count=1.0),
                PacketPhase(frame_bytes=64, count=ACKS_PER_SEGMENT,
                            reverse=True),
            ],
            server_cycles=SERVER_CYCLES_PER_SEGMENT,
            concurrency=WINDOW_SEGMENTS,
        )

    def run(self, tenants: Optional[List[int]] = None) -> IperfReport:
        result = solve_workload(self.deployment, self.scenario,
                                self.profile(), tenants=tenants)
        per_tenant = {
            t: rate * MSS_BYTES * 8.0 / 1e9
            for t, rate in result.rates.items()
        }
        return IperfReport(
            aggregate_gbps=sum(per_tenant.values()),
            per_tenant_gbps=per_tenant,
            result=result,
        )
