"""Application workload models (the paper's Fig. 6 evaluation).

All three workloads -- iperf bulk TCP, the Apache webserver benchmarked
with ApacheBench, and Memcached benchmarked with memslap -- are modelled
as *transaction profiles*: a mix of packets per transaction in each
direction plus per-transaction server CPU, solved against the same
resource pools as the micro-benchmarks (:mod:`repro.perfmodel.paths`).
"""

from repro.workloads.tcp import (
    PacketPhase,
    TransactionProfile,
    WorkloadResult,
    solve_mixed_workloads,
    solve_workload,
)
from repro.workloads.iperf import IperfModel
from repro.workloads.httpd import ApacheModel
from repro.workloads.memcached import MemcachedModel

__all__ = [
    "PacketPhase",
    "TransactionProfile",
    "WorkloadResult",
    "solve_mixed_workloads",
    "solve_workload",
    "IperfModel",
    "ApacheModel",
    "MemcachedModel",
]
