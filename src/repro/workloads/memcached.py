"""Memcached + libMemcached memslap model (Fig. 6 c/h/m and e/j/o).

memslap with the default 90/10 set/get ratio over persistent
connections.  One transaction = one operation:

- SET (90%): a ~1 KB value travels client -> server; a short STORED
  reply comes back.
- GET (10%): a short request goes in; the ~1 KB value comes back.
- Each direction additionally carries delayed TCP ACKs.

Throughput is operations/s; response time follows the closed-loop law
at memslap's default concurrency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.deployment import Deployment
from repro.core.spec import TrafficScenario
from repro.workloads.tcp import (
    PacketPhase,
    TransactionProfile,
    WorkloadResult,
    solve_workload,
)

#: memslap defaults: 90% set / 10% get, ~1 KB values.
SET_FRACTION = 0.9
GET_FRACTION = 0.1
VALUE_FRAME_BYTES = 1100
REPLY_FRAME_BYTES = 64

#: Memcached cycles per operation (hash + slab access + protocol).
SERVER_CYCLES_PER_OP = 16_000.0

#: memslap's default concurrency per tenant.
DEFAULT_CONCURRENCY = 64

#: Delayed ACKs per operation in each direction.
ACKS_PER_OP = 0.5


@dataclass
class MemcachedReport:
    aggregate_ops: float
    per_tenant_ops: Dict[int, float]
    mean_response_time: float
    result: WorkloadResult


class MemcachedModel:
    """memslap-driven set/get mix."""

    def __init__(self, deployment: Deployment,
                 scenario: TrafficScenario = TrafficScenario.P2V,
                 set_fraction: float = SET_FRACTION,
                 concurrency: int = DEFAULT_CONCURRENCY) -> None:
        if not 0.0 <= set_fraction <= 1.0:
            raise ValueError("set_fraction must be within [0, 1]")
        self.deployment = deployment
        self.scenario = scenario
        self.set_fraction = set_fraction
        self.concurrency = concurrency

    def profile(self) -> TransactionProfile:
        get_fraction = 1.0 - self.set_fraction
        return TransactionProfile(
            name="memcached",
            phases=[
                # SET: value in, STORED back.
                PacketPhase(frame_bytes=VALUE_FRAME_BYTES,
                            count=self.set_fraction),
                PacketPhase(frame_bytes=REPLY_FRAME_BYTES,
                            count=self.set_fraction, reverse=True),
                # GET: request in, value back.
                PacketPhase(frame_bytes=REPLY_FRAME_BYTES,
                            count=get_fraction),
                PacketPhase(frame_bytes=VALUE_FRAME_BYTES,
                            count=get_fraction, reverse=True),
                # Delayed ACKs both ways.
                PacketPhase(frame_bytes=64, count=ACKS_PER_OP),
                PacketPhase(frame_bytes=64, count=ACKS_PER_OP, reverse=True),
            ],
            server_cycles=SERVER_CYCLES_PER_OP,
            concurrency=self.concurrency,
        )

    def run(self, tenants: Optional[List[int]] = None) -> MemcachedReport:
        result = solve_workload(self.deployment, self.scenario,
                                self.profile(), tenants=tenants)
        return MemcachedReport(
            aggregate_ops=result.aggregate_rate,
            per_tenant_ops=dict(result.rates),
            mean_response_time=result.mean_response_time,
            result=result,
        )
