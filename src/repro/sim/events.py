"""Scheduled events for the simulation kernel."""

from __future__ import annotations

import itertools
from typing import Any, Callable, Tuple

_sequence = itertools.count()


class Event:
    """A callback scheduled at a point in simulated time.

    Events are ordered by ``(time, sequence)`` so that two events scheduled
    for the same instant run in scheduling order, which keeps simulations
    deterministic.

    Use :meth:`cancel` to revoke an event that has not fired yet; the
    kernel skips cancelled events cheaply instead of removing them from
    the heap.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, callback: Callable[..., Any], args: Tuple = ()):
        self.time = time
        self.seq = next(_sequence)
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Revoke this event; it will be skipped when popped."""
        self.cancelled = True

    def fire(self) -> None:
        """Run the callback (kernel use only)."""
        self.callback(*self.args)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<Event t={self.time:.9f} {name}{state}>"
