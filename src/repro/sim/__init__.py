"""Discrete-event simulation kernel.

A deliberately small, dependency-free DES core:

- :class:`~repro.sim.kernel.Simulator` owns the virtual clock and the
  event heap and runs callbacks in timestamp order.
- :class:`~repro.sim.events.Event` is a scheduled, cancelable callback.
- :class:`~repro.sim.resources.FifoQueue` and
  :class:`~repro.sim.resources.ServiceStation` model bounded queues and
  single-server processing stages (a CPU core polling a port, a NIC
  pipeline stage, ...).
- :class:`~repro.sim.rng.RngStreams` hands out independent, seeded random
  streams so experiments are reproducible.
"""

from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.resources import FifoQueue, ServiceStation
from repro.sim.rng import RngStreams

__all__ = ["Event", "Simulator", "FifoQueue", "ServiceStation", "RngStreams"]
