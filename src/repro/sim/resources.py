"""Queues and service stations for packet-level simulation."""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

from repro.sim.kernel import Simulator

#: Flush margin for groups whose post-service chain never reaches a
#: timestamped admission point (fabric-bound traffic): flush lateness
#: is unconstrained, so hold until the group completes.
_INF = float("inf")


class FifoQueue:
    """A bounded FIFO with drop-tail semantics and drop accounting.

    Used for NIC rx rings, vhost queues, and the like.  ``capacity=None``
    means unbounded.
    """

    def __init__(self, capacity: Optional[int] = None, name: str = "fifo") -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self.enqueued = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._items)

    def push(self, item: Any) -> bool:
        """Enqueue ``item``; returns False (and counts a drop) if full."""
        if self.capacity is not None and len(self._items) >= self.capacity:
            self.dropped += 1
            return False
        self._items.append(item)
        self.enqueued += 1
        return True

    def pop(self) -> Any:
        """Dequeue the oldest item; raises IndexError when empty."""
        return self._items.popleft()

    def peek(self) -> Any:
        """Oldest item without removing it; raises IndexError when empty."""
        return self._items[0]

    def clear(self) -> None:
        self._items.clear()


class FairServiceStation:
    """One server round-robining over per-key FIFO queues.

    Models NAPI/PMD-style fair polling across rx rings: work arriving
    under different keys (e.g. different ingress ports) gets equal
    service shares under overload, instead of the head-of-line
    starvation a single shared FIFO produces.  Each per-key queue is
    bounded (the rx ring) with drop-tail accounting.
    """

    def __init__(
        self,
        sim: Simulator,
        service_time: Callable[[Any], float],
        on_done: Callable[[Any], None],
        queue_capacity: Optional[int] = None,
        name: str = "fair-station",
    ) -> None:
        self.sim = sim
        self.service_time = service_time
        self.on_done = on_done
        self.queue_capacity = queue_capacity
        self.name = name
        self.busy = False
        self.served = 0
        self.busy_time = 0.0
        self._queues: "dict[Any, FifoQueue]" = {}
        self._order: "list[Any]" = []
        self._last_key: Optional[Any] = None

    def submit(self, key: Any, item: Any) -> bool:
        """Offer an item on ring ``key``; False if that ring dropped it."""
        queue = self._queues.get(key)
        if queue is None:
            queue = FifoQueue(capacity=self.queue_capacity,
                              name=f"{self.name}.q{key}")
            self._queues[key] = queue
            self._order.append(key)
        if not queue.push(item):
            return False
        if not self.busy:
            self._start_next()
        return True

    def dropped(self) -> int:
        return sum(q.dropped for q in self._queues.values())

    def _pick(self) -> Optional[Any]:
        """Round-robin: scan for a non-empty ring starting just past the
        last-served one (keyed, so late-created rings join fairly)."""
        n = len(self._order)
        start = 0
        if self._last_key in self._queues:
            start = self._order.index(self._last_key) + 1
        for offset in range(n):
            key = self._order[(start + offset) % n]
            if len(self._queues[key]) > 0:
                self._last_key = key
                return key
        return None

    def _start_next(self) -> None:
        key = self._pick()
        if key is None:
            self.busy = False
            return
        item = self._queues[key].pop()
        self.busy = True
        duration = self.service_time(item)
        if duration < 0:
            raise ValueError(f"negative service time {duration} at {self.name}")
        self.busy_time += duration
        self.sim.call_later(duration, self._finish, item)

    def _finish(self, item: Any) -> None:
        self.served += 1
        self.on_done(item)
        self._start_next()

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)


class BatchFairStation:
    """A :class:`FairServiceStation` that admits *timestamped batches*.

    The batched fast path computes a whole burst's arrival timestamps in
    one event, so arrivals reach the station *early*: the event that
    registers them fires at or before the earliest member timestamp.
    This station keeps those future arrivals in a pending min-heap and
    only **admits** them (rx-ring occupancy check, drop-tail) when
    simulated time catches up, which happens at the station's own wake
    events:

    - while the server is busy (serving from start S to finish F), any
      arrival with timestamp in (S, F] can be admitted at F, in
      timestamp order, with outcomes identical to per-event admission:
      ring occupancy is only read by admissions, no service starts
      interleave while the server is busy, and ring space frees only at
      service *starts* -- so the admission sequence commutes across the
      busy interval;
    - while idle, a wake is armed at the earliest pending timestamp
      (re-armed earlier if an earlier registration shows up), so the
      first admission starts service at exactly its arrival time.

    Served members are handed back to their *group* (one group per
    submitted batch), which re-accumulates them into a sub-batch for the
    downstream chain.  Because the downstream continuation runs inline
    at flush time, a flush at time C must satisfy ``C <= F_i + margin``
    for every flushed member finish F_i, where the group's ``margin`` is
    a lower bound on the delay before the member could reach the *next*
    timestamped admission point (0 is always safe: commits then flush at
    their own finish wake; ``inf`` says the member never reaches one --
    fabric-bound traffic whose remaining chain is purely analytic).  The
    station enforces exactly that: a group flushes the moment it
    *completes* (every member committed or dropped -- nothing more can
    join the sub-batch, so waiting buys nothing), a margin-bound group
    additionally flushes before its oldest unflushed finish ages past
    the margin, and everything finite flushes when the station goes
    idle.  Unbounded incomplete groups ride across idle gaps and rely
    on completion or the end-of-run :meth:`drain`.

    Net effect: ~1 event per served frame (the finish wakes), versus
    3-4 per frame for the per-event oracle around a service station.
    """

    def __init__(
        self,
        sim: Simulator,
        queue_capacity: Optional[int] = None,
        name: str = "batch-station",
    ) -> None:
        self.sim = sim
        self.queue_capacity = queue_capacity
        self.name = name
        self.busy = False
        self.served = 0
        self.busy_time = 0.0
        self._queues: "dict[Any, FifoQueue]" = {}
        self._order: "list[Any]" = []
        self._last_key: Optional[Any] = None
        #: Registered-but-not-yet-admitted members: (ts, seq, group, i).
        self._pending: List[Tuple[float, int, Any, int]] = []
        self._seq = 0
        self._inflight: Optional[Tuple[Any, int]] = None
        self._finish_at = 0.0
        self._wake_event = None
        self._wake_time = 0.0
        #: True while _wake runs: submit_group then leaves re-arming to
        #: the wake's own step 5 (flushes re-enter submit_group inline).
        self._in_wake = False
        #: Groups holding served-but-unflushed members.
        self._dirty: List[Any] = []

    def submit_group(self, group: Any) -> None:
        """Register every member of ``group`` as a future arrival.

        ``group`` carries parallel ``sub_ts`` (arrival timestamps, the
        current event time must not exceed their minimum) and ``svc``
        (service times) lists plus a ``key`` (rx ring id) and a flush
        ``margin``, and receives ``commit(i, t)`` / ``flush(now)`` /
        ``oldest_commit()`` calls.
        """
        pending = self._pending
        seq = self._seq
        for i, t in enumerate(group.sub_ts):
            heapq.heappush(pending, (t, seq, group, i))
            seq += 1
        self._seq = seq
        if not self.busy and not self._in_wake and pending:
            head = pending[0][0]
            if self._wake_event is None or head < self._wake_time:
                self._arm(head)

    def submit_member(self, group: Any, i: int, ts: float) -> None:
        """Register one future member of an *open* group.

        The fused fast path discovers at commit time that a member's
        next admission point (and its arrival timestamp there) is
        analytically known, and registers it immediately -- the
        registration event necessarily precedes the arrival timestamp,
        so this is always contract-clean.  The group grows between
        calls; it must not report ``is_done`` until its upstream seals
        it.
        """
        heapq.heappush(self._pending, (ts, self._seq, group, i))
        self._seq += 1
        if not self.busy and not self._in_wake:
            if self._wake_event is None or ts < self._wake_time:
                self._arm(ts)

    def drain(self) -> None:
        """Flush held sub-batches that can still flush safely.

        The end-of-run safety valve for unbounded groups that never
        completed (tail members still pending when traffic stopped).
        Finite-margin groups are skipped -- flushing those late would
        break the lateness contract -- but in practice the station has
        gone idle (and idle-flushed them) long before anyone drains.
        """
        now = self.sim.now
        # Flushing can complete *other* dirty groups (a fused upstream
        # group's flush seals its downstream sink), so work off a
        # snapshot and let re-entrant removals target the live list.
        groups = self._dirty
        self._dirty = []
        for group in groups:
            if group.margin == _INF or group.is_done():
                group.flush(now)
            else:
                self._dirty.append(group)

    def dropped(self) -> int:
        return sum(q.dropped for q in self._queues.values())

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    # -- internals --------------------------------------------------------

    def _arm(self, at: float) -> None:
        if self._wake_event is not None:
            self._wake_event.cancel()
        delay = max(0.0, at - self.sim.now)
        self._wake_event = self.sim.call_later(delay, self._wake)
        self._wake_time = at

    def _wake(self) -> None:
        self._wake_event = None
        self._in_wake = True
        now = self.sim.now
        dirty = self._dirty
        # 1. Commit a finishing service; a completed group flushes on
        #    the spot (its sub-batch can never grow again).
        inflight = self._inflight
        if inflight is not None and self._finish_at <= now:
            self.served += 1
            self._inflight = None
            self.busy = False
            group, i = inflight
            # commit() returns True when the group just became dirty
            # (first unflushed member), so the list stays duplicate-free.
            if group.commit(i, now):
                dirty.append(group)
            if group.is_done():
                group.flush(now)
                try:
                    dirty.remove(group)
                except ValueError:
                    pass
        # 2. Admit arrivals that are due, in timestamp order.  Drop-tail
        #    losses are reported to the group: a drop can be the event
        #    that completes it.
        pending = self._pending
        queues = self._queues
        while pending and pending[0][0] <= now:
            _, _, group, i = heapq.heappop(pending)
            key = group.key
            queue = queues.get(key)
            if queue is None:
                queue = FifoQueue(capacity=self.queue_capacity,
                                  name=f"{self.name}.q{key}")
                queues[key] = queue
                self._order.append(key)
            if not queue.push((group, i)):
                group.drop(i)
                if group.is_done() and group.oldest_commit() is not None:
                    group.flush(now)
                    try:
                        dirty.remove(group)
                    except ValueError:
                        pass
        # 3. Start the next service (round-robin across rings).
        if self._inflight is None:
            key = self._pick()
            if key is not None:
                group, i = queues[key].pop()
                duration = group.svc[i]
                if duration < 0:
                    raise ValueError(
                        f"negative service time {duration} at {self.name}")
                self.busy = True
                self.busy_time += duration
                self._inflight = (group, i)
                self._finish_at = now + duration
                self._wake_event = self.sim.call_later(duration, self._wake)
                self._wake_time = self._finish_at
        # 4. Flush finished work downstream while the margin still
        #    holds.  Unbounded groups (margin inf) only flush via
        #    completion (step 1/2) or drain(), so they never fragment.
        if dirty:
            if self._inflight is None:
                keep = []
                for group in dirty:
                    if group.margin == _INF and not group.is_done():
                        keep.append(group)
                    else:
                        group.flush(now)
                self._dirty = keep
            else:
                horizon = self._finish_at
                keep = []
                for group in dirty:
                    oldest = group.oldest_commit()
                    if oldest is None:
                        continue
                    if oldest + group.margin < horizon:
                        group.flush(now)
                    else:
                        keep.append(group)
                self._dirty = keep
        self._in_wake = False
        # 5. Idle with future arrivals: wake when the first one is due.
        if self._inflight is None and self._pending:
            self._arm(self._pending[0][0])

    def _pick(self) -> Optional[Any]:
        n = len(self._order)
        if n == 0:
            return None
        start = 0
        if self._last_key in self._queues:
            start = self._order.index(self._last_key) + 1
        for offset in range(n):
            key = self._order[(start + offset) % n]
            if len(self._queues[key]) > 0:
                self._last_key = key
                return key
        return None


class ServiceStation:
    """A single server with a FIFO queue and per-item service times.

    Models one processing stage: items arrive via :meth:`submit`, wait in
    FIFO order, are served one at a time for ``service_time(item)``
    seconds, and are then handed to ``on_done(item)``.

    The station is work-conserving; utilization statistics (busy time) are
    tracked for resource accounting.
    """

    def __init__(
        self,
        sim: Simulator,
        service_time: Callable[[Any], float],
        on_done: Callable[[Any], None],
        capacity: Optional[int] = None,
        name: str = "station",
    ) -> None:
        self.sim = sim
        self.service_time = service_time
        self.on_done = on_done
        self.queue = FifoQueue(capacity=capacity, name=f"{name}.queue")
        self.name = name
        self.busy = False
        self.served = 0
        self.busy_time = 0.0

    def submit(self, item: Any) -> bool:
        """Offer an item; returns False if the queue dropped it."""
        if not self.queue.push(item):
            return False
        if not self.busy:
            self._start_next()
        return True

    def _start_next(self) -> None:
        if len(self.queue) == 0:
            self.busy = False
            return
        item = self.queue.pop()
        self.busy = True
        duration = self.service_time(item)
        if duration < 0:
            raise ValueError(f"negative service time {duration} at {self.name}")
        self.busy_time += duration
        self.sim.call_later(duration, self._finish, item)

    def _finish(self, item: Any) -> None:
        self.served += 1
        self.on_done(item)
        self._start_next()

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds this station spent serving."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)
