"""Queues and service stations for packet-level simulation."""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from repro.sim.kernel import Simulator


class FifoQueue:
    """A bounded FIFO with drop-tail semantics and drop accounting.

    Used for NIC rx rings, vhost queues, and the like.  ``capacity=None``
    means unbounded.
    """

    def __init__(self, capacity: Optional[int] = None, name: str = "fifo") -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self.enqueued = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._items)

    def push(self, item: Any) -> bool:
        """Enqueue ``item``; returns False (and counts a drop) if full."""
        if self.capacity is not None and len(self._items) >= self.capacity:
            self.dropped += 1
            return False
        self._items.append(item)
        self.enqueued += 1
        return True

    def pop(self) -> Any:
        """Dequeue the oldest item; raises IndexError when empty."""
        return self._items.popleft()

    def peek(self) -> Any:
        """Oldest item without removing it; raises IndexError when empty."""
        return self._items[0]

    def clear(self) -> None:
        self._items.clear()


class FairServiceStation:
    """One server round-robining over per-key FIFO queues.

    Models NAPI/PMD-style fair polling across rx rings: work arriving
    under different keys (e.g. different ingress ports) gets equal
    service shares under overload, instead of the head-of-line
    starvation a single shared FIFO produces.  Each per-key queue is
    bounded (the rx ring) with drop-tail accounting.
    """

    def __init__(
        self,
        sim: Simulator,
        service_time: Callable[[Any], float],
        on_done: Callable[[Any], None],
        queue_capacity: Optional[int] = None,
        name: str = "fair-station",
    ) -> None:
        self.sim = sim
        self.service_time = service_time
        self.on_done = on_done
        self.queue_capacity = queue_capacity
        self.name = name
        self.busy = False
        self.served = 0
        self.busy_time = 0.0
        self._queues: "dict[Any, FifoQueue]" = {}
        self._order: "list[Any]" = []
        self._last_key: Optional[Any] = None

    def submit(self, key: Any, item: Any) -> bool:
        """Offer an item on ring ``key``; False if that ring dropped it."""
        queue = self._queues.get(key)
        if queue is None:
            queue = FifoQueue(capacity=self.queue_capacity,
                              name=f"{self.name}.q{key}")
            self._queues[key] = queue
            self._order.append(key)
        if not queue.push(item):
            return False
        if not self.busy:
            self._start_next()
        return True

    def dropped(self) -> int:
        return sum(q.dropped for q in self._queues.values())

    def _pick(self) -> Optional[Any]:
        """Round-robin: scan for a non-empty ring starting just past the
        last-served one (keyed, so late-created rings join fairly)."""
        n = len(self._order)
        start = 0
        if self._last_key in self._queues:
            start = self._order.index(self._last_key) + 1
        for offset in range(n):
            key = self._order[(start + offset) % n]
            if len(self._queues[key]) > 0:
                self._last_key = key
                return key
        return None

    def _start_next(self) -> None:
        key = self._pick()
        if key is None:
            self.busy = False
            return
        item = self._queues[key].pop()
        self.busy = True
        duration = self.service_time(item)
        if duration < 0:
            raise ValueError(f"negative service time {duration} at {self.name}")
        self.busy_time += duration
        self.sim.call_later(duration, self._finish, item)

    def _finish(self, item: Any) -> None:
        self.served += 1
        self.on_done(item)
        self._start_next()

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)


class ServiceStation:
    """A single server with a FIFO queue and per-item service times.

    Models one processing stage: items arrive via :meth:`submit`, wait in
    FIFO order, are served one at a time for ``service_time(item)``
    seconds, and are then handed to ``on_done(item)``.

    The station is work-conserving; utilization statistics (busy time) are
    tracked for resource accounting.
    """

    def __init__(
        self,
        sim: Simulator,
        service_time: Callable[[Any], float],
        on_done: Callable[[Any], None],
        capacity: Optional[int] = None,
        name: str = "station",
    ) -> None:
        self.sim = sim
        self.service_time = service_time
        self.on_done = on_done
        self.queue = FifoQueue(capacity=capacity, name=f"{name}.queue")
        self.name = name
        self.busy = False
        self.served = 0
        self.busy_time = 0.0

    def submit(self, item: Any) -> bool:
        """Offer an item; returns False if the queue dropped it."""
        if not self.queue.push(item):
            return False
        if not self.busy:
            self._start_next()
        return True

    def _start_next(self) -> None:
        if len(self.queue) == 0:
            self.busy = False
            return
        item = self.queue.pop()
        self.busy = True
        duration = self.service_time(item)
        if duration < 0:
            raise ValueError(f"negative service time {duration} at {self.name}")
        self.busy_time += duration
        self.sim.call_later(duration, self._finish, item)

    def _finish(self, item: Any) -> None:
        self.served += 1
        self.on_done(item)
        self._start_next()

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds this station spent serving."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)
