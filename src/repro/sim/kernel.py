"""The discrete-event simulator: a clock plus an event heap."""

from __future__ import annotations

import heapq
import time
from typing import Any, Callable, Optional

from repro import obs as _obs
from repro.errors import SimulationError
from repro.sim.events import Event


class RecurringEvent:
    """Handle for a :meth:`Simulator.every` timer.

    Owns the currently pending :class:`Event` and reschedules itself
    after each firing; ``cancel()`` stops the chain.  The callback runs
    *before* the next occurrence is scheduled, so a callback may cancel
    its own timer.
    """

    __slots__ = ("_sim", "_interval", "_callback", "_args", "_until",
                 "_event", "cancelled")

    def __init__(self, sim: "Simulator", interval: float,
                 callback: Callable[..., Any], args: tuple,
                 until: Optional[float]) -> None:
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._args = args
        self._until = until
        self._event: Optional[Event] = None
        self.cancelled = False
        self._schedule()

    def _schedule(self) -> None:
        next_t = self._sim.now + self._interval
        # The epsilon absorbs float accumulation so a timer whose
        # horizon is an exact multiple of the interval still fires at
        # the horizon itself.
        if self._until is not None and next_t > self._until + 1e-15:
            self._event = None
            return
        self._event = self._sim.schedule(next_t, self._fire)

    def _fire(self) -> None:
        if self.cancelled:
            return
        self._callback(*self._args)
        if not self.cancelled:
            self._schedule()

    def cancel(self) -> None:
        self.cancelled = True
        if self._event is not None:
            self._event.cancel()
            self._event = None


class Simulator:
    """Runs callbacks in virtual-time order.

    The kernel is single-threaded and deterministic: events at equal
    timestamps fire in the order they were scheduled.  Components hold a
    reference to the simulator and schedule work with :meth:`schedule`
    (absolute time) or :meth:`call_later` (relative delay).

    Example::

        sim = Simulator()
        sim.call_later(1.5, print, "hello at t=1.5")
        sim.run(until=10.0)
    """

    def __init__(self) -> None:
        self._now = 0.0
        # Heap entries are (time, seq, event) tuples: the heap then
        # orders by plain float/int compares at C speed instead of
        # calling Event.__lt__ for every sift step -- the single
        # hottest operation in packet-scale simulations.
        self._heap: list[tuple[float, int, Event]] = []
        self._events_fired = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._events_fired

    def schedule(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: t={time} < now={self._now}"
            )
        event = Event(time, callback, args)
        heapq.heappush(self._heap, (time, event.seq, event))
        return event

    def call_later(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule(self._now + delay, callback, *args)

    def every(self, interval: float, callback: Callable[..., Any], *args: Any,
              until: Optional[float] = None) -> RecurringEvent:
        """Schedule ``callback(*args)`` every ``interval`` seconds.

        The first firing is at ``now + interval``.  With ``until`` the
        timer stops once the next occurrence would pass that horizon
        (an occurrence landing exactly on it still fires).  Returns a
        :class:`RecurringEvent` whose ``cancel()`` stops the chain.
        """
        if interval <= 0:
            raise SimulationError(f"non-positive interval: {interval}")
        return RecurringEvent(self, interval, callback, args, until)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the heap drains, ``until`` passes, or
        ``max_events`` fire.  Returns the number of events fired by this
        call.

        When ``until`` is given the clock is advanced to exactly ``until``
        on return even if the heap drained earlier, so successive
        ``run(until=...)`` calls form a contiguous timeline.
        """
        if self._running:
            raise SimulationError("run() re-entered; the kernel is not reentrant")
        self._running = True
        fired = 0
        wall_start = time.perf_counter()
        try:
            while self._heap:
                event = self._heap[0][2]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                if max_events is not None and fired >= max_events:
                    break
                heapq.heappop(self._heap)
                self._now = event.time
                event.fire()
                fired += 1
                self._events_fired += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        _obs.TRACER.kernel_run(self._now, self._events_fired,
                               len(self._heap),
                               time.perf_counter() - wall_start)
        return fired

    def peek(self) -> Optional[float]:
        """Timestamp of the next pending event, or ``None`` if idle."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def pending(self) -> int:
        """Number of non-cancelled events still queued."""
        return sum(1 for _, _, e in self._heap if not e.cancelled)
