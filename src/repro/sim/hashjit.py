"""Deterministic per-frame jitter: hash-based uniform draws.

The timed dataplane adds small random waits at several hops (softirq
wakeup variance, scheduler jitter, DPDK drain waits, the l2fwd drain
interval).  Historically these were drawn from a shared
``random.Random`` stream, which makes every draw depend on global
*draw order* -- fine for a strictly per-frame simulation, fatal for the
batched fast path, where a whole burst's waits are computed in one
event and the per-frame event interleaving (hence draw order) no longer
exists.

:class:`HashJitter` replaces the stream with a keyed hash: every draw
is a pure function of ``(component seed, frame id, site)``.  The oracle
per-frame path and the batched path therefore compute *identical* waits
for the same frame at the same hop, which is what makes their delivery
and drop behaviour byte-comparable.  The component seed is itself drawn
from the component's seeded RNG stream at construction, so runs remain
reproducible end to end and distinct components stay decorrelated.

The mixer is splitmix64 -- cheap (a handful of multiplies and shifts)
and statistically solid for this purpose.
"""

from __future__ import annotations

import zlib

_MASK = (1 << 64) - 1
#: 1/2^53: converts the top 53 bits of the mix to a float in [0, 1).
_INV = 1.0 / (1 << 53)


def mix64(x: int) -> int:
    """splitmix64 finalizer: avalanche a 64-bit value."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return x ^ (x >> 31)


class HashJitter:
    """Keyed uniform draws: ``unit(key, site)`` is a pure function.

    ``key`` is typically a frame id and ``site`` a small per-draw-site
    constant, so one frame can take several independent draws at one
    hop (e.g. fixed wait + scheduler wait) without correlation.
    """

    __slots__ = ("seed",)

    #: Draw-site constants (one per jitter site in the mediation chain).
    SITE_FIXED_WAIT = 1
    SITE_SCHED_WAIT = 2
    SITE_DRAIN_WAIT = 3
    SITE_DRAIN_ANOMALY = 4
    SITE_L2FWD_DRAIN = 5

    def __init__(self, seed: int) -> None:
        self.seed = seed & _MASK

    @classmethod
    def from_name(cls, name: str) -> "HashJitter":
        """Derive a component jitter source from its (stable) name.

        Keying by name rather than by an RNG draw gives *common random
        numbers* across configurations: the same-named hop in two
        compared setups (e.g. Baseline vs MTS L1) applies the same
        jitter to the same frame, so systematic model differences are
        not drowned by differently-realized noise.  It is also immune
        to component construction order, which keeps sequential and
        process-pool sweep backends bit-identical.
        """
        return cls(mix64(zlib.crc32(name.encode("utf-8"))))

    def unit(self, key: int, site: int) -> float:
        """A uniform float in [0, 1) for ``(key, site)``."""
        x = (self.seed + 0x9E3779B97F4A7C15 * ((key << 8) ^ site)) & _MASK
        x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
        return ((x ^ (x >> 31)) >> 11) * _INV

    def uniform(self, key: int, site: int, lo: float, hi: float) -> float:
        """A uniform float in [lo, hi) for ``(key, site)``."""
        return lo + (hi - lo) * self.unit(key, site)
