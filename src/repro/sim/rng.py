"""Named, independently seeded random streams.

Every stochastic component draws from its own stream so that adding a new
source of randomness does not perturb existing experiments (a classic DES
reproducibility technique).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngStreams:
    """Factory of independent :class:`random.Random` streams.

    Streams are keyed by name; the per-stream seed is derived from the
    master seed and the name via SHA-256, so streams are stable across
    runs and uncorrelated with each other.

    Example::

        rng = RngStreams(seed=42)
        arrivals = rng.stream("generator.tenant0")
        service = rng.stream("vswitch.red")
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stream for ``name``."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, salt: str) -> "RngStreams":
        """Derive an independent family of streams (e.g. per repetition)."""
        digest = hashlib.sha256(f"{self.seed}:fork:{salt}".encode()).digest()
        return RngStreams(int.from_bytes(digest[:8], "big"))
