"""Every empirical constant of the performance model, with provenance.

The reproduction cannot measure real silicon, so per-packet CPU costs,
per-crossing latencies and device capacities are *calibrated*: each
constant is chosen so that a model prediction lands on an operating
point the paper (or the cited literature) reports.  The anchors:

==========================================  =================================
Anchor (paper)                              Constant(s) it pins
==========================================  =================================
Kernel OVS p2p ~1 Mpps on one 2.1 GHz core  KERNEL base + physical rx/tx
MTS kernel p2p slightly above Baseline      VF rx/tx slightly below physical
Baseline kernel p2v ~0.2 Mpps, v2v ~0.1     vhost/virtio crossing cycles
MTS kernel p2v ~0.4 Mpps, v2v ~0.2          VF crossing + rewrite cycles
Baseline DPDK p2p: line rate w/ 2 cores     DPDK base + physical rx/tx
MTS DPDK p2p: ~line rate w/ 4 VMs           DPDK VF rx/tx + poll tax
MTS DPDK p2v/v2v saturate ~2.3 Mpps         NIC hairpin capacity (4.6 M/s)
Baseline DPDK ~1 ms latency @ 10 kpps       multi-queue drain anomaly
~2 us p2p DPDK latency at >=100 kpps        DPDK base latency terms
SR-IOV NIC round trip "negligible" (us)     PCIe DMA latency, VEB latency
x8 PCIe 3.0 effective ~50 Gbps              PCIe model (Neugebauer et al.)
==========================================  =================================

All cycle figures assume the DUT's 2.1 GHz clock.  Change them by
constructing a custom :class:`Calibration` (the ablation benchmarks
sweep several of them).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.units import USEC
from repro.vswitch.datapath import PassCosts, PortClass


def kernel_pass_costs() -> PassCosts:
    """OVS kernel datapath per-pass cycle costs.

    Anchors: 1200 + 500 + 450 = 2150 cycles -> 0.98 Mpps/core for the
    Baseline p2p pass (one rule, plain output); MTS passes additionally
    pay the 500-cycle IP-lookup + MAC-rewrite, so the SR-IOV VF rx/tx
    costs (230/200) are set such that an MTS p2p pass lands at 2130
    cycles -> 0.99 Mpps, slightly above the Baseline as the paper
    measures; a vhost crossing at ~2900 cycles puts Baseline p2v at
    ~0.23 Mpps and v2v at ~0.13 Mpps, against MTS's ~0.49 and ~0.33.
    """
    return PassCosts(
        base_cycles=1200.0,
        rx_cycles={
            PortClass.PHYSICAL: 500.0,
            PortClass.VF: 230.0,
            PortClass.VHOST: 2900.0,
            PortClass.DPDK_VHOST_CLIENT: 2900.0,
        },
        tx_cycles={
            PortClass.PHYSICAL: 450.0,
            PortClass.VF: 200.0,
            PortClass.VHOST: 2900.0,
            PortClass.DPDK_VHOST_CLIENT: 2900.0,
        },
        rewrite_cycles=500.0,
        poll_tax_cycles_per_port=0.0,
        fixed_latency=8.0 * USEC,
        drain_jitter=0.0,
    )


def dpdk_pass_costs() -> PassCosts:
    """OVS-DPDK per-pass cycle costs.

    Anchors: with the Baseline's 10-port bridge (2 physical + 8 vhost),
    160 + 60 + 55 + 10 ports x 4 = 315 cycles -> 6.7 Mpps/core p2p, so
    two cores come within a few percent of the 14.88 Mpps line (the
    paper's "Baseline was able to saturate the link with 2 cores");
    VF ports at 150/140 cycles plus the rewrite put one MTS compartment
    at ~3.4-3.6 Mpps p2p, reaching line rate with four VMs.  The
    dpdkvhostuserclient ports (Baseline Level-3 tenant ports, zero-copy
    shared-memory vhost-user) at 135/130 cycles yield ~2.3 Mpps/core
    p2v -- so the 2-core Baseline lands at ~4.6 Mpps, twice MTS's
    hairpin-bound 2.3 Mpps plateau, as the paper reports.
    """
    return PassCosts(
        base_cycles=160.0,
        rx_cycles={
            PortClass.PHYSICAL: 60.0,
            PortClass.VF: 150.0,
            PortClass.VHOST: 135.0,
            PortClass.DPDK_VHOST_CLIENT: 135.0,
        },
        tx_cycles={
            PortClass.PHYSICAL: 55.0,
            PortClass.VF: 140.0,
            PortClass.VHOST: 130.0,
            PortClass.DPDK_VHOST_CLIENT: 130.0,
        },
        rewrite_cycles=120.0,
        poll_tax_cycles_per_port=4.0,
        fixed_latency=0.0,
        drain_jitter=50.0 * USEC,
    )


@dataclass
class Calibration:
    """The complete constant set threaded through deployments and models."""

    #: DUT clock (Xeon E5-2683 v4).
    cpu_freq_hz: float = 2.1e9

    kernel_costs: PassCosts = field(default_factory=kernel_pass_costs)
    dpdk_costs: PassCosts = field(default_factory=dpdk_pass_costs)

    #: Extra cycles per *byte* for crossings that copy packet payload
    #: over the memory bus (kernel virtio/vhost).  Pins the Fig. 6
    #: result that the Baseline cannot saturate 10G with MTU frames in
    #: the isolated mode while MTS can.
    vhost_cycles_per_byte: float = 1.0

    #: Same, for vhost-user (dpdkvhostuserclient): a single enqueue copy
    #: in shared memory, about half the kernel path's per-byte work.
    vhost_user_cycles_per_byte: float = 0.5

    #: NIC-internal VF-to-VF ("hairpin") switching capacity, in
    #: traversals/s.  Pins MTS DPDK p2v saturation: 2 hairpins per p2v
    #: packet -> 4.6e6 / 2 = 2.3 Mpps, the paper's saturation plateau.
    nic_hairpin_capacity: float = 4.6e6

    #: NIC-internal hairpin *bandwidth*: VF-to-VF bounces also consume
    #: internal switch bandwidth, which on real NICs is well below
    #: 2x wire speed.  Binds MTS's MTU-frame v2v throughput (the Fig. 6
    #: v2v case the Baseline wins under DPDK).
    nic_hairpin_bandwidth_bps: float = 30e9

    #: One-way latency of a kernel vhost/virtio crossing at low load
    #: (ioeventfd kick + vhost worker wakeup + copy).
    vhost_latency: float = 25.0 * USEC

    #: One-way latency of a vhost-user (dpdkvhostuserclient) crossing:
    #: poll-mode shared memory on both sides, no kicks.
    vhost_user_latency: float = 3.0 * USEC

    #: Latency of one NIC traversal (VEB cut-through) -- see
    #: :data:`repro.sriov.nic.VEB_LATENCY`.
    veb_latency: float = 0.3 * USEC

    #: One-way PCIe DMA latency for a small frame.
    pcie_dma_latency: float = 0.9 * USEC

    #: Wire propagation between LG and DUT (short optical runs).
    wire_propagation: float = 0.05 * USEC

    #: Number of tenant flows in all paper experiments.
    num_flows: int = 4

    def with_overrides(self, **kwargs) -> "Calibration":
        """A copy with selected constants replaced (ablation support)."""
        return replace(self, **kwargs)


DEFAULT_CALIBRATION = Calibration()
