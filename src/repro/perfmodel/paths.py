"""Map a deployment + scenario onto capacity-solver flow paths.

For each tenant flow this module derives the per-packet footprint on
every shared resource:

- **compartment CPU**: the sum of forwarding-pass cycle costs the flow
  charges to its vswitch compartment (or the Baseline's OVS cores),
  including the per-byte memory-copy cost of vhost crossings;
- **NIC hairpin bandwidth**: VF-to-VF traversals through the embedded
  switch (vswitch->tenant and tenant->vswitch bounces; MTS only);
- **PCIe**: bytes DMA'd across the bus per packet;
- **links**: wire bits per packet, per direction;
- **tenant CPU**: the in-tenant forwarder's cycles (l2fwd or Linux
  bridge), almost never the bottleneck -- exactly why the paper gives
  tenant VMs two dedicated cores.

Pass counts per scenario (Fig. 3 and Fig. 4):

=========  ======================  ==========================
scenario   vswitch passes          NIC hairpins (MTS)
=========  ======================  ==========================
p2p        1                       0
p2v        2 (ingress + egress)    2 (vsw->T, T->vsw)
v2v        3                       4 (two tenant bounces)
=========  ======================  ==========================

The workload models (iperf/Apache/Memcached, Fig. 6) compose several
per-size path sets -- MTU data packets one way, small ACKs the other --
against one shared :class:`ResourceRegistry` so that all sub-flows
drain the same pools.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.deployment import Deployment
from repro.core.spec import TrafficScenario
from repro.perfmodel.capacity import FlowPath, Resource, SolveResult, solve
from repro.units import GBPS
from repro.vswitch.datapath import PortClass
from repro.vswitch.l2fwd import L2FWD_CYCLES
from repro.vswitch.linux_bridge import LINUX_BRIDGE_CYCLES

#: Guest-side virtio processing cycles per packet (Baseline tenants).
GUEST_VIRTIO_CYCLES = 1000.0

#: MTS path DMA crossings per packet (VF deliveries + transmissions).
_MTS_PCIE_CROSSINGS = {
    TrafficScenario.P2P: 2,
    TrafficScenario.P2V: 6,
    TrafficScenario.V2V: 10,
}
_MTS_HAIRPINS = {
    TrafficScenario.P2P: 0,
    TrafficScenario.P2V: 2,
    TrafficScenario.V2V: 4,
}
#: Baseline: the NIC DMAs each frame to/from host memory once per
#: direction regardless of scenario.
_BASELINE_PCIE_CROSSINGS = 2

#: Per-frame physical-layer overhead on the wire (preamble/SFD/IFG).
_WIRE_OVERHEAD_BYTES = 20


class ResourceRegistry:
    """Dedups :class:`Resource` objects by name so that several path
    sets (data + ACK sub-flows) share the same capacity pools."""

    def __init__(self) -> None:
        self._resources: Dict[str, Resource] = {}

    def get(self, name: str, capacity: float) -> Resource:
        existing = self._resources.get(name)
        if existing is not None:
            return existing
        resource = Resource(name, capacity)
        self._resources[name] = resource
        return resource

    def __contains__(self, name: str) -> bool:
        return name in self._resources


@dataclass
class PassProfile:
    """One traversal of a vswitch: which bridge, which port classes."""

    bridge_index: int
    in_class: PortClass
    out_class: PortClass
    rewrites: bool
    vhost_crossings: int = 0  # VHOST-class endpoints touched in this pass


def passes_for_flow(deployment: Deployment, scenario: TrafficScenario,
                    tenant_id: int) -> List[PassProfile]:
    """The vswitch passes one packet of a tenant's flow makes."""
    spec = deployment.spec
    if spec.level.is_mts:
        k = deployment.compartment_of_tenant(tenant_id)
        vf_pass = PassProfile(k, PortClass.VF, PortClass.VF, rewrites=True)
        count = {TrafficScenario.P2P: 1, TrafficScenario.P2V: 2,
                 TrafficScenario.V2V: 3}[scenario]
        return [vf_pass] * count

    tenant_class = (PortClass.DPDK_VHOST_CLIENT if spec.user_space
                    else PortClass.VHOST)
    if scenario is TrafficScenario.P2P:
        return [PassProfile(0, PortClass.PHYSICAL, PortClass.PHYSICAL,
                            rewrites=False)]
    ingress = PassProfile(0, PortClass.PHYSICAL, tenant_class,
                          rewrites=False, vhost_crossings=1)
    egress = PassProfile(0, tenant_class, PortClass.PHYSICAL,
                         rewrites=False, vhost_crossings=1)
    if scenario is TrafficScenario.P2V:
        return [ingress, egress]
    middle = PassProfile(0, tenant_class, tenant_class,
                         rewrites=False, vhost_crossings=2)
    return [ingress, middle, egress]


def _tenant_chain(deployment: Deployment, scenario: TrafficScenario,
                  tenant_id: int) -> List[int]:
    """Tenant VMs a flow traverses (for tenant-CPU demands)."""
    if scenario is TrafficScenario.P2P:
        return []
    if scenario is TrafficScenario.P2V:
        return [tenant_id]
    spec = deployment.spec
    if spec.level.is_mts:
        view = deployment.compartment_views[
            deployment.compartment_of_tenant(tenant_id)]
        partner = deployment.controller.v2v_partner(view, tenant_id)
    else:
        tenants = list(range(spec.num_tenants))
        partner = tenants[(tenants.index(tenant_id) + 1) % len(tenants)]
    return [tenant_id, partner]


def build_flow_paths(
    deployment: Deployment,
    scenario: TrafficScenario,
    frame_bytes: int = 64,
    offered_per_flow_pps: float = math.inf,
    link_bandwidth_bps: float = 10 * GBPS,
    registry: Optional[ResourceRegistry] = None,
    reverse: bool = False,
    name_suffix: str = "",
) -> List[FlowPath]:
    """One :class:`FlowPath` per tenant.

    ``reverse=True`` swaps the link directions (used by the TCP models:
    data one way, ACKs the other); all DUT-internal resources (CPU,
    hairpin, PCIe) are direction-symmetric on this path.
    """
    spec = deployment.spec
    cal = deployment.calibration
    reg = registry if registry is not None else ResourceRegistry()

    cpu: Dict[int, Resource] = {}
    for i, bridge in enumerate(deployment.bridges):
        capacity = sum(share.effective_hz() for share in bridge.compute_shares)
        if capacity <= 0:
            raise ValueError(f"bridge {bridge.name} has no compute attached")
        cpu[i] = reg.get(f"cpu.{bridge.name}", capacity)

    link_in = reg.get("link.in", link_bandwidth_bps)
    link_out = reg.get("link.out", link_bandwidth_bps)
    if reverse:
        link_in, link_out = link_out, link_in
    wire_bits = (frame_bytes + _WIRE_OVERHEAD_BYTES) * 8.0
    # PCIe is full duplex: ~50 Gbps usable in each direction for the
    # testbed's x8 Gen3 NIC.  DMA crossings split evenly between the
    # to-host and from-host directions on every path we model.
    pcie_capacity = deployment.server.nic.pcie.effective_bandwidth_bps() / 8.0
    pcie_down = reg.get("pcie.down", pcie_capacity)
    pcie_up = reg.get("pcie.up", pcie_capacity)
    hairpin = reg.get("nic.hairpin", cal.nic_hairpin_capacity)
    hairpin_bw = reg.get("nic.hairpin_bw", cal.nic_hairpin_bandwidth_bps / 8.0)
    tenant_cpu = {
        t: reg.get(f"cpu.tenant{t}", spec.tenant_cores * cal.cpu_freq_hz)
        for t in range(spec.num_tenants)
    }

    costs = cal.dpdk_costs if spec.user_space else cal.kernel_costs
    paths: List[FlowPath] = []
    for t in range(spec.num_tenants):
        path = FlowPath(name=f"flow-t{t}{name_suffix}",
                        offered_pps=offered_per_flow_pps)
        cycles_by_bridge: Dict[int, float] = {}
        for prof in passes_for_flow(deployment, scenario, t):
            bridge = deployment.bridges[prof.bridge_index]
            cycles = costs.pass_cycles(
                prof.in_class, prof.out_class, prof.rewrites,
                num_ports=len(bridge.ports()),
            )
            per_byte = (cal.vhost_user_cycles_per_byte if spec.user_space
                        else cal.vhost_cycles_per_byte)
            cycles += prof.vhost_crossings * frame_bytes * per_byte
            cycles_by_bridge[prof.bridge_index] = (
                cycles_by_bridge.get(prof.bridge_index, 0.0) + cycles
            )
        for bridge_index, cycles in cycles_by_bridge.items():
            path.add(cpu[bridge_index], cycles)

        path.add(link_in, wire_bits)
        path.add(link_out, wire_bits)

        if spec.level.is_mts:
            path.add(hairpin, float(_MTS_HAIRPINS[scenario]))
            path.add(hairpin_bw, _MTS_HAIRPINS[scenario] * float(frame_bytes))
            crossings = _MTS_PCIE_CROSSINGS[scenario]
            path.add(pcie_down, (crossings / 2.0) * frame_bytes)
            path.add(pcie_up, (crossings / 2.0) * frame_bytes)
            per_tenant_cycles = L2FWD_CYCLES
        else:
            path.add(pcie_down, (_BASELINE_PCIE_CROSSINGS / 2.0) * frame_bytes)
            path.add(pcie_up, (_BASELINE_PCIE_CROSSINGS / 2.0) * frame_bytes)
            per_tenant_cycles = (LINUX_BRIDGE_CYCLES + GUEST_VIRTIO_CYCLES
                                 if not spec.user_space
                                 else L2FWD_CYCLES + GUEST_VIRTIO_CYCLES)
        for hop_tenant in _tenant_chain(deployment, scenario, t):
            path.add(tenant_cpu[hop_tenant], per_tenant_cycles)
        paths.append(path)
    return paths


def throughput(
    deployment: Deployment,
    scenario: TrafficScenario,
    frame_bytes: int = 64,
    offered_per_flow_pps: float = math.inf,
    link_bandwidth_bps: float = 10 * GBPS,
) -> SolveResult:
    """Max-min fair throughput of the deployment under saturation."""
    paths = build_flow_paths(deployment, scenario, frame_bytes,
                             offered_per_flow_pps, link_bandwidth_bps)
    return solve(paths)
