"""Calibrated performance model: capacity (throughput) and latency.

The model has three layers:

- :mod:`repro.perfmodel.calibration` -- every empirical constant, with
  provenance: each is anchored to an operating point the paper reports
  (kernel OVS ~1 Mpps/core p2p, DPDK line rate with 2 cores, MTS DPDK
  p2v saturation ~2.3 Mpps, ...).
- :mod:`repro.perfmodel.capacity` -- a max-min fair bottleneck solver
  over shared resources (compartment cores, the NIC's VF-to-VF hairpin
  bandwidth, links, PCIe).  Used for all throughput figures.
- :mod:`repro.perfmodel.latency` -- per-hop latency composition used by
  the analytic latency estimates; the discrete-event simulation uses the
  same per-hop numbers via the datapath models.
"""

from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perfmodel.capacity import FlowPath, Resource, ResourceDemand, SolveResult, solve

__all__ = [
    "Calibration",
    "DEFAULT_CALIBRATION",
    "FlowPath",
    "Resource",
    "ResourceDemand",
    "SolveResult",
    "solve",
]
