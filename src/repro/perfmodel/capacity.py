"""Max-min fair bottleneck capacity solver.

Throughput in every paper experiment is determined by which shared
resource saturates first: a compartment's CPU cycles, the NIC's VF-to-VF
hairpin bandwidth, the 10G links, or the PCIe bus.  We model each tenant
flow as a :class:`FlowPath` -- a bag of per-packet demands against named
:class:`Resource` pools -- and compute the max-min fair allocation by
progressive filling (water-filling):

1. all unfrozen flows' rates rise together;
2. the first resource to saturate freezes every flow that uses it;
3. repeat until all flows are frozen or reach their offered load.

For the paper's symmetric scenarios (4 identical tenant flows) this
reduces to ``rate = min_r capacity_r / sum_f demand_{f,r}``, but the
general algorithm also handles asymmetric Level-2 splits (e.g. 3+1
tenants across two vswitch VMs) and flows capped at their offered rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass(frozen=True)
class Resource:
    """A shared capacity pool (units/second)."""

    name: str
    capacity: float

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"resource {self.name!r} needs positive capacity")


@dataclass(frozen=True)
class ResourceDemand:
    """How many units of a resource one packet of a flow consumes."""

    resource: Resource
    units_per_packet: float

    def __post_init__(self) -> None:
        if self.units_per_packet < 0:
            raise ValueError(
                f"negative demand on {self.resource.name!r}: {self.units_per_packet}"
            )


@dataclass
class FlowPath:
    """One flow's end-to-end resource footprint.

    ``weight`` sets the fairness unit: progressive filling equalizes
    ``rate / weight`` across flows, so with ``weight=1`` (the default)
    packet/transaction rates are equalized, while setting ``weight`` to
    a flow's per-unit cycle cost equalizes *cycle shares* -- the right
    semantics for heterogeneous workloads sharing a round-robin-served
    core.
    """

    name: str
    demands: List[ResourceDemand] = field(default_factory=list)
    offered_pps: float = math.inf
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"flow {self.name}: weight must be positive")

    def demand_on(self, resource: Resource) -> float:
        return sum(d.units_per_packet for d in self.demands
                   if d.resource == resource)

    def add(self, resource: Resource, units_per_packet: float) -> "FlowPath":
        if units_per_packet > 0:
            self.demands.append(ResourceDemand(resource, units_per_packet))
        return self


@dataclass
class SolveResult:
    """Max-min fair rates plus diagnostics."""

    rates_pps: Dict[str, float]
    bottleneck_of: Dict[str, str]
    utilization: Dict[str, float]

    @property
    def aggregate_pps(self) -> float:
        return sum(self.rates_pps.values())

    def rate_of(self, flow_name: str) -> float:
        return self.rates_pps[flow_name]


def solve(paths: Sequence[FlowPath]) -> SolveResult:
    """Progressive-filling max-min fair allocation.

    Flows with zero demand everywhere are capped at their offered rate.
    """
    if not paths:
        return SolveResult({}, {}, {})
    names = [p.name for p in paths]
    if len(set(names)) != len(names):
        raise ValueError("flow names must be unique")

    resources: List[Resource] = []
    seen = set()
    for path in paths:
        for demand in path.demands:
            if demand.resource.name in seen:
                if demand.resource not in resources:
                    raise ValueError(
                        f"two distinct resources named {demand.resource.name!r}"
                    )
                continue
            seen.add(demand.resource.name)
            resources.append(demand.resource)

    rates: Dict[str, float] = {p.name: 0.0 for p in paths}
    frozen: Dict[str, str] = {}
    active = {p.name: p for p in paths}
    remaining = {r.name: r.capacity for r in resources}

    while active:
        # How far can the common fill *level* rise (each flow's rate is
        # weight x level) before something saturates or a flow hits its
        # offered load?
        best_increment = math.inf
        limiting: Optional[str] = None
        for resource in resources:
            demand_sum = sum(p.weight * p.demand_on(resource)
                             for p in active.values())
            if demand_sum <= 0:
                continue
            increment = remaining[resource.name] / demand_sum
            if increment < best_increment:
                best_increment = increment
                limiting = resource.name
        for path in active.values():
            headroom = (path.offered_pps - rates[path.name]) / path.weight
            if headroom < best_increment:
                best_increment = headroom
                limiting = None  # an offered-load cap, not a resource

        if math.isinf(best_increment):
            # No active flow touches any finite resource or cap.
            for name in active:
                frozen[name] = "unconstrained"
            break

        # Apply the level increment.
        for path in active.values():
            rates[path.name] += path.weight * best_increment
            for demand in path.demands:
                remaining[demand.resource.name] -= (
                    demand.units_per_packet * path.weight * best_increment
                )
        for rname in remaining:
            if remaining[rname] < 0 and remaining[rname] > -1e-6:
                remaining[rname] = 0.0

        # Freeze flows at saturated resources / offered caps.
        newly_frozen = []
        for name, path in active.items():
            if limiting is not None and path.demand_on(
                next(r for r in resources if r.name == limiting)
            ) > 0:
                newly_frozen.append((name, limiting))
            elif rates[name] >= path.offered_pps - 1e-9:
                newly_frozen.append((name, "offered-load"))
        # Saturation of *any* zero-remaining resource also freezes users.
        for rname, left in remaining.items():
            if left <= 1e-9:
                resource = next(r for r in resources if r.name == rname)
                for name, path in active.items():
                    if path.demand_on(resource) > 0:
                        newly_frozen.append((name, rname))
        if not newly_frozen:
            # Numerical corner: freeze everything at the limiting cap.
            for name in list(active):
                newly_frozen.append((name, limiting or "offered-load"))
        for name, why in newly_frozen:
            if name in active:
                frozen[name] = why
                del active[name]

    utilization = {}
    for resource in resources:
        used = sum(p.demand_on(resource) * rates[p.name] for p in paths)
        utilization[resource.name] = min(1.0, used / resource.capacity)
    return SolveResult(rates_pps=rates, bottleneck_of=frozen, utilization=utilization)
