"""Max-min fair bottleneck capacity solver.

Throughput in every paper experiment is determined by which shared
resource saturates first: a compartment's CPU cycles, the NIC's VF-to-VF
hairpin bandwidth, the 10G links, or the PCIe bus.  We model each tenant
flow as a :class:`FlowPath` -- a bag of per-packet demands against named
:class:`Resource` pools -- and compute the max-min fair allocation by
progressive filling (water-filling):

1. all unfrozen flows' rates rise together;
2. the first resource to saturate freezes every flow that uses it;
3. repeat until all flows are frozen or reach their offered load.

For the paper's symmetric scenarios (4 identical tenant flows) this
reduces to ``rate = min_r capacity_r / sum_f demand_{f,r}``, but the
general algorithm also handles asymmetric Level-2 splits (e.g. 3+1
tenants across two vswitch VMs) and flows capped at their offered rate.

Fabric scale rides on two additions:

- the fill loop keeps *incremental* per-resource demand sums (updated
  when flows freeze) instead of rescanning every active flow per
  resource per round, so thousands of background-tenant flows over
  hundreds of fabric-link pools solve in linear-ish time;
- :class:`SolveResult` records every pool's capacity, so callers can
  ask for **residual capacity** -- what is left of a link or a
  compartment's cycles after background load -- and
  :func:`residual_resources` / :func:`solve_with_background` turn a
  background traffic matrix into the capacity pools a foreground DES
  (the hybrid simulation's flows under study) should run against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass(frozen=True)
class Resource:
    """A shared capacity pool (units/second)."""

    name: str
    capacity: float

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"resource {self.name!r} needs positive capacity")


@dataclass(frozen=True)
class ResourceDemand:
    """How many units of a resource one packet of a flow consumes."""

    resource: Resource
    units_per_packet: float

    def __post_init__(self) -> None:
        if self.units_per_packet < 0:
            raise ValueError(
                f"negative demand on {self.resource.name!r}: {self.units_per_packet}"
            )


@dataclass
class FlowPath:
    """One flow's end-to-end resource footprint.

    ``weight`` sets the fairness unit: progressive filling equalizes
    ``rate / weight`` across flows, so with ``weight=1`` (the default)
    packet/transaction rates are equalized, while setting ``weight`` to
    a flow's per-unit cycle cost equalizes *cycle shares* -- the right
    semantics for heterogeneous workloads sharing a round-robin-served
    core.
    """

    name: str
    demands: List[ResourceDemand] = field(default_factory=list)
    offered_pps: float = math.inf
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"flow {self.name}: weight must be positive")

    def demand_on(self, resource: Resource) -> float:
        return sum(d.units_per_packet for d in self.demands
                   if d.resource == resource)

    def add(self, resource: Resource, units_per_packet: float) -> "FlowPath":
        if units_per_packet > 0:
            self.demands.append(ResourceDemand(resource, units_per_packet))
        return self


@dataclass
class SolveResult:
    """Max-min fair rates plus diagnostics."""

    rates_pps: Dict[str, float]
    bottleneck_of: Dict[str, str]
    utilization: Dict[str, float]
    #: Resource name -> configured capacity (absent for pre-existing
    #: serialized results; populated by every fresh solve).
    capacity_of: Dict[str, float] = field(default_factory=dict)

    @property
    def aggregate_pps(self) -> float:
        return sum(self.rates_pps.values())

    def rate_of(self, flow_name: str) -> float:
        return self.rates_pps[flow_name]

    # -- residual-capacity queries (the hybrid DES/fluid split) ----------

    def used_of(self, resource_name: str) -> float:
        """Units/second the solved rates consume on one pool."""
        capacity = self.capacity_of[resource_name]
        return self.utilization.get(resource_name, 0.0) * capacity

    def residual_of(self, resource_name: str) -> float:
        """Capacity left on one pool after the solved flows."""
        return self.capacity_of[resource_name] - self.used_of(resource_name)

    def residuals(self) -> Dict[str, float]:
        """Residual capacity of every pool the solve touched."""
        return {name: self.residual_of(name) for name in self.capacity_of}

    def residual_fraction(self, resource_name: str) -> float:
        """Residual as a fraction of configured capacity (1.0 = idle)."""
        capacity = self.capacity_of[resource_name]
        if capacity <= 0:
            return 0.0
        return max(0.0, 1.0 - self.utilization.get(resource_name, 0.0))


def solve(paths: Sequence[FlowPath]) -> SolveResult:
    """Progressive-filling max-min fair allocation.

    Flows with zero demand everywhere are capped at their offered rate.
    """
    if not paths:
        return SolveResult({}, {}, {})
    names = [p.name for p in paths]
    if len(set(names)) != len(names):
        raise ValueError("flow names must be unique")

    resources: List[Resource] = []
    seen = set()
    for path in paths:
        for demand in path.demands:
            if demand.resource.name in seen:
                if demand.resource not in resources:
                    raise ValueError(
                        f"two distinct resources named {demand.resource.name!r}"
                    )
                continue
            seen.add(demand.resource.name)
            resources.append(demand.resource)

    # Per-flow demand totals and the incrementally maintained per-pool
    # demand sums: a resource rescans nothing per round, it just loses a
    # flow's contribution when that flow freezes.  At fabric scale (a
    # thousand background flows over hundreds of link pools) this is the
    # difference between linear-ish and quadratic-ish fill loops.
    demand_of: Dict[str, Dict[str, float]] = {}
    for path in paths:
        totals: Dict[str, float] = {}
        for demand in path.demands:
            totals[demand.resource.name] = (
                totals.get(demand.resource.name, 0.0)
                + demand.units_per_packet)
        demand_of[path.name] = totals
    users_of: Dict[str, set] = {r.name: set() for r in resources}
    demand_sum: Dict[str, float] = {r.name: 0.0 for r in resources}
    for path in paths:
        for rname, units in demand_of[path.name].items():
            if units > 0:
                users_of[rname].add(path.name)
                demand_sum[rname] += path.weight * units

    initial_sum = dict(demand_sum)
    rates: Dict[str, float] = {p.name: 0.0 for p in paths}
    frozen: Dict[str, str] = {}
    active = {p.name: p for p in paths}
    remaining = {r.name: r.capacity for r in resources}
    unsaturated = [r.name for r in resources]

    while active:
        # How far can the common fill *level* rise (each flow's rate is
        # weight x level) before something saturates or a flow hits its
        # offered load?
        best_increment = math.inf
        limiting: Optional[str] = None
        for rname in unsaturated:
            if demand_sum[rname] <= 0:
                continue
            increment = remaining[rname] / demand_sum[rname]
            if increment < best_increment:
                best_increment = increment
                limiting = rname
        for path in active.values():
            headroom = (path.offered_pps - rates[path.name]) / path.weight
            if headroom < best_increment:
                best_increment = headroom
                limiting = None  # an offered-load cap, not a resource

        if math.isinf(best_increment):
            # No active flow touches any finite resource or cap.
            for name in active:
                frozen[name] = "unconstrained"
            break

        # Apply the level increment.
        for path in active.values():
            rates[path.name] += path.weight * best_increment
        for rname in unsaturated:
            remaining[rname] -= demand_sum[rname] * best_increment
            if remaining[rname] < 0 and remaining[rname] > -1e-6:
                remaining[rname] = 0.0

        # Freeze flows at saturated resources / offered caps.
        newly_frozen = []
        if limiting is not None:
            for name in users_of[limiting]:
                if name in active:
                    newly_frozen.append((name, limiting))
        for name, path in active.items():
            if rates[name] >= path.offered_pps - 1e-9:
                newly_frozen.append((name, "offered-load"))
        # Saturation of *any* zero-remaining resource also freezes users.
        still_open = []
        for rname in unsaturated:
            if remaining[rname] <= 1e-9 and demand_sum[rname] > 0:
                for name in users_of[rname]:
                    if name in active:
                        newly_frozen.append((name, rname))
            else:
                still_open.append(rname)
        unsaturated = still_open
        if not newly_frozen:
            # Numerical corner: freeze everything at the limiting cap.
            for name in list(active):
                newly_frozen.append((name, limiting or "offered-load"))
        for name, why in newly_frozen:
            if name in active:
                frozen[name] = why
                path = active.pop(name)
                for rname, units in demand_of[name].items():
                    demand_sum[rname] -= path.weight * units
                    users_of[rname].discard(name)
                    # Exact zero once the pool's last user freezes:
                    # subtraction residue would otherwise read as a
                    # near-infinite fill increment next round.
                    if not users_of[rname]:
                        demand_sum[rname] = 0.0
                    elif demand_sum[rname] < 1e-9 * initial_sum[rname]:
                        # Catastrophic cancellation: the running
                        # difference is float residue, not the surviving
                        # users' true demand (which may be far smaller).
                        # Re-sum exactly over the remaining users.
                        demand_sum[rname] = sum(
                            active[u].weight * demand_of[u][rname]
                            for u in users_of[rname])

    utilization = {}
    capacity_of = {}
    used_on: Dict[str, float] = {r.name: 0.0 for r in resources}
    for path in paths:
        for rname, units in demand_of[path.name].items():
            used_on[rname] += units * rates[path.name]
    for resource in resources:
        utilization[resource.name] = min(
            1.0, used_on[resource.name] / resource.capacity)
        capacity_of[resource.name] = resource.capacity
    return SolveResult(rates_pps=rates, bottleneck_of=frozen,
                       utilization=utilization, capacity_of=capacity_of)


#: Residual pools never drop below this fraction of their configured
#: capacity: a fully saturated background still leaves the foreground a
#: sliver (the DES needs positive link bandwidths / CPU shares, and a
#: real scheduler never hands one class literally everything).
RESIDUAL_FLOOR_FRACTION = 0.01


def residual_resources(
    background: Sequence[FlowPath],
    floor_fraction: float = RESIDUAL_FLOOR_FRACTION,
) -> Dict[str, Resource]:
    """Solve the background and return each pool at its *residual* size.

    This is the fluid half of the hybrid simulation: every background
    tenant's traffic enters as a :class:`FlowPath`, the solver fills the
    shared pools, and the returned :class:`Resource` objects -- same
    names, reduced capacities -- are what the foreground (per-packet
    DES) flows under study should be capacity-limited by.
    """
    if not 0 < floor_fraction <= 1:
        raise ValueError("floor_fraction must be in (0, 1]")
    result = solve(background)
    residual: Dict[str, Resource] = {}
    for name, capacity in result.capacity_of.items():
        left = max(result.residual_of(name), floor_fraction * capacity)
        residual[name] = Resource(name, left)
    return residual


def solve_with_background(
    foreground: Sequence[FlowPath],
    background: Sequence[FlowPath],
) -> SolveResult:
    """Max-min rates of the *foreground* flows with the background
    present: one joint progressive fill (the correct max-min semantics
    -- background flows freeze at their offered caps like any other),
    with the result filtered down to the foreground flows.  Utilization
    and capacities keep the full picture so bottleneck/residual queries
    still see the background's share.
    """
    fg_names = {p.name for p in foreground}
    overlap = fg_names & {p.name for p in background}
    if overlap:
        raise ValueError(
            f"flows in both foreground and background: {sorted(overlap)}")
    joint = solve(list(foreground) + list(background))
    return SolveResult(
        rates_pps={n: r for n, r in joint.rates_pps.items()
                   if n in fg_names},
        bottleneck_of={n: b for n, b in joint.bottleneck_of.items()
                       if n in fg_names},
        utilization=joint.utilization,
        capacity_of=joint.capacity_of,
    )
