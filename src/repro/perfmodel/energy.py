"""CPU energy model for virtual networking (§4.3's cost claim).

"although user-space packet processing using DPDK offers high
throughput, it is expensive (physical CPU and energy costs)."  The
mechanism: a DPDK PMD busy-polls its core at 100% regardless of load,
while an interrupt-driven kernel datapath draws power proportional to
utilization.  We model per-core power as

    watts = idle + (peak - idle) x utilization

over *physical* cores: shared-mode MTS stacks several compartments on
one core (their utilizations add up on it), and the Baseline's first
kernel forwarding context lives on the host core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.deployment import Deployment
from repro.core.spec import TrafficScenario
from repro.perfmodel.paths import throughput


@dataclass(frozen=True)
class PowerModel:
    """Per-core draw of a 2.1 GHz Broadwell-class server core."""

    idle_watts: float = 4.0
    peak_watts: float = 15.0

    def core_watts(self, utilization: float) -> float:
        if not 0.0 <= utilization <= 1.0:
            raise ValueError(f"utilization out of range: {utilization}")
        return self.idle_watts + (self.peak_watts - self.idle_watts) * utilization


@dataclass
class EnergyReport:
    label: str
    offered_pps: float
    networking_watts: float
    networking_cores: int
    core_utilization: Dict[int, float]

    @property
    def watts_per_mpps(self) -> float:
        if self.offered_pps <= 0:
            return float("inf")
        return self.networking_watts / (self.offered_pps / 1e6)

    def row(self) -> str:
        return (f"{self.label:<16} {self.networking_watts:6.1f} W over "
                f"{self.networking_cores} cores "
                f"({self.watts_per_mpps:6.1f} W/Mpps)")


def energy_report(
    deployment: Deployment,
    scenario: TrafficScenario,
    offered_pps: float,
    power: PowerModel = PowerModel(),
    frame_bytes: int = 64,
) -> EnergyReport:
    """Networking power at a given aggregate offered load.

    Each datapath's demand fraction comes from the capacity model
    (``offered_share / achievable rate``, clamped at saturation); a
    compute share's contribution to its *physical* core is that
    fraction of the share's slice.  DPDK PMDs busy-poll: they pin
    their core at 1.0 whatever the load.
    """
    spec = deployment.spec
    saturation = throughput(deployment, scenario, frame_bytes=frame_bytes)

    #: physical core id -> utilization (0..1)
    core_loads: Dict[int, float] = {}
    host_core_id = deployment.server.cores.host_core.core_id
    core_loads[host_core_id] = 0.0  # always in the networking budget

    for bridge in deployment.bridges:
        tenants = bridge.table.tenants()
        if spec.level.is_mts:
            share_of_load = offered_pps * len(tenants) / max(1, spec.num_tenants)
            capacity = sum(saturation.rates_pps[f"flow-t{t}"] for t in tenants)
        else:
            share_of_load = offered_pps
            capacity = saturation.aggregate_pps
        demand_fraction = (min(1.0, share_of_load / capacity)
                           if capacity > 0 else 1.0)
        for compute in bridge.compute_shares:
            core = compute.core
            slice_fraction = 1.0 / compute.sharers
            if spec.user_space:
                contribution = slice_fraction  # busy-poll, load-independent
            else:
                contribution = demand_fraction * slice_fraction
            core_loads[core.core_id] = min(
                1.0, core_loads.get(core.core_id, 0.0) + contribution)

    watts = sum(power.core_watts(load) for load in core_loads.values())
    return EnergyReport(
        label=spec.label,
        offered_pps=offered_pps,
        networking_watts=watts,
        networking_cores=len(core_loads),
        core_utilization=dict(core_loads),
    )
