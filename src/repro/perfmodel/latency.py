"""Analytic one-way latency estimate (unloaded path).

Composes the same per-hop components the discrete-event simulation
charges, using their means:

- wire serialization + propagation on both measurement links;
- NIC traversals: VEB cut-through latency per switching decision plus a
  PCIe DMA per VF endpoint crossing;
- vswitch passes: service time, the kernel interrupt latency or the
  DPDK drain jitter mean, and shared-core scheduling wait;
- tenant hops: l2fwd poll/drain (MTS) or vhost crossings + Linux
  bridge (Baseline).

Used by the workload models for base RTT and by integration tests as a
cross-check against the DES (they must agree within jitter tolerance --
the two implementations share constants but not code paths).
"""

from __future__ import annotations

from repro.core.deployment import Deployment
from repro.core.spec import TrafficScenario
from repro.perfmodel.paths import (
    _MTS_HAIRPINS,
    _MTS_PCIE_CROSSINGS,
    _tenant_chain,
    passes_for_flow,
)
from repro.sriov.nic import VEB_LATENCY
from repro.units import GBPS
from repro.vswitch.datapath import DatapathMode
from repro.vswitch.l2fwd import DRAIN_INTERVAL, L2FWD_CYCLES
from repro.vswitch.linux_bridge import LINUX_BRIDGE_CYCLES, LINUX_BRIDGE_LATENCY


def estimate_oneway_latency(
    deployment: Deployment,
    scenario: TrafficScenario,
    frame_bytes: int = 64,
    tenant_id: int = 0,
    link_bandwidth_bps: float = 10 * GBPS,
) -> float:
    """Mean one-way latency of one packet at negligible load, in seconds."""
    spec = deployment.spec
    cal = deployment.calibration
    costs = cal.dpdk_costs if spec.user_space else cal.kernel_costs

    wire_time = (frame_bytes + 20) * 8.0 / link_bandwidth_bps
    total = 2 * (wire_time + cal.wire_propagation)

    # vswitch passes
    for prof in passes_for_flow(deployment, scenario, tenant_id):
        bridge = deployment.bridges[prof.bridge_index]
        cycles = costs.pass_cycles(prof.in_class, prof.out_class,
                                   prof.rewrites,
                                   num_ports=len(bridge.ports()))
        cycles += prof.vhost_crossings * frame_bytes * cal.vhost_cycles_per_byte
        shares = bridge.compute_shares
        share = shares[0]
        total += cycles / share.effective_hz()
        if bridge.mode is DatapathMode.KERNEL:
            # fixed interrupt latency + its modelled jitter mean
            total += costs.fixed_latency * 1.125
        else:
            total += costs.drain_jitter / 2.0
        if share.sharers > 1:
            total += (share.sharers - 1) * costs.sched_slice / 2.0

    # NIC / vhost segments
    if spec.level.is_mts:
        veb_traversals = 2 + _MTS_HAIRPINS[scenario]
        pcie_crossings = _MTS_PCIE_CROSSINGS[scenario]
        total += veb_traversals * VEB_LATENCY
        per_crossing = deployment.server.nic.pcie.transfer_time(0) \
            + frame_bytes * 8.0 / deployment.server.nic.pcie.effective_bandwidth_bps()
        total += pcie_crossings * per_crossing
        for _ in _tenant_chain(deployment, scenario, tenant_id):
            total += L2FWD_CYCLES / cal.cpu_freq_hz + DRAIN_INTERVAL / 2.0
    else:
        vhost_lat = (cal.vhost_user_latency if spec.user_space
                     else cal.vhost_latency)
        for _ in _tenant_chain(deployment, scenario, tenant_id):
            total += 2 * vhost_lat
            if spec.user_space:
                total += L2FWD_CYCLES / cal.cpu_freq_hz + DRAIN_INTERVAL / 2.0
            else:
                total += (LINUX_BRIDGE_LATENCY
                          + LINUX_BRIDGE_CYCLES / cal.cpu_freq_hz)
    return total


def estimate_rtt(deployment: Deployment, scenario: TrafficScenario,
                 request_bytes: int = 128, response_bytes: int = 1500) -> float:
    """Round-trip estimate for request/response workloads (Fig. 6)."""
    forward = estimate_oneway_latency(deployment, scenario, request_bytes)
    backward = estimate_oneway_latency(deployment, scenario, response_bytes)
    return forward + backward
