"""Declarative fault injection and watchdog-driven self-healing.

``repro.faults`` turns "what breaks, when, and how it comes back" into
data: a :class:`FaultPlan` is a hash-stable, JSON-round-trippable
campaign of :class:`FaultSpec` entries that rides on a
:class:`~repro.scenario.spec.ScenarioSpec` (so cached results are keyed
by the campaign too).  At run time an
:class:`~repro.faults.injector.Injector` applies the faults through
sim-kernel events, a :class:`~repro.faults.watchdog.Watchdog` measures
detection latency, and a :class:`~repro.faults.supervisor.Supervisor`
restarts or fails over the victim under an explicit policy -- all
stitched together by a :class:`~repro.faults.session.ChaosSession`.

Only the declarative layer is imported eagerly; the runtime pieces
(session, injector, campaign) pull in the deployment stack and are
imported on first use.
"""

from repro.faults.log import ChaosLog, FaultEvent, PHASES
from repro.faults.plan import (FaultKind, FaultPlan, FaultSpec,
                               OUTAGE_KINDS, RestartPolicySpec,
                               scripted_crash)

__all__ = [
    "ChaosLog",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "OUTAGE_KINDS",
    "PHASES",
    "RestartPolicySpec",
    "scripted_crash",
]
