"""The ``ext.chaos`` workload: blast radius and MTTR under a campaign.

Runs one fault plan against one deployment and reports what the paper's
availability argument predicts: a Baseline vswitch crash blacks out
*every* tenant until the supervisor brings the single shared bridge
back, while a Level-2 compartment crash takes down only the crashed
compartment's tenants -- and with warm standby the outage shrinks to
detection + failover.

The workload is chaos-aware: it claims the engine's chaos context (so
the harness hook does not arm a second session) and manages its own
:class:`~repro.faults.session.ChaosSession`, which lets it report
outage-window availability per tenant on top of the session's summary.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.deployment import build_deployment
from repro.core.levels import ResourceMode, SecurityLevel
from repro.core.spec import DeploymentSpec, TrafficScenario
from repro.faults.plan import FaultPlan, scripted_crash
from repro.faults.session import ChaosSession
from repro.measure.reporting import Series, Table
from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.scenario.spec import ScenarioResult, ScenarioSpec
from repro.traffic.harness import TestbedHarness
from repro.units import KPPS

WORKLOAD = "ext.chaos"

RATE_PER_TENANT = 5 * KPPS

#: A tenant is "down" when it delivered under 1% of the offered load
#: over the outage window (mirrors the fault-isolation experiment).
DOWN_THRESHOLD = 0.01


def default_plan(duration: float, crash_index: int = 0,
                 warm_standby: bool = False) -> FaultPlan:
    """Crash one vswitch a third of the way in; no scripted repair --
    the watchdog + supervisor must bring it back."""
    return scripted_crash(compartment=crash_index, at=duration / 3.0,
                          warm_standby=warm_standby)


def _merge_windows(windows: Sequence[Tuple[float, float]]
                   ) -> List[Tuple[float, float]]:
    merged: List[Tuple[float, float]] = []
    for t0, t1 in sorted(windows):
        if merged and t0 <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], t1))
        else:
            merged.append((t0, t1))
    return merged


def measure_scenario(spec: ScenarioSpec,
                     calibration: Calibration = DEFAULT_CALIBRATION
                     ) -> Dict[str, float]:
    """Engine entry point: run the spec's fault plan (or the default
    single-crash campaign) and report availability, blast radius and
    the session's inject/detect/recover accounting."""
    from repro.faults import runtime

    claimed_plan, _ = runtime.claim()  # keep the harness hook away
    plan = spec.faults or claimed_plan
    if plan is None or not plan.faults:
        plan = default_plan(spec.duration,
                            crash_index=int(spec.param("crash_index", 0)),
                            warm_standby=bool(spec.param("warm_standby", 0)))

    deployment = build_deployment(spec.deployment, spec.traffic,
                                  seed=spec.seed, calibration=calibration)
    harness = TestbedHarness(deployment)
    rate = float(spec.param("rate_pps", RATE_PER_TENANT))
    harness.configure_tenant_flows(rate_per_flow_pps=rate)

    session = ChaosSession(deployment, harness, plan, seed=spec.seed)
    session.arm(spec.duration)
    harness.run(duration=spec.duration, warmup=0.0)
    summary = session.finish()

    num_tenants = spec.deployment.num_tenants
    windows = _merge_windows(session.outage_windows())
    outage_len = sum(t1 - t0 for t0, t1 in windows)

    values: Dict[str, float] = dict(summary)
    tenants_down = 0
    for t in range(num_tenants):
        expected = rate * spec.duration
        full = (min(1.0, harness.sink.per_flow.get(t, 0) / expected)
                if expected > 0 else 0.0)
        values[f"avail:t{t}"] = full
        if outage_len > 0:
            got = sum(harness.monitor.delivered_in_window(t0, t1, flow_id=t)
                      for t0, t1 in windows)
            frac = min(1.0, got / (rate * outage_len))
        else:
            frac = 1.0
        values[f"outage:t{t}"] = frac
        if frac < DOWN_THRESHOLD:
            tenants_down += 1
    values["tenants_down"] = float(tenants_down)
    values["blast_radius"] = (tenants_down / num_tenants
                              if num_tenants else 0.0)
    values["outage_window"] = outage_len
    return values


def configurations() -> List[DeploymentSpec]:
    return [
        DeploymentSpec(level=SecurityLevel.BASELINE,
                       resource_mode=ResourceMode.SHARED),
        DeploymentSpec(level=SecurityLevel.LEVEL_1,
                       resource_mode=ResourceMode.SHARED),
        DeploymentSpec(level=SecurityLevel.LEVEL_2, num_vswitch_vms=2,
                       resource_mode=ResourceMode.SHARED),
        DeploymentSpec(level=SecurityLevel.LEVEL_2, num_vswitch_vms=4,
                       resource_mode=ResourceMode.ISOLATED),
    ]


def scenarios(duration: float = 0.15, seed: int = 0,
              crash_index: int = 0, warm_standby: bool = False,
              plan: Optional[FaultPlan] = None) -> List[ScenarioSpec]:
    """One chaos spec per configuration.  The plan rides on the spec,
    so results are cached (and invalidated) per campaign."""
    if plan is None:
        plan = default_plan(duration, crash_index=crash_index,
                            warm_standby=warm_standby)
    return [
        ScenarioSpec(workload=WORKLOAD, deployment=spec,
                     traffic=TrafficScenario.P2V, duration=duration,
                     seed=seed, label=spec.label, faults=plan)
        for spec in configurations()
    ]


def tabulate(results: Sequence[ScenarioResult]) -> Table:
    """Blast radius vs MTTR across security levels."""
    table = Table(
        title="Chaos: one vswitch crash, watchdog-supervised recovery "
              "(p2v; blast radius = fraction of tenants fully down)",
        fmt=lambda v: f"{v:.3f}",
    )
    for result in results:
        series = Series(label=result.label)
        series.add("blast", result.values.get("blast_radius", 0.0))
        series.add("down", result.values.get("tenants_down", 0.0))
        series.add("detect", result.values.get("detect_latency", 0.0))
        series.add("mttr", result.values.get("mttr", 0.0))
        series.add("outage", result.values.get("outage_window", 0.0))
        series.add("viol", result.values.get("violations", 0.0))
        table.add_series(series)
    return table


def run(duration: float = 0.15, seed: int = 0,
        warm_standby: bool = False) -> Table:
    from repro.experiments.runner import default_engine
    return tabulate(default_engine().run(
        scenarios(duration=duration, seed=seed,
                  warm_standby=warm_standby)))
