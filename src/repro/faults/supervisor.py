"""The supervisor: restart policy and recovery orchestration.

Once the watchdog reports a self-heal fault, the supervisor decides
*whether* and *when* the component comes back:

- **exponential backoff with jitter** -- attempt ``k`` waits
  ``backoff_base * backoff_factor**(k-1)``, jittered by a uniform
  ``+-backoff_jitter`` fraction drawn from a named RNG stream (so the
  schedule is a pure function of the scenario seed);
- **max-restart budget** -- after ``max_restarts`` attempts the target
  is abandoned with a ``give-up`` event;
- **circuit breaker** -- ``circuit_threshold`` consecutive re-failures
  within ``circuit_window`` of a recovery open the breaker: the
  supervisor stops restarting a component that is evidently
  crash-looping;
- **recovery orchestration** -- a restarted vswitch comes back *empty*:
  the controller must re-sync its flow tables (per-rule cost) and the
  tenants must re-learn ARP (per-entry cost) before forwarding resumes.
  With ``warm_standby`` a Level-2 compartment instead fails over to a
  pre-synced standby in ``failover_latency`` -- the per-tenant
  availability upgrade MTS's compartment model enables;
- **controller partition** -- re-sync cannot start while the controller
  is unreachable, so recovery completion is pushed past
  ``partitioned_until``.

The measured MTTR of a supervised recovery is therefore
``detection latency + backoff + restart + re-sync`` -- exactly the
decomposition the ``repro chaos`` table reports.
"""

from __future__ import annotations

import random

from repro.faults.plan import RestartPolicySpec
from repro.sim.kernel import Simulator


class Supervisor:
    """Watchdog-triggered restart/failover engine for one session."""

    def __init__(self, sim: Simulator, session, policy: RestartPolicySpec,
                 rng: random.Random, warm_standby: bool = False) -> None:
        self.sim = sim
        self.session = session
        self.policy = policy
        self.rng = rng
        self.warm_standby = warm_standby
        #: Controller unreachable until this simulated time (flow-table
        #: re-sync stalls; set by controller-partition faults).
        self.partitioned_until = 0.0

    # -- fault hooks -----------------------------------------------------

    def partition(self, until: float) -> None:
        self.partitioned_until = max(self.partitioned_until, until)

    def on_detect(self, state) -> None:
        """The watchdog observed ``state`` down; plan its recovery."""
        if state.circuit_open or state.gave_up:
            return
        now = self.sim.now
        policy = self.policy
        if state.quick_failures >= policy.circuit_threshold:
            state.circuit_open = True
            self.session.on_circuit_open(state)
            return
        if state.attempts >= policy.max_restarts:
            state.gave_up = True
            self.session.on_give_up(state)
            return
        state.attempts += 1
        attempt = state.attempts
        self.session.on_restart_attempt(state)

        if self.warm_standby and self.session.failover_capable(state):
            # Pre-synced standby: no backoff, no re-sync -- switch over.
            completion = now + policy.failover_latency
            self.sim.schedule(completion, self._complete, state,
                              "failover", attempt)
            return

        backoff = (policy.backoff_base
                   * policy.backoff_factor ** (attempt - 1))
        backoff *= 1.0 + policy.backoff_jitter * (2.0 * self.rng.random()
                                                  - 1.0)
        ready = now + backoff + policy.restart_latency
        # Flow-table re-sync needs the controller: stall while
        # partitioned, then pay the per-rule + per-ARP-entry cost.
        resync_start = max(ready, self.partitioned_until)
        completion = resync_start + self.session.resync_cost(state)
        self.sim.schedule(completion, self._complete, state,
                          "restart", attempt)

    def _complete(self, state, mode: str, attempt: int) -> None:
        if not state.down:
            return  # already repaired by a scripted clear
        self.session.on_recovered(state, mode=mode, attempt=attempt)
