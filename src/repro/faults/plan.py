"""Declarative fault campaigns: what breaks, when, and how healing works.

A :class:`FaultPlan` is to the chaos layer what a
:class:`~repro.scenario.spec.ScenarioSpec` is to the scenario engine: a
frozen, JSON-round-trippable description of *what to inject*, carried as
an optional field on the scenario spec so that the spec's content hash
-- and therefore the result cache -- distinguishes a run under failure
load from the same run without it.

Two scheduling styles per :class:`FaultSpec`:

- **scripted** (``at`` set): the fault fires at a fixed simulated time.
  With ``duration`` set the fault condition clears itself at
  ``at + duration`` (an operator-scripted repair, the legacy
  ``fault_isolation`` shape); with ``duration=None`` the component
  stays down until the supervisor heals it.
- **stochastic** (``mtbf``/``mttr`` set): failure times are exponential
  draws off a named :class:`~repro.sim.rng.RngStreams` stream, so the
  whole campaign is a pure function of the scenario seed.

Nothing in this module touches a deployment; it is imported by
``scenario.spec`` for (de)serialization and must stay dependency-light.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping, Optional, Tuple

from repro.errors import ValidationError


class FaultKind(Enum):
    """The fault taxonomy of the chaos layer."""

    #: A vswitch VM dies: every bridge port blackholes (frames DMA'd to
    #: its VFs land in dead rings) until repair.
    VSWITCH_CRASH = "vswitch-crash"
    #: An SR-IOV function resets: its rx ring drops frames until the
    #: function comes back.
    VF_RESET = "vf-reset"
    #: A physical link goes dark (optics pulled, switch port bounce).
    LINK_FLAP = "link-flap"
    #: A lossy burst: each frame on the target link is dropped with
    #: probability ``severity`` for ``duration`` seconds.
    PACKET_LOSS = "packet-loss"
    #: A corruption burst: frames are damaged in flight and fail the
    #: receiver's CRC check (counted separately from loss).
    PACKET_CORRUPT = "packet-corrupt"
    #: The SDN controller is unreachable: recovery re-sync stalls until
    #: the partition heals.
    CONTROLLER_PARTITION = "controller-partition"


#: Kinds that take a component *down* (watchdog-detectable outages), as
#: opposed to degradation bursts the heartbeat cannot see.
OUTAGE_KINDS = frozenset({
    FaultKind.VSWITCH_CRASH,
    FaultKind.VF_RESET,
    FaultKind.LINK_FLAP,
})


@dataclass(frozen=True)
class FaultSpec:
    """One fault: kind, target, schedule, and (optional) self-clearing.

    ``target`` is a string address resolved against the deployment at
    injection time: ``"compartment:K"`` (bridge / vswitch VM ``K``),
    ``"link:ingress"`` / ``"link:egress"`` (the harness wires),
    ``"vf:<name>"`` (an SR-IOV function by name), or ``"controller"``.
    """

    kind: FaultKind
    target: str = "compartment:0"
    #: Scripted injection time (simulated seconds from arming).
    at: Optional[float] = None
    #: Scripted clearance: the condition ends at ``at + duration``.
    #: ``None`` on an outage kind means the supervisor must heal it.
    duration: Optional[float] = None
    #: Stochastic: mean time between failures (exponential draws).
    mtbf: Optional[float] = None
    #: Stochastic: mean time to (operator-scripted) repair.  ``None``
    #: on an outage kind hands each occurrence to the supervisor.
    mttr: Optional[float] = None
    #: Drop/corruption probability for burst kinds, in (0, 1].
    severity: float = 1.0

    def __post_init__(self) -> None:
        if isinstance(self.kind, str):
            object.__setattr__(self, "kind", FaultKind(self.kind))
        if (self.at is None) == (self.mtbf is None):
            raise ValidationError(
                f"fault {self.kind.value} on {self.target}: exactly one "
                "of 'at' (scripted) or 'mtbf' (stochastic) must be set")
        if self.at is not None and self.at < 0:
            raise ValidationError("fault time 'at' must be >= 0")
        if self.duration is not None and self.duration <= 0:
            raise ValidationError("fault duration must be positive")
        if self.mtbf is not None and self.mtbf <= 0:
            raise ValidationError("mtbf must be positive")
        if self.mttr is not None and self.mttr <= 0:
            raise ValidationError("mttr must be positive")
        if not 0.0 < self.severity <= 1.0:
            raise ValidationError(
                f"severity must be in (0, 1], got {self.severity}")
        if self.kind not in OUTAGE_KINDS and self.self_heal:
            raise ValidationError(
                f"{self.kind.value} is a degradation burst the watchdog "
                "cannot detect; it needs an explicit duration (scripted) "
                "or mttr (stochastic)")

    @property
    def scripted(self) -> bool:
        return self.at is not None

    @property
    def self_heal(self) -> bool:
        """True when the supervisor (not the script) must repair it."""
        if self.scripted:
            return self.duration is None
        return self.mttr is None

    def to_dict(self) -> dict:
        return {
            "kind": self.kind.value,
            "target": self.target,
            "at": self.at,
            "duration": self.duration,
            "mtbf": self.mtbf,
            "mttr": self.mttr,
            "severity": self.severity,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultSpec":
        known = {"kind", "target", "at", "duration", "mtbf", "mttr",
                 "severity"}
        unknown = set(data) - known
        if unknown:
            raise ValidationError(f"unknown fault fields: {sorted(unknown)}")
        return cls(**dict(data))


@dataclass(frozen=True)
class RestartPolicySpec:
    """Supervisor knobs: backoff, budget, breaker, recovery costs.

    All times are simulated seconds.  The restart/re-sync constants are
    deliberately smaller than the orchestrator's cold
    :data:`~repro.core.orchestrator.VSWITCH_RESTART_LATENCY` (1.5 s):
    the supervisor models a hot respawn from a pre-booted image, the
    orchestrator a full VM reboot.
    """

    #: First-restart delay; attempt ``k`` waits ``base * factor**(k-1)``.
    backoff_base: float = 0.005
    backoff_factor: float = 2.0
    #: Uniform jitter fraction on each backoff (+-jitter * delay).
    backoff_jitter: float = 0.2
    #: Total restarts the supervisor may spend per target.
    max_restarts: int = 5
    #: Process/VM respawn time once the backoff expires.
    restart_latency: float = 0.02
    #: Flow-table re-sync: per installed rule.
    resync_per_rule: float = 0.0001
    #: ARP re-learning: per tenant entry re-announced.
    arp_relearn_per_entry: float = 0.0002
    #: Warm-standby switchover time (Level-2 compartments).
    failover_latency: float = 0.005
    #: Consecutive quick re-failures before the breaker opens.
    circuit_threshold: int = 3
    #: A re-failure within this window of a recovery counts as "quick".
    circuit_window: float = 0.02

    def to_dict(self) -> dict:
        return {
            "backoff_base": self.backoff_base,
            "backoff_factor": self.backoff_factor,
            "backoff_jitter": self.backoff_jitter,
            "max_restarts": self.max_restarts,
            "restart_latency": self.restart_latency,
            "resync_per_rule": self.resync_per_rule,
            "arp_relearn_per_entry": self.arp_relearn_per_entry,
            "failover_latency": self.failover_latency,
            "circuit_threshold": self.circuit_threshold,
            "circuit_window": self.circuit_window,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RestartPolicySpec":
        known = set(cls().to_dict())
        unknown = set(data) - known
        if unknown:
            raise ValidationError(
                f"unknown restart-policy fields: {sorted(unknown)}")
        return cls(**dict(data))


@dataclass(frozen=True)
class FaultPlan:
    """A whole campaign: the faults plus detection/healing parameters."""

    faults: Tuple[FaultSpec, ...] = ()
    #: Watchdog probe interval (detection latency is bounded by this).
    heartbeat: float = 0.005
    policy: RestartPolicySpec = field(default_factory=RestartPolicySpec)
    #: Level-2 compartments fail over to a warm standby instead of a
    #: cold restart (the per-tenant availability upgrade of §3.2).
    warm_standby: bool = False
    #: Stop stochastic injection after this long; ``None`` = the run's
    #: duration, supplied when the session arms.
    horizon: Optional[float] = None

    def __post_init__(self) -> None:
        faults = tuple(
            f if isinstance(f, FaultSpec) else FaultSpec.from_dict(f)
            for f in self.faults)
        object.__setattr__(self, "faults", faults)
        if isinstance(self.policy, Mapping):
            object.__setattr__(
                self, "policy", RestartPolicySpec.from_dict(self.policy))
        if self.heartbeat <= 0:
            raise ValidationError("heartbeat must be positive")

    def to_dict(self) -> dict:
        return {
            "faults": [f.to_dict() for f in self.faults],
            "heartbeat": self.heartbeat,
            "policy": self.policy.to_dict(),
            "warm_standby": self.warm_standby,
            "horizon": self.horizon,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultPlan":
        known = {"faults", "heartbeat", "policy", "warm_standby", "horizon"}
        unknown = set(data) - known
        if unknown:
            raise ValidationError(f"unknown plan fields: {sorted(unknown)}")
        kwargs = dict(data)
        kwargs["faults"] = tuple(
            FaultSpec.from_dict(f) for f in kwargs.get("faults", ()))
        if "policy" in kwargs:
            kwargs["policy"] = RestartPolicySpec.from_dict(kwargs["policy"])
        return cls(**kwargs)


def scripted_crash(compartment: int = 0, at: float = 0.05,
                   duration: Optional[float] = None,
                   **plan_kwargs) -> FaultPlan:
    """The canonical single-crash campaign: compartment ``compartment``
    dies at ``at``; scripted repair after ``duration``, or
    supervisor-healed when ``duration`` is ``None``."""
    return FaultPlan(faults=(FaultSpec(
        kind=FaultKind.VSWITCH_CRASH, target=f"compartment:{compartment}",
        at=at, duration=duration),), **plan_kwargs)
