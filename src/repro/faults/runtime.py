"""Per-scenario chaos context: how a FaultPlan reaches the harness.

The scenario engine resolves a workload function and calls it; the
workload builds a deployment and a :class:`TestbedHarness` and runs it.
Neither the engine nor the harness knows about the other's objects, so
the plan travels through this module-level context instead:

1. :func:`repro.scenario.engine.run_scenario` calls :func:`activate`
   with the spec's (possibly ``None``) plan and seed before invoking
   the workload, and :func:`deactivate` after;
2. ``TestbedHarness.run`` calls :func:`attach_active_session` -- if a
   plan is present and unclaimed, a :class:`ChaosSession` is built
   around the harness and armed for the run;
3. the session publishes its event log here, and ``run_scenario``
   drains it into the :class:`ScenarioResult`.

Chaos-aware workloads (``ext.chaos``, ``ext.fault-isolation``) manage
their own session; they call :func:`claim` first so the harness hook
stays out of the way.

Everything is plain module state (no threads in the DES), reset by the
engine around every scenario; a workload run outside the engine simply
sees no active context and runs fault-free.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class _Context:
    """The chaos state of one in-flight scenario."""

    __slots__ = ("plan", "seed", "claimed", "events")

    def __init__(self, plan, seed: int) -> None:
        self.plan = plan
        self.seed = seed
        self.claimed = False
        self.events: List[dict] = []


_active: Optional[_Context] = None

#: Outstanding tenant-lifecycle operations (migrations, drains, churn
#: scripts) that will rewire the mediation chain mid-run.  Held by the
#: control plane / orchestrator between scheduling a transition and its
#: completion; consulted by :func:`chaos_pending` so the batched fast
#: path never pre-cuts a burst across a lifecycle instant.
_lifecycle_holds: int = 0


def activate(plan, seed: int) -> _Context:
    """Install the chaos context for the scenario about to run.  The
    plan may be ``None`` (fault-free run); activating anyway keeps the
    engine's control flow uniform."""
    global _active, _lifecycle_holds
    _active = _Context(plan, seed)
    # A scenario boundary starts with a clean slate: a hold leaked past
    # the previous workload (e.g. a migration completing after its
    # run's horizon) must not force this scenario onto the oracle path.
    _lifecycle_holds = 0
    return _active


def lifecycle_begin(n: int = 1) -> None:
    """Register ``n`` pending lifecycle transitions (migration, drain,
    scripted churn).  Must be balanced by :func:`lifecycle_end`."""
    global _lifecycle_holds
    _lifecycle_holds += n


def lifecycle_end(n: int = 1) -> None:
    """Release ``n`` holds registered by :func:`lifecycle_begin`."""
    global _lifecycle_holds
    _lifecycle_holds = max(0, _lifecycle_holds - n)


def lifecycle_pending() -> bool:
    """Whether any lifecycle transition is scheduled or in flight."""
    return _lifecycle_holds > 0


def deactivate(ctx: Optional[_Context] = None) -> None:
    """Tear the context down (engine ``finally`` path)."""
    global _active
    if ctx is None or _active is ctx:
        _active = None


def active_plan():
    """The unclaimed plan of the in-flight scenario, or ``None``."""
    if _active is None or _active.claimed:
        return None
    return _active.plan


def chaos_pending() -> bool:
    """Whether the in-flight scenario carries faults at all -- claimed
    or not -- or a tenant-lifecycle transition (migration, drain) is
    pending.  Fast-path route fusing keys off this: fused routes assume
    the mediation chain's wiring is stable for the run, which a fault
    plan (bridge crashes, restarts) or a live migration violates."""
    if _lifecycle_holds > 0:
        return True
    return (_active is not None and _active.plan is not None
            and bool(_active.plan.faults))


def claim() -> Tuple[Optional[object], Optional[int]]:
    """Take ownership of the context (chaos-aware workloads): the
    harness hook will no longer auto-attach.  Returns ``(plan, seed)``,
    both ``None`` when no context is active."""
    if _active is None:
        return None, None
    _active.claimed = True
    return _active.plan, _active.seed


def publish(events: List[dict]) -> None:
    """Append a session's event dicts to the context (no-op without
    one, e.g. a harness run outside the engine)."""
    if _active is not None:
        _active.events.extend(events)


def drain() -> List[dict]:
    """All events published so far, clearing the buffer."""
    if _active is None:
        return []
    events = _active.events
    _active.events = []
    return events


def attach_active_session(harness, horizon: float):
    """Harness hook: build and arm a :class:`ChaosSession` for this run
    when an unclaimed plan with faults is active.  Returns the session
    (caller must ``finish()`` it after the run) or ``None``."""
    if _active is None or _active.claimed:
        return None
    plan = _active.plan
    if plan is None or not plan.faults:
        return None
    _active.claimed = True
    from repro.faults.session import ChaosSession
    session = ChaosSession(harness.deployment, harness, plan,
                           seed=_active.seed or 0)
    session.arm(horizon)
    return session
