"""Sim-time heartbeat watchdog: how long until an outage is *noticed*.

Real control planes do not learn of a dead vswitch instantly; they poll
(or miss keepalives) on a period.  The watchdog models exactly that: a
single probe loop every ``heartbeat`` seconds walks all monitored
targets in sorted order and reports the first probe at which a target
is observed down.  Detection latency is therefore bounded by the
heartbeat -- and is *measured*, not assumed, which is what the
fault-isolation experiment's phase accounting now uses.

Probes are read-only: they inspect component health flags and never
touch the dataplane, so enabling the watchdog cannot change delivered
packet counts (the byte-compatibility guarantee of the legacy
fault-isolation table).
"""

from __future__ import annotations

from repro.sim.kernel import Simulator


class Watchdog:
    """Periodic health prober over a chaos session's targets."""

    def __init__(self, sim: Simulator, session, heartbeat: float) -> None:
        self.sim = sim
        self.session = session
        self.heartbeat = heartbeat
        self.probes = 0
        self._deadline = 0.0

    def start(self, horizon: float) -> None:
        """Begin probing; the loop re-arms itself until ``horizon``."""
        self._deadline = self.sim.now + horizon
        self.sim.schedule(self.sim.now + self.heartbeat, self._probe)

    def _probe(self) -> None:
        self.probes += 1
        now = self.sim.now
        # Sorted order makes same-probe multi-detections deterministic.
        for name in sorted(self.session.states):
            state = self.session.states[name]
            if state.down and not state.observed_down:
                state.observed_down = True
                self.session.on_detected(state,
                                         latency=now - state.down_since)
        next_t = now + self.heartbeat
        if next_t <= self._deadline:
            self.sim.schedule(next_t, self._probe)
