"""The chaos event log: one record per fault lifecycle transition.

Every inject -> detect -> recover (or clear / give-up / circuit-open)
transition lands here as a :class:`FaultEvent`.  The log is the
determinism contract of the chaos layer: the acceptance test serializes
it with :meth:`ChaosLog.jsonl` and asserts byte-identical output across
the sequential and process-pool backends, so events carry only
simulated times and plain floats -- never wall-clock stamps, object
ids, or anything process-dependent.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional


#: The lifecycle phases an event can record.
PHASES = ("inject", "detect", "recover", "clear", "give-up", "circuit-open")


@dataclass
class FaultEvent:
    """One transition in a fault's lifecycle."""

    #: Simulated time of the transition.
    t: float
    #: One of :data:`PHASES`.
    phase: str
    #: ``FaultKind.value`` of the fault involved.
    kind: str
    #: Resolved target address ("compartment:0", "link:ingress", ...).
    target: str
    #: Supervisor restart attempt (0 for scripted transitions).
    attempt: int = 0
    #: Extra numbers: detection latency, downtime, drop counts, ...
    detail: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "t": self.t,
            "phase": self.phase,
            "kind": self.kind,
            "target": self.target,
            "attempt": self.attempt,
            "detail": dict(self.detail),
        }


class ChaosLog:
    """Ordered event record of one chaos session."""

    def __init__(self) -> None:
        self.events: List[FaultEvent] = []

    def record(self, t: float, phase: str, kind: str, target: str,
               attempt: int = 0,
               detail: Optional[Dict[str, float]] = None) -> FaultEvent:
        event = FaultEvent(t=t, phase=phase, kind=kind, target=target,
                           attempt=attempt, detail=dict(detail or {}))
        self.events.append(event)
        return event

    def __len__(self) -> int:
        return len(self.events)

    def by_phase(self, phase: str) -> List[FaultEvent]:
        return [e for e in self.events if e.phase == phase]

    def to_dicts(self) -> List[dict]:
        return [e.to_dict() for e in self.events]

    def jsonl(self) -> str:
        """Canonical JSON-lines serialization (sorted keys, no
        whitespace): identical sessions produce identical bytes."""
        return "\n".join(
            json.dumps(d, sort_keys=True, separators=(",", ":"))
            for d in self.to_dicts())
