"""The fault injector: turns FaultSpecs into sim-kernel events.

Arming walks the plan once and schedules *all* injection (and scripted
clearance) events up front:

- **scripted** faults land at ``arm_time + at`` (and clear at
  ``at + duration`` when self-clearing);
- **stochastic** faults draw their entire occurrence sequence at arm
  time from a named RNG stream
  (``faults.<i>.<kind>.<target>``) -- exponential inter-failure gaps
  (mean ``mtbf``) and, when the fault is operator-repaired, exponential
  outage lengths (mean ``mttr``).  Drawing everything up front makes
  the schedule a pure function of the seed, independent of anything
  the dataplane does during the run.

Application is mechanical per kind:

==================== =====================================================
vswitch-crash        :func:`~repro.core.orchestrator.crash_bridge` (all
                     bridge ports blackhole; drops counted)
vf-reset             the VF's rx port drops frames until repair
link-flap            the link's ``send`` drops every frame
packet-loss/corrupt  ``send`` drops each frame with prob. ``severity``
controller-partition supervisor re-sync stalls until the partition heals
==================== =====================================================

Injecting into an already-down target is a counted no-op (stochastic
schedules can overlap an ongoing outage), never state corruption.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.core.orchestrator import crash_bridge, restore_bridge
from repro.errors import ConfigurationError
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec, OUTAGE_KINDS


class Injector:
    """Schedules and applies one plan's faults against one testbed."""

    def __init__(self, session) -> None:
        self.session = session
        self.sim = session.sim
        self.plan: FaultPlan = session.plan
        #: (kind, target) -> saved send callable of an active link burst.
        self._burst_saved: Dict[Tuple[str, str], Callable] = {}

    # -- arming ----------------------------------------------------------

    def arm(self, horizon: float) -> None:
        now0 = self.sim.now
        span = (self.plan.horizon if self.plan.horizon is not None
                else horizon)
        for i, fault in enumerate(self.plan.faults):
            self._resolve(fault)  # fail fast on bad targets, at arm time
            if fault.scripted:
                self.sim.schedule(now0 + fault.at, self._inject, i, fault)
                if fault.duration is not None:
                    self.sim.schedule(now0 + fault.at + fault.duration,
                                      self._clear, i, fault)
            else:
                self._arm_stochastic(i, fault, now0, now0 + span)

    def _arm_stochastic(self, i: int, fault: FaultSpec, now0: float,
                        deadline: float) -> None:
        stream = self.session.fault_stream(i, fault)
        t = now0 + stream.expovariate(1.0 / fault.mtbf)
        while t < deadline:
            self.sim.schedule(t, self._inject, i, fault)
            if fault.mttr is not None:
                outage = stream.expovariate(1.0 / fault.mttr)
                self.sim.schedule(t + outage, self._clear, i, fault)
                t += outage
            t += stream.expovariate(1.0 / fault.mtbf)

    # -- target resolution ----------------------------------------------

    def _resolve(self, fault: FaultSpec):
        """The live object behind a fault's target address."""
        target = fault.target
        d = self.session.deployment
        if target == "controller":
            if fault.kind is not FaultKind.CONTROLLER_PARTITION:
                raise ConfigurationError(
                    f"{fault.kind.value} cannot target the controller")
            return self.session.supervisor
        scheme, _, rest = target.partition(":")
        if scheme == "compartment":
            try:
                index = int(rest)
            except ValueError:
                raise ConfigurationError(f"bad compartment index {rest!r}")
            if not 0 <= index < len(d.bridges):
                raise ConfigurationError(
                    f"no compartment {index} (deployment has "
                    f"{len(d.bridges)} bridge(s))")
            return d.bridges[index]
        if scheme == "link":
            harness = self.session.harness
            if rest == "ingress":
                return harness.ingress_link
            if rest == "egress":
                return harness.egress_link
            raise ConfigurationError(
                f"unknown link {rest!r} (ingress/egress)")
        if scheme == "vf":
            for vf_map in (d.tenant_vf, d.gw_vf, d.inout_vf):
                for vf in vf_map.values():
                    if vf.name == rest:
                        return vf
            raise ConfigurationError(f"no VF named {rest!r}")
        raise ConfigurationError(f"unresolvable fault target {target!r}")

    # -- inject / clear --------------------------------------------------

    def _inject(self, i: int, fault: FaultSpec) -> None:
        obj = self._resolve(fault)
        kind = fault.kind
        session = self.session

        if kind is FaultKind.CONTROLLER_PARTITION:
            until = self.sim.now + fault.duration
            obj.partition(until)
            session.on_injected(fault, detail={"until": until})
            return

        if kind in OUTAGE_KINDS:
            state = session.state_for(fault)
            if state.down:
                session.on_noop("inject")
                return
            restore = self._take_down(kind, fault, obj)
            session.on_injected(fault, state=state, restore=restore,
                                obj=obj)
            return

        # Degradation bursts (scripted duration or stochastic mttr).
        key = (kind.value, fault.target)
        if key in self._burst_saved:
            session.on_noop("inject")
            return
        self._burst_saved[key] = self._start_burst(kind, fault, obj, i)
        session.on_injected(fault)

    def _clear(self, i: int, fault: FaultSpec) -> None:
        kind = fault.kind
        session = self.session
        if kind is FaultKind.CONTROLLER_PARTITION:
            session.on_cleared(fault)
            return
        if kind in OUTAGE_KINDS:
            state = session.state_for(fault)
            if not state.down:
                session.on_noop("clear")
                return
            session.on_scripted_clear(state)
            return
        key = (kind.value, fault.target)
        saved = self._burst_saved.pop(key, None)
        if saved is None:
            session.on_noop("clear")
            return
        link = self._resolve(fault)
        link.send = saved
        session.on_cleared(fault)

    # -- fault mechanics -------------------------------------------------

    def _take_down(self, kind: FaultKind, fault: FaultSpec, obj
                   ) -> Callable[[], None]:
        """Apply an outage; returns the callable that repairs it."""
        session = self.session
        if kind is FaultKind.VSWITCH_CRASH:
            crash_bridge(obj)
            return lambda: restore_bridge(obj)
        if kind is FaultKind.VF_RESET:
            port = obj.port.rx
            saved_handler = port._handler

            def _dead_ring(frame) -> None:
                session.count_fault_drop(fault.target)

            port.connect(_dead_ring)
            return lambda: port.connect(saved_handler)
        if kind is FaultKind.LINK_FLAP:
            saved_send = obj.send

            def _dark(frame, at: Optional[float] = None) -> float:
                session.count_fault_drop(fault.target)
                return at if at is not None else self.sim.now

            obj.send = _dark

            def _relight() -> None:
                obj.send = saved_send

            return _relight
        raise ConfigurationError(f"{kind.value} is not an outage kind")

    def _start_burst(self, kind: FaultKind, fault: FaultSpec, link,
                     i: int) -> Callable:
        """Wrap ``link.send`` with probabilistic loss; returns the saved
        send for :meth:`_clear` to restore."""
        saved_send = link.send
        stream = self.session.fault_stream(i, fault)
        severity = fault.severity
        session = self.session

        def _lossy(frame, at: Optional[float] = None) -> float:
            if stream.random() < severity:
                session.count_fault_drop(fault.target)
                return at if at is not None else self.sim.now
            return saved_send(frame, at=at)

        link.send = _lossy
        return saved_send
