"""ChaosSession: one fault campaign wired into one harness run.

The session is the stateful hub the stateless pieces hang off:

- the :class:`~repro.faults.injector.Injector` applies faults and calls
  back in (``on_injected`` / ``on_cleared`` / ``on_noop``);
- the :class:`~repro.faults.watchdog.Watchdog` probes target health and
  reports detections (``on_detected``);
- the :class:`~repro.faults.supervisor.Supervisor` plans recoveries and
  completes them (``on_recovered`` / ``on_give_up``).

Every transition lands in the session's :class:`ChaosLog` and in the
obs registry (inject/detect/recover counters, detection-latency and
downtime histograms, per-tenant delivered-fraction gauges), and
:meth:`finish` closes the books: packet conservation
(``offered == delivered + fault drops + component drops``), the
no-forwarding-while-crashed invariant (a crashed bridge's pass counter
must not advance), and the restart-budget invariant.  Violations are
*reported*, never silently swallowed -- the chaos fuzz tests assert the
count is zero.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.faults.injector import Injector
from repro.faults.log import ChaosLog
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.supervisor import Supervisor
from repro.faults.watchdog import Watchdog
from repro.obs.integrate import drop_totals
from repro.sim.rng import RngStreams


class TargetState:
    """Health and recovery bookkeeping of one fault target."""

    __slots__ = ("name", "spec", "down", "down_since", "observed_down",
                 "detected_at", "restore", "obj", "attempts",
                 "quick_failures", "last_recovered_at", "gave_up",
                 "circuit_open", "passes_at_inject")

    def __init__(self, name: str, spec: FaultSpec) -> None:
        self.name = name
        self.spec = spec
        self.down = False
        self.down_since = 0.0
        self.observed_down = False
        self.detected_at: Optional[float] = None
        self.restore: Optional[Callable[[], None]] = None
        self.obj = None
        self.attempts = 0
        self.quick_failures = 0
        self.last_recovered_at: Optional[float] = None
        self.gave_up = False
        self.circuit_open = False
        self.passes_at_inject: Optional[int] = None

    @property
    def is_compartment(self) -> bool:
        return self.name.startswith("compartment:")


class ChaosSession:
    """One plan, one deployment, one harness run."""

    def __init__(self, deployment, harness, plan: FaultPlan,
                 seed: int = 0) -> None:
        self.deployment = deployment
        self.harness = harness
        self.plan = plan
        self.sim = deployment.sim
        self.streams = RngStreams(seed)
        self.log = ChaosLog()
        self.states: Dict[str, TargetState] = {}
        #: target -> frames swallowed by an injected condition (VF dead
        #: rings, dark links, loss bursts); bridge blackhole drops are
        #: counted on the bridges themselves.
        self.fault_drops: Dict[str, int] = {}
        #: Completed and open outage records (dicts, mutated in place).
        self.outages: List[dict] = []
        self.violations: List[str] = []
        self.supervisor = Supervisor(
            self.sim, self, plan.policy,
            rng=self.streams.stream("faults.supervisor"),
            warm_standby=plan.warm_standby)
        self.watchdog = Watchdog(self.sim, self, plan.heartbeat)
        self.injector = Injector(self)
        self._horizon = 0.0
        self._armed_at = 0.0
        self._drops_base: Dict[str, float] = {}
        self._blackhole_base = 0
        self._finished: Optional[Dict[str, float]] = None

    # -- metric families --------------------------------------------------

    def _injected_counter(self):
        return obs.REGISTRY.counter(
            "faults_injected_total", "faults applied", labels=("kind",))

    def _detections_counter(self):
        return obs.REGISTRY.counter(
            "fault_detections_total", "watchdog detections",
            labels=("kind",))

    def _recoveries_counter(self):
        return obs.REGISTRY.counter(
            "fault_recoveries_total", "repairs completed", labels=("mode",))

    def _noop_counter(self):
        return obs.REGISTRY.counter(
            "fault_noop_operations_total",
            "redundant fault operations ignored", labels=("op",))

    # -- lifecycle --------------------------------------------------------

    def arm(self, horizon: float) -> None:
        """Snapshot baselines, schedule the plan, start the watchdog."""
        self._horizon = horizon
        self._armed_at = self.sim.now
        self._drops_base = drop_totals(self.deployment)
        self._blackhole_base = self._blackhole_drops()
        self.injector.arm(horizon)
        self.watchdog.start(horizon)

    def fault_stream(self, index: int, fault: FaultSpec):
        """The named RNG stream owning fault ``index``'s draws."""
        return self.streams.stream(
            f"faults.{index}.{fault.kind.value}.{fault.target}")

    def state_for(self, fault: FaultSpec) -> TargetState:
        state = self.states.get(fault.target)
        if state is None:
            state = TargetState(fault.target, fault)
            self.states[fault.target] = state
        return state

    def count_fault_drop(self, target: str) -> None:
        self.fault_drops[target] = self.fault_drops.get(target, 0) + 1

    def failover_capable(self, state: TargetState) -> bool:
        """Warm standby exists only for Level-2 compartments: a
        per-tenant standby vswitch VM is exactly what the monolithic
        Baseline/Level-1 switch cannot have."""
        from repro.core.levels import SecurityLevel
        return (state.is_compartment
                and self.deployment.spec.level is SecurityLevel.LEVEL_2)

    def _blackhole_drops(self) -> int:
        return sum(getattr(b, "fault_blackhole_drops", 0)
                   for b in self.deployment.bridges)

    # -- injector callbacks ----------------------------------------------

    def on_injected(self, fault: FaultSpec, state: Optional[TargetState]
                    = None, restore: Optional[Callable[[], None]] = None,
                    obj=None, detail: Optional[Dict[str, float]] = None
                    ) -> None:
        now = self.sim.now
        self._injected_counter().labels(kind=fault.kind.value).inc()
        if state is not None:
            state.down = True
            state.down_since = now
            state.observed_down = False
            state.detected_at = None
            state.restore = restore
            state.obj = obj
            state.passes_at_inject = getattr(obj, "passes", None)
            window = self.plan.policy.circuit_window
            if (state.last_recovered_at is not None
                    and now - state.last_recovered_at <= window):
                state.quick_failures += 1
            else:
                state.quick_failures = 0
            self.outages.append({
                "target": fault.target, "kind": fault.kind.value,
                "injected_at": now, "detected_at": None,
                "recovered_at": None, "mode": None, "attempt": 0,
            })
        self.log.record(now, "inject", fault.kind.value, fault.target,
                        detail=detail)

    def on_cleared(self, fault: FaultSpec) -> None:
        """A degradation burst or controller partition ended."""
        self.log.record(
            self.sim.now, "clear", fault.kind.value, fault.target,
            detail={"drops": float(self.fault_drops.get(fault.target, 0))})

    def on_noop(self, op: str) -> None:
        self._noop_counter().labels(op=op).inc()

    # -- watchdog callback -----------------------------------------------

    def on_detected(self, state: TargetState, latency: float) -> None:
        now = self.sim.now
        state.detected_at = now
        fault = state.spec
        self._detections_counter().labels(kind=fault.kind.value).inc()
        obs.REGISTRY.histogram(
            "fault_detection_latency_seconds",
            "inject -> watchdog detection").observe(latency)
        self._open_outage(state.name)["detected_at"] = now
        self.log.record(now, "detect", fault.kind.value, state.name,
                        attempt=state.attempts,
                        detail={"latency": latency})
        if fault.self_heal:
            self.supervisor.on_detect(state)

    # -- supervisor callbacks --------------------------------------------

    def on_restart_attempt(self, state: TargetState) -> None:
        obs.REGISTRY.counter("fault_restart_attempts_total",
                             "supervisor restarts started").inc()

    def on_give_up(self, state: TargetState) -> None:
        obs.REGISTRY.counter("fault_giveups_total",
                             "targets abandoned (budget spent)").inc()
        self.log.record(self.sim.now, "give-up", state.spec.kind.value,
                        state.name, attempt=state.attempts)

    def on_circuit_open(self, state: TargetState) -> None:
        obs.REGISTRY.counter("fault_circuit_open_total",
                             "circuit breakers opened").inc()
        self.log.record(self.sim.now, "circuit-open",
                        state.spec.kind.value, state.name,
                        attempt=state.attempts,
                        detail={"quick_failures":
                                float(state.quick_failures)})

    def on_recovered(self, state: TargetState, mode: str,
                     attempt: int) -> None:
        self._repair(state, phase="recover", mode=mode, attempt=attempt)

    def on_scripted_clear(self, state: TargetState) -> None:
        """A scripted (or drawn-MTTR) repair fired while down."""
        self._repair(state, phase="clear", mode="scripted", attempt=0)

    def _repair(self, state: TargetState, phase: str, mode: str,
                attempt: int) -> None:
        now = self.sim.now
        if state.restore is not None:
            state.restore()
        downtime = now - state.down_since
        detail: Dict[str, float] = {"downtime": downtime, "mode_is_" + mode: 1.0}
        if state.detected_at is not None:
            detail["detect_latency"] = state.detected_at - state.down_since
        # Invariant: a crashed component must not have forwarded.
        if state.passes_at_inject is not None:
            forwarded = getattr(state.obj, "passes", 0) - state.passes_at_inject
            if forwarded:
                self.violations.append(
                    f"{state.name} forwarded {forwarded} frames while down")
                detail["passes_while_down"] = float(forwarded)
        state.down = False
        state.observed_down = False
        state.restore = None
        state.last_recovered_at = now
        outage = self._open_outage(state.name)
        outage["recovered_at"] = now
        outage["mode"] = mode
        outage["attempt"] = attempt
        self._recoveries_counter().labels(mode=mode).inc()
        obs.REGISTRY.histogram("fault_downtime_seconds",
                               "inject -> recovery").observe(downtime)
        self.log.record(now, phase, state.spec.kind.value, state.name,
                        attempt=attempt, detail=detail)

    def _open_outage(self, target: str) -> dict:
        for outage in reversed(self.outages):
            if outage["target"] == target and outage["recovered_at"] is None:
                return outage
        return {"target": target, "detected_at": None,
                "recovered_at": None}  # defensive: never armed

    # -- recovery cost model ---------------------------------------------

    def resync_cost(self, state: TargetState) -> float:
        """Flow-table re-sync + ARP re-learning time for a cold restart
        of ``state``'s component (compartments only)."""
        if not state.is_compartment:
            return 0.0
        policy = self.plan.policy
        index = int(state.name.split(":", 1)[1])
        bridge = self.deployment.bridges[index]
        rules = sum(len(table) for table in bridge.tables.values())
        views = self.deployment.compartment_views
        if index < len(views):
            entries = len(views[index].tenants)
        else:  # Baseline / Level-1: one bridge serving every tenant
            entries = self.deployment.spec.num_tenants
        return (rules * policy.resync_per_rule
                + entries * policy.arp_relearn_per_entry)

    # -- windows & summary ------------------------------------------------

    def outage_windows(self) -> List[Tuple[float, float]]:
        """(start, end) of every outage; open outages end at the run
        horizon."""
        end_default = self._armed_at + self._horizon
        return [(o["injected_at"],
                 o["recovered_at"] if o["recovered_at"] is not None
                 else end_default)
                for o in self.outages if "injected_at" in o]

    def finish(self) -> Dict[str, float]:
        """Close the books: conservation, invariants, per-tenant gauges.
        Publishes the event log to the engine's chaos context and
        returns a flat summary (idempotent)."""
        if self._finished is not None:
            return self._finished
        lg = self.harness.lg
        sink = self.harness.sink
        offered = lg.sent
        delivered = sink.total
        blackhole = self._blackhole_drops() - self._blackhole_base
        wrapper = sum(self.fault_drops.values())
        fault_drops = blackhole + wrapper
        drops_now = drop_totals(self.deployment)
        component_drops = (sum(drops_now.values())
                           - sum(self._drops_base.values()))
        unaccounted = offered - delivered - fault_drops - component_drops
        if unaccounted:
            self.violations.append(
                f"conservation: {unaccounted} frames unaccounted "
                f"(offered {offered}, delivered {delivered}, fault drops "
                f"{fault_drops}, component drops {component_drops:.0f})")
        budget = self.plan.policy.max_restarts
        for state in self.states.values():
            if state.attempts > budget:
                self.violations.append(
                    f"{state.name}: {state.attempts} restarts exceed the "
                    f"budget of {budget}")

        gauge = obs.REGISTRY.gauge(
            "tenant_delivered_fraction",
            "per-tenant delivered fraction over the chaos run",
            labels=("tenant",))
        for flow in lg.flows:
            expected = flow.rate_pps * self._horizon
            got = sink.per_flow.get(flow.flow_id, 0)
            frac = min(1.0, got / expected) if expected > 0 else 0.0
            tenant = (flow.tenant_id if flow.tenant_id is not None
                      else flow.flow_id)
            gauge.labels(tenant=tenant).set(frac)

        detects = self.log.by_phase("detect")
        repairs = [e for e in self.log.events
                   if e.phase in ("recover", "clear")
                   and "downtime" in e.detail]
        recovers = self.log.by_phase("recover")
        summary: Dict[str, float] = {
            "injected": float(len(self.log.by_phase("inject"))),
            "detected": float(len(detects)),
            "recovered": float(len(recovers)),
            "repaired": float(len(repairs)),
            "giveups": float(len(self.log.by_phase("give-up"))),
            "restart_attempts": float(sum(s.attempts
                                          for s in self.states.values())),
            "detect_latency": (
                sum(e.detail["latency"] for e in detects) / len(detects)
                if detects else 0.0),
            "mttr": (sum(e.detail["downtime"] for e in repairs)
                     / len(repairs) if repairs else 0.0),
            "downtime_total": sum(e.detail["downtime"] for e in repairs),
            "offered": float(offered),
            "delivered": float(delivered),
            "fault_drops": float(fault_drops),
            "component_drops": float(component_drops),
            "unaccounted": float(unaccounted),
            "violations": float(len(self.violations)),
        }
        from repro.faults import runtime
        runtime.publish(self.log.to_dicts())
        self._finished = summary
        return summary
