"""Self-test workloads for the crash-tolerant pool backend.

These exist so the test suite (and an operator debugging a wedged
sweep) can make a pool worker die or hang *on purpose* and watch the
engine survive it.  Both are harmless when run in-process: the lethal
behavior triggers only inside a worker (``multiprocessing``'s parent
process is set), so the sequential fallback completes normally.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from typing import Dict

from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.scenario.spec import ScenarioSpec


def _in_worker() -> bool:
    return multiprocessing.parent_process() is not None


def measure_crashy(spec: ScenarioSpec,
                   calibration: Calibration = DEFAULT_CALIBRATION
                   ) -> Dict[str, float]:
    """Die (SIGKILL, as a real OOM kill would) when run in a pool
    worker; succeed when run in-process."""
    if _in_worker():
        os.kill(os.getpid(), signal.SIGKILL)
    return {"survived": 1.0}


def measure_sleepy(spec: ScenarioSpec,
                   calibration: Calibration = DEFAULT_CALIBRATION
                   ) -> Dict[str, float]:
    """Hang (wall-clock sleep) when run in a pool worker; return
    immediately in-process."""
    if _in_worker():
        time.sleep(float(spec.param("sleep", 5.0)))
    return {"slept": 0.0}
