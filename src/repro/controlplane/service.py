"""The resident control plane: a tenant-lifecycle service in sim time.

:class:`ControlPlane` runs *inside* the simulator as a first-class
workload: Poisson tenant arrivals walk the lifecycle state machine
(:mod:`repro.controlplane.lifecycle`), an admission controller leases
seats and sheds load when the pool is full
(:mod:`repro.controlplane.admission`), a PID autoscaler grows and
shrinks the vswitch-VM compartment pool
(:mod:`repro.controlplane.autoscaler`), and a watchdog heartbeat in the
``faults/`` idiom detects crashed compartments and live-migrates their
resident tenants onto healthy ones -- re-placed through
:func:`repro.fabric.placement.incremental_place` under the same
security constraints as the offline optimizer, with downtime and
re-sync cost priced by the PR 4 supervisor model.

The data plane is modeled at the fluid level (rates are constant
between events, so lazy accrual at every boundary is exact): each
placed tenant's demand is offered to the fabric and delivered while its
compartment is healthy, dropped while it is crashed, degraded or
migrating.  That makes three invariants *auditable* rather than
asserted: no tenant lost (every arrival is in exactly one live or
terminal state), no double placement (occupancy rebuilt from the
assignment matches the incremental books, and the full security
validator passes), and packet conservation (offered equals delivered
plus dropped for every tenant).

Everything stochastic draws from named :class:`~repro.sim.rng`
streams, so a churn trace is a pure function of ``(plan, seed)`` --
byte-identical across the sequential and process-pool backends.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro import obs
from repro.controlplane.admission import AdmissionController
from repro.controlplane.autoscaler import PoolAutoscaler
from repro.controlplane.lifecycle import (
    PLACED_STATES, TERMINAL_STATES, TenantRecord, TenantState)
from repro.controlplane.plan import ChurnPlan, CrashSpec
from repro.fabric.placement import (
    Placement, PlacementError, incremental_place, validate_placement)
from repro.fabric.topology import FabricTopology
from repro.sim import Simulator
from repro.sim.rng import RngStreams

Slot = Tuple[int, int]

#: Audit cadence in watchdog probes (a full audit is O(tenants)).
_AUDIT_EVERY = 100

#: Stop appending after this many violations (one is already a failed
#: run; an unbounded list only obscures the first cause).
_MAX_VIOLATIONS = 50


def _counter(name: str, help_: str, labels=()):
    return obs.REGISTRY.counter(name, help_, labels=labels)


def _gauge(name: str, help_: str):
    return obs.REGISTRY.gauge(name, help_)


class ControlPlane:
    """The resident orchestrator service (see module docstring)."""

    def __init__(self, plan: ChurnPlan, seed: int = 0,
                 sim: Optional[Simulator] = None) -> None:
        self.plan = plan
        self.sim = sim if sim is not None else Simulator()
        self.topology = FabricTopology(num_servers=plan.servers)
        self.rng = RngStreams(seed)
        self.records: Dict[int, TenantRecord] = {}
        #: tenant -> seat; committed at placement decision time (the
        #: seat is booked while the control ops run, so two in-flight
        #: placements can never race onto one seat).
        self.assignment: Dict[int, Slot] = {}
        self.occupants: Dict[Slot, List[int]] = {}
        self.comp_dedicated: Dict[Slot, bool] = {}
        self.open_slots: Set[Slot] = set()
        self.ready_at: Dict[Slot, float] = {}
        self.crashed: Dict[Slot, float] = {}
        self.detected: Set[Slot] = set()
        self.closing: Set[Slot] = set()
        self.admission = AdmissionController(
            self._pool_view, plan.tenants_per_compartment)
        self.autoscaler = PoolAutoscaler(
            plan.autoscale, max_pool_limit=plan.total_slots)
        self.events: List[dict] = []
        self.violations: List[str] = []
        # SLO accumulators (sum/count pairs for the values dict).
        self._admission_lat = [0.0, 0]
        self._migration_down = [0.0, 0]
        self._detect_lat = [0.0, 0]
        self.counts: Dict[str, int] = {
            "arrivals": 0, "departures": 0, "evictions": 0,
            "rejections": 0, "placements": 0, "placement_retries": 0,
            "migrations_started": 0, "migrations_completed": 0,
            "crashes": 0, "crashes_skipped": 0, "detections": 0,
            "repairs": 0, "scale_ups": 0, "scale_downs": 0,
            "scale_suppressed": 0,
        }
        self.recovery_seconds_total = 0.0
        self._next_id = 0
        self._probes = 0
        self._recurring: List[object] = []
        self._horizon = plan.duration
        # The initial pool, striped across servers.
        size = min(self.autoscaler.min_pool, plan.total_slots)
        for i in range(size):
            self.open_slots.add((i % plan.servers, i // plan.servers))

    # -- pool views -------------------------------------------------------

    def _healthy_open(self, now: Optional[float] = None) -> List[Slot]:
        now = self.sim.now if now is None else now
        return [s for s in sorted(self.open_slots)
                if s not in self.crashed and s not in self.closing
                and self.ready_at.get(s, 0.0) <= now]

    def _pool_view(self) -> Dict[Slot, Tuple[Optional[int], int]]:
        view: Dict[Slot, Tuple[Optional[int], int]] = {}
        for slot in self._healthy_open():
            residents = self.occupants.get(slot, [])
            if not residents:
                view[slot] = (None, 0)
            elif self.comp_dedicated.get(slot, False):
                # A dedicated seat fills its compartment for leasing.
                view[slot] = (self.records[residents[0]].req.group,
                              self.plan.tenants_per_compartment)
            else:
                view[slot] = (self.records[residents[0]].req.group,
                              len(residents))
        return view

    def _assigned_demand(self) -> float:
        return sum(self.records[t].req.demand_pps for t in self.assignment)

    # -- logging / accrual ------------------------------------------------

    def _log(self, kind: str, **kw) -> None:
        event = {"t": round(self.sim.now, 9), "kind": kind}
        event.update(kw)
        self.events.append(event)

    def _healthy(self, slot: Optional[Slot]) -> bool:
        return slot is not None and slot not in self.crashed

    def _accrue(self, rec: TenantRecord) -> None:
        rec.accrue(self.sim.now, self._healthy(rec.slot))

    def _violate(self, message: str) -> None:
        if len(self.violations) < _MAX_VIOLATIONS:
            self.violations.append(message)
        _counter("controlplane_invariant_violations_total",
                 "Lifecycle invariant violations detected by the audit",
                 ).inc()
        self._log("violation", message=message)

    # -- seats ------------------------------------------------------------

    def _book_seat(self, tid: int, slot: Slot) -> None:
        self.assignment[tid] = slot
        self.occupants.setdefault(slot, []).append(tid)
        if self.records[tid].req.isolation >= 2:
            self.comp_dedicated[slot] = True
        self.records[tid].slot = slot

    def _free_seat(self, tid: int) -> None:
        slot = self.assignment.pop(tid, None)
        rec = self.records[tid]
        rec.slot = None
        if slot is None:
            return
        residents = self.occupants.get(slot, [])
        if tid in residents:
            residents.remove(tid)
        if not residents:
            self.occupants.pop(slot, None)
            self.comp_dedicated.pop(slot, None)
            if slot in self.closing:
                self._finish_close(slot)

    # -- arrivals ---------------------------------------------------------

    def _schedule_next_arrival(self) -> None:
        if self.plan.arrival_rate <= 0:
            return
        gap = self.rng.stream("cp.arrivals").expovariate(
            self.plan.arrival_rate)
        if self.sim.now + gap > self.plan.duration:
            return
        self.sim.call_later(gap, self._arrive)

    def _arrive(self) -> None:
        now = self.sim.now
        mix = self.rng.stream("cp.mix")
        from repro.fabric.placement import TenantReq
        tid = self._next_id
        self._next_id += 1
        group = mix.randrange(self.plan.num_groups)
        dedicated = mix.random() < self.plan.dedicated_fraction
        spread = self.plan.demand_spread
        demand = self.plan.demand_pps * (1.0 + spread * (2 * mix.random() - 1))
        lifetime = self.rng.stream("cp.lifetimes").expovariate(
            1.0 / self.plan.mean_lifetime)
        req = TenantReq(tid, demand_pps=demand, group=group,
                        isolation=2 if dedicated else 1)
        rec = TenantRecord(req, requested_at=now, lifetime=lifetime,
                           last_accrued=now)
        self.records[tid] = rec
        self.counts["arrivals"] += 1
        _counter("controlplane_arrivals_total",
                 "Tenant arrival requests").inc()
        self._log("arrival", tenant=tid, group=group,
                  isolation=req.isolation, demand_pps=round(demand, 3))
        ok, reason = self.admission.try_admit(req, now)
        if not ok:
            rec.advance(TenantState.EVICTED, now, f"shed:{reason}")
            self.counts["rejections"] += 1
            _counter("controlplane_rejections_total",
                     "Arrivals shed by admission control",
                     labels=("reason",)).labels(reason=reason).inc()
            self._log("reject", tenant=tid, reason=reason)
        else:
            rec.advance(TenantState.ADMITTED, now, "lease-granted")
            self.sim.call_later(self.plan.admission.admit_latency,
                                self._begin_placing, tid, rec.epoch)
        self._schedule_next_arrival()

    def _begin_placing(self, tid: int, epoch: int) -> None:
        rec = self.records[tid]
        if rec.epoch != epoch or rec.state is not TenantState.ADMITTED:
            return
        rec.advance(TenantState.PLACING, self.sim.now, "lease-held")
        self._try_place(tid)

    def _placed_reqs(self, extra: Optional[int] = None) -> list:
        tids = sorted(self.assignment)
        if extra is not None and extra not in self.assignment:
            tids.append(extra)
        return [self.records[t].req for t in tids]

    def _try_place(self, tid: int) -> None:
        rec = self.records[tid]
        now = self.sim.now
        adm = self.plan.admission
        try:
            seat = incremental_place(
                self._placed_reqs(extra=tid),
                Placement(dict(self.assignment)),
                self.topology, self.plan.compartments_per_server,
                self.plan.tenants_per_compartment, [tid],
                open_slots=self._healthy_open())
        except PlacementError:
            rec.retries += 1
            self.counts["placement_retries"] += 1
            _counter("controlplane_placement_retries_total",
                     "Placement attempts that found no feasible slot").inc()
            if rec.retries > adm.max_retries:
                self.admission.release(tid)
                rec.advance(TenantState.EVICTED, now, "placement-failed")
                self._evicted(tid, "placement-failed")
                return
            delay = (adm.backoff_base
                     * adm.backoff_factor ** (rec.retries - 1))
            jitter = self.rng.stream("cp.backoff")
            delay *= 1.0 + adm.backoff_jitter * (2 * jitter.random() - 1)
            self.sim.call_later(delay, self._retry_place, tid, rec.epoch)
            return
        self._book_seat(tid, seat[tid])
        self.sim.call_later(adm.place_latency, self._activate, tid,
                            rec.epoch)

    def _retry_place(self, tid: int, epoch: int) -> None:
        rec = self.records[tid]
        if rec.epoch != epoch or rec.state is not TenantState.PLACING \
                or rec.slot is not None:
            return
        self._try_place(tid)

    def _activate(self, tid: int, epoch: int) -> None:
        rec = self.records[tid]
        if rec.epoch != epoch or rec.state is not TenantState.PLACING:
            return
        now = self.sim.now
        rec.advance(TenantState.ACTIVE, now, "placed")
        rec.last_accrued = now
        self.admission.release(tid)
        self.counts["placements"] += 1
        _counter("controlplane_placements_total",
                 "Tenants successfully placed and activated").inc()
        latency = now - rec.requested_at
        self._admission_lat[0] += latency
        self._admission_lat[1] += 1
        obs.REGISTRY.histogram(
            "controlplane_admission_latency_seconds",
            "Request-to-active latency").observe(latency)
        self._log("activate", tenant=tid,
                  slot=f"{rec.slot[0]}:{rec.slot[1]}",
                  latency=round(latency, 9))
        if not rec.departure_scheduled:
            rec.departure_scheduled = True
            self.sim.call_later(rec.lifetime, self._depart, tid)

    def _evicted(self, tid: int, reason: str) -> None:
        rec = self.records[tid]
        self._free_seat(tid)
        self.counts["evictions"] += 1
        _counter("controlplane_evictions_total",
                 "Tenants evicted (retries exhausted, no healthy slot)",
                 labels=("reason",)).labels(reason=reason).inc()
        self._log("evict", tenant=tid, reason=reason)

    # -- departures -------------------------------------------------------

    def _depart(self, tid: int) -> None:
        rec = self.records[tid]
        if rec.state in TERMINAL_STATES:
            return
        if rec.state not in (TenantState.ACTIVE, TenantState.DEGRADED,
                             TenantState.MIGRATING):
            return
        now = self.sim.now
        self._accrue(rec)
        rec.advance(TenantState.DRAINING, now, "departure")
        self.sim.call_later(self.plan.drain_latency, self._terminate,
                            tid, rec.epoch)

    def _terminate(self, tid: int, epoch: int) -> None:
        rec = self.records[tid]
        if rec.epoch != epoch or rec.state is not TenantState.DRAINING:
            return
        now = self.sim.now
        self._accrue(rec)
        rec.advance(TenantState.TERMINATED, now, "departed")
        self._free_seat(tid)
        self.counts["departures"] += 1
        _counter("controlplane_departures_total",
                 "Tenants that departed gracefully").inc()
        self._log("terminate", tenant=tid)

    # -- crashes / watchdog -----------------------------------------------

    def _resolve_crash_target(self, target: str) -> Optional[Slot]:
        healthy = self._healthy_open()
        if target != "auto":
            server, _, k = target.partition(":")
            slot = (int(server), int(k))
            return slot if slot in healthy else None
        loaded = sorted(
            healthy,
            key=lambda s: (-sum(self.records[t].req.demand_pps
                                for t in self.occupants.get(s, [])), s))
        return loaded[0] if loaded else None

    def _crash_event(self, spec: CrashSpec) -> None:
        slot = self._resolve_crash_target(spec.target)
        if slot is None:
            self.counts["crashes_skipped"] += 1
            self._log("crash-skipped", target=spec.target)
            return
        self._crash(slot, spec.repair_after)

    def _crash(self, slot: Slot, repair_after: Optional[float]) -> None:
        now = self.sim.now
        for tid in sorted(self.occupants.get(slot, [])):
            self._accrue(self.records[tid])
        self.crashed[slot] = now
        self.counts["crashes"] += 1
        _counter("controlplane_crashes_total",
                 "Compartment crashes injected").inc()
        self._log("crash", slot=f"{slot[0]}:{slot[1]}",
                  residents=len(self.occupants.get(slot, [])))
        if repair_after is not None:
            self.sim.call_later(repair_after, self._repair, slot)

    def _next_stochastic_crash(self) -> None:
        if self.plan.crash_mtbf is None:
            return
        gap = self.rng.stream("cp.crashes").expovariate(
            1.0 / self.plan.crash_mtbf)
        if self.sim.now + gap > self.plan.duration:
            return
        self.sim.call_later(gap, self._stochastic_crash)

    def _stochastic_crash(self) -> None:
        repair = None
        if self.plan.crash_mttr is not None:
            repair = self.rng.stream("cp.repairs").expovariate(
                1.0 / self.plan.crash_mttr)
        self._crash_event(CrashSpec(at=self.sim.now, target="auto",
                                    repair_after=repair))
        self._next_stochastic_crash()

    def _repair(self, slot: Slot) -> None:
        if slot not in self.crashed:
            return
        now = self.sim.now
        for tid in sorted(self.occupants.get(slot, [])):
            self._accrue(self.records[tid])
        del self.crashed[slot]
        self.detected.discard(slot)
        self.counts["repairs"] += 1
        _counter("controlplane_repairs_total",
                 "Compartments repaired (scripted or stochastic)").inc()
        self._log("repair", slot=f"{slot[0]}:{slot[1]}")
        # Residents the watchdog degraded but migration had not yet
        # rescued come straight back.
        for tid in sorted(self.occupants.get(slot, [])):
            rec = self.records[tid]
            if rec.state is TenantState.DEGRADED:
                rec.advance(TenantState.ACTIVE, now, "compartment-repaired")

    def _probe(self) -> None:
        now = self.sim.now
        for slot in sorted(self.crashed):
            if slot in self.detected:
                continue
            self.detected.add(slot)
            latency = now - self.crashed[slot]
            self.counts["detections"] += 1
            _counter("controlplane_detections_total",
                     "Watchdog detections of crashed compartments").inc()
            self._detect_lat[0] += latency
            self._detect_lat[1] += 1
            obs.REGISTRY.histogram(
                "controlplane_detect_latency_seconds",
                "Crash-to-detection latency").observe(latency)
            self._log("detect", slot=f"{slot[0]}:{slot[1]}",
                      latency=round(latency, 9))
            if self.occupants.get(slot):
                self._boot_replacement(slot)
            for tid in sorted(self.occupants.get(slot, [])):
                rec = self.records[tid]
                if rec.state is TenantState.ACTIVE:
                    self._accrue(rec)
                    rec.advance(TenantState.DEGRADED, now,
                                "compartment-failed")
                    self._start_migration(tid, "failover")
        self._probes += 1
        if self._probes % _AUDIT_EVERY == 0:
            self.audit()

    def _boot_replacement(self, crashed_slot: Slot) -> None:
        """Failover capacity: the pool lost a member with residents
        aboard, so boot a replacement *now* -- the migration retry
        budget is milliseconds (supervisor backoff) while the PID loop
        reacts in seconds, and self-healing must not lose that race.
        The boot/re-sync cost is billed to the crashed compartment's
        residents, per its recovery policy."""
        replacement = self._pick_open_slot()
        if replacement is None:
            return
        now = self.sim.now
        self.open_slots.add(replacement)
        self.ready_at[replacement] = \
            now + self.plan.autoscale.boot_resync_seconds
        self.counts["scale_ups"] += 1
        _counter("controlplane_scale_events_total",
                 "Autoscaler pool changes", labels=("direction",)
                 ).labels(direction="up").inc()
        residents = sorted(self.occupants.get(crashed_slot, []))
        share = self.plan.autoscale.boot_resync_seconds / len(residents)
        for tid in residents:
            self.records[tid].recovery_seconds += share
            self.recovery_seconds_total += share
        self._log("failover-boot", slot=f"{replacement[0]}:{replacement[1]}",
                  crashed=f"{crashed_slot[0]}:{crashed_slot[1]}")

    # -- migration --------------------------------------------------------

    def _start_migration(self, tid: int, reason: str) -> None:
        """Re-place ``tid`` on a healthy compartment and start the
        migration window; backs off and retries (bounded by the
        supervisor restart budget) when no slot is feasible."""
        rec = self.records[tid]
        now = self.sim.now
        try:
            seat = incremental_place(
                self._placed_reqs(extra=tid),
                Placement(dict(self.assignment)),
                self.topology, self.plan.compartments_per_server,
                self.plan.tenants_per_compartment, [tid],
                open_slots=self._healthy_open())
        except PlacementError:
            rec.migration_retries += 1
            if rec.migration_retries > self.plan.policy.max_restarts:
                self._accrue(rec)
                rec.advance(TenantState.EVICTED, now, "no-healthy-slot")
                self._evicted(tid, "no-healthy-slot")
                return
            policy = self.plan.policy
            delay = (policy.backoff_base
                     * policy.backoff_factor ** (rec.migration_retries - 1))
            jitter = self.rng.stream("cp.migrate-backoff")
            delay *= 1.0 + policy.backoff_jitter * (2 * jitter.random() - 1)
            self.sim.call_later(delay, self._retry_migration, tid,
                                rec.epoch, reason)
            return
        src = rec.slot
        self._accrue(rec)
        self._free_seat(tid)
        self._book_seat(tid, seat[tid])
        rec.advance(TenantState.MIGRATING, now, reason)
        rec.migrations_started += 1
        rec.migrate_started_at = now
        self.counts["migrations_started"] += 1
        _counter("controlplane_migrations_total",
                 "Live migrations started", labels=("reason",)
                 ).labels(reason=reason).inc()
        resync = self.plan.migration_resync_seconds()
        rec.recovery_seconds += resync
        self.recovery_seconds_total += resync
        self._log("migrate", tenant=tid, reason=reason,
                  src=f"{src[0]}:{src[1]}" if src else "none",
                  dst=f"{seat[tid][0]}:{seat[tid][1]}")
        self.sim.call_later(self.plan.migration_downtime(),
                            self._complete_migration, tid, rec.epoch)

    def _retry_migration(self, tid: int, epoch: int, reason: str) -> None:
        rec = self.records[tid]
        if rec.epoch != epoch or rec.state is not TenantState.DEGRADED:
            return
        self._start_migration(tid, reason)

    def _complete_migration(self, tid: int, epoch: int) -> None:
        rec = self.records[tid]
        if rec.epoch != epoch or rec.state is not TenantState.MIGRATING:
            return
        now = self.sim.now
        self._accrue(rec)
        rec.advance(TenantState.ACTIVE, now, "migrated")
        rec.migrations_completed += 1
        rec.migration_retries = 0
        rec.delivered_since_migration = 0.0
        rec.healthy_since_migration = 0.0
        downtime = now - (rec.migrate_started_at or now)
        self._migration_down[0] += downtime
        self._migration_down[1] += 1
        obs.REGISTRY.histogram(
            "controlplane_migration_downtime_seconds",
            "Per-tenant live-migration downtime").observe(downtime)
        self.counts["migrations_completed"] += 1
        _counter("controlplane_migrations_completed_total",
                 "Live migrations that completed").inc()
        self._log("migrated", tenant=tid,
                  slot=f"{rec.slot[0]}:{rec.slot[1]}",
                  downtime=round(downtime, 9))

    # -- autoscaler -------------------------------------------------------

    def _pool_size(self) -> int:
        """Open, un-crashed, not-closing compartments (booting count:
        capacity is committed even before the boot finishes)."""
        return len([s for s in self.open_slots
                    if s not in self.crashed and s not in self.closing])

    def _pick_open_slot(self) -> Optional[Slot]:
        per_server: Dict[int, int] = {}
        for s, _k in self.open_slots:
            per_server[s] = per_server.get(s, 0) + 1
        candidates = [
            (s, k) for s in range(self.plan.servers)
            for k in range(self.plan.compartments_per_server)
            if (s, k) not in self.open_slots]
        candidates.sort(key=lambda sk: (per_server.get(sk[0], 0), sk))
        return candidates[0] if candidates else None

    def _charge_autoscale(self, cost: float) -> None:
        """Bill a scale-up's boot/re-sync to the tenants of the hottest
        compartment -- the overload that triggered the growth."""
        loaded = sorted(
            ((sum(self.records[t].req.demand_pps for t in residents),
              slot, residents)
             for slot, residents in self.occupants.items() if residents),
            key=lambda e: (-e[0], e[1]))
        if not loaded:
            return
        _demand, _slot, residents = loaded[0]
        share = cost / len(residents)
        for tid in sorted(residents):
            self.records[tid].recovery_seconds += share
            self.recovery_seconds_total += share

    def _autoscale_tick(self) -> None:
        now = self.sim.now
        # Compartment load is whichever binds first: forwarding demand
        # or seat occupancy (expressed in capacity-equivalent pps, so
        # a seat-full pool at low pps still reads as loaded and the
        # autoscaler grows it instead of admission shedding forever).
        seat_equiv = (len(self.assignment)
                      / self.plan.tenants_per_compartment
                      * self.plan.autoscale.compartment_capacity_pps)
        demand = max(self._assigned_demand(), seat_equiv)
        pool = self._pool_size()
        decision = self.autoscaler.decide(now, demand, pool)
        _gauge("controlplane_pool_size",
               "Open vswitch-VM compartments").set(float(pool))
        _gauge("controlplane_pool_utilization",
               "Pool utilization against modeled capacity"
               ).set(decision.utilization)
        if decision.suppressed and decision.suppressed != "deadband":
            self.counts["scale_suppressed"] += 1
        if decision.delta > 0:
            for _ in range(decision.delta):
                slot = self._pick_open_slot()
                if slot is None:
                    break
                self.open_slots.add(slot)
                self.ready_at[slot] = now + \
                    self.plan.autoscale.boot_resync_seconds
                self.counts["scale_ups"] += 1
                _counter("controlplane_scale_events_total",
                         "Autoscaler pool changes", labels=("direction",)
                         ).labels(direction="up").inc()
                self._charge_autoscale(
                    self.plan.autoscale.boot_resync_seconds)
                self._log("scale-up", slot=f"{slot[0]}:{slot[1]}",
                          utilization=round(decision.utilization, 6))
        elif decision.delta < 0:
            for _ in range(-decision.delta):
                self._scale_down_one(decision.utilization)

    def _scale_down_one(self, utilization: float) -> None:
        now = self.sim.now
        candidates = sorted(
            self._healthy_open(),
            key=lambda s: (len(self.occupants.get(s, [])),
                           sum(self.records[t].req.demand_pps
                               for t in self.occupants.get(s, [])), s))
        if not candidates:
            return
        slot = candidates[0]
        residents = list(self.occupants.get(slot, []))
        if not residents:
            self.open_slots.discard(slot)
            self.ready_at.pop(slot, None)
            self.counts["scale_downs"] += 1
            _counter("controlplane_scale_events_total",
                     "Autoscaler pool changes", labels=("direction",)
                     ).labels(direction="down").inc()
            self._log("scale-down", slot=f"{slot[0]}:{slot[1]}",
                      utilization=round(utilization, 6))
            return
        # Drain-and-close: only if every resident has a feasible seat
        # elsewhere right now (a scale-down must never evict).
        movable = [t for t in residents
                   if self.records[t].state is TenantState.ACTIVE]
        if len(movable) != len(residents):
            return
        pool = [s for s in self._healthy_open() if s != slot]
        try:
            incremental_place(
                self._placed_reqs(), Placement(dict(self.assignment)),
                self.topology, self.plan.compartments_per_server,
                self.plan.tenants_per_compartment, movable,
                open_slots=pool)
        except PlacementError:
            return
        self.closing.add(slot)
        self._log("closing", slot=f"{slot[0]}:{slot[1]}",
                  residents=len(residents))
        for tid in sorted(movable):
            self._start_migration(tid, "scale-down")

    def _finish_close(self, slot: Slot) -> None:
        self.closing.discard(slot)
        self.open_slots.discard(slot)
        self.ready_at.pop(slot, None)
        self.counts["scale_downs"] += 1
        _counter("controlplane_scale_events_total",
                 "Autoscaler pool changes", labels=("direction",)
                 ).labels(direction="down").inc()
        self._log("scale-down", slot=f"{slot[0]}:{slot[1]}")

    # -- audit ------------------------------------------------------------

    def audit(self) -> List[str]:
        """Check every lifecycle invariant; appends to ``violations``."""
        now = self.sim.now
        before = len(self.violations)
        live = 0
        terminal = 0
        for tid in self.records:
            rec = self.records[tid]
            if rec.state in TERMINAL_STATES:
                terminal += 1
                if tid in self.assignment:
                    self._violate(f"terminal tenant {tid} still seated")
            else:
                live += 1
            in_placed = rec.state in PLACED_STATES
            booked = tid in self.assignment
            if in_placed and not booked:
                self._violate(
                    f"tenant {tid} {rec.state.value} without a seat")
            if booked and not in_placed \
                    and rec.state is not TenantState.PLACING:
                self._violate(
                    f"tenant {tid} seated while {rec.state.value}")
            if booked and rec.slot != self.assignment[tid]:
                self._violate(f"tenant {tid} slot/assignment disagree")
            if rec.conservation_error() > 1e-6:
                self._violate(
                    f"tenant {tid} packet conservation broken "
                    f"(err={rec.conservation_error():.3e})")
            if rec.retries > self.plan.admission.max_retries + 1:
                self._violate(f"tenant {tid} exceeded placement budget")
            if rec.migration_retries > self.plan.policy.max_restarts + 1:
                self._violate(f"tenant {tid} exceeded migration budget")
            if rec.state is TenantState.ACTIVE and rec.slot is not None \
                    and rec.slot in self.crashed \
                    and rec.slot in self.detected:
                self._violate(
                    f"tenant {tid} ACTIVE on detected-crashed "
                    f"{rec.slot}")
        if live + terminal != len(self.records) \
                or len(self.records) != self.counts["arrivals"]:
            self._violate("tenant bookkeeping lost a record")
        # Occupancy rebuilt from the assignment must match the books
        # (no double placement, no phantom seats).
        rebuilt: Dict[Slot, List[int]] = {}
        for tid in sorted(self.assignment):
            rebuilt.setdefault(self.assignment[tid], []).append(tid)
        books = {s: sorted(r) for s, r in self.occupants.items() if r}
        if {s: sorted(r) for s, r in rebuilt.items()} != books:
            self._violate("occupancy books disagree with assignment")
        for slot, crashed_at in self.crashed.items():
            if slot not in self.detected \
                    and now - crashed_at > 2 * self.plan.heartbeat:
                self._violate(f"crash at {slot} undetected after "
                              f"{now - crashed_at:.3f}s")
        leased = self.admission.outstanding()
        holders = sum(1 for r in self.records.values()
                      if r.state in (TenantState.ADMITTED,
                                     TenantState.PLACING))
        if leased != holders:
            self._violate(
                f"lease table ({leased}) disagrees with "
                f"ADMITTED/PLACING tenants ({holders})")
        if self.assignment:
            try:
                validate_placement(
                    self._placed_reqs(),
                    Placement(dict(self.assignment)), self.topology,
                    self.plan.compartments_per_server,
                    self.plan.tenants_per_compartment)
            except PlacementError as exc:
                self._violate(f"security validation failed: {exc}")
        return self.violations[before:]

    # -- driving ----------------------------------------------------------

    def start(self, horizon: Optional[float] = None) -> None:
        """Schedule the service's event sources on the simulator; the
        caller (or :meth:`run`) drives the clock."""
        self._horizon = self.plan.duration if horizon is None else horizon
        self._schedule_next_arrival()
        for crash in self.plan.crashes:
            self.sim.schedule(self.sim.now + crash.at, self._crash_event,
                              crash)
        self._next_stochastic_crash()
        self._recurring.append(
            self.sim.every(self.plan.heartbeat, self._probe,
                           until=self.sim.now + self._horizon))
        if self.plan.autoscale.enabled:
            self._recurring.append(
                self.sim.every(self.plan.autoscale.interval,
                               self._autoscale_tick,
                               until=self.sim.now + self._horizon))

    def finish(self) -> Dict[str, float]:
        """Final accrual + audit; returns the flat values dict."""
        for ev in self._recurring:
            ev.cancel()
        self._recurring.clear()
        for tid in sorted(self.records):
            rec = self.records[tid]
            if rec.state not in TERMINAL_STATES:
                self._accrue(rec)
        self.audit()
        return self._values()

    def run(self, settle: float = 2.0) -> Dict[str, float]:
        """Standalone drive: start, run the clock for the plan duration
        plus ``settle`` (lets in-flight drains/migrations land), audit."""
        self.start(horizon=self.plan.duration + settle)
        self.sim.run(until=self.sim.now + self.plan.duration + settle)
        return self.finish()

    def _values(self) -> Dict[str, float]:
        offered = sum(r.offered for r in self.records.values())
        delivered = sum(r.delivered for r in self.records.values())
        dropped = sum(r.dropped for r in self.records.values())
        migrated = [r for r in self.records.values()
                    if r.migrations_completed > 0]
        resumed = [r for r in migrated
                   if r.healthy_since_migration <= 0.0
                   or r.delivered_since_migration > 0.0]
        transitions = sum(len(r.history) for r in self.records.values())
        values = {
            "active_final": float(sum(
                1 for r in self.records.values()
                if r.state is TenantState.ACTIVE)),
            "admission_latency_mean": (
                self._admission_lat[0] / self._admission_lat[1]
                if self._admission_lat[1] else 0.0),
            "availability": delivered / offered if offered else 1.0,
            "breaker_trips": float(self.autoscaler.breaker_trips),
            "delivered_pkts": delivered,
            "detect_latency_mean": (
                self._detect_lat[0] / self._detect_lat[1]
                if self._detect_lat[1] else 0.0),
            "dropped_pkts": dropped,
            "live_final": float(sum(
                1 for r in self.records.values()
                if r.state not in TERMINAL_STATES)),
            "migration_downtime_mean": (
                self._migration_down[0] / self._migration_down[1]
                if self._migration_down[1] else 0.0),
            "migration_resumed_fraction": (
                len(resumed) / len(migrated) if migrated else 1.0),
            "offered_pkts": offered,
            "pool_final": float(self._pool_size()),
            "recovery_seconds_total": self.recovery_seconds_total,
            "transitions_total": float(transitions),
            "violations": float(len(self.violations)),
        }
        for name, count in self.counts.items():
            values[name] = float(count)
        return values
