"""Admission control: capacity leases over the open compartment pool.

The controller answers one question -- "can this request plausibly be
seated right now?" -- *before* the placement engine spends control-plane
latency on it, and answers it conservatively enough that granting a
lease never double-books a seat (the Orion no-double-allocation rule:
admission and placement agree because both count against the same lease
table).

A lease is one reserved seat, held from ADMITTED until the tenant
either becomes ACTIVE (the seat converts into real occupancy) or is
EVICTED (the seat frees).  Availability is computed against the
*healthy, open* pool:

- a shared (isolation-1) request of group ``g`` needs a free seat in an
  open compartment already running ``g``, or an empty open compartment;
- a dedicated (isolation>=2) request needs an empty open compartment.

Empty compartments are a shared resource between groups and dedicated
requests, so outstanding leases that could only be satisfied by an
empty compartment are all charged against the same empty-slot count.
When no seat can be leased the request is shed immediately with a
reason (``pool-full`` / ``no-empty-compartment``) -- the control plane
rejects rather than wedges, and the autoscaler sees the resulting
utilization pressure and grows the pool for the next arrival.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.fabric.placement import TenantReq


@dataclass
class Lease:
    """One reserved seat."""

    tenant_id: int
    group: int
    dedicated: bool
    granted_at: float


class AdmissionController:
    """Seat-lease bookkeeping over a view of the open pool.

    The owning service calls :meth:`try_admit` on arrival and
    :meth:`release` when the lease converts (activation) or dies
    (eviction).  ``pool_view`` is a callable returning the current
    ``{(server, k): (group_or_None, occupants)}`` map of healthy open
    compartments -- the service owns that state; the controller only
    counts it.
    """

    def __init__(self, pool_view, tenants_per_compartment: int) -> None:
        self._pool_view = pool_view
        self.cap = tenants_per_compartment
        self.leases: Dict[int, Lease] = {}

    def outstanding(self) -> int:
        return len(self.leases)

    def _availability(self, req: TenantReq) -> Optional[str]:
        """None when a seat can be leased, else the shed reason."""
        pool = self._pool_view()
        if not pool:
            return "pool-empty"
        empty = 0
        shared_free = 0
        for slot in sorted(pool):
            group, occupants = pool[slot]
            if occupants == 0:
                empty += 1
            elif group == req.group and req.isolation < 2:
                shared_free += max(0, self.cap - occupants)
        # Outstanding leases consume their own category first; shared
        # leases beyond their group's open seats fall back onto the
        # empty-compartment budget, same as dedicated ones.
        ded_leased = sum(1 for l in self.leases.values() if l.dedicated)
        shared_leased_same = sum(
            1 for l in self.leases.values()
            if not l.dedicated and l.group == req.group)
        empty_budget = empty - ded_leased
        if req.isolation >= 2:
            if empty_budget <= 0:
                return "no-empty-compartment"
            return None
        free_same = shared_free - shared_leased_same
        if free_same > 0:
            return None
        # Group seats exhausted: the request needs a fresh compartment.
        overflow = max(0, shared_leased_same - shared_free)
        if empty_budget - overflow <= 0:
            return "pool-full"
        return None

    def try_admit(self, req: TenantReq,
                  now: float) -> Tuple[bool, Optional[str]]:
        """Grant a lease, or return ``(False, reason)`` to shed."""
        reason = self._availability(req)
        if reason is not None:
            return False, reason
        self.leases[req.tenant_id] = Lease(
            tenant_id=req.tenant_id, group=req.group,
            dedicated=req.isolation >= 2, granted_at=now)
        return True, None

    def release(self, tenant_id: int) -> None:
        """Free the lease (activation converted it, or eviction)."""
        self.leases.pop(tenant_id, None)
