"""Declarative churn campaigns: the control plane's scenario input.

A :class:`ChurnPlan` is to the resident control plane what a
:class:`~repro.faults.plan.FaultPlan` is to the chaos layer: a frozen,
JSON-round-trippable description of the arrival process, the fabric
geometry, the admission/autoscale policies and the crash schedule.  The
``controlplane.churn`` workload carries the plan's canonical JSON as a
spec *param*, so it folds into the spec's content hash -- two runs with
different churn knobs can never collide in the result cache, and the
same plan + seed replays the identical trace from any backend.

Recovery costs reuse :class:`~repro.faults.plan.RestartPolicySpec` (the
PR 4 supervisor model): a migrated tenant pays flow-table re-sync per
rule plus ARP re-learning per entry, and the migration window adds the
warm-standby failover latency on top of the drain.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

from repro.errors import ValidationError
from repro.faults.plan import RestartPolicySpec


@dataclass(frozen=True)
class AdmissionPolicySpec:
    """Admission-controller knobs: lease latency, retry backoff, shed."""

    #: Control-plane latency of granting a lease (REQUESTED->ADMITTED).
    admit_latency: float = 0.005
    #: Control-plane latency of programming a placement (PLACING->ACTIVE).
    place_latency: float = 0.01
    #: Placement attempts before the tenant is shed (EVICTED).
    max_retries: int = 4
    #: Attempt ``k`` retries after ``base * factor**(k-1)`` (jittered).
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    #: Uniform jitter fraction on each backoff (+-jitter * delay).
    backoff_jitter: float = 0.2

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValidationError("max_retries must be >= 0")
        if self.backoff_base <= 0 or self.backoff_factor < 1:
            raise ValidationError("backoff must be positive and grow")
        if not 0 <= self.backoff_jitter < 1:
            raise ValidationError("backoff_jitter must be in [0, 1)")

    def to_dict(self) -> dict:
        return {
            "admit_latency": self.admit_latency,
            "place_latency": self.place_latency,
            "max_retries": self.max_retries,
            "backoff_base": self.backoff_base,
            "backoff_factor": self.backoff_factor,
            "backoff_jitter": self.backoff_jitter,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "AdmissionPolicySpec":
        unknown = set(data) - set(cls().to_dict())
        if unknown:
            raise ValidationError(
                f"unknown admission fields: {sorted(unknown)}")
        return cls(**dict(data))


@dataclass(frozen=True)
class AutoscalePolicySpec:
    """The vswitch-VM pool autoscaler: closed-loop PID on compartment
    CPU load, with hysteresis and a scale-storm circuit breaker (the
    Orion-Dynamic idiom)."""

    enabled: bool = True
    #: Control-loop period (simulated seconds).
    interval: float = 1.0
    #: Utilization setpoint the PID regulates the pool towards.
    target_utilization: float = 0.6
    #: PID gains over the error "ideal pool size - current pool size".
    kp: float = 0.8
    ki: float = 0.1
    kd: float = 0.0
    #: Hysteresis: no action while |util - target| <= deadband.
    deadband: float = 0.1
    #: Minimum seconds between scale actions.
    cooldown: float = 2.0
    #: Pool bounds; ``max_pool=0`` means the fabric geometry limit.
    min_pool: int = 2
    max_pool: int = 0
    #: Breaker: this many scale actions within ``storm_window`` opens
    #: the breaker for ``storm_hold`` seconds.
    storm_threshold: int = 4
    storm_window: float = 10.0
    storm_hold: float = 30.0
    #: Modeled forwarding capacity of one vswitch-VM compartment.
    compartment_capacity_pps: float = 400_000.0
    #: Boot + flow-sync seconds a fresh compartment costs (billed to
    #: the tenants of the overloaded compartment that triggered it).
    boot_resync_seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValidationError("autoscale interval must be positive")
        if not 0 < self.target_utilization < 1:
            raise ValidationError("target_utilization must be in (0, 1)")
        if self.min_pool < 1:
            raise ValidationError("min_pool must be >= 1")
        if self.compartment_capacity_pps <= 0:
            raise ValidationError("compartment capacity must be positive")

    def to_dict(self) -> dict:
        return {
            "enabled": self.enabled,
            "interval": self.interval,
            "target_utilization": self.target_utilization,
            "kp": self.kp, "ki": self.ki, "kd": self.kd,
            "deadband": self.deadband,
            "cooldown": self.cooldown,
            "min_pool": self.min_pool,
            "max_pool": self.max_pool,
            "storm_threshold": self.storm_threshold,
            "storm_window": self.storm_window,
            "storm_hold": self.storm_hold,
            "compartment_capacity_pps": self.compartment_capacity_pps,
            "boot_resync_seconds": self.boot_resync_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "AutoscalePolicySpec":
        unknown = set(data) - set(cls().to_dict())
        if unknown:
            raise ValidationError(
                f"unknown autoscale fields: {sorted(unknown)}")
        return cls(**dict(data))


@dataclass(frozen=True)
class CrashSpec:
    """One scripted compartment crash."""

    #: Simulated seconds from the start of the run.
    at: float
    #: ``"auto"`` picks the most-loaded healthy compartment at fire
    #: time; ``"s:k"`` pins server ``s`` compartment ``k``.
    target: str = "auto"
    #: Scripted repair delay; ``None`` leaves the compartment down
    #: (the pool replaces it via the autoscaler).
    repair_after: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValidationError("crash time must be >= 0")
        if self.repair_after is not None and self.repair_after <= 0:
            raise ValidationError("repair_after must be positive")

    def to_dict(self) -> dict:
        return {"at": self.at, "target": self.target,
                "repair_after": self.repair_after}

    @classmethod
    def from_dict(cls, data: Mapping) -> "CrashSpec":
        unknown = set(data) - {"at", "target", "repair_after"}
        if unknown:
            raise ValidationError(f"unknown crash fields: {sorted(unknown)}")
        return cls(**dict(data))


@dataclass(frozen=True)
class ChurnPlan:
    """A whole churn campaign: arrivals, geometry, policies, crashes."""

    #: Campaign horizon in simulated seconds (arrivals stop here; the
    #: service keeps running until the run's own horizon).
    duration: float = 60.0
    #: Poisson tenant arrival rate (1/s); 0 disables churn (idle mode).
    arrival_rate: float = 0.5
    #: Mean exponential tenant lifetime, counted from activation.
    mean_lifetime: float = 120.0
    #: Per-tenant demand: uniform in ``demand_pps * (1 +- spread)``.
    demand_pps: float = 20_000.0
    demand_spread: float = 0.5
    #: Security zones arrivals are drawn into (uniform).
    num_groups: int = 4
    #: Fraction of arrivals requiring a dedicated compartment
    #: (isolation level 2).
    dedicated_fraction: float = 0.1
    # -- fabric geometry --------------------------------------------------
    servers: int = 4
    compartments_per_server: int = 4
    tenants_per_compartment: int = 8
    # -- detection / recovery ---------------------------------------------
    #: Watchdog probe interval (detection latency bound).
    heartbeat: float = 0.05
    #: Graceful-departure and pre-migration drain time.
    drain_latency: float = 0.05
    #: Flow rules / ARP entries per tenant, priced through the
    #: supervisor policy's re-sync constants on every migration.
    rules_per_tenant: int = 12
    arp_entries_per_tenant: int = 2
    #: Scripted compartment crashes.
    crashes: Tuple[CrashSpec, ...] = ()
    #: Stochastic crashes: exponential inter-failure times (and
    #: optional exponential repair) drawn off named seed streams.
    crash_mtbf: Optional[float] = None
    crash_mttr: Optional[float] = None
    admission: AdmissionPolicySpec = field(
        default_factory=AdmissionPolicySpec)
    autoscale: AutoscalePolicySpec = field(
        default_factory=AutoscalePolicySpec)
    #: Supervisor recovery-cost model (PR 4): re-sync per rule, ARP
    #: re-learn per entry, failover latency, migration retry budget.
    policy: RestartPolicySpec = field(default_factory=RestartPolicySpec)

    def __post_init__(self) -> None:
        crashes = tuple(
            c if isinstance(c, CrashSpec) else CrashSpec.from_dict(c)
            for c in self.crashes)
        object.__setattr__(self, "crashes", crashes)
        if isinstance(self.admission, Mapping):
            object.__setattr__(
                self, "admission",
                AdmissionPolicySpec.from_dict(self.admission))
        if isinstance(self.autoscale, Mapping):
            object.__setattr__(
                self, "autoscale",
                AutoscalePolicySpec.from_dict(self.autoscale))
        if isinstance(self.policy, Mapping):
            object.__setattr__(
                self, "policy", RestartPolicySpec.from_dict(self.policy))
        if self.duration <= 0:
            raise ValidationError("duration must be positive")
        if self.arrival_rate < 0:
            raise ValidationError("arrival_rate must be >= 0")
        if self.mean_lifetime <= 0:
            raise ValidationError("mean_lifetime must be positive")
        if self.servers < 1 or self.compartments_per_server < 1:
            raise ValidationError("need at least one server/compartment")
        if self.heartbeat <= 0 or self.drain_latency < 0:
            raise ValidationError("heartbeat/drain must be sane")
        if not 0 <= self.dedicated_fraction <= 1:
            raise ValidationError("dedicated_fraction must be in [0, 1]")
        if self.crash_mtbf is not None and self.crash_mtbf <= 0:
            raise ValidationError("crash_mtbf must be positive")
        if self.crash_mttr is not None and self.crash_mttr <= 0:
            raise ValidationError("crash_mttr must be positive")

    @property
    def total_slots(self) -> int:
        return self.servers * self.compartments_per_server

    def migration_resync_seconds(self) -> float:
        """Per-tenant flow-table + ARP re-sync cost of one migration."""
        return (self.rules_per_tenant * self.policy.resync_per_rule
                + self.arp_entries_per_tenant
                * self.policy.arp_relearn_per_entry)

    def migration_downtime(self) -> float:
        """Modeled per-tenant downtime of one live migration: drain the
        old seat, fail over, re-sync rules and ARP at the new one."""
        return (self.drain_latency + self.policy.failover_latency
                + self.migration_resync_seconds())

    def to_dict(self) -> dict:
        return {
            "duration": self.duration,
            "arrival_rate": self.arrival_rate,
            "mean_lifetime": self.mean_lifetime,
            "demand_pps": self.demand_pps,
            "demand_spread": self.demand_spread,
            "num_groups": self.num_groups,
            "dedicated_fraction": self.dedicated_fraction,
            "servers": self.servers,
            "compartments_per_server": self.compartments_per_server,
            "tenants_per_compartment": self.tenants_per_compartment,
            "heartbeat": self.heartbeat,
            "drain_latency": self.drain_latency,
            "rules_per_tenant": self.rules_per_tenant,
            "arp_entries_per_tenant": self.arp_entries_per_tenant,
            "crashes": [c.to_dict() for c in self.crashes],
            "crash_mtbf": self.crash_mtbf,
            "crash_mttr": self.crash_mttr,
            "admission": self.admission.to_dict(),
            "autoscale": self.autoscale.to_dict(),
            "policy": self.policy.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ChurnPlan":
        known = set(cls().to_dict())
        unknown = set(data) - known
        if unknown:
            raise ValidationError(
                f"unknown churn-plan fields: {sorted(unknown)}")
        kwargs = dict(data)
        kwargs["crashes"] = tuple(
            CrashSpec.from_dict(c) for c in kwargs.get("crashes", ()))
        return cls(**kwargs)

    def to_json(self) -> str:
        """Canonical (sorted, whitespace-free) JSON -- the form carried
        in ``ScenarioSpec.params`` so it hashes stably."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ChurnPlan":
        return cls.from_dict(json.loads(text))
