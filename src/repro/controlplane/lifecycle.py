"""The tenant-lifecycle state machine of the resident control plane.

Every tenant the service ever sees owns a :class:`TenantRecord` that
walks an explicit state graph (the ironic conductor idiom: a static
transition table, every move validated against it, no implicit states):

.. code-block:: text

    REQUESTED -> ADMITTED -> PLACING -> ACTIVE <-> MIGRATING
        |            |          |        |  ^          |
        v            v          v        v  |          v
     EVICTED      EVICTED    EVICTED  DEGRADED --> DRAINING -> TERMINATED
                                         |
                                         v
                                      EVICTED

``TERMINATED`` (graceful departure) and ``EVICTED`` (shed, placement
failure, or migration budget exhausted) are terminal.  Illegal moves
raise :class:`LifecycleError` -- the caller has a bug, and the audit
counts it rather than papering over it.  Every legal transition is
appended to the record's history, counted in ``obs.REGISTRY``
(``controlplane_transitions_total{src,dst}``) and logged as a
structured event dict by the service.

Accrual bookkeeping also lives here: each record integrates offered /
delivered / dropped packets between state boundaries (fluid model --
rates are constant between events), which is what makes "conservation
of in-flight packets" an auditable invariant: ``offered`` accrues in
one place, ``delivered + dropped`` in another, and any tenant lost in
limbo breaks the equality.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro import obs
from repro.errors import ValidationError
from repro.fabric.placement import TenantReq


class LifecycleError(ValidationError):
    """An illegal state transition was attempted."""


class TenantState(enum.Enum):
    """The lifecycle states (values are the wire/log names)."""

    REQUESTED = "requested"
    ADMITTED = "admitted"
    PLACING = "placing"
    ACTIVE = "active"
    MIGRATING = "migrating"
    DRAINING = "draining"
    TERMINATED = "terminated"
    DEGRADED = "degraded"
    EVICTED = "evicted"


#: The full legal-transition table.  Anything not listed raises.
TRANSITIONS: Dict[TenantState, FrozenSet[TenantState]] = {
    TenantState.REQUESTED: frozenset({
        TenantState.ADMITTED, TenantState.EVICTED}),
    TenantState.ADMITTED: frozenset({
        TenantState.PLACING, TenantState.EVICTED}),
    TenantState.PLACING: frozenset({
        TenantState.ACTIVE, TenantState.EVICTED}),
    TenantState.ACTIVE: frozenset({
        TenantState.MIGRATING, TenantState.DEGRADED,
        TenantState.DRAINING}),
    TenantState.DEGRADED: frozenset({
        TenantState.MIGRATING, TenantState.ACTIVE,
        TenantState.DRAINING, TenantState.EVICTED}),
    TenantState.MIGRATING: frozenset({
        TenantState.ACTIVE, TenantState.DEGRADED,
        TenantState.DRAINING, TenantState.EVICTED}),
    TenantState.DRAINING: frozenset({TenantState.TERMINATED}),
    TenantState.TERMINATED: frozenset(),
    TenantState.EVICTED: frozenset(),
}

#: States a tenant can never leave.
TERMINAL_STATES = frozenset(
    {s for s, nxt in TRANSITIONS.items() if not nxt})

#: States in which the tenant owns a compartment seat.
PLACED_STATES = frozenset({
    TenantState.ACTIVE, TenantState.MIGRATING,
    TenantState.DRAINING, TenantState.DEGRADED})

#: Placed states in which the tenant's traffic is offered to the
#: fabric (it delivers only when the compartment is also healthy).
FORWARDING_STATES = PLACED_STATES

#: Placed states in which a healthy compartment actually delivers.
DELIVERING_STATES = frozenset({TenantState.ACTIVE, TenantState.DRAINING})


def _transition_counter():
    return obs.REGISTRY.counter(
        "controlplane_transitions_total",
        "Validated tenant lifecycle transitions",
        labels=("src", "dst"))


def _violation_counter():
    return obs.REGISTRY.counter(
        "controlplane_illegal_transitions_total",
        "Rejected (illegal) lifecycle transition attempts")


@dataclass
class TenantRecord:
    """One tenant's lifecycle state, placement, and packet accrual."""

    req: TenantReq
    requested_at: float
    #: Drawn at arrival; the departure fires ``lifetime`` after the
    #: tenant first becomes ACTIVE.
    lifetime: float
    state: TenantState = TenantState.REQUESTED
    #: ``(server, compartment)`` while in a placed state, else None.
    slot: Optional[Tuple[int, int]] = None
    #: Placement attempts burned so far (admission backoff budget).
    retries: int = 0
    #: Migration placement attempts for the in-flight recovery.
    migration_retries: int = 0
    migrations_started: int = 0
    migrations_completed: int = 0
    migrate_started_at: Optional[float] = None
    departure_scheduled: bool = False
    #: ``(time, src, dst, reason)`` audit trail.
    history: List[Tuple[float, str, str, str]] = field(default_factory=list)
    #: Monotonic epoch bumped on every transition; deferred completions
    #: (placement latency, migration downtime, drain) capture it and
    #: no-op when the record moved on in the meantime.
    epoch: int = 0
    first_active_at: Optional[float] = None
    ended_at: Optional[float] = None
    # -- fluid packet accrual --------------------------------------------
    offered: float = 0.0
    delivered: float = 0.0
    dropped: float = 0.0
    last_accrued: float = 0.0
    #: Delivered packets since the last completed migration (proves the
    #: tenant resumed forwarding on its new compartment).
    delivered_since_migration: float = 0.0
    #: Healthy residence seconds since the last completed migration.
    healthy_since_migration: float = 0.0
    #: Recovery work (flow re-sync, ARP re-learn, autoscale boot share)
    #: billed to this tenant, in seconds.
    recovery_seconds: float = 0.0

    @property
    def tenant_id(self) -> int:
        return self.req.tenant_id

    def advance(self, to: TenantState, now: float, reason: str = "") -> None:
        """Validate and apply one transition; raises LifecycleError on
        an illegal move (and counts the attempt)."""
        if to not in TRANSITIONS[self.state]:
            _violation_counter().inc()
            raise LifecycleError(
                f"tenant {self.tenant_id}: illegal transition "
                f"{self.state.value} -> {to.value}"
                + (f" ({reason})" if reason else ""))
        src = self.state
        self.state = to
        self.epoch += 1
        self.history.append((now, src.value, to.value, reason))
        _transition_counter().labels(src=src.value, dst=to.value).inc()
        if to is TenantState.ACTIVE and self.first_active_at is None:
            self.first_active_at = now
        if to in TERMINAL_STATES:
            self.ended_at = now

    def accrue(self, now: float, healthy: bool) -> None:
        """Integrate offered/delivered/dropped up to ``now``.  Rates
        only change at events, so lazy accrual at every boundary is
        exact.  ``healthy`` is the tenant's compartment health over the
        elapsed span (callers accrue *before* flipping health)."""
        dt = now - self.last_accrued
        self.last_accrued = now
        if dt <= 0.0:
            return
        if self.state not in FORWARDING_STATES or self.slot is None:
            return
        pkts = self.req.demand_pps * dt
        self.offered += pkts
        if self.state in DELIVERING_STATES and healthy:
            self.delivered += pkts
            self.delivered_since_migration += pkts
            if self.migrations_completed:
                self.healthy_since_migration += dt
        else:
            self.dropped += pkts

    def conservation_error(self) -> float:
        """|offered - delivered - dropped| relative to offered."""
        gap = abs(self.offered - (self.delivered + self.dropped))
        return gap / max(1.0, self.offered)
