"""The ``controlplane.churn`` workload: the resident service as a
cacheable scenario.

One registry entry wraps the control plane for the scenario engine, so
churn campaigns get caching, pool execution and JSONL plumbing for
free.  The whole :class:`~repro.controlplane.plan.ChurnPlan` rides on
the spec as the ``churn`` param -- its *canonical JSON*, so the plan
folds into the spec's content hash and two campaigns with different
knobs can never collide in the result cache.  Individual params
(``arrival_rate``, ``churn_duration``, ``crashes``, ...) are accepted
as a convenience when no full plan is given.

The run is a pure function of ``(plan, seed)``: every stochastic draw
comes off a named RNG stream, so the sequential and process-pool
backends produce byte-identical values for the same spec -- the
engine's cacheability contract, checked by the tier-1 suite.

When the engine activated a metering context (``("metering", True)``),
the workload publishes one synthetic :class:`UsageRecord` per tenant
that ever held a seat: delivered traffic as IO bytes, modeled vswitch
CPU from the autoscaler's capacity constant, and -- the point of the
exercise -- migration/autoscale re-sync charged as ``fault_seconds``
under the crashed or overloaded compartment's policy, so ``repro
billing`` prices recovery exactly like the chaos layer does.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.billing.meter import UsageRecord
from repro.controlplane.plan import ChurnPlan, CrashSpec
from repro.controlplane.service import ControlPlane
from repro.core.spec import DeploymentSpec, TrafficScenario
from repro.core.levels import ResourceMode, SecurityLevel
from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.scenario.spec import ScenarioSpec

WORKLOAD = "controlplane.churn"


def default_plan(duration: float = 60.0, arrival_rate: float = 2.0,
                 crashes: int = 3, mean_lifetime: float = 30.0,
                 seedable_repair: float = 10.0) -> ChurnPlan:
    """A lively default campaign: steady churn plus ``crashes``
    compartment failures spread evenly across the middle of the run."""
    scripted = tuple(
        CrashSpec(at=duration * (i + 1) / (crashes + 1), target="auto",
                  repair_after=seedable_repair)
        for i in range(crashes))
    return ChurnPlan(duration=duration, arrival_rate=arrival_rate,
                     mean_lifetime=mean_lifetime, crashes=scripted)


def plan_from_spec(spec: ScenarioSpec) -> ChurnPlan:
    """The spec's ``churn`` param (canonical plan JSON), or a default
    plan shaped by the convenience params."""
    text = spec.param("churn")
    if text:
        return ChurnPlan.from_json(str(text))
    return default_plan(
        duration=float(spec.param("churn_duration",
                                  spec.duration or 60.0)),
        arrival_rate=float(spec.param("arrival_rate", 2.0)),
        crashes=int(spec.param("crashes", 3)),
        mean_lifetime=float(spec.param("mean_lifetime", 30.0)))


def default_deployment() -> DeploymentSpec:
    """The deployment the churn scenario nominally runs against (the
    service models the fabric itself; this keys caching and labels)."""
    return DeploymentSpec(level=SecurityLevel.LEVEL_2, num_vswitch_vms=4,
                          resource_mode=ResourceMode.SHARED)


def scenario(plan: ChurnPlan, seed: int = 0, label: str = "",
             metering: bool = False,
             eval_mode: str = "") -> ScenarioSpec:
    """Wrap ``plan`` as an engine spec (the plan JSON is the param)."""
    params: List[Tuple[str, object]] = [("churn", plan.to_json())]
    if metering:
        params.append(("metering", True))
    return ScenarioSpec(workload=WORKLOAD, deployment=default_deployment(),
                        traffic=TrafficScenario.P2V, duration=plan.duration,
                        seed=seed, label=label or "churn",
                        eval_mode=eval_mode, params=tuple(params))


def _usage_from_service(plan: ChurnPlan,
                        service: ControlPlane) -> List[dict]:
    """Synthetic per-tenant usage records + the billing summary."""
    capacity = plan.autoscale.compartment_capacity_pps
    horizon = service.sim.now
    records = []
    fault_payers: Dict[int, float] = {}
    for tid in sorted(service.records):
        rec = service.records[tid]
        if rec.offered <= 0 and rec.recovery_seconds <= 0:
            continue  # never placed, nothing metered
        slot = rec.slot if rec.slot is not None else (0, 0)
        compartment = slot[0] * plan.compartments_per_server + slot[1]
        cpu = rec.delivered / capacity if capacity else 0.0
        records.append(UsageRecord(
            tenant_id=tid, compartment=compartment,
            t0=rec.requested_at, t1=rec.ended_at or horizon,
            cpu_seconds=cpu, cpu_seconds_exact=cpu, core_seconds=cpu,
            io_bytes=int(rec.delivered * rec.req.frame_bytes),
            passes=int(rec.delivered),
            drops={"fault": int(rec.dropped)} if rec.dropped else {},
            fault_seconds=rec.recovery_seconds,
            fault_drops=int(rec.dropped),
            quality="estimated"))
        if rec.recovery_seconds > 0:
            fault_payers[tid] = rec.recovery_seconds
    billed_fault = sum(fault_payers.values())
    # Recovery charged to tenants must equal the recovery the service
    # actually performed -- the churn reconciliation check.
    reconciled = abs(billed_fault - service.recovery_seconds_total) <= 1e-9
    failures = [] if reconciled else [
        f"fault charge mismatch: billed {billed_fault:.6f}s, "
        f"performed {service.recovery_seconds_total:.6f}s"]
    summary = {
        "kind": "summary",
        "windows": 1,
        "reconciled": reconciled,
        "failures": failures,
        "misattribution_score": 0.0,
        "billed_cpu_seconds": sum(r.cpu_seconds for r in records),
        "exact_cpu_seconds": sum(r.cpu_seconds_exact for r in records),
        "billed_io_bytes": sum(r.io_bytes for r in records),
        "billed_pcie_bytes": 0,
        "fault_seconds_total": billed_fault,
        "fault_payers": {str(t): s for t, s in sorted(fault_payers.items())},
        "fault_drops": {
            str(r.tenant_id): r.fault_drops for r in records
            if r.fault_drops},
        "tenant_cpu_skew": {},
    }
    return [r.to_dict() for r in records] + [summary]


def measure_scenario(spec: ScenarioSpec,
                     calibration: Calibration = DEFAULT_CALIBRATION
                     ) -> Dict[str, float]:
    """Engine entry point: run the churn campaign, publish the
    lifecycle event log (chaos channel) and usage (billing channel)."""
    from repro.billing import runtime as billing_runtime
    from repro.faults import runtime as faults_runtime

    plan = plan_from_spec(spec)
    faults_runtime.claim()  # the service is its own chaos session
    service = ControlPlane(plan, seed=spec.seed)
    values = service.run()
    faults_runtime.publish(service.events)
    if billing_runtime.metering_requested():
        billing_runtime.claim()
        billing_runtime.publish(_usage_from_service(plan, service))
    return values
