"""Churn scripting against a live testbed deployment.

:class:`ChurnScript` is the bridge between the control plane's idea of
churn and the packet-level testbed: it schedules real
:class:`~repro.core.orchestrator.MtsOrchestrator` lifecycle operations
(live migrations, tenant removals) at simulated times on a deployment
that a :class:`~repro.traffic.harness.TestbedHarness` is about to
drive.

The script participates in the oracle-forcing gate
(:func:`repro.faults.runtime.chaos_pending`): each scheduled operation
registers a *lifecycle hold* the moment it is armed, so a harness that
starts afterwards sees pending churn and takes the per-frame oracle
path -- mid-run mutations and the batched fast path do not compose,
and the differential fuzz suite proves the oracle path byte-identical
instead.  The hold is released when the operation fires (the
orchestrator holds its own for the migration window); :meth:`close`
releases anything still armed, so an aborted run cannot leak the gate.
"""

from __future__ import annotations

from typing import List

from repro.core.orchestrator import MtsOrchestrator
from repro.faults import runtime as _chaos


class ChurnScript:
    """Scripted lifecycle churn on a live deployment."""

    def __init__(self, deployment) -> None:
        self.deployment = deployment
        self.orchestrator = MtsOrchestrator(deployment)
        self.sim = deployment.sim
        self._armed = 0
        self.completed: List[dict] = []

    def schedule_migration(self, at: float, tenant_id: int,
                           target: int) -> None:
        """Arm a live migration of ``tenant_id`` to compartment
        ``target`` at simulated time ``at``."""
        _chaos.lifecycle_begin()
        self._armed += 1
        self.sim.schedule(at, self._fire_migration, tenant_id, target)

    def schedule_removal(self, at: float, tenant_id: int) -> None:
        """Arm a graceful tenant removal at simulated time ``at``."""
        _chaos.lifecycle_begin()
        self._armed += 1
        self.sim.schedule(at, self._fire_removal, tenant_id)

    def _release(self) -> None:
        if self._armed > 0:
            self._armed -= 1
            _chaos.lifecycle_end()

    def _fire_migration(self, tenant_id: int, target: int) -> None:
        try:
            record = self.orchestrator.migrate_tenant(tenant_id, target)
            self.completed.append({
                "kind": "migrate", "t": self.sim.now,
                "tenant": tenant_id, "source": record.source,
                "target": target})
        finally:
            # The orchestrator holds its own gate for the migration
            # window; the armed hold has done its job.
            self._release()

    def _fire_removal(self, tenant_id: int) -> None:
        try:
            self.orchestrator.remove_tenant(tenant_id)
            self.completed.append({
                "kind": "remove", "t": self.sim.now, "tenant": tenant_id})
        finally:
            self._release()

    def close(self) -> None:
        """Release any holds still armed (leak-safety for aborted runs)."""
        while self._armed > 0:
            self._release()
