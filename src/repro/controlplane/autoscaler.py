"""Closed-loop vswitch-VM pool autoscaling (the Orion-Dynamic idiom).

Every ``interval`` the service measures the open pool's utilization
(aggregate forwarding demand over aggregate modeled compartment
capacity) and the :class:`PoolAutoscaler` turns it into a pool-size
decision:

1. the *ideal* pool is the size that would put utilization exactly at
   the setpoint (``demand / (capacity * target)``);
2. a PID over ``ideal - current`` smooths the approach (the integral
   term absorbs steady drift, the derivative damps arrival bursts);
3. hysteresis gates the output: no action inside the utilization
   deadband, and never more often than the cooldown;
4. a scale-storm circuit breaker opens when actions cluster --
   ``storm_threshold`` actions inside ``storm_window`` freezes scaling
   for ``storm_hold`` seconds (counted, visible in the SLO tables).

The autoscaler only *decides*; opening and draining compartments --
and live-migrating residents off a shrinking one -- stays with the
service, which owns placement state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.controlplane.plan import AutoscalePolicySpec


class PIDController:
    """Textbook discrete PID with an anti-windup clamp."""

    def __init__(self, kp: float, ki: float, kd: float,
                 integral_limit: float = 10.0) -> None:
        self.kp, self.ki, self.kd = kp, ki, kd
        self.integral = 0.0
        self.integral_limit = integral_limit
        self._last_error: Optional[float] = None

    def step(self, error: float, dt: float) -> float:
        self.integral += error * dt
        self.integral = max(-self.integral_limit,
                            min(self.integral_limit, self.integral))
        derivative = 0.0
        if self._last_error is not None and dt > 0:
            derivative = (error - self._last_error) / dt
        self._last_error = error
        return (self.kp * error + self.ki * self.integral
                + self.kd * derivative)

    def reset(self) -> None:
        self.integral = 0.0
        self._last_error = None


@dataclass
class ScaleDecision:
    """What the control loop wants done this tick."""

    #: Compartments to open (>0) or drain-and-close (<0); 0 = hold.
    delta: int = 0
    #: Why a non-zero request was suppressed ("deadband", "cooldown",
    #: "breaker", "at-min", "at-max"), or "" when acted on / idle.
    suppressed: str = ""
    utilization: float = 0.0


class PoolAutoscaler:
    """Hysteresis + breaker around a :class:`PIDController`."""

    def __init__(self, spec: AutoscalePolicySpec, max_pool_limit: int,
                 min_pool: Optional[int] = None) -> None:
        self.spec = spec
        self.pid = PIDController(spec.kp, spec.ki, spec.kd)
        self.min_pool = min(min_pool if min_pool is not None
                            else spec.min_pool, max_pool_limit)
        self.max_pool = (min(spec.max_pool, max_pool_limit)
                         if spec.max_pool else max_pool_limit)
        self._last_action_at: Optional[float] = None
        self._action_times: List[float] = []
        self._breaker_open_until: Optional[float] = None
        self.breaker_trips = 0

    def breaker_open(self, now: float) -> bool:
        return (self._breaker_open_until is not None
                and now < self._breaker_open_until)

    def _record_action(self, now: float) -> None:
        self._last_action_at = now
        self._action_times.append(now)
        window = self.spec.storm_window
        self._action_times = [t for t in self._action_times
                              if now - t <= window]
        if len(self._action_times) >= self.spec.storm_threshold:
            self._breaker_open_until = now + self.spec.storm_hold
            self.breaker_trips += 1
            self._action_times.clear()
            self.pid.reset()

    def decide(self, now: float, demand_pps: float,
               pool_size: int) -> ScaleDecision:
        """One control tick.  The caller applies ``delta`` and reports
        it back implicitly via the next tick's ``pool_size``."""
        spec = self.spec
        capacity = max(1, pool_size) * spec.compartment_capacity_pps
        utilization = demand_pps / capacity
        ideal = demand_pps / (spec.compartment_capacity_pps
                              * spec.target_utilization)
        error = ideal - pool_size
        signal = self.pid.step(error, spec.interval)
        decision = ScaleDecision(utilization=utilization)
        if abs(utilization - spec.target_utilization) <= spec.deadband:
            decision.suppressed = "deadband"
            return decision
        delta = int(round(signal))
        if delta == 0:
            return decision
        if self.breaker_open(now):
            decision.suppressed = "breaker"
            return decision
        if (self._last_action_at is not None
                and now - self._last_action_at < spec.cooldown):
            decision.suppressed = "cooldown"
            return decision
        target = max(self.min_pool, min(self.max_pool, pool_size + delta))
        delta = target - pool_size
        if delta == 0:
            decision.suppressed = ("at-max" if signal > 0 else "at-min")
            return decision
        decision.delta = delta
        self._record_action(now)
        return decision
