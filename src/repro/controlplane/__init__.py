"""The resident control plane: tenant lifecycle, admission, autoscale,
self-healing live migration -- running *inside* sim time.

Layout:

- :mod:`~repro.controlplane.lifecycle` -- the explicit tenant state
  machine (validated transitions, packet-conservation accrual);
- :mod:`~repro.controlplane.plan` -- frozen, JSON-round-trippable
  churn campaigns (:class:`ChurnPlan`) and policy specs;
- :mod:`~repro.controlplane.admission` -- capacity leases + load shed;
- :mod:`~repro.controlplane.autoscaler` -- PID pool control with
  hysteresis and a scale-storm circuit breaker;
- :mod:`~repro.controlplane.service` -- :class:`ControlPlane`, the
  resident service tying it all together;
- :mod:`~repro.controlplane.workload` -- the ``controlplane.churn``
  scenario-engine entry point;
- :mod:`~repro.controlplane.driver` -- :class:`ChurnScript`, scripted
  lifecycle churn against a live packet-level testbed.
"""

from repro.controlplane.lifecycle import (  # noqa: F401
    LifecycleError, TenantRecord, TenantState, TRANSITIONS)
from repro.controlplane.plan import (  # noqa: F401
    AdmissionPolicySpec, AutoscalePolicySpec, ChurnPlan, CrashSpec)
from repro.controlplane.service import ControlPlane  # noqa: F401

__all__ = [
    "AdmissionPolicySpec",
    "AutoscalePolicySpec",
    "ChurnPlan",
    "ControlPlane",
    "CrashSpec",
    "LifecycleError",
    "TenantRecord",
    "TenantState",
    "TRANSITIONS",
]
