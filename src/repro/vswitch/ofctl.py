"""An ``ovs-ofctl add-flow``-compatible rule parser.

Lets operators (and tests) write rules in the familiar syntax instead
of constructing match/action objects:

    table=0,priority=200,in_port=1,ip,nw_dst=10.0.0.10,
        actions=mod_dl_dst:02:4d:54:00:00:07,output:3

Supported match fields: ``table``, ``priority``, ``in_port``,
``dl_src``, ``dl_dst``, ``dl_vlan``, ``ip``/``udp``/``tcp``/``icmp``,
``nw_src``, ``nw_dst`` (with ``/len`` prefixes), ``tp_src``,
``tp_dst``, ``tun_id``.  Supported actions: ``output:N``,
``mod_dl_dst:MAC``, ``mod_dl_src:MAC``, ``set_tunnel:VNI``,
``pop_tunnel``, ``goto_table:N``, ``resubmit(,N)`` (alias), ``normal``,
``drop``.  A ``cookie=`` field is accepted and ignored (cookies are
assigned by the table).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import FlowTableError
from repro.net.addresses import IPv4Address, MacAddress
from repro.net.packet import EtherType, IpProto
from repro.vswitch.actions import (
    Action,
    Drop,
    GotoTable,
    Normal,
    Output,
    PopTunnel,
    PushTunnel,
    SetDstMac,
    SetSrcMac,
)
from repro.vswitch.flowtable import FlowRule
from repro.vswitch.matches import FlowMatch

_PROTO_KEYWORDS = {
    "ip": (EtherType.IPV4, None),
    "udp": (EtherType.IPV4, IpProto.UDP),
    "tcp": (EtherType.IPV4, IpProto.TCP),
    "icmp": (EtherType.IPV4, IpProto.ICMP),
    "arp": (EtherType.ARP, None),
}


def _split_top_level(text: str) -> List[str]:
    """Split on commas not inside parentheses (for resubmit(,N))."""
    parts: List[str] = []
    depth = 0
    current = ""
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append(current)
            current = ""
        else:
            current += ch
    if current:
        parts.append(current)
    return [p.strip() for p in parts if p.strip()]


def _parse_ip_with_prefix(text: str) -> Tuple[IPv4Address, int]:
    if "/" in text:
        addr, prefix = text.split("/", 1)
        return IPv4Address.parse(addr), int(prefix)
    return IPv4Address.parse(text), 32


def _parse_action(token: str) -> Action:
    token = token.strip()
    lowered = token.lower()
    if lowered == "drop":
        return Drop()
    if lowered == "normal":
        return Normal()
    if lowered == "pop_tunnel":
        return PopTunnel()
    if lowered.startswith("resubmit"):
        inner = token[token.index("(") + 1:token.rindex(")")]
        table = inner.split(",")[-1].strip()
        return GotoTable(int(table))
    if ":" not in token:
        raise FlowTableError(f"unknown action {token!r}")
    verb, _, arg = token.partition(":")
    verb = verb.strip().lower()
    if verb == "output":
        return Output(int(arg))
    if verb == "goto_table":
        return GotoTable(int(arg))
    if verb == "set_tunnel":
        return PushTunnel(int(arg, 0))
    if verb == "mod_dl_dst":
        return SetDstMac(MacAddress.parse(arg))
    if verb == "mod_dl_src":
        return SetSrcMac(MacAddress.parse(arg))
    raise FlowTableError(f"unknown action {token!r}")


def parse_flow(text: str) -> FlowRule:
    """Parse one add-flow string into a :class:`FlowRule`."""
    text = text.strip()
    if "actions=" not in text:
        raise FlowTableError("a flow needs an actions= clause")
    match_part, _, actions_part = text.partition("actions=")
    match_part = match_part.rstrip(", \t")

    table_id = 0
    priority = 100
    kwargs = {}
    for token in _split_top_level(match_part):
        if "=" in token:
            key, _, value = token.partition("=")
            key = key.strip().lower()
            value = value.strip()
            if key == "table":
                table_id = int(value)
            elif key == "priority":
                priority = int(value)
            elif key == "cookie":
                pass  # accepted, table assigns its own
            elif key == "in_port":
                kwargs["in_port"] = int(value)
            elif key == "dl_src":
                kwargs["src_mac"] = MacAddress.parse(value)
            elif key == "dl_dst":
                kwargs["dst_mac"] = MacAddress.parse(value)
            elif key == "dl_vlan":
                kwargs["vlan"] = int(value)
            elif key == "nw_src":
                addr, _prefix = _parse_ip_with_prefix(value)
                kwargs["src_ip"] = addr
            elif key == "nw_dst":
                addr, prefix = _parse_ip_with_prefix(value)
                kwargs["dst_ip"] = addr
                kwargs["dst_ip_prefix"] = prefix
            elif key == "tp_src":
                kwargs["src_port"] = int(value)
            elif key == "tp_dst":
                kwargs["dst_port"] = int(value)
            elif key == "tun_id":
                kwargs["tunnel_id"] = int(value, 0)
            else:
                raise FlowTableError(f"unknown match field {key!r}")
        else:
            keyword = token.strip().lower()
            if keyword not in _PROTO_KEYWORDS:
                raise FlowTableError(f"unknown keyword {token!r}")
            ethertype, proto = _PROTO_KEYWORDS[keyword]
            kwargs["ethertype"] = ethertype
            if proto is not None:
                kwargs["proto"] = proto

    actions = [_parse_action(tok)
               for tok in _split_top_level(actions_part)]
    if not actions:
        raise FlowTableError("empty actions clause")
    return FlowRule(match=FlowMatch(**kwargs), actions=actions,
                    priority=priority, table_id=table_id)


def add_flows(bridge, *flow_strings: str,
              tenant_id: Optional[int] = None) -> List[FlowRule]:
    """Parse and install several flows on a bridge (ovs-ofctl style)."""
    rules = []
    for text in flow_strings:
        rule = parse_flow(text)
        rule.tenant_id = tenant_id
        rules.append(bridge.add_flow(rule))
    return rules
