"""The megaflow/flow cache and its slow path.

OVS-style switches answer most packets from an exact-ish match cache;
a miss *upcalls* to the slow path (classification over the full
OpenFlow pipeline + cache insertion), costing orders of magnitude more
CPU.  This asymmetry is the lever of the Csikor et al. "policy
injection" cloud-dataplane DoS the paper cites as motivation [15]: an
attacker who crafts packets that never hit the cache burns the shared
vswitch's CPU at a tiny packet budget, starving co-located tenants.

The model: an LRU cache keyed by the packet 5-tuple (+ in_port).  Hits
cost nothing extra (the fast-path cost is already in the datapath's
per-pass cycles); misses add ``upcall_cycles``.  Statistics feed the
policy-injection experiment and the accounting of who caused the slow-
path load.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Tuple

from repro.net.packet import Frame

#: Kernel-OVS upcall to ovs-vswitchd and back: ~70 us of CPU at 2.1 GHz.
KERNEL_UPCALL_CYCLES = 150_000.0

#: OVS-DPDK's miss stays in user space (EMC -> dpcls -> ofproto):
#: far cheaper, but still ~20x a fast-path pass.
DPDK_UPCALL_CYCLES = 12_000.0

#: Default cache capacity (the kernel datapath's flow-table scale).
DEFAULT_CAPACITY = 8192


def flow_signature(frame: Frame, in_port: int) -> Tuple:
    """The microflow key: port + L2 + 5-tuple."""
    return (in_port, frame.src_mac, frame.dst_mac, frame.ethertype,
            frame.src_ip, frame.dst_ip, frame.proto,
            frame.src_port, frame.dst_port)


def emc_signature(frame: Frame, in_port: int) -> Tuple:
    """Exact-match-cache key: the microflow signature extended with the
    remaining fields the OpenFlow pipeline can match on (VLAN tag and
    tunnel id), so two frames share a key only if every rule in the
    table necessarily treats them identically."""
    return (in_port, frame.src_mac, frame.dst_mac, frame.ethertype,
            frame.src_ip, frame.dst_ip, frame.proto,
            frame.src_port, frame.dst_port, frame.vlan, frame.tunnel_id)


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class MegaflowCache:
    """LRU microflow cache with upcall cost accounting."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 upcall_cycles: float = KERNEL_UPCALL_CYCLES) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self.upcall_cycles = upcall_cycles
        self.stats = CacheStats()
        self._entries: "OrderedDict[Tuple, int]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup_cost(self, frame: Frame, in_port: int) -> float:
        """Extra cycles this packet costs: 0 on a hit, an upcall on a
        miss (which also installs the entry)."""
        key = flow_signature(frame, in_port)
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] += 1
            self.stats.hits += 1
            return 0.0
        self.stats.misses += 1
        self._entries[key] = 1
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return self.upcall_cycles

    def lookup_cost_batch(self, frame: Frame, in_port: int,
                          n: int) -> float:
        """Extra cycles the *first* of ``n`` same-key packets costs.

        Replicates ``n`` sequential :meth:`lookup_cost` calls: at most
        the first misses (install + upcall), the rest hit.  Frames 2..n
        cost 0 extra, so the caller only needs the one return value.
        """
        key = flow_signature(frame, in_port)
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] += n
            self.stats.hits += n
            return 0.0
        self.stats.misses += 1
        self.stats.hits += n - 1
        self._entries[key] = n
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return self.upcall_cycles

    def invalidate(self) -> None:
        """Flush (flow-table revalidation after rule changes)."""
        self._entries.clear()
