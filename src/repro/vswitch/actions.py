"""Flow rule actions.

The action set covers what the MTS controller needs (paper section 3.2):
rewriting destination/source MACs (ingress/egress chains), outputting to
a port, OVS's NORMAL learning-switch behaviour (the Baseline's default
configuration), and VXLAN-style tunnel encapsulation/decapsulation for
overlay support.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.net.addresses import MacAddress
from repro.net.packet import Frame


class ActionType(Enum):
    OUTPUT = "output"
    SET_DST_MAC = "set_dst_mac"
    SET_SRC_MAC = "set_src_mac"
    PUSH_TUNNEL = "push_tunnel"
    POP_TUNNEL = "pop_tunnel"
    DROP = "drop"
    NORMAL = "normal"
    GOTO_TABLE = "goto_table"
    CONTROLLER = "controller"


#: Outer headers a VXLAN-style encapsulation adds on the wire
#: (outer Ethernet 14 + IP 20 + UDP 8 + VXLAN 8).
TUNNEL_OVERHEAD_BYTES = 50


class Action:
    """Base class; subclasses implement :meth:`apply`."""

    type: ActionType

    def apply(self, frame: Frame) -> None:
        """Mutate the frame.  Output/Drop/Normal are routing decisions and
        are interpreted by the bridge, not applied to the frame."""

    def rewrites(self) -> bool:
        """True if this action costs a header-rewrite's worth of cycles."""
        return False


@dataclass
class Output(Action):
    """Emit the frame on a bridge port."""

    port_no: int
    type: ActionType = ActionType.OUTPUT


@dataclass
class SetDstMac(Action):
    """Rewrite the destination MAC (the ingress-chain step (3) / egress
    step (9) of the paper: point the frame at the tenant VF or the
    external gateway)."""

    mac: MacAddress
    type: ActionType = ActionType.SET_DST_MAC

    def apply(self, frame: Frame) -> None:
        frame.dst_mac = self.mac

    def rewrites(self) -> bool:
        return True


@dataclass
class SetSrcMac(Action):
    """Rewrite the source MAC (used when proxying for the gateway)."""

    mac: MacAddress
    type: ActionType = ActionType.SET_SRC_MAC

    def apply(self, frame: Frame) -> None:
        frame.src_mac = self.mac

    def rewrites(self) -> bool:
        return True


@dataclass
class PushTunnel(Action):
    """Encapsulate into a VXLAN-style tunnel: sets the tunnel id and
    grows the frame by the outer headers."""

    tunnel_id: int
    type: ActionType = ActionType.PUSH_TUNNEL

    def apply(self, frame: Frame) -> None:
        if frame.tunnel_id is not None:
            raise ValueError(f"frame already encapsulated (vni {frame.tunnel_id})")
        frame.tunnel_id = self.tunnel_id
        frame.size_bytes += TUNNEL_OVERHEAD_BYTES

    def rewrites(self) -> bool:
        return True


@dataclass
class PopTunnel(Action):
    """Decapsulate: the VNI moves to the frame's ``decap_vni`` metadata
    (the paper uses the tunnel id plus destination IP to pick the
    tenant VM), and the frame can later be re-encapsulated."""

    type: ActionType = ActionType.POP_TUNNEL

    def apply(self, frame: Frame) -> None:
        if frame.tunnel_id is None:
            raise ValueError("frame is not encapsulated")
        frame.decap_vni = frame.tunnel_id
        frame.tunnel_id = None
        frame.size_bytes -= TUNNEL_OVERHEAD_BYTES
        if frame.size_bytes < 64:
            frame.size_bytes = 64

    def rewrites(self) -> bool:
        return True


@dataclass
class Drop(Action):
    type: ActionType = ActionType.DROP


@dataclass
class Normal(Action):
    """OVS's NORMAL action: forward like a learning L2 switch."""

    type: ActionType = ActionType.NORMAL


@dataclass
class Punt(Action):
    """OpenFlow's output:CONTROLLER -- hand the packet to the bridge's
    registered punt handler (used for the proxy-ARP responder)."""

    type: ActionType = ActionType.CONTROLLER


@dataclass
class GotoTable(Action):
    """Continue the pipeline in a later table (OpenFlow goto_table;
    table ids must strictly increase, which the bridge enforces).
    Matching in the target table sees the packet as already modified
    by this rule's earlier set-field actions."""

    table_id: int
    type: ActionType = ActionType.GOTO_TABLE
