"""OpenFlow-style flow matching.

A :class:`FlowMatch` is a conjunction of field predicates; ``None``
fields are wildcards.  IP destination matching supports prefixes so
controllers can write subnet rules; everything else is exact-match,
which is all the MTS flow programs need (the paper's logical datapaths
key on destination IP -- and tunnel id after decapsulation -- to pick
the tenant VM).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.net.addresses import IPv4Address, MacAddress
from repro.net.packet import EtherType, Frame, IpProto


@dataclass(frozen=True)
class FlowMatch:
    """Match criteria; all set fields must match (AND semantics)."""

    in_port: Optional[int] = None
    src_mac: Optional[MacAddress] = None
    dst_mac: Optional[MacAddress] = None
    ethertype: Optional[EtherType] = None
    vlan: Optional[int] = None
    src_ip: Optional[IPv4Address] = None
    dst_ip: Optional[IPv4Address] = None
    dst_ip_prefix: int = 32
    proto: Optional[IpProto] = None
    src_port: Optional[int] = None
    dst_port: Optional[int] = None
    tunnel_id: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0 <= self.dst_ip_prefix <= 32:
            raise ValueError(f"bad prefix length: {self.dst_ip_prefix}")

    def matches(self, frame: Frame, in_port: int) -> bool:
        if self.in_port is not None and in_port != self.in_port:
            return False
        if self.src_mac is not None and frame.src_mac != self.src_mac:
            return False
        if self.dst_mac is not None and frame.dst_mac != self.dst_mac:
            return False
        if self.ethertype is not None and frame.ethertype != self.ethertype:
            return False
        if self.vlan is not None and frame.vlan != self.vlan:
            return False
        if self.src_ip is not None and frame.src_ip != self.src_ip:
            return False
        if self.dst_ip is not None:
            if frame.dst_ip is None:
                return False
            if not frame.dst_ip.in_subnet(self.dst_ip, self.dst_ip_prefix):
                return False
        if self.proto is not None and frame.proto != self.proto:
            return False
        if self.src_port is not None and frame.src_port != self.src_port:
            return False
        if self.dst_port is not None and frame.dst_port != self.dst_port:
            return False
        if self.tunnel_id is not None and frame.tunnel_id != self.tunnel_id:
            return False
        return True

    def specificity(self) -> int:
        """How many fields are constrained (used for overlap heuristics)."""
        fields: Tuple = (
            self.in_port, self.src_mac, self.dst_mac, self.ethertype,
            self.vlan, self.src_ip, self.dst_ip, self.proto,
            self.src_port, self.dst_port, self.tunnel_id,
        )
        return sum(1 for f in fields if f is not None)

    def overlaps(self, other: "FlowMatch") -> bool:
        """Conservative overlap test: could some frame match both?

        Two matches are disjoint iff some field is constrained to
        different exact values in both (prefixes compared on the shared
        prefix length).  Used by the flow table's conflict checker.
        """
        pairs = [
            (self.in_port, other.in_port),
            (self.src_mac, other.src_mac),
            (self.dst_mac, other.dst_mac),
            (self.ethertype, other.ethertype),
            (self.vlan, other.vlan),
            (self.src_ip, other.src_ip),
            (self.proto, other.proto),
            (self.src_port, other.src_port),
            (self.dst_port, other.dst_port),
            (self.tunnel_id, other.tunnel_id),
        ]
        for mine, theirs in pairs:
            if mine is not None and theirs is not None and mine != theirs:
                return False
        if self.dst_ip is not None and other.dst_ip is not None:
            shared = min(self.dst_ip_prefix, other.dst_ip_prefix)
            if not self.dst_ip.in_subnet(other.dst_ip, shared):
                return False
        return True
