"""Datapath cost and timing models: kernel OVS vs OVS-DPDK.

Whether a vswitch keeps up with the offered load is decided by cycles:
each forwarding *pass* (one traversal of the switch, rx -> lookup ->
actions -> tx) costs

    base + rx_cost(in-port class) + tx_cost(out-port class)
         + rewrite (if the matched rule rewrites headers)
         + poll tax (DPDK: cycles wasted polling every attached port)

and a core supplies ``effective_hz`` cycles per second (a full core, or
a 1/K share in the paper's *shared* resource mode).  The same numbers
drive both the analytic capacity solver and the discrete-event latency
simulation, so the two views cannot drift apart.

Latency extras are datapath-specific:

- the kernel path pays interrupt/softirq wakeup latency per pass,
- the DPDK path pays a poll/drain wait (the l2fwd/OVS-DPDK drain
  interval is 100 us in the paper's setup), and multi-queue ports at
  very low per-queue rates exhibit the ~1 ms drain anomaly the paper
  reports for the Baseline at 10 kpps,
- compartments time-sharing a core see scheduling jitter proportional
  to the number of sharers (the latency-variance effect of Fig. 5(b)).

Concrete constants live in :mod:`repro.perfmodel.calibration`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional

from repro.sim.hashjit import HashJitter
from repro.units import USEC


class DatapathMode(Enum):
    KERNEL = "kernel"
    DPDK = "dpdk"


class PortClass(Enum):
    """What a bridge port is plugged into; picks the rx/tx cost row."""

    PHYSICAL = "physical"        # host-attached physical NIC port
    VF = "vf"                    # SR-IOV VF passed into the vswitch VM
    VHOST = "vhost"              # kernel vhost/virtio tenant port (Baseline)
    DPDK_VHOST_CLIENT = "dpdkvhostuserclient"  # Baseline L3 tenant port


@dataclass
class PassCosts:
    """Per-pass cycle costs and latency parameters of one datapath mode."""

    base_cycles: float
    rx_cycles: Dict[PortClass, float]
    tx_cycles: Dict[PortClass, float]
    rewrite_cycles: float = 0.0
    poll_tax_cycles_per_port: float = 0.0
    #: Fixed per-pass latency (kernel: interrupt + softirq wakeup).
    fixed_latency: float = 0.0
    #: Upper bound of the uniform poll/drain wait (DPDK only).
    drain_jitter: float = 0.0
    #: Scheduling timeslice used for shared-core jitter (a packet may
    #: find the core running another compartment for up to
    #: (sharers-1) x slice; vhost/KVM halt-polling keeps slices short).
    sched_slice: float = 30.0 * USEC
    #: Per-queue offered rate below which a multi-queue DPDK port shows
    #: the ~1 ms drain anomaly (paper section 4.2).
    drain_anomaly_threshold_pps: float = 25_000.0
    #: Mean of the anomaly wait.
    drain_anomaly_wait: float = 1000.0 * USEC

    def pass_cycles(
        self,
        in_class: PortClass,
        out_class: PortClass,
        rewrites: bool,
        num_ports: int = 2,
    ) -> float:
        """Cycles one forwarding pass costs."""
        cycles = (
            self.base_cycles
            + self.rx_cycles[in_class]
            + self.tx_cycles[out_class]
            + self.poll_tax_cycles_per_port * num_ports
        )
        if rewrites:
            cycles += self.rewrite_cycles
        return cycles


@dataclass
class DatapathTiming:
    """Latency components of one pass through a datapath.

    ``service`` occupies the core; the waits do not (they are pure
    latency, overlappable across packets).
    """

    service: float
    fixed_wait: float = 0.0
    sched_wait: float = 0.0
    drain_wait: float = 0.0

    @property
    def total(self) -> float:
        return self.service + self.fixed_wait + self.sched_wait + self.drain_wait


class DatapathModel:
    """Computes per-pass cycles and latency for one bridge.

    The bridge owns one of these; ``mode`` selects kernel vs DPDK
    behaviour and ``costs`` carries the calibrated constants.
    """

    def __init__(self, mode: DatapathMode, costs: PassCosts) -> None:
        self.mode = mode
        self.costs = costs
        #: Set by experiments so the DES can reproduce rate-dependent
        #: effects (the DPDK multi-queue drain anomaly) without modelling
        #: every empty poll iteration.
        self.offered_rate_hint_pps: Optional[float] = None

    def pass_cycles(self, in_class: PortClass, out_class: PortClass,
                    rewrites: bool, num_ports: int) -> float:
        return self.costs.pass_cycles(in_class, out_class, rewrites, num_ports)

    def timing(
        self,
        cycles: float,
        effective_hz: float,
        sharers: int,
        num_queues: int,
        rng: Optional[random.Random] = None,
        jitter: Optional[HashJitter] = None,
        key: int = 0,
    ) -> DatapathTiming:
        """Latency of one pass on a core share with ``sharers`` tenants
        of the core and the datapath spread over ``num_queues`` queues.

        Variance comes either from ``rng`` (draw-order dependent, the
        historical behaviour) or from ``jitter`` keyed by ``key`` (the
        frame id): a pure per-frame function, identical no matter how
        passes are interleaved, which is what lets the batched fast
        path reproduce the per-frame oracle bit for bit.
        """
        service = cycles / effective_hz
        timing = DatapathTiming(service=service)
        if jitter is not None:
            if self.mode == DatapathMode.KERNEL:
                timing.fixed_wait = self.costs.fixed_latency * (
                    1.0 + 0.25 * jitter.unit(key, HashJitter.SITE_FIXED_WAIT)
                )
            else:
                timing.drain_wait = self.costs.drain_jitter * jitter.unit(
                    key, HashJitter.SITE_DRAIN_WAIT)
                anomaly = self._anomaly_scale(num_queues)
                if anomaly:
                    timing.drain_wait += anomaly * (
                        0.6 + 0.8 * jitter.unit(
                            key, HashJitter.SITE_DRAIN_ANOMALY))
            if sharers > 1:
                timing.sched_wait = (
                    (sharers - 1) * self.costs.sched_slice
                    * jitter.unit(key, HashJitter.SITE_SCHED_WAIT))
            return timing
        assert rng is not None
        if self.mode == DatapathMode.KERNEL:
            # Interrupt + softirq wakeup, with its natural variance
            # (mean 1.125x the nominal figure).
            timing.fixed_wait = self.costs.fixed_latency * (
                1.0 + rng.uniform(0.0, 0.25)
            )
        else:
            timing.drain_wait = rng.uniform(0.0, self.costs.drain_jitter)
            anomaly = self._anomaly_scale(num_queues)
            if anomaly:
                timing.drain_wait += rng.uniform(0.6, 1.4) * anomaly
        if sharers > 1:
            # While K compartments time-share a core, a pass may find the
            # core scheduled elsewhere for up to (K-1) timeslices.
            timing.sched_wait = rng.uniform(0.0, (sharers - 1) * self.costs.sched_slice)
        return timing

    def timing_batch(
        self,
        first_cycles: float,
        cycles: float,
        effective_hz: float,
        sharers: int,
        num_queues: int,
        jitter: HashJitter,
        keys: "list[int]",
        key_shift_or: int,
    ) -> "tuple[list[float], list[float]]":
        """Vectorized :meth:`timing` for a same-flow burst.

        Returns parallel ``(service, wait)`` lists where ``wait`` is the
        summed fixed/sched/drain latency.  Draw-for-draw identical to
        per-member :meth:`timing` calls with ``key=(k << 6) | mask``
        (``key_shift_or`` packs the ingress-port mask) -- the jitter is
        a pure function of the key, so batching changes nothing.  The
        first member may carry extra cycles (megaflow miss walk).
        """
        n = len(keys)
        svc = [cycles / effective_hz] * n
        if first_cycles != cycles:
            svc[0] = first_cycles / effective_hz
        waits = [0.0] * n
        unit = jitter.unit
        if self.mode == DatapathMode.KERNEL:
            fixed = self.costs.fixed_latency
            site = HashJitter.SITE_FIXED_WAIT
            for i in range(n):
                waits[i] = fixed * (
                    1.0 + 0.25 * unit((keys[i] << 6) | key_shift_or, site))
        else:
            drain = self.costs.drain_jitter
            site = HashJitter.SITE_DRAIN_WAIT
            anomaly = self._anomaly_scale(num_queues)
            if anomaly:
                site2 = HashJitter.SITE_DRAIN_ANOMALY
                for i in range(n):
                    key = (keys[i] << 6) | key_shift_or
                    waits[i] = (drain * unit(key, site)
                                + anomaly * (0.6 + 0.8 * unit(key, site2)))
            else:
                for i in range(n):
                    waits[i] = drain * unit(
                        (keys[i] << 6) | key_shift_or, site)
        if sharers > 1:
            slice_span = (sharers - 1) * self.costs.sched_slice
            site = HashJitter.SITE_SCHED_WAIT
            for i in range(n):
                waits[i] += slice_span * unit(
                    (keys[i] << 6) | key_shift_or, site)
        return svc, waits

    def _anomaly_scale(self, num_queues: int) -> float:
        """Mean wait of the ~1 ms Baseline multi-queue effect at low
        per-queue rates (0 when the anomaly does not apply)."""
        if num_queues < 2 or self.offered_rate_hint_pps is None:
            return 0.0
        per_queue = self.offered_rate_hint_pps / num_queues
        if per_queue >= self.costs.drain_anomaly_threshold_pps:
            return 0.0
        return self.costs.drain_anomaly_wait
