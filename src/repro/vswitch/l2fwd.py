"""The (adapted) DPDK l2fwd application run inside tenant VMs.

Under MTS, tenant VMs forward benchmark traffic with DPDK's l2fwd
sample app, *adapted to rewrite the correct destination MAC address*
(paper section 4, Setup): a frame arriving on one VF is bounced out the
paired VF with the destination MAC set to the vswitch's gateway VF on
that side, so the NIC's VEB carries it back to the vswitch VM.

The app polls with the default drain interval (100 us) and burst size
(32); at the paper's 10 kpps latency-test rate the dominant latency
contribution is the drain wait, which we model as a uniform draw over
the drain interval.  The tenant's two dedicated cores make CPU capacity
a non-issue (that is exactly why the paper gives tenants two cores), so
the app does not charge a compute share.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.net.addresses import MacAddress
from repro.net.interfaces import PortPair
from repro.net.packet import Frame, FrameBatch
from repro.sim.hashjit import HashJitter
from repro.sim.kernel import Simulator
from repro.units import USEC

#: l2fwd defaults from the paper's setup (DPDK 17.11).
DRAIN_INTERVAL = 100.0 * USEC
BURST_SIZE = 32

#: Per-frame processing cost of the poll-mode forwarder itself.
L2FWD_CYCLES = 180.0


@dataclass
class _Route:
    out_index: int
    new_dst_mac: MacAddress
    new_src_mac: Optional[MacAddress] = None


class L2Fwd:
    """Poll-mode port-to-port forwarder with MAC rewriting."""

    def __init__(
        self,
        name: str,
        sim: Optional[Simulator] = None,
        freq_hz: float = 2.1e9,
        rng: Optional[random.Random] = None,
        drain_interval: float = DRAIN_INTERVAL,
    ) -> None:
        self.name = name
        self.sim = sim
        self.freq_hz = freq_hz
        self.rng = rng if rng is not None else random.Random(0)
        #: Drain wait is keyed per frame so the batched path reproduces
        #: the per-frame oracle draw for draw.
        self._jitter = HashJitter.from_name(name)
        self.drain_interval = drain_interval
        self._ports: Dict[int, PortPair] = {}
        self._routes: Dict[int, _Route] = {}
        #: Bumped on every route change; cached chain-route decisions
        #: elsewhere key their validity on it.
        self.epoch = 0
        self.forwarded = 0
        self.unrouted = 0
        self._rx_stamp = f"{name}.rx"
        self._tx_stamp = f"{name}.tx"

    def add_port(self, pair: PortPair) -> int:
        index = len(self._ports)
        self._ports[index] = pair
        pair.rx.connect(lambda frame, i=index: self._ingress(i, frame))
        pair.rx.connect_batch(
            lambda batch, i=index: self._ingress_batch(i, batch))
        return index

    def set_route(self, in_index: int, out_index: int,
                  new_dst_mac: MacAddress,
                  new_src_mac: Optional[MacAddress] = None) -> None:
        """Program the adapted l2fwd mapping for one rx port."""
        if in_index not in self._ports or out_index not in self._ports:
            raise KeyError(f"unknown port index in route {in_index}->{out_index}")
        self._routes[in_index] = _Route(out_index, new_dst_mac, new_src_mac)
        self.epoch += 1

    def _ingress(self, in_index: int, frame: Frame) -> None:
        frame.stamp(self._rx_stamp)
        route = self._routes.get(in_index)
        if route is None:
            self.unrouted += 1
            return
        delay = L2FWD_CYCLES / self.freq_hz
        delay += self.drain_interval * self._jitter.unit(
            frame.frame_id, HashJitter.SITE_L2FWD_DRAIN)
        frame.charge("tenant", delay)
        if self.sim is not None:
            self.sim.call_later(delay, self._forward, route, frame)
        else:
            self._forward(route, frame)

    def _forward(self, route: _Route, frame: Frame) -> None:
        frame.dst_mac = route.new_dst_mac
        if route.new_src_mac is not None:
            frame.src_mac = route.new_src_mac
        self.forwarded += 1
        frame.stamp(self._tx_stamp)
        self._ports[route.out_index].transmit(frame)

    def _ingress_batch(self, in_index: int, batch: FrameBatch) -> None:
        """Batched forward: per-member drain draws (identical to the
        per-frame path -- keyed by frame id), one MAC rewrite on the
        exemplar, one downstream hand-off."""
        route = self._routes.get(in_index)
        n = len(batch)
        if route is None:
            self.unrouted += n
            return
        base = L2FWD_CYCLES / self.freq_hz
        drain = self.drain_interval
        unit = self._jitter.unit
        site = HashJitter.SITE_L2FWD_DRAIN
        batch.advance_per_member(
            [base + drain * unit(fid, site) for fid in batch.frame_ids])
        frame = batch.frame
        frame.dst_mac = route.new_dst_mac
        if route.new_src_mac is not None:
            frame.src_mac = route.new_src_mac
        self.forwarded += n
        self._ports[route.out_index].transmit_batch(batch, self.sim)
