"""Virtual switches: flow tables, OVS-like bridges, datapath models.

- :mod:`repro.vswitch.matches` / :mod:`repro.vswitch.actions` /
  :mod:`repro.vswitch.flowtable` implement an OpenFlow-style pipeline
  (priority match -> action list) with per-tenant logical datapaths.
- :mod:`repro.vswitch.datapath` provides the two packet-processing
  engines the paper evaluates: the interrupt-driven kernel datapath and
  the DPDK poll-mode datapath, both as calibrated cost models.
- :mod:`repro.vswitch.ovs` is the OVS-like bridge object the controller
  programs (add-port / add-flow, NORMAL action, statistics).
- :mod:`repro.vswitch.linux_bridge` is the learning bridge tenant VMs run
  in the Baseline; :mod:`repro.vswitch.l2fwd` is the DPDK l2fwd app the
  tenant VMs run under MTS (adapted to rewrite destination MACs).
"""

from repro.vswitch.actions import (
    Action,
    ActionType,
    Drop,
    GotoTable,
    Normal,
    Output,
    PopTunnel,
    PushTunnel,
    Punt,
    SetDstMac,
    SetSrcMac,
)
from repro.vswitch.megaflow import MegaflowCache
from repro.vswitch.ofctl import add_flows, parse_flow
from repro.vswitch.datapath import DatapathMode, PassCosts, PortClass
from repro.vswitch.flowtable import FlowRule, FlowTable
from repro.vswitch.l2fwd import L2Fwd
from repro.vswitch.linux_bridge import LinuxBridge
from repro.vswitch.matches import FlowMatch
from repro.vswitch.ovs import BridgePort, OvsBridge

__all__ = [
    "Action",
    "ActionType",
    "Drop",
    "GotoTable",
    "MegaflowCache",
    "Normal",
    "Punt",
    "add_flows",
    "parse_flow",
    "Output",
    "PopTunnel",
    "PushTunnel",
    "SetDstMac",
    "SetSrcMac",
    "DatapathMode",
    "PassCosts",
    "PortClass",
    "FlowRule",
    "FlowTable",
    "L2Fwd",
    "LinuxBridge",
    "FlowMatch",
    "BridgePort",
    "OvsBridge",
]
