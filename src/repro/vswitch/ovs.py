"""An OVS-like bridge: ports, flow pipeline, NORMAL switching, timing.

The bridge is the object the MTS controller programs (the simulated
equivalents of ``ovs-vsctl add-port`` and ``ovs-ofctl add-flow``).  It
can run in two modes:

- **functional** (no simulator / no compute attached): frames are
  processed synchronously with zero delay -- used by unit tests and the
  security analysis;
- **timed** (simulator + compute shares attached): each forwarding pass
  is served by a per-core service station whose service time comes from
  the calibrated :class:`~repro.vswitch.datapath.DatapathModel`; frames
  are dispatched to stations by flow hash, modelling RSS across the
  bridge's cores (the paper's observation that multiple cores act as a
  load balancer).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import billing as _billing
from repro import obs as _obs
from repro.errors import ConfigurationError
from repro.host.cpu import ComputeShare
from repro.net.addresses import MacAddress
from repro.net.interfaces import PortPair
from repro.net.packet import Frame
from repro.sim.kernel import Simulator
from repro.sim.resources import FairServiceStation

#: Per-port rx ring depth when the bridge runs in timed mode.
RX_RING_DEPTH = 512
from repro.vswitch.actions import Action, ActionType
from repro.vswitch.datapath import DatapathMode, DatapathModel, PassCosts, PortClass
from repro.vswitch.flowtable import FlowRule, FlowTable
from repro.vswitch.megaflow import MegaflowCache, emc_signature


@dataclass
class BridgePort:
    port_no: int
    name: str
    port_class: PortClass
    pair: PortPair
    rx_frames: int = 0
    tx_frames: int = 0


@dataclass
class _ForwardPlan:
    """Outcome of the pipeline for one frame: egress ports + costing."""

    frame: Frame
    in_port: int
    out_ports: List[int] = field(default_factory=list)
    rewrites: bool = False
    dropped: bool = False
    drop_reason: Optional[str] = None


#: Step opcodes of a cached pass plan (see :class:`_PlanTemplate`).
_HIT, _MISS, _APPLY = 0, 1, 2


class _PlanTemplate:
    """A memoized pipeline outcome for one exact header signature.

    ``steps`` replays the pipeline's observable side effects in order --
    table/rule counter bumps interleaved with header-rewrite actions, so
    per-rule ``n_bytes`` sees the same frame size the uncached walk saw.
    Plans containing NORMAL (MAC-table dependent) or CONTROLLER
    (punt-handler dependent) actions are never cached.
    """

    __slots__ = ("steps", "out_ports", "rewrites", "dropped", "drop_kind")

    def __init__(self, steps, out_ports, rewrites, dropped, drop_kind):
        self.steps = steps
        self.out_ports = out_ports
        self.rewrites = rewrites
        self.dropped = dropped
        self.drop_kind = drop_kind


#: Bound on the bridge's pass-plan cache (same scale as the EMC).
PLAN_CACHE_CAPACITY = 8192


class OvsBridge:
    """A programmable learning/flow switch."""

    def __init__(
        self,
        name: str,
        mode: DatapathMode = DatapathMode.KERNEL,
        sim: Optional[Simulator] = None,
        costs: Optional[PassCosts] = None,
        rng: Optional[random.Random] = None,
        cache: Optional["MegaflowCache"] = None,
    ) -> None:
        self.name = name
        self.sim = sim
        self.rng = rng if rng is not None else random.Random(0)
        #: Exact-match cache over whole pipeline passes: header signature
        #: -> replayable plan.  Flushed whenever any table changes.
        self._plan_cache: Dict[tuple, _PlanTemplate] = {}
        self.plan_cache_hits = 0
        self.plan_cache_invalidations = 0
        #: OpenFlow-style multi-table pipeline; table 0 always exists
        #: and is where processing starts.
        self.tables: Dict[int, FlowTable] = {
            0: self._new_table(f"{name}.table0")
        }
        self.model = DatapathModel(mode, costs) if costs is not None else None
        self.mode = mode
        #: Optional microflow cache: misses add upcall cycles to the
        #: pass (timed mode only).
        self.cache = cache
        #: Handler for CONTROLLER-punted frames: ``fn(frame, in_port)``.
        self.punt_handler = None
        self.punted = 0
        self._ports: Dict[int, BridgePort] = {}
        self._next_port_no = 1
        self._mac_table: Dict[MacAddress, int] = {}
        self._stations: List[FairServiceStation] = []
        self._shares: List[ComputeShare] = []
        self.drops_no_match = 0
        self.drops_action = 0
        self.passes = 0

    # -- configuration (ovs-vsctl equivalents) ---------------------------

    def add_port(self, name: str, port_class: PortClass, pair: PortPair) -> BridgePort:
        """Attach a port; the bridge becomes the consumer of ``pair``."""
        port = BridgePort(self._next_port_no, name, port_class, pair)
        self._next_port_no += 1
        self._ports[port.port_no] = port
        pair.rx.connect(lambda frame, p=port: self._ingress(p, frame))
        return port

    def del_port(self, port_no: int) -> None:
        port = self._ports.pop(port_no, None)
        if port is not None:
            port.pair.rx.connect(lambda frame: None)
        self._mac_table = {m: p for m, p in self._mac_table.items() if p != port_no}

    def port(self, port_no: int) -> BridgePort:
        return self._ports[port_no]

    def port_by_name(self, name: str) -> BridgePort:
        for port in self._ports.values():
            if port.name == name:
                return port
        raise ConfigurationError(f"bridge {self.name} has no port {name!r}")

    def ports(self) -> List[BridgePort]:
        return list(self._ports.values())

    @property
    def table(self) -> FlowTable:
        """Table 0 (the single-table view most callers use)."""
        return self.tables[0]

    def _new_table(self, name: str) -> FlowTable:
        table = FlowTable(name=name)
        table.add_listener(self._invalidate_plans)
        return table

    def _invalidate_plans(self) -> None:
        """Rule change in any table: flush every cached pass plan."""
        if self._plan_cache:
            self.plan_cache_invalidations += 1
            self._plan_cache.clear()

    def flow_table(self, table_id: int) -> FlowTable:
        """Get (creating if needed) a pipeline table."""
        if table_id < 0:
            raise ConfigurationError("table ids are non-negative")
        if table_id not in self.tables:
            self.tables[table_id] = self._new_table(
                f"{self.name}.table{table_id}")
        return self.tables[table_id]

    def add_flow(self, rule: FlowRule) -> FlowRule:
        """ovs-ofctl add-flow (honours the rule's ``table_id``)."""
        for action in rule.actions:
            if (action.type == ActionType.GOTO_TABLE
                    and action.table_id <= rule.table_id):  # type: ignore[attr-defined]
                raise ConfigurationError(
                    f"goto_table must increase: {rule.table_id} -> "
                    f"{action.table_id}")  # type: ignore[attr-defined]
        return self.flow_table(rule.table_id).add(rule)

    def set_compute(self, shares: List[ComputeShare]) -> None:
        """Pin the datapath onto CPU shares (one service station each)."""
        if self.sim is None or self.model is None:
            raise ConfigurationError(
                f"bridge {self.name}: compute requires a simulator and costs"
            )
        self._shares = list(shares)
        self._stations = [
            FairServiceStation(
                self.sim,
                service_time=lambda plan: plan._service_time,
                on_done=self._execute,
                queue_capacity=RX_RING_DEPTH,
                name=f"{self.name}.core{i}",
            )
            for i in range(len(shares))
        ]

    @property
    def num_cores(self) -> int:
        return len(self._shares)

    @property
    def compute_shares(self):
        """The CPU shares the datapath runs on (read-only view)."""
        return tuple(self._shares)

    # -- dataplane ---------------------------------------------------------

    def _ingress(self, port: BridgePort, frame: Frame) -> None:
        port.rx_frames += 1
        frame.stamp(f"{self.name}.p{port.port_no}.rx")
        key = emc_signature(frame, port.port_no)
        template = self._plan_cache.get(key)
        _obs.TRACER.bridge_rx(self.name, frame, port.port_no,
                              template is not None)
        if template is not None:
            self.plan_cache_hits += 1
            plan = self._replay(template, port, frame)
        else:
            plan = self._pipeline(port, frame, cache_key=key)
        if plan.dropped:
            _obs.TRACER.drop(self.name, frame, plan.drop_reason or "consumed")
            if _billing.METER.enabled:
                _billing.METER.drop(frame.tenant_id,
                                    plan.drop_reason or "consumed")
            return
        self.passes += 1
        if not self._stations:
            self._execute(plan)
            return
        self._dispatch(plan)

    #: Upper bound on goto_table hops (tables must strictly increase,
    #: so this is a safety net, not a semantic limit).
    MAX_PIPELINE_DEPTH = 16

    def _replay(self, template: _PlanTemplate, port: BridgePort,
                frame: Frame) -> _ForwardPlan:
        """Apply a cached pass plan to a fresh frame, reproducing the
        uncached walk's counters and header mutations exactly."""
        self._learn(frame.src_mac, port.port_no)
        for op, target, rule in template.steps:
            if op == _HIT:
                target.lookups += 1
                rule.n_packets += 1
                rule.n_bytes += frame.wire_size()
                _obs.TRACER.flow_lookup(target.name, frame, port.port_no,
                                        rule, "plan")
            elif op == _MISS:
                target.lookups += 1
                target.misses += 1
                _obs.TRACER.flow_lookup(target.name, frame, port.port_no,
                                        None, "plan")
            else:
                target.apply(frame)
        if template.drop_kind == "no_match":
            self.drops_no_match += 1
        elif template.drop_kind == "action":
            self.drops_action += 1
        reason = template.drop_kind
        if reason is None and template.dropped:
            reason = "no_egress"
        return _ForwardPlan(frame=frame, in_port=port.port_no,
                            out_ports=list(template.out_ports),
                            rewrites=template.rewrites,
                            dropped=template.dropped,
                            drop_reason=reason)

    def _pipeline(self, port: BridgePort, frame: Frame,
                  cache_key: Optional[tuple] = None) -> _ForwardPlan:
        """Run the (multi-table) flow pipeline.

        Header rewrites apply immediately, so later tables match the
        modified packet, as OpenFlow specifies.  Timing happens later;
        mutating the in-flight frame early is unobservable.

        When ``cache_key`` is given and the walk only touched
        header-signature-determined state, the outcome is memoized so
        the next frame with the same signature replays it.
        """
        plan = _ForwardPlan(frame=frame, in_port=port.port_no)
        self._learn(frame.src_mac, port.port_no)
        steps: list = []
        cacheable = cache_key is not None
        drop_kind: Optional[str] = None
        table_id: Optional[int] = 0
        depth = 0
        while table_id is not None:
            depth += 1
            if depth > self.MAX_PIPELINE_DEPTH:
                raise ConfigurationError(
                    f"pipeline deeper than {self.MAX_PIPELINE_DEPTH} tables")
            table = self.tables.get(table_id)
            rule = (table.lookup(frame, port.port_no)
                    if table is not None else None)
            if rule is None:
                if table is not None:
                    steps.append((_MISS, table, None))
                self.drops_no_match += 1
                plan.dropped = True
                plan.drop_reason = drop_kind = "no_match"
                break
            steps.append((_HIT, table, rule))
            table_id = None
            for action in rule.actions:
                if action.type == ActionType.DROP:
                    self.drops_action += 1
                    plan.dropped = True
                    plan.drop_reason = drop_kind = "action"
                    break
                if action.type == ActionType.OUTPUT:
                    plan.out_ports.append(action.port_no)  # type: ignore[attr-defined]
                elif action.type == ActionType.NORMAL:
                    cacheable = False
                    plan.out_ports.extend(
                        self._normal_lookup(frame, port.port_no))
                elif action.type == ActionType.GOTO_TABLE:
                    table_id = action.table_id  # type: ignore[attr-defined]
                elif action.type == ActionType.CONTROLLER:
                    cacheable = False
                    self.punted += 1
                    if self.punt_handler is not None:
                        self.punt_handler(frame, port.port_no)
                    plan.dropped = True  # consumed by the slow path
                    plan.drop_reason = "punt"
                    break
                else:
                    steps.append((_APPLY, action, None))
                    action.apply(frame)
                    if action.rewrites():
                        plan.rewrites = True
            if plan.dropped:
                break
        if not plan.dropped and not plan.out_ports:
            plan.dropped = True
            plan.drop_reason = "no_egress"
        if cacheable:
            if len(self._plan_cache) >= PLAN_CACHE_CAPACITY:
                self._plan_cache.pop(next(iter(self._plan_cache)))
            self._plan_cache[cache_key] = _PlanTemplate(
                tuple(steps), tuple(plan.out_ports), plan.rewrites,
                plan.dropped, drop_kind)
        return plan

    def _learn(self, mac: MacAddress, port_no: int) -> None:
        if not mac.is_multicast:
            self._mac_table[mac] = port_no

    def _normal_lookup(self, frame: Frame, in_port: int) -> List[int]:
        if frame.dst_mac.is_multicast:
            return [p for p in self._ports if p != in_port]
        hit = self._mac_table.get(frame.dst_mac)
        if hit is None:
            return [p for p in self._ports if p != in_port]
        return [] if hit == in_port else [hit]

    def _dispatch(self, plan: _ForwardPlan) -> None:
        """Timed mode: charge the pass to a core and delay accordingly."""
        assert self.model is not None and self.sim is not None
        index = plan.frame.flow_id % len(self._stations)
        share = self._shares[index]
        out_class = self._ports[plan.out_ports[0]].port_class
        in_class = self._ports[plan.in_port].port_class
        cycles = self.model.pass_cycles(
            in_class, out_class, plan.rewrites, num_ports=len(self._ports)
        )
        if self.cache is not None:
            cycles += self.cache.lookup_cost(plan.frame, plan.in_port)
        timing = self.model.timing(
            cycles,
            effective_hz=share.effective_hz(),
            sharers=share.sharers,
            num_queues=len(self._stations),
            rng=self.rng,
        )
        plan._service_time = timing.service  # type: ignore[attr-defined]
        plan._t_dispatch = self.sim.now  # type: ignore[attr-defined]
        plan.frame.charge("vswitch.service", timing.service)
        wait = timing.fixed_wait + timing.sched_wait + timing.drain_wait
        plan._pass_wait = wait  # type: ignore[attr-defined]
        plan.frame.charge("vswitch.wait", wait)
        if wait > 0:
            self.sim.call_later(wait, self._submit, index, plan)
        else:
            self._submit(index, plan)

    def _submit(self, index: int, plan: _ForwardPlan) -> None:
        # Keyed by ingress port: each port's rx ring gets a fair share
        # of the core under overload (NAPI/PMD round-robin polling).
        self._stations[index].submit(plan.in_port, plan)

    def rx_drops(self) -> int:
        """Frames dropped at full rx rings (timed mode)."""
        return sum(s.dropped() for s in self._stations)

    def _execute(self, plan: _ForwardPlan) -> None:
        """Apply mutations and transmit on the egress port(s)."""
        meter = _billing.METER
        if meter.enabled:
            # Exact per-packet CPU attribution: the station spent the
            # plan's calibrated service time on this tenant's frame.
            # Functional mode (no stations) never costs service time.
            service = getattr(plan, "_service_time", None)
            if service is not None:
                meter.cpu(plan.frame.tenant_id, service)
        if self.sim is not None and hasattr(plan, "_t_dispatch"):
            # This pass took wait + queue + service; anything beyond the
            # known wait and service components is rx-ring queueing.
            elapsed = self.sim.now - plan._t_dispatch
            queued = max(0.0, elapsed - plan._pass_wait - plan._service_time)
            plan.frame.charge("vswitch.queue", queued)
        for i, port_no in enumerate(plan.out_ports):
            port = self._ports.get(port_no)
            if port is None:
                continue
            frame = plan.frame if i == len(plan.out_ports) - 1 else plan.frame.copy()
            port.tx_frames += 1
            frame.stamp(f"{self.name}.p{port_no}.tx")
            _obs.TRACER.bridge_tx(self.name, frame, port_no)
            port.pair.transmit(frame)

    # -- introspection -----------------------------------------------------

    def utilization(self, elapsed: float) -> float:
        """Mean core utilization over ``elapsed`` seconds (timed mode)."""
        if not self._stations:
            return 0.0
        total = sum(s.utilization(elapsed) for s in self._stations)
        return total / len(self._stations)

    def dump_flows(self) -> str:
        chunks = []
        for table_id in sorted(self.tables):
            table = self.tables[table_id]
            if len(table):
                chunks.append(f"table {table_id}:\n{table.dump()}")
        return "\n".join(chunks)
