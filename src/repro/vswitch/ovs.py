"""An OVS-like bridge: ports, flow pipeline, NORMAL switching, timing.

The bridge is the object the MTS controller programs (the simulated
equivalents of ``ovs-vsctl add-port`` and ``ovs-ofctl add-flow``).  It
can run in two modes:

- **functional** (no simulator / no compute attached): frames are
  processed synchronously with zero delay -- used by unit tests and the
  security analysis;
- **timed** (simulator + compute shares attached): each forwarding pass
  is served by a per-core service station whose service time comes from
  the calibrated :class:`~repro.vswitch.datapath.DatapathModel`; frames
  are dispatched to stations by flow hash, modelling RSS across the
  bridge's cores (the paper's observation that multiple cores act as a
  load balancer).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import billing as _billing
from repro import obs as _obs
from repro.errors import ConfigurationError
from repro.host.cpu import ComputeShare
from repro.net.addresses import MacAddress
from repro.net.interfaces import PortPair
from repro.net.packet import Frame, FrameBatch
from repro.sim.hashjit import HashJitter
from repro.sim.kernel import Simulator
from repro.sim.resources import BatchFairStation, FairServiceStation

#: Per-port rx ring depth when the bridge runs in timed mode.
RX_RING_DEPTH = 512
from repro.vswitch.actions import Action, ActionType
from repro.vswitch.datapath import DatapathMode, DatapathModel, PassCosts, PortClass
from repro.vswitch.flowtable import FlowRule, FlowTable
from repro.vswitch.megaflow import MegaflowCache, emc_signature


@dataclass
class BridgePort:
    port_no: int
    name: str
    port_class: PortClass
    pair: PortPair
    rx_frames: int = 0
    tx_frames: int = 0
    #: Pre-built trace-stamp labels (the dataplane stamps every frame;
    #: building the f-string per packet is measurable overhead).
    rx_stamp: str = ""
    tx_stamp: str = ""


@dataclass
class _ForwardPlan:
    """Outcome of the pipeline for one frame: egress ports + costing."""

    frame: Frame
    in_port: int
    out_ports: List[int] = field(default_factory=list)
    rewrites: bool = False
    dropped: bool = False
    drop_reason: Optional[str] = None


#: Step opcodes of a cached pass plan (see :class:`_PlanTemplate`).
_HIT, _MISS, _APPLY = 0, 1, 2


class _PlanTemplate:
    """A memoized pipeline outcome for one exact header signature.

    ``steps`` replays the pipeline's observable side effects in order --
    table/rule counter bumps interleaved with header-rewrite actions, so
    per-rule ``n_bytes`` sees the same frame size the uncached walk saw.
    Plans containing NORMAL (MAC-table dependent) or CONTROLLER
    (punt-handler dependent) actions are never cached.
    """

    __slots__ = ("steps", "out_ports", "rewrites", "dropped", "drop_kind")

    def __init__(self, steps, out_ports, rewrites, dropped, drop_kind):
        self.steps = steps
        self.out_ports = out_ports
        self.rewrites = rewrites
        self.dropped = dropped
        self.drop_kind = drop_kind


#: Bound on the bridge's pass-plan cache (same scale as the EMC).
PLAN_CACHE_CAPACITY = 8192

_INF = float("inf")


class _FusedRoute:
    """The analytically-known continuation of a forwarding plan.

    Built by the deployment's route resolver when a plan's single
    egress leads -- through NIC/VEB/PCIe legs and at most one tenant
    forwarder -- deterministically to another (or the same) bridge's
    batch station, with a warm plan template and megaflow entry waiting
    there and an unbounded flush margin beyond it.  A fused pass group
    uses it to *pre-register* each member at the downstream station the
    moment the member commits upstream, deferring the physical chain
    traversal to one accounting sweep per burst.
    """

    __slots__ = ("delay_const", "drain_interval", "drain_unit",
                 "drain_site", "app", "app_epoch", "bridge",
                 "in_port_no", "template", "template_key", "flow_key",
                 "out_ports", "model", "share", "num_queues",
                 "num_ports", "jitter", "key_or", "station", "cycles")


class _FusedSink:
    """Accumulates one fused burst at the downstream bridge's station.

    Grows by one member per upstream commit (identity + service time
    captured *at commit*, before any later hop re-sorts batch arrays)
    and is sealed when the upstream group can no longer grow.  The
    exemplar header arrives later, on the burst's single accounting
    traversal of the physical chain; by then every member is already
    admitted (or ring-dropped) downstream.  Duck-types the group
    protocol of :class:`~repro.sim.resources.BatchFairStation` and the
    fields :meth:`OvsBridge._execute_batch` reads.
    """

    #: Terminal: the sub-batch this sink flushes is ordinary traffic.
    sink = None
    margin = _INF

    __slots__ = ("route", "bridge", "key", "out_ports", "svc", "batch",
                 "_ids", "_created", "_done_idx", "_done_ts",
                 "_submitted", "_resolved", "_sealed")

    def __init__(self, route: _FusedRoute) -> None:
        self.route = route
        self.bridge = route.bridge
        self.key = route.in_port_no
        self.out_ports = route.out_ports
        self.svc: List[float] = []
        self.batch: Optional[FrameBatch] = None
        self._ids: List[int] = []
        self._created: List[float] = []
        self._done_idx: List[int] = []
        self._done_ts: List[float] = []
        self._submitted = 0
        self._resolved = 0
        self._sealed = False

    def append(self, frame_id: int, created_at: float,
               service: float) -> int:
        j = self._submitted
        self._submitted = j + 1
        self._ids.append(frame_id)
        self._created.append(created_at)
        self.svc.append(service)
        return j

    def attach_part(self, part: FrameBatch) -> None:
        """Bind the accounting traversal's exemplar header.

        Member arrays alias the sink's own lists, so a part that
        arrives while the upstream group is still committing (end-of-run
        drain) automatically covers later members too.
        """
        if self.batch is None:
            self.batch = FrameBatch(part.frame, self._ids, [],
                                    self._created)

    def seal(self) -> None:
        """Upstream group exhausted: the member set is final."""
        self._sealed = True
        if self._resolved == self._submitted:
            self.flush(self.bridge.sim.now)
            try:
                self.route.station._dirty.remove(self)
            except ValueError:
                pass

    # -- station group protocol ---------------------------------------

    def commit(self, j: int, t: float) -> bool:
        self._resolved += 1
        self._done_idx.append(j)
        self._done_ts.append(t)
        return len(self._done_idx) == 1

    def drop(self, j: int) -> None:
        self._resolved += 1

    def is_done(self) -> bool:
        return self._sealed and self._resolved == self._submitted

    def oldest_commit(self) -> Optional[float]:
        return self._done_ts[0] if self._done_ts else None

    def flush(self, now: float) -> None:
        if self._done_idx and self.batch is not None:
            self.bridge._execute_batch(self)
            self._done_idx = []
            self._done_ts = []


class _BatchPassGroup:
    """One batched burst's passage through the bridge's service station.

    Registered with a :class:`BatchFairStation` as a whole: the station
    admits members at their own arrival timestamps (``sub_ts``), serves
    them under rx-ring fairness, and hands finished members back via
    ``commit`` in finish order (so their timestamps arrive sorted).
    Committed members re-accumulate here until ``flush`` emits them
    downstream as one sub-batch through the bridge's ``_execute_batch``.
    """

    __slots__ = ("bridge", "batch", "key", "sub_ts", "svc", "margin",
                 "out_ports", "rewrites", "_done_idx", "_done_ts",
                 "_remaining")

    def __init__(self, bridge: "OvsBridge", batch: FrameBatch,
                 plan: "_ForwardPlan", sub_ts: List[float],
                 svc: List[float], margin: float) -> None:
        self.bridge = bridge
        self.batch = batch
        self.key = plan.in_port
        self.sub_ts = sub_ts
        self.svc = svc
        self.margin = margin
        self.out_ports = plan.out_ports
        self.rewrites = plan.rewrites
        self._done_idx: List[int] = []
        self._done_ts: List[float] = []
        #: Members still expected to commit or drop; 0 means the
        #: sub-batch can never grow again and should flush.
        self._remaining = len(sub_ts)

    def commit(self, i: int, t: float) -> bool:
        self._remaining -= 1
        self._done_idx.append(i)
        self._done_ts.append(t)
        return len(self._done_idx) == 1

    def drop(self, i: int) -> None:
        self._remaining -= 1

    def is_done(self) -> bool:
        return self._remaining == 0

    def oldest_commit(self) -> Optional[float]:
        return self._done_ts[0] if self._done_ts else None

    def flush(self, now: float) -> None:
        if self._done_idx:
            self.bridge._execute_batch(self)
            self._done_idx = []
            self._done_ts = []


class _FusedPassGroup(_BatchPassGroup):
    """A pass group whose members *pre-register* downstream on commit.

    Instead of flushing committed members into a physical chain
    traversal per margin window, each commit computes the member's
    downstream admission analytically (chain delay + jittered waits,
    identical draws to the hop-by-hop path) and registers it at the
    next station immediately -- always contract-clean, since the
    admission lies a full chain delay in the future.  The margin is
    unbounded: the burst makes ONE accounting traversal of the chain,
    at group completion, carrying counters/metering for every leg.
    """

    __slots__ = ("route", "sink")

    def __init__(self, bridge: "OvsBridge", batch: FrameBatch,
                 plan: "_ForwardPlan", sub_ts: List[float],
                 svc: List[float], route: _FusedRoute) -> None:
        super().__init__(bridge, batch, plan, sub_ts, svc, _INF)
        self.route = route
        self.sink: Optional[_FusedSink] = None

    def commit(self, i: int, t: float) -> bool:
        route = self.route
        sink = self.sink
        if sink is None:
            sink = self.sink = _FusedSink(route)
        batch = self.batch
        fid = batch.frame_ids[i]
        arrival = t + route.delay_const
        if route.drain_interval:
            arrival += route.drain_interval * route.drain_unit(
                fid, route.drain_site)
        timing = route.model.timing(
            route.cycles,
            effective_hz=route.share.effective_hz(),
            sharers=route.share.sharers,
            num_queues=route.num_queues,
            jitter=route.jitter,
            key=(fid << 6) | route.key_or,
        )
        j = sink.append(fid, batch.created_at[i], timing.service)
        route.station.submit_member(
            sink, j,
            arrival + timing.fixed_wait + timing.sched_wait
            + timing.drain_wait)
        self._remaining -= 1
        self._done_idx.append(i)
        self._done_ts.append(t)
        return len(self._done_idx) == 1

    def drop(self, i: int) -> None:
        self._remaining -= 1
        if self._remaining == 0 and not self._done_idx:
            # Every member ring-dropped before a single commit: no
            # flush will come, so the (empty or partial) sink must
            # still be sealed here.
            if self.sink is not None:
                self.sink.seal()

    def flush(self, now: float) -> None:
        if self._done_idx:
            self.bridge._execute_batch(self)
            self._done_idx = []
            self._done_ts = []
        if self._remaining == 0 and self.sink is not None:
            self.sink.seal()


class _SoloPlanGroup:
    """A single per-frame plan admitted through a batch station.

    Lets the classic per-frame ingress (plan-cache misses, traced runs)
    share one admission heap with batched arrivals.  Margin 0: the plan
    executes at its own finish wake, exactly when the per-frame station
    would have run it.
    """

    __slots__ = ("bridge", "plan", "key", "sub_ts", "svc", "_done")

    margin = 0.0

    def __init__(self, bridge: "OvsBridge", plan: "_ForwardPlan",
                 now: float) -> None:
        self.bridge = bridge
        self.plan = plan
        self.key = plan.in_port
        self.sub_ts = (now,)
        self.svc = (plan._service_time,)  # type: ignore[attr-defined]
        self._done: Optional[float] = None

    def commit(self, i: int, t: float) -> bool:
        self._done = t
        return True

    def drop(self, i: int) -> None:
        pass

    def is_done(self) -> bool:
        return self._done is not None

    def oldest_commit(self) -> Optional[float]:
        return self._done

    def flush(self, now: float) -> None:
        if self._done is not None:
            self._done = None
            self.bridge._execute(self.plan)


class OvsBridge:
    """A programmable learning/flow switch."""

    def __init__(
        self,
        name: str,
        mode: DatapathMode = DatapathMode.KERNEL,
        sim: Optional[Simulator] = None,
        costs: Optional[PassCosts] = None,
        rng: Optional[random.Random] = None,
        cache: Optional["MegaflowCache"] = None,
    ) -> None:
        self.name = name
        self.sim = sim
        self.rng = rng if rng is not None else random.Random(0)
        #: Per-frame keyed jitter for pass timing variance (identical
        #: draws on the per-frame and batched paths).
        self._jitter = HashJitter.from_name(name)
        #: Exact-match cache over whole pipeline passes: header signature
        #: -> replayable plan.  Flushed whenever any table changes.
        self._plan_cache: Dict[tuple, _PlanTemplate] = {}
        self.plan_cache_hits = 0
        self.plan_cache_invalidations = 0
        #: OpenFlow-style multi-table pipeline; table 0 always exists
        #: and is where processing starts.
        self.tables: Dict[int, FlowTable] = {
            0: self._new_table(f"{name}.table0")
        }
        self.model = DatapathModel(mode, costs) if costs is not None else None
        self.mode = mode
        #: Optional microflow cache: misses add upcall cycles to the
        #: pass (timed mode only).
        self.cache = cache
        #: Handler for CONTROLLER-punted frames: ``fn(frame, in_port)``.
        self.punt_handler = None
        self.punted = 0
        self._ports: Dict[int, BridgePort] = {}
        self._next_port_no = 1
        self._mac_table: Dict[MacAddress, int] = {}
        self._stations: List[FairServiceStation] = []
        self._shares: List[ComputeShare] = []
        #: True once :meth:`set_batch_stations` swapped the cores over.
        self._batch_mode = False
        self._flush_margin = 0.0
        self._margin_fn = None
        self.drops_no_match = 0
        self.drops_action = 0
        self.passes = 0

    # -- configuration (ovs-vsctl equivalents) ---------------------------

    def add_port(self, name: str, port_class: PortClass, pair: PortPair) -> BridgePort:
        """Attach a port; the bridge becomes the consumer of ``pair``."""
        port = BridgePort(self._next_port_no, name, port_class, pair)
        self._next_port_no += 1
        port.rx_stamp = f"{self.name}.p{port.port_no}.rx"
        port.tx_stamp = f"{self.name}.p{port.port_no}.tx"
        self._ports[port.port_no] = port
        pair.rx.connect(lambda frame, p=port: self._ingress(p, frame))
        if self._batch_mode:
            pair.rx.connect_batch(
                lambda batch, p=port: self._ingress_batch(p, batch))
        return port

    def del_port(self, port_no: int) -> None:
        port = self._ports.pop(port_no, None)
        if port is not None:
            port.pair.rx.connect(lambda frame: None)
        self._mac_table = {m: p for m, p in self._mac_table.items() if p != port_no}

    def port(self, port_no: int) -> BridgePort:
        return self._ports[port_no]

    def port_by_name(self, name: str) -> BridgePort:
        for port in self._ports.values():
            if port.name == name:
                return port
        raise ConfigurationError(f"bridge {self.name} has no port {name!r}")

    def ports(self) -> List[BridgePort]:
        return list(self._ports.values())

    @property
    def table(self) -> FlowTable:
        """Table 0 (the single-table view most callers use)."""
        return self.tables[0]

    def _new_table(self, name: str) -> FlowTable:
        table = FlowTable(name=name)
        table.add_listener(self._invalidate_plans)
        return table

    def _invalidate_plans(self) -> None:
        """Rule change in any table: flush every cached pass plan."""
        if self._plan_cache:
            self.plan_cache_invalidations += 1
            self._plan_cache.clear()

    def flow_table(self, table_id: int) -> FlowTable:
        """Get (creating if needed) a pipeline table."""
        if table_id < 0:
            raise ConfigurationError("table ids are non-negative")
        if table_id not in self.tables:
            self.tables[table_id] = self._new_table(
                f"{self.name}.table{table_id}")
        return self.tables[table_id]

    def add_flow(self, rule: FlowRule) -> FlowRule:
        """ovs-ofctl add-flow (honours the rule's ``table_id``)."""
        for action in rule.actions:
            if (action.type == ActionType.GOTO_TABLE
                    and action.table_id <= rule.table_id):  # type: ignore[attr-defined]
                raise ConfigurationError(
                    f"goto_table must increase: {rule.table_id} -> "
                    f"{action.table_id}")  # type: ignore[attr-defined]
        return self.flow_table(rule.table_id).add(rule)

    def set_compute(self, shares: List[ComputeShare]) -> None:
        """Pin the datapath onto CPU shares (one service station each)."""
        if self.sim is None or self.model is None:
            raise ConfigurationError(
                f"bridge {self.name}: compute requires a simulator and costs"
            )
        self._shares = list(shares)
        self._stations = [
            FairServiceStation(
                self.sim,
                service_time=lambda plan: plan._service_time,
                on_done=self._execute,
                queue_capacity=RX_RING_DEPTH,
                name=f"{self.name}.core{i}",
            )
            for i in range(len(shares))
        ]

    def set_batch_stations(self, flush_margin: float = 0.0,
                           margin_fn=None) -> None:
        """Swap the per-core stations for batch-admitting ones.

        ``flush_margin`` is the deployment-computed lower bound on the
        delay between this bridge's egress and the next timestamped
        admission point in the chain; 0 (flush at every wake) is always
        safe.  ``margin_fn(plan)``, when given, resolves that bound per
        forwarding plan instead (the deployment knows where each egress
        VF's traffic lands: fabric-bound plans get ``inf`` and flush
        once per burst).  Every port -- existing and future -- also gets
        a batched rx handler so upstream components can hand whole
        bursts in.  Must be called after :meth:`set_compute`.
        """
        if self.sim is None or self.model is None or not self._shares:
            raise ConfigurationError(
                f"bridge {self.name}: batched stations require timed compute")
        self._batch_mode = True
        self._flush_margin = flush_margin
        self._margin_fn = margin_fn
        self._stations = [
            BatchFairStation(self.sim, queue_capacity=RX_RING_DEPTH,
                             name=f"{self.name}.core{i}")
            for i in range(len(self._shares))
        ]
        for port in self._ports.values():
            port.pair.rx.connect_batch(
                lambda batch, p=port: self._ingress_batch(p, batch))

    @property
    def num_cores(self) -> int:
        return len(self._shares)

    @property
    def compute_shares(self):
        """The CPU shares the datapath runs on (read-only view)."""
        return tuple(self._shares)

    # -- dataplane ---------------------------------------------------------

    def _ingress(self, port: BridgePort, frame: Frame) -> None:
        port.rx_frames += 1
        frame.stamp(port.rx_stamp)
        key = emc_signature(frame, port.port_no)
        template = self._plan_cache.get(key)
        _obs.TRACER.bridge_rx(self.name, frame, port.port_no,
                              template is not None)
        if template is not None:
            self.plan_cache_hits += 1
            plan = self._replay(template, port, frame)
        else:
            plan = self._pipeline(port, frame, cache_key=key)
        if plan.dropped:
            _obs.TRACER.drop(self.name, frame, plan.drop_reason or "consumed")
            if _billing.METER.enabled:
                _billing.METER.drop(frame.tenant_id,
                                    plan.drop_reason or "consumed")
            return
        self.passes += 1
        if not self._stations:
            self._execute(plan)
            return
        self._dispatch(plan)

    #: Upper bound on goto_table hops (tables must strictly increase,
    #: so this is a safety net, not a semantic limit).
    MAX_PIPELINE_DEPTH = 16

    def _replay(self, template: _PlanTemplate, port: BridgePort,
                frame: Frame) -> _ForwardPlan:
        """Apply a cached pass plan to a fresh frame, reproducing the
        uncached walk's counters and header mutations exactly."""
        self._learn(frame.src_mac, port.port_no)
        for op, target, rule in template.steps:
            if op == _HIT:
                target.lookups += 1
                rule.n_packets += 1
                rule.n_bytes += frame.wire_size()
                _obs.TRACER.flow_lookup(target.name, frame, port.port_no,
                                        rule, "plan")
            elif op == _MISS:
                target.lookups += 1
                target.misses += 1
                _obs.TRACER.flow_lookup(target.name, frame, port.port_no,
                                        None, "plan")
            else:
                target.apply(frame)
        if template.drop_kind == "no_match":
            self.drops_no_match += 1
        elif template.drop_kind == "action":
            self.drops_action += 1
        reason = template.drop_kind
        if reason is None and template.dropped:
            reason = "no_egress"
        return _ForwardPlan(frame=frame, in_port=port.port_no,
                            out_ports=list(template.out_ports),
                            rewrites=template.rewrites,
                            dropped=template.dropped,
                            drop_reason=reason)

    def _pipeline(self, port: BridgePort, frame: Frame,
                  cache_key: Optional[tuple] = None) -> _ForwardPlan:
        """Run the (multi-table) flow pipeline.

        Header rewrites apply immediately, so later tables match the
        modified packet, as OpenFlow specifies.  Timing happens later;
        mutating the in-flight frame early is unobservable.

        When ``cache_key`` is given and the walk only touched
        header-signature-determined state, the outcome is memoized so
        the next frame with the same signature replays it.
        """
        plan = _ForwardPlan(frame=frame, in_port=port.port_no)
        self._learn(frame.src_mac, port.port_no)
        steps: list = []
        cacheable = cache_key is not None
        drop_kind: Optional[str] = None
        table_id: Optional[int] = 0
        depth = 0
        while table_id is not None:
            depth += 1
            if depth > self.MAX_PIPELINE_DEPTH:
                raise ConfigurationError(
                    f"pipeline deeper than {self.MAX_PIPELINE_DEPTH} tables")
            table = self.tables.get(table_id)
            rule = (table.lookup(frame, port.port_no)
                    if table is not None else None)
            if rule is None:
                if table is not None:
                    steps.append((_MISS, table, None))
                self.drops_no_match += 1
                plan.dropped = True
                plan.drop_reason = drop_kind = "no_match"
                break
            steps.append((_HIT, table, rule))
            table_id = None
            for action in rule.actions:
                if action.type == ActionType.DROP:
                    self.drops_action += 1
                    plan.dropped = True
                    plan.drop_reason = drop_kind = "action"
                    break
                if action.type == ActionType.OUTPUT:
                    plan.out_ports.append(action.port_no)  # type: ignore[attr-defined]
                elif action.type == ActionType.NORMAL:
                    cacheable = False
                    plan.out_ports.extend(
                        self._normal_lookup(frame, port.port_no))
                elif action.type == ActionType.GOTO_TABLE:
                    table_id = action.table_id  # type: ignore[attr-defined]
                elif action.type == ActionType.CONTROLLER:
                    cacheable = False
                    self.punted += 1
                    if self.punt_handler is not None:
                        self.punt_handler(frame, port.port_no)
                    plan.dropped = True  # consumed by the slow path
                    plan.drop_reason = "punt"
                    break
                else:
                    steps.append((_APPLY, action, None))
                    action.apply(frame)
                    if action.rewrites():
                        plan.rewrites = True
            if plan.dropped:
                break
        if not plan.dropped and not plan.out_ports:
            plan.dropped = True
            plan.drop_reason = "no_egress"
        if cacheable:
            if len(self._plan_cache) >= PLAN_CACHE_CAPACITY:
                self._plan_cache.pop(next(iter(self._plan_cache)))
            self._plan_cache[cache_key] = _PlanTemplate(
                tuple(steps), tuple(plan.out_ports), plan.rewrites,
                plan.dropped, drop_kind)
        return plan

    def _learn(self, mac: MacAddress, port_no: int) -> None:
        if not mac.is_multicast:
            self._mac_table[mac] = port_no

    def _normal_lookup(self, frame: Frame, in_port: int) -> List[int]:
        if frame.dst_mac.is_multicast:
            return [p for p in self._ports if p != in_port]
        hit = self._mac_table.get(frame.dst_mac)
        if hit is None:
            return [p for p in self._ports if p != in_port]
        return [] if hit == in_port else [hit]

    def _dispatch(self, plan: _ForwardPlan) -> None:
        """Timed mode: charge the pass to a core and delay accordingly."""
        assert self.model is not None and self.sim is not None
        index = plan.frame.flow_id % len(self._stations)
        share = self._shares[index]
        out_class = self._ports[plan.out_ports[0]].port_class
        in_class = self._ports[plan.in_port].port_class
        cycles = self.model.pass_cycles(
            in_class, out_class, plan.rewrites, num_ports=len(self._ports)
        )
        if self.cache is not None:
            cycles += self.cache.lookup_cost(plan.frame, plan.in_port)
        timing = self.model.timing(
            cycles,
            effective_hz=share.effective_hz(),
            sharers=share.sharers,
            num_queues=len(self._stations),
            jitter=self._jitter,
            # Mix the ingress port into the key so a frame's first and
            # second pass through the same bridge draw independently.
            key=(plan.frame.frame_id << 6) | (plan.in_port & 63),
        )
        plan._service_time = timing.service  # type: ignore[attr-defined]
        plan._t_dispatch = self.sim.now  # type: ignore[attr-defined]
        plan.frame.charge("vswitch.service", timing.service)
        wait = timing.fixed_wait + timing.sched_wait + timing.drain_wait
        plan._pass_wait = wait  # type: ignore[attr-defined]
        plan.frame.charge("vswitch.wait", wait)
        if wait > 0:
            self.sim.call_later(wait, self._submit, index, plan)
        else:
            self._submit(index, plan)

    def _submit(self, index: int, plan: _ForwardPlan) -> None:
        # Keyed by ingress port: each port's rx ring gets a fair share
        # of the core under overload (NAPI/PMD round-robin polling).
        if self._batch_mode:
            self._stations[index].submit_group(
                _SoloPlanGroup(self, plan, self.sim.now))
        else:
            self._stations[index].submit(plan.in_port, plan)

    def rx_drops(self) -> int:
        """Frames dropped at full rx rings (timed mode)."""
        return sum(s.dropped() for s in self._stations)

    def _execute(self, plan: _ForwardPlan) -> None:
        """Apply mutations and transmit on the egress port(s)."""
        meter = _billing.METER
        if meter.enabled:
            # Exact per-packet CPU attribution: the station spent the
            # plan's calibrated service time on this tenant's frame.
            # Functional mode (no stations) never costs service time.
            service = getattr(plan, "_service_time", None)
            if service is not None:
                meter.cpu(plan.frame.tenant_id, service)
        if self.sim is not None and hasattr(plan, "_t_dispatch"):
            # This pass took wait + queue + service; anything beyond the
            # known wait and service components is rx-ring queueing.
            elapsed = self.sim.now - plan._t_dispatch
            queued = max(0.0, elapsed - plan._pass_wait - plan._service_time)
            plan.frame.charge("vswitch.queue", queued)
        for i, port_no in enumerate(plan.out_ports):
            port = self._ports.get(port_no)
            if port is None:
                continue
            frame = plan.frame if i == len(plan.out_ports) - 1 else plan.frame.copy()
            port.tx_frames += 1
            frame.stamp(port.tx_stamp)
            _obs.TRACER.bridge_tx(self.name, frame, port_no)
            port.pair.transmit(frame)

    # -- batched dataplane -------------------------------------------------
    #
    # The struct-of-arrays fast path: a whole same-flow burst classifies
    # once per flow bucket (replaying the cached pass plan with xN
    # counter bumps), gets per-member jittered timing in one loop, and
    # registers with its core's BatchFairStation as a single group.
    # Served members flow back out through _execute_batch as sub-batches.
    # Runs only with tracing off; per-frame hop stamps and latency
    # charges are not maintained on this path.

    def _ingress_batch(self, port: BridgePort, batch: FrameBatch) -> None:
        """Batched ingress: classify once per flow bucket.

        Only plan-cache hits batch -- a cached plan is callback-free and
        header-determined, so one replay with multiplied counters is
        exact.  On a miss (or in functional mode) members take the
        per-frame path at their own timestamps: the first walk installs
        the plan at the right simulated time, and the flow's *next*
        burst batches.
        """
        sink = batch.fused_sink
        if sink is not None:
            self._ingress_accounting(port, batch, sink)
            return
        frame = batch.frame
        key = emc_signature(frame, port.port_no)
        template = self._plan_cache.get(key)
        if template is None or not self._stations:
            sim = self.sim
            for i, t in enumerate(batch.ts):
                sim.schedule(t, self._ingress, port, batch.frame_at(i))
            return
        n = len(batch)
        port.rx_frames += n
        self.plan_cache_hits += n
        plan = self._replay_batch(template, port, frame, n)
        if plan.dropped:
            if _billing.METER.enabled:
                _billing.METER.drop(frame.tenant_id,
                                    plan.drop_reason or "consumed", n)
            return
        self.passes += n
        self._dispatch_batch(plan, batch)

    def _ingress_accounting(self, port: BridgePort, batch: FrameBatch,
                            sink: _FusedSink) -> None:
        """Replay a fused burst's pass at this bridge, sans dispatch.

        The members were already admitted at (and served by) the
        station when their upstream commits pre-registered them; this
        traversal replays the observable side effects of the pass --
        port/table/cache counters, header rewrites on the exemplar --
        and hands the header to the sink that emits the burst.
        """
        n = len(batch)
        port.rx_frames += n
        self.plan_cache_hits += n
        self._replay_batch(sink.route.template, port, batch.frame, n)
        self.passes += n
        if self.cache is not None:
            self.cache.lookup_cost_batch(batch.frame, port.port_no, n)
        sink.attach_part(batch)

    def _replay_batch(self, template: _PlanTemplate, port: BridgePort,
                      frame: Frame, n: int) -> _ForwardPlan:
        """xN :meth:`_replay`: one pass over the steps with multiplied
        counter bumps; header rewrites apply once to the exemplar."""
        self._learn(frame.src_mac, port.port_no)
        for op, target, rule in template.steps:
            if op == _HIT:
                target.lookups += n
                rule.n_packets += n
                rule.n_bytes += frame.wire_size() * n
            elif op == _MISS:
                target.lookups += n
                target.misses += n
            else:
                target.apply(frame)
        if template.drop_kind == "no_match":
            self.drops_no_match += n
        elif template.drop_kind == "action":
            self.drops_action += n
        reason = template.drop_kind
        if reason is None and template.dropped:
            reason = "no_egress"
        return _ForwardPlan(frame=frame, in_port=port.port_no,
                            out_ports=list(template.out_ports),
                            rewrites=template.rewrites,
                            dropped=template.dropped,
                            drop_reason=reason)

    def _dispatch_batch(self, plan: _ForwardPlan, batch: FrameBatch) -> None:
        """Timed mode for a whole bucket: per-member jittered timing
        (identical draws to the per-frame path -- keyed by frame id and
        ingress port), one group registration with the flow's core."""
        model = self.model
        assert model is not None
        index = plan.frame.flow_id % len(self._stations)
        share = self._shares[index]
        out_class = self._ports[plan.out_ports[0]].port_class
        in_class = self._ports[plan.in_port].port_class
        cycles = model.pass_cycles(
            in_class, out_class, plan.rewrites, num_ports=len(self._ports))
        extra = 0.0
        if self.cache is not None:
            # Only the first member can miss; the rest hit the entry it
            # installs and cost nothing extra.
            extra = self.cache.lookup_cost_batch(plan.frame, plan.in_port,
                                                 len(batch))
        svc, waits = model.timing_batch(
            cycles + extra, cycles, effective_hz=share.effective_hz(),
            sharers=share.sharers, num_queues=len(self._stations),
            jitter=self._jitter, keys=batch.frame_ids,
            key_shift_or=plan.in_port & 63)
        ts = batch.ts
        sub_ts = [ts[i] + waits[i] for i in range(len(ts))]
        margin_fn = self._margin_fn
        margin = (margin_fn(plan) if margin_fn is not None
                  else self._flush_margin)
        if type(margin) is _FusedRoute:
            group: _BatchPassGroup = _FusedPassGroup(
                self, batch, plan, sub_ts, svc, margin)
        else:
            group = _BatchPassGroup(self, batch, plan, sub_ts, svc, margin)
        self._stations[index].submit_group(group)

    def _execute_batch(self, group: _BatchPassGroup) -> None:
        """Flush a group's committed members downstream as a sub-batch."""
        batch = group.batch
        idx = group._done_idx
        n = len(idx)
        meter = _billing.METER
        if meter.enabled:
            svc = group.svc
            meter.cpu(batch.frame.tenant_id,
                      sum(svc[i] for i in idx), n)
        sub = FrameBatch(
            batch.frame.replica(),
            [batch.frame_ids[i] for i in idx],
            list(group._done_ts),
            [batch.created_at[i] for i in idx],
        )
        sub.fused_sink = getattr(group, "sink", None)
        out_ports = group.out_ports
        m = len(out_ports)
        # Mirror _execute's id draws: a copy per member for every
        # *existing* non-last egress, in port order, frame-major.
        targets = [(j, self._ports.get(p)) for j, p in enumerate(out_ports)]
        targets = [(j, p) for j, p in targets if p is not None]
        copies = sub.fanout_copies(
            sum(1 for j, _ in targets if j < m - 1))
        ci = 0
        for j, port in targets:
            if j < m - 1:
                out = copies[ci]
                ci += 1
            else:
                out = sub
            port.tx_frames += n
            port.pair.transmit_batch(out, self.sim)

    # -- introspection -----------------------------------------------------

    def utilization(self, elapsed: float) -> float:
        """Mean core utilization over ``elapsed`` seconds (timed mode)."""
        if not self._stations:
            return 0.0
        total = sum(s.utilization(elapsed) for s in self._stations)
        return total / len(self._stations)

    def dump_flows(self) -> str:
        chunks = []
        for table_id in sorted(self.tables):
            table = self.tables[table_id]
            if len(table):
                chunks.append(f"table {table_id}:\n{table.dump()}")
        return "\n".join(chunks)
