"""The flow table: prioritized rules with per-tenant logical datapaths.

Each rule can be tagged with a ``tenant_id`` -- this is the paper's
*flow-table-level isolation*: in the Baseline, all tenants' rules live
in one shared table, distinguishable only by these tags (and a single
misprogrammed rule can leak traffic across tenants -- see
:meth:`FlowTable.check_conflicts`, which detects exactly that class of
error).  Under MTS, each vswitch VM's table holds only its own tenants'
rules.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import FlowTableError
from repro.net.packet import Frame
from repro.vswitch.actions import Action, ActionType
from repro.vswitch.matches import FlowMatch

_cookie_counter = itertools.count(1)


@dataclass
class FlowRule:
    """One flow table entry."""

    match: FlowMatch
    actions: List[Action]
    priority: int = 100
    tenant_id: Optional[int] = None
    table_id: int = 0
    cookie: int = field(default_factory=lambda: next(_cookie_counter))
    n_packets: int = 0
    n_bytes: int = 0

    def has_output(self) -> bool:
        return any(a.type in (ActionType.OUTPUT, ActionType.NORMAL)
                   for a in self.actions)

    def describe(self) -> str:
        tenant = f" tenant={self.tenant_id}" if self.tenant_id is not None else ""
        acts = ",".join(a.type.value for a in self.actions)
        return (f"cookie={self.cookie} prio={self.priority}{tenant} "
                f"match={self.match} actions=[{acts}]")


class FlowTable:
    """Priority-ordered rule set with lookup and conflict analysis."""

    def __init__(self, name: str = "table0") -> None:
        self.name = name
        self._rules: List[FlowRule] = []
        self.lookups = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self):
        return iter(self._rules)

    def add(self, rule: FlowRule) -> FlowRule:
        if not rule.actions:
            raise FlowTableError("a rule needs at least one action")
        self._rules.append(rule)
        # Stable sort keeps same-priority rules in insertion order, the
        # deterministic behaviour OVS exhibits in practice.
        self._rules.sort(key=lambda r: -r.priority)
        return rule

    def remove_by_cookie(self, cookie: int) -> bool:
        before = len(self._rules)
        self._rules = [r for r in self._rules if r.cookie != cookie]
        return len(self._rules) != before

    def remove_tenant(self, tenant_id: int) -> int:
        """Withdraw a tenant's whole logical datapath; returns the count."""
        before = len(self._rules)
        self._rules = [r for r in self._rules if r.tenant_id != tenant_id]
        return before - len(self._rules)

    def clear(self) -> None:
        self._rules.clear()

    def lookup(self, frame: Frame, in_port: int) -> Optional[FlowRule]:
        """Highest-priority matching rule, updating its counters."""
        self.lookups += 1
        for rule in self._rules:
            if rule.match.matches(frame, in_port):
                rule.n_packets += 1
                rule.n_bytes += frame.wire_size()
                return rule
        self.misses += 1
        return None

    def tenants(self) -> List[int]:
        """Distinct tenant ids present in the table (the shared-table
        blast-radius metric used by the security analysis)."""
        return sorted({r.tenant_id for r in self._rules if r.tenant_id is not None})

    def rules_of(self, tenant_id: int) -> List[FlowRule]:
        return [r for r in self._rules if r.tenant_id == tenant_id]

    def check_conflicts(self) -> List[Tuple[FlowRule, FlowRule]]:
        """Find same-priority rule pairs from *different tenants* whose
        matches overlap -- the misconfiguration class the paper warns
        about ("a small error in one rule ... making intra-tenant traffic
        visible to other tenants")."""
        conflicts: List[Tuple[FlowRule, FlowRule]] = []
        for a, b in itertools.combinations(self._rules, 2):
            if a.priority != b.priority:
                continue
            if a.tenant_id is None or b.tenant_id is None:
                continue
            if a.tenant_id == b.tenant_id:
                continue
            if a.match.overlaps(b.match):
                conflicts.append((a, b))
        return conflicts

    def dump(self) -> str:
        """ovs-ofctl dump-flows style listing."""
        return "\n".join(r.describe() for r in self._rules)
