"""The flow table: prioritized rules with per-tenant logical datapaths.

Each rule can be tagged with a ``tenant_id`` -- this is the paper's
*flow-table-level isolation*: in the Baseline, all tenants' rules live
in one shared table, distinguishable only by these tags (and a single
misprogrammed rule can leak traffic across tenants -- see
:meth:`FlowTable.check_conflicts`, which detects exactly that class of
error).  Under MTS, each vswitch VM's table holds only its own tenants'
rules.

Lookup fast path
----------------

Real vswitches never scan rules linearly; they layer caches the way OVS
does (EMC -> megaflow -> classifier).  This table mirrors that:

1. an **exact-match cache** (EMC) keyed on the frame's full header
   signature memoizes the winning rule (or a definitive miss), so
   steady-state traffic costs one dict probe per lookup;
2. on an EMC miss, a **tuple-space-search classifier** buckets rules by
   wildcard mask and probes one hash table per mask group, visiting
   groups in descending max-priority order with early exit.

Both layers are invalidated on any rule change (``add``,
``remove_by_cookie``, ``remove_tenant``, ``clear``), and counters
(``lookups``, ``misses``, per-rule ``n_packets``/``n_bytes``) stay exact
on cached hits.  Constructing with ``fastpath=False`` retains the
original priority-ordered linear scan -- the reference oracle the
differential fuzz tests compare against.
"""

from __future__ import annotations

import itertools
from bisect import insort
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs as _obs
from repro.errors import FlowTableError
from repro.net.packet import Frame
from repro.vswitch.actions import Action, ActionType
from repro.vswitch.matches import FlowMatch
from repro.vswitch.megaflow import emc_signature

#: Default exact-match-cache capacity (mirrors OVS's EMC scale).
EMC_CAPACITY = 8192

#: Sentinel distinguishing "absent from EMC" from a cached miss (None).
_ABSENT = object()


@dataclass
class FlowRule:
    """One flow table entry.

    ``cookie`` is assigned by the owning table on :meth:`FlowTable.add`
    (a per-table allocator keeps dumps deterministic run-to-run); a
    caller may also pin an explicit cookie before adding.
    """

    match: FlowMatch
    actions: List[Action]
    priority: int = 100
    tenant_id: Optional[int] = None
    table_id: int = 0
    cookie: Optional[int] = None
    n_packets: int = 0
    n_bytes: int = 0
    #: Table-assigned insertion sequence; breaks priority ties the way
    #: OVS does (stable insertion order).
    seq: int = field(default=0, repr=False, compare=False)

    def has_output(self) -> bool:
        return any(a.type in (ActionType.OUTPUT, ActionType.NORMAL)
                   for a in self.actions)

    def describe(self) -> str:
        tenant = f" tenant={self.tenant_id}" if self.tenant_id is not None else ""
        acts = ",".join(a.type.value for a in self.actions)
        return (f"cookie={self.cookie} prio={self.priority}{tenant} "
                f"match={self.match} actions=[{acts}]")


def _mask_of(match: FlowMatch) -> Tuple:
    """The wildcard mask: which fields are constrained (dst_ip carries
    its prefix length, since different prefixes hash differently)."""
    return (
        match.in_port is not None,
        match.src_mac is not None,
        match.dst_mac is not None,
        match.ethertype is not None,
        match.vlan is not None,
        match.src_ip is not None,
        match.dst_ip_prefix if match.dst_ip is not None else None,
        match.proto is not None,
        match.src_port is not None,
        match.dst_port is not None,
        match.tunnel_id is not None,
    )


def _rule_key(match: FlowMatch) -> Tuple:
    """The hash key of a rule within its mask group."""
    key = []
    if match.in_port is not None:
        key.append(match.in_port)
    if match.src_mac is not None:
        key.append(match.src_mac)
    if match.dst_mac is not None:
        key.append(match.dst_mac)
    if match.ethertype is not None:
        key.append(match.ethertype)
    if match.vlan is not None:
        key.append(match.vlan)
    if match.src_ip is not None:
        key.append(match.src_ip)
    if match.dst_ip is not None:
        key.append(match.dst_ip.value >> (32 - match.dst_ip_prefix))
    if match.proto is not None:
        key.append(match.proto)
    if match.src_port is not None:
        key.append(match.src_port)
    if match.dst_port is not None:
        key.append(match.dst_port)
    if match.tunnel_id is not None:
        key.append(match.tunnel_id)
    return tuple(key)


def _frame_key(mask: Tuple, frame: Frame, in_port: int) -> Optional[Tuple]:
    """Extract the frame's hash key under ``mask``; None when the frame
    cannot match any rule of this mask (an IP match on a non-IP frame)."""
    key = []
    if mask[0]:
        key.append(in_port)
    if mask[1]:
        key.append(frame.src_mac)
    if mask[2]:
        key.append(frame.dst_mac)
    if mask[3]:
        key.append(frame.ethertype)
    if mask[4]:
        key.append(frame.vlan)
    if mask[5]:
        key.append(frame.src_ip)
    prefix = mask[6]
    if prefix is not None:
        if frame.dst_ip is None:
            return None
        key.append(frame.dst_ip.value >> (32 - prefix))
    if mask[7]:
        key.append(frame.proto)
    if mask[8]:
        key.append(frame.src_port)
    if mask[9]:
        key.append(frame.dst_port)
    if mask[10]:
        key.append(frame.tunnel_id)
    return tuple(key)


class _MaskGroup:
    """One tuple-space bucket: all rules sharing a wildcard mask."""

    __slots__ = ("mask", "entries", "max_priority")

    def __init__(self, mask: Tuple) -> None:
        self.mask = mask
        #: key -> rules sorted by (-priority, seq)
        self.entries: Dict[Tuple, List[FlowRule]] = {}
        self.max_priority = 0

    def insert(self, rule: FlowRule) -> None:
        bucket = self.entries.setdefault(_rule_key(rule.match), [])
        insort(bucket, rule, key=lambda r: (-r.priority, r.seq))
        if rule.priority > self.max_priority:
            self.max_priority = rule.priority


@dataclass
class EmcStats:
    """Hit/miss accounting of the exact-match cache layer."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class FlowTable:
    """Priority-ordered rule set with lookup and conflict analysis."""

    def __init__(self, name: str = "table0", fastpath: bool = True,
                 emc_capacity: int = EMC_CAPACITY) -> None:
        self.name = name
        self.fastpath = fastpath
        self._rules: List[FlowRule] = []
        self.lookups = 0
        self.misses = 0
        #: Per-table cookie allocator: dumps are deterministic run-to-run
        #: (no module-global counter leaking state across tables/tests).
        self._cookies = itertools.count(1)
        self._seq = itertools.count(1)
        #: Bumped on every rule change; callers may poll it instead of
        #: registering a listener.
        self.version = 0
        self._listeners: List[Callable[[], None]] = []
        # -- fast path state --
        self._groups: Dict[Tuple, _MaskGroup] = {}
        self._ordered_groups: List[_MaskGroup] = []
        self._emc: Dict[Tuple, Optional[FlowRule]] = {}
        self._emc_capacity = emc_capacity
        self.emc_stats = EmcStats()

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self):
        return iter(self._rules)

    # -- change tracking ---------------------------------------------------

    def add_listener(self, callback: Callable[[], None]) -> None:
        """Call ``callback`` after every rule change (used by the bridge
        to invalidate its pass-plan cache)."""
        self._listeners.append(callback)

    def _changed(self) -> None:
        self.version += 1
        self._emc.clear()
        for callback in self._listeners:
            callback()

    # -- rule management ---------------------------------------------------

    def add(self, rule: FlowRule) -> FlowRule:
        if not rule.actions:
            raise FlowTableError("a rule needs at least one action")
        if rule.cookie is None:
            rule.cookie = next(self._cookies)
        rule.seq = next(self._seq)
        # insort keeps the list priority-sorted with same-priority rules
        # in insertion order (the deterministic behaviour OVS exhibits in
        # practice) at O(log n) compares + O(n) shift per insert, instead
        # of re-sorting the whole list on every add.
        insort(self._rules, rule, key=lambda r: (-r.priority, r.seq))
        group = self._groups.get(_mask_of(rule.match))
        if group is None:
            group = _MaskGroup(_mask_of(rule.match))
            self._groups[group.mask] = group
            self._ordered_groups.append(group)
        group.insert(rule)
        self._ordered_groups.sort(key=lambda g: -g.max_priority)
        self._changed()
        return rule

    def remove_by_cookie(self, cookie: int) -> bool:
        before = len(self._rules)
        self._rules = [r for r in self._rules if r.cookie != cookie]
        if len(self._rules) == before:
            return False
        self._reindex()
        return True

    def remove_tenant(self, tenant_id: int) -> int:
        """Withdraw a tenant's whole logical datapath; returns the count."""
        before = len(self._rules)
        self._rules = [r for r in self._rules if r.tenant_id != tenant_id]
        removed = before - len(self._rules)
        if removed:
            self._reindex()
        return removed

    def clear(self) -> None:
        self._rules.clear()
        self._reindex()

    def _reindex(self) -> None:
        """Rebuild the tuple-space index after removals (control-plane
        rate, so a full rebuild is fine)."""
        self._groups = {}
        self._ordered_groups = []
        for rule in self._rules:
            group = self._groups.get(_mask_of(rule.match))
            if group is None:
                group = _MaskGroup(_mask_of(rule.match))
                self._groups[group.mask] = group
                self._ordered_groups.append(group)
            group.insert(rule)
        self._ordered_groups.sort(key=lambda g: -g.max_priority)
        self._changed()

    # -- lookup ------------------------------------------------------------

    def lookup(self, frame: Frame, in_port: int) -> Optional[FlowRule]:
        """Highest-priority matching rule, updating its counters."""
        self.lookups += 1
        if self.fastpath:
            key = emc_signature(frame, in_port)
            rule = self._emc.get(key, _ABSENT)
            if rule is not _ABSENT:
                self.emc_stats.hits += 1
                source = "emc"
            else:
                self.emc_stats.misses += 1
                rule = self._classify(frame, in_port)
                source = "tss"
                if len(self._emc) >= self._emc_capacity:
                    self._emc.pop(next(iter(self._emc)))
                    self.emc_stats.evictions += 1
                self._emc[key] = rule
        else:
            rule = self._linear_scan(frame, in_port)
            source = "linear"
        _obs.TRACER.flow_lookup(self.name, frame, in_port, rule, source)
        if rule is None:
            self.misses += 1
            return None
        rule.n_packets += 1
        rule.n_bytes += frame.wire_size()
        return rule

    def _classify(self, frame: Frame, in_port: int) -> Optional[FlowRule]:
        """Tuple-space search: one hash probe per mask group, visited in
        descending max-priority order with early exit."""
        best: Optional[FlowRule] = None
        for group in self._ordered_groups:
            if best is not None and best.priority > group.max_priority:
                break
            key = _frame_key(group.mask, frame, in_port)
            if key is None:
                continue
            bucket = group.entries.get(key)
            if not bucket:
                continue
            candidate = bucket[0]
            if (best is None
                    or candidate.priority > best.priority
                    or (candidate.priority == best.priority
                        and candidate.seq < best.seq)):
                best = candidate
        return best

    def _linear_scan(self, frame: Frame, in_port: int) -> Optional[FlowRule]:
        """The retained O(n) reference path (``fastpath=False``): scan
        the priority-sorted list, first match wins."""
        for rule in self._rules:
            if rule.match.matches(frame, in_port):
                return rule
        return None

    # -- introspection -----------------------------------------------------

    def tenants(self) -> List[int]:
        """Distinct tenant ids present in the table (the shared-table
        blast-radius metric used by the security analysis)."""
        return sorted({r.tenant_id for r in self._rules if r.tenant_id is not None})

    def rules_of(self, tenant_id: int) -> List[FlowRule]:
        return [r for r in self._rules if r.tenant_id == tenant_id]

    def check_conflicts(self) -> List[Tuple[FlowRule, FlowRule]]:
        """Find same-priority rule pairs from *different tenants* whose
        matches overlap -- the misconfiguration class the paper warns
        about ("a small error in one rule ... making intra-tenant traffic
        visible to other tenants")."""
        conflicts: List[Tuple[FlowRule, FlowRule]] = []
        for a, b in itertools.combinations(self._rules, 2):
            if a.priority != b.priority:
                continue
            if a.tenant_id is None or b.tenant_id is None:
                continue
            if a.tenant_id == b.tenant_id:
                continue
            if a.match.overlaps(b.match):
                conflicts.append((a, b))
        return conflicts

    def dump(self) -> str:
        """ovs-ofctl dump-flows style listing."""
        return "\n".join(r.describe() for r in self._rules)
