"""The in-tenant Linux bridge used by the Baseline.

In the Baseline's p2v/v2v scenarios the tenant VM forwards packets
between its two virtio interfaces with the default Linux bridge (the
paper notes DPDK inside the tenant is not a recommended configuration
without vhost-user backing).  It is a plain learning bridge with a
per-frame kernel cost and interrupt latency, charged to the tenant VM's
cores -- which, with the tenant's two dedicated cores, is never the
bottleneck, but it does add latency versus MTS's in-tenant DPDK l2fwd.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.net.addresses import MacAddress
from repro.net.interfaces import PortPair
from repro.net.packet import Frame
from repro.sim.kernel import Simulator
from repro.units import USEC

#: Kernel bridge forwarding cost and latency (netif_rx -> br_forward ->
#: dev_queue_xmit, at low load).
LINUX_BRIDGE_CYCLES = 1500.0
LINUX_BRIDGE_LATENCY = 30.0 * USEC


class LinuxBridge:
    """A learning L2 bridge inside a tenant VM."""

    def __init__(
        self,
        name: str,
        sim: Optional[Simulator] = None,
        freq_hz: float = 2.1e9,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.name = name
        self.sim = sim
        self.freq_hz = freq_hz
        self.rng = rng if rng is not None else random.Random(0)
        self._ports: List[PortPair] = []
        self._mac_table: Dict[MacAddress, int] = {}
        self.forwarded = 0
        self.flooded = 0

    def add_port(self, pair: PortPair) -> int:
        index = len(self._ports)
        self._ports.append(pair)
        pair.rx.connect(lambda frame, i=index: self._ingress(i, frame))
        return index

    def _ingress(self, in_index: int, frame: Frame) -> None:
        frame.stamp(f"{self.name}.rx")
        if not frame.src_mac.is_multicast:
            self._mac_table[frame.src_mac] = in_index
        delay = LINUX_BRIDGE_LATENCY + LINUX_BRIDGE_CYCLES / self.freq_hz
        frame.charge("tenant", delay)
        if self.sim is not None:
            self.sim.call_later(delay, self._forward, in_index, frame)
        else:
            self._forward(in_index, frame)

    def _forward(self, in_index: int, frame: Frame) -> None:
        hit = self._mac_table.get(frame.dst_mac)
        if frame.dst_mac.is_multicast or hit is None:
            self.flooded += 1
            outs = [i for i in range(len(self._ports)) if i != in_index]
        elif hit == in_index:
            return
        else:
            outs = [hit]
        self.forwarded += 1
        for i, out in enumerate(outs):
            out_frame = frame if i == len(outs) - 1 else frame.copy()
            out_frame.stamp(f"{self.name}.tx")
            self._ports[out].transmit(out_frame)
