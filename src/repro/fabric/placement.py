"""Secure tenant placement: embedding tenants onto servers/compartments.

Which server hosts which tenant's VMs -- and which vswitch compartment
mediates them -- is a virtual-network-embedding problem (*Secure
Multi-Cloud Virtual Network Embedding*): tenants bring demands and
security requirements, the substrate brings servers with limited VFs,
compartments with limited capacity, and a fabric where distance costs
bandwidth.  This module models the request side
(:class:`TenantReq`), the constraint checking, and three placement
policies:

``striping``
    the locality-blind baseline: contiguous id blocks per server (what
    ``MultiServerCloud`` does absent a placement).
``greedy``
    heaviest-demand-first; each tenant lands on the feasible slot with
    the lowest incremental hop cost to its already-placed peers, ties
    broken towards compartments already open for its group, then the
    least-loaded server.  A reservation guard refuses to open surplus
    compartments while groups with unplaced tenants still need them,
    so the policy stays feasible even at near-full fleet occupancy.
``local``
    greedy plus a bounded local-search pass: tenants are re-offered
    every feasible slot and move when their own edge cost strictly
    improves.

Security constraints enforced on every policy's output:

- a compartment is shared only within one tenant *group* (the paper's
  "based on security zones"): the vswitch VM is the isolation
  boundary, so mutually-untrusting tenants never share one;
- ``isolation >= 2`` tenants get a dedicated compartment,
  ``isolation >= 3`` additionally a server free of other groups (the
  Level-3/DPDK "premium" shape);
- anti-affinity: a tenant whose group *distrusts* another group never
  shares a server with it (side-channel surface), in either direction;
- capacity: per-compartment tenant caps and the NIC's 64-VF ceiling
  (2 VFs per tenant + 1 In/Out VF per compartment per server).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.fabric.topology import FabricTopology

#: The NIC exposes this many VFs per physical port (paper section 6).
NIC_VF_CEILING = 64

#: Per-frame physical-layer overhead (matches Link.serialization_time).
_WIRE_OVERHEAD_BYTES = 20


class PlacementError(ValidationError):
    """A placement request cannot be satisfied (or a placement is invalid)."""


@dataclass(frozen=True)
class TenantReq:
    """One tenant's embedding request."""

    tenant_id: int
    demand_pps: float = 0.0
    frame_bytes: int = 64
    #: Security zone: tenants of one group may share a compartment.
    group: int = 0
    #: 1 = shared compartment within the group, 2 = dedicated
    #: compartment, 3 = dedicated compartment on a group-pure server.
    isolation: int = 1
    #: Groups this tenant's group refuses to co-reside with (a server
    #: is a shared NIC and shared cores: the anti-affinity boundary).
    distrusts: Tuple[int, ...] = ()
    #: Tenants this one sends to (``demand_pps`` split evenly across
    #: them); drives the hop-cost objective and the fluid model.
    peers: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.demand_pps < 0:
            raise ValueError("demand_pps must be >= 0")
        if self.isolation not in (1, 2, 3):
            raise ValueError(f"isolation {self.isolation} not in 1..3")
        if self.tenant_id in self.peers:
            raise ValueError(f"tenant {self.tenant_id} peering with itself")

    def demand_to(self, peer: int) -> float:
        if peer not in self.peers or not self.peers:
            return 0.0
        return self.demand_pps / len(self.peers)


@dataclass
class Placement:
    """``tenant -> (server, compartment)``, plus provenance."""

    assignment: Dict[int, Tuple[int, int]]
    policy: str = "explicit"

    def server_of(self, tenant: int) -> int:
        return self.assignment[tenant][0]

    def compartment_of(self, tenant: int) -> int:
        return self.assignment[tenant][1]

    def tenants_on(self, server: int) -> List[int]:
        return sorted(t for t, (s, _k) in self.assignment.items()
                      if s == server)

    def servers_used(self) -> List[int]:
        return sorted({s for s, _k in self.assignment.values()})


def server_tenant_capacity(compartments_per_server: int) -> int:
    """Max tenants a server hosts under the VF ceiling: each tenant
    burns a tenant VF + a gateway VF, each compartment an In/Out VF."""
    return (NIC_VF_CEILING - compartments_per_server) // 2


class _Slots:
    """Mutable feasibility state shared by the constructive policies."""

    def __init__(self, reqs: Sequence[TenantReq], topology: FabricTopology,
                 compartments_per_server: int,
                 tenants_per_compartment: int) -> None:
        if compartments_per_server < 1:
            raise PlacementError("need at least one compartment per server")
        if tenants_per_compartment < 1:
            raise PlacementError("compartments hold at least one tenant")
        self.topology = topology
        self.K = compartments_per_server
        self.cap = tenants_per_compartment
        self.server_cap = server_tenant_capacity(compartments_per_server)
        self.req_of = {r.tenant_id: r for r in reqs}
        if len(self.req_of) != len(reqs):
            raise PlacementError("duplicate tenant ids in requests")
        # reverse peer index: who sends *to* each tenant (keeps the
        # incremental edge-cost evaluation O(degree), not O(tenants))
        self.rev_peers: Dict[int, List[int]] = {}
        for r in reqs:
            for peer in r.peers:
                self.rev_peers.setdefault(peer, []).append(r.tenant_id)
        # symmetric distrust closure over groups
        self.distrust: Dict[int, set] = {}
        for r in reqs:
            for g in r.distrusts:
                self.distrust.setdefault(r.group, set()).add(g)
                self.distrust.setdefault(g, set()).add(r.group)
        self.members: Dict[Tuple[int, int], List[int]] = {}
        self.comp_group: Dict[Tuple[int, int], int] = {}
        self.comp_dedicated: Dict[Tuple[int, int], bool] = {}
        self.server_count: Dict[int, int] = {}
        self.server_groups: Dict[int, set] = {}
        self.server_solo_groups: Dict[int, set] = {}  # isolation-3 owners
        self.server_load: Dict[int, float] = {}

    def feasible(self, req: TenantReq, server: int, k: int) -> bool:
        if not 0 <= server < self.topology.num_servers:
            return False
        if not 0 <= k < self.K:
            return False
        if self.server_count.get(server, 0) + 1 > self.server_cap:
            return False
        slot = (server, k)
        occupants = self.members.get(slot, [])
        if len(occupants) + 1 > self.cap:
            return False
        if occupants:
            if req.isolation >= 2 or self.comp_dedicated.get(slot, False):
                return False
            if self.comp_group[slot] != req.group:
                return False
        groups_here = self.server_groups.get(server, set())
        if self.distrust.get(req.group) and \
                groups_here & self.distrust[req.group]:
            return False
        solo = self.server_solo_groups.get(server, set())
        if solo and solo != {req.group}:
            return False
        if req.isolation >= 3 and groups_here - {req.group}:
            return False
        return True

    def add(self, req: TenantReq, server: int, k: int) -> None:
        slot = (server, k)
        self.members.setdefault(slot, []).append(req.tenant_id)
        self.comp_group[slot] = req.group
        if req.isolation >= 2:
            self.comp_dedicated[slot] = True
        self.server_count[server] = self.server_count.get(server, 0) + 1
        self.server_groups.setdefault(server, set()).add(req.group)
        if req.isolation >= 3:
            self.server_solo_groups.setdefault(server, set()).add(req.group)
        self.server_load[server] = (self.server_load.get(server, 0.0)
                                    + req.demand_pps)

    def remove(self, req: TenantReq, server: int, k: int) -> None:
        slot = (server, k)
        self.members[slot].remove(req.tenant_id)
        if not self.members[slot]:
            del self.members[slot]
            self.comp_group.pop(slot, None)
            self.comp_dedicated.pop(slot, None)
        self.server_count[server] -= 1
        remaining_groups = {self.req_of[t].group
                            for members in self.members.items()
                            if members[0][0] == server
                            for t in members[1]}
        self.server_groups[server] = remaining_groups
        solo = {self.req_of[t].group
                for members in self.members.items()
                if members[0][0] == server
                for t in members[1]
                if self.req_of[t].isolation >= 3}
        if solo:
            self.server_solo_groups[server] = solo
        else:
            self.server_solo_groups.pop(server, None)
        self.server_load[server] -= req.demand_pps


# -- objective ----------------------------------------------------------


def pair_hops(topology: FabricTopology, placement: Placement,
              src: int, dst: int) -> int:
    """Fabric hops between two placed tenants, counting the NIC-level
    hairpin a same-server cross-compartment frame pays as one hop."""
    s1, k1 = placement.assignment[src]
    s2, k2 = placement.assignment[dst]
    h = topology.hops(s1, s2)
    if h == 0 and k1 != k2:
        return 1
    return h


@dataclass(frozen=True)
class PlacementCost:
    """Objective terms: demand-weighted fabric hops, traffic leaving
    servers, and the hottest fabric link."""

    hop_cost: float
    inter_server_pps: float
    max_link_utilization: float

    @property
    def total(self) -> float:
        # The utilization term breaks hop-cost ties towards placements
        # that do not concentrate the surviving inter-server demand.
        return self.hop_cost * (1.0 + self.max_link_utilization)


def link_loads(reqs: Sequence[TenantReq], placement: Placement,
               topology: FabricTopology) -> Dict[str, float]:
    """Offered bits/s on every fabric link under the placement."""
    loads: Dict[str, float] = {}
    for req in reqs:
        bits = (req.frame_bytes + _WIRE_OVERHEAD_BYTES) * 8.0
        for peer in req.peers:
            if peer not in placement.assignment:
                continue
            pps = req.demand_to(peer)
            s1, _ = placement.assignment[req.tenant_id]
            s2, _ = placement.assignment[peer]
            for name in topology.path_links(s1, s2):
                loads[name] = loads.get(name, 0.0) + pps * bits
    return loads


def placement_cost(reqs: Sequence[TenantReq], placement: Placement,
                   topology: FabricTopology) -> PlacementCost:
    hop_cost = 0.0
    inter_server = 0.0
    for req in reqs:
        for peer in req.peers:
            if peer not in placement.assignment:
                continue
            pps = req.demand_to(peer)
            hop_cost += pps * pair_hops(topology, placement,
                                        req.tenant_id, peer)
            if placement.server_of(req.tenant_id) != placement.server_of(peer):
                inter_server += pps
    max_util = 0.0
    pools = topology.link_resources()
    for name, load in link_loads(reqs, placement, topology).items():
        max_util = max(max_util, load / pools[name].capacity)
    return PlacementCost(hop_cost=hop_cost, inter_server_pps=inter_server,
                         max_link_utilization=max_util)


# -- validation ----------------------------------------------------------


def validate_placement(reqs: Sequence[TenantReq], placement: Placement,
                       topology: FabricTopology,
                       compartments_per_server: int,
                       tenants_per_compartment: int) -> None:
    """Raise :class:`PlacementError` unless every constraint holds."""
    slots = _Slots(reqs, topology, compartments_per_server,
                   tenants_per_compartment)
    missing = set(slots.req_of) - set(placement.assignment)
    if missing:
        raise PlacementError(f"unplaced tenants: {sorted(missing)}")
    for req in sorted(reqs, key=lambda r: r.tenant_id):
        server, k = placement.assignment[req.tenant_id]
        if not slots.feasible(req, server, k):
            raise PlacementError(
                f"tenant {req.tenant_id} cannot sit at server {server} "
                f"compartment {k} (capacity or security constraint)")
        slots.add(req, server, k)


# -- policies ------------------------------------------------------------


def _first_feasible(slots: _Slots, req: TenantReq,
                    server_order: Iterable[int]) -> Tuple[int, int]:
    for server in server_order:
        for k in range(slots.K):
            if slots.feasible(req, server, k):
                return server, k
    raise PlacementError(
        f"no feasible slot for tenant {req.tenant_id} "
        f"(group {req.group}, isolation {req.isolation})")


def uniform_striping(reqs: Sequence[TenantReq], topology: FabricTopology,
                     compartments_per_server: int,
                     tenants_per_compartment: int) -> Placement:
    """The baseline: contiguous id blocks per server (exactly what
    ``MultiServerCloud`` does absent a placement), blind to who talks
    to whom.  Constraints are still enforced -- a tenant whose home
    block cannot hold it spills to the next server."""
    slots = _Slots(reqs, topology, compartments_per_server,
                   tenants_per_compartment)
    assignment: Dict[int, Tuple[int, int]] = {}
    num = topology.num_servers
    per = max(1, math.ceil(len(reqs) / num))
    for i, req in enumerate(sorted(reqs, key=lambda r: r.tenant_id)):
        home = min(i // per, num - 1)
        order = [(home + off) % num for off in range(num)]
        server, k = _first_feasible(slots, req, order)
        slots.add(req, server, k)
        assignment[req.tenant_id] = (server, k)
    return Placement(assignment, policy="striping")


def _compartment_reservation(slots: _Slots, shared_unplaced: Dict[int, int],
                             dedicated_unplaced: int) -> Tuple[int, int]:
    """(free compartments, compartments the unplaced backlog still needs).

    Compartments are group-pure, so every group with unplaced tenants
    and no spare capacity in its open compartments is owed at least one
    fresh compartment (``ceil(deficit / cap)`` of them); every unplaced
    isolation>=2 tenant is owed a dedicated one.  Greedy consults this
    before opening a compartment it does not strictly need, which is
    what keeps a near-full fleet feasible: an idly opened compartment
    can never be reclaimed for another group.
    """
    slack: Dict[int, int] = {}
    for slot, occupants in slots.members.items():
        if not slots.comp_dedicated.get(slot, False):
            g = slots.comp_group[slot]
            slack[g] = slack.get(g, 0) + (slots.cap - len(occupants))
    need = dedicated_unplaced
    for g, n in shared_unplaced.items():
        deficit = n - slack.get(g, 0)
        if deficit > 0:
            need += -(-deficit // slots.cap)
    free = slots.topology.num_servers * slots.K - len(slots.members)
    return free, need


def greedy_place(reqs: Sequence[TenantReq], topology: FabricTopology,
                 compartments_per_server: int,
                 tenants_per_compartment: int) -> Placement:
    """Heaviest-first greedy: minimize each tenant's incremental
    demand-weighted hop cost to its already-placed peers."""
    slots = _Slots(reqs, topology, compartments_per_server,
                   tenants_per_compartment)
    assignment: Dict[int, Tuple[int, int]] = {}
    placement = Placement(assignment, policy="greedy")
    order = sorted(reqs, key=lambda r: (-r.demand_pps, r.tenant_id))
    shared_unplaced: Dict[int, int] = {}
    dedicated_unplaced = 0
    for req in order:
        if req.isolation >= 2:
            dedicated_unplaced += 1
        else:
            shared_unplaced[req.group] = \
                shared_unplaced.get(req.group, 0) + 1
    for req in order:
        free, need = _compartment_reservation(
            slots, shared_unplaced, dedicated_unplaced)
        # Opening a compartment this tenant's own backlog is owed keeps
        # the reservation balanced; opening a surplus one is allowed
        # only while compartments outnumber the groups still waiting.
        if req.isolation >= 2:
            owed = True
        else:
            slack = sum(slots.cap - len(occupants)
                        for slot, occupants in slots.members.items()
                        if slots.comp_group[slot] == req.group
                        and not slots.comp_dedicated.get(slot, False))
            owed = shared_unplaced.get(req.group, 0) > slack
        allow_open = free - 1 >= need - (1 if owed else 0)
        best: Optional[Tuple] = None
        for guarded in ((True, False) if not allow_open else (False,)):
            for server in range(topology.num_servers):
                for k in range(slots.K):
                    if not slots.feasible(req, server, k):
                        continue
                    opens_new = 0 if slots.members.get((server, k)) else 1
                    if guarded and opens_new:
                        continue
                    assignment[req.tenant_id] = (server, k)
                    cost = _edge_cost(slots, placement, topology, req)
                    del assignment[req.tenant_id]
                    # Packing pressure: at equal cost, join an existing
                    # compartment of our group rather than claim a
                    # fresh one another group may come to need.
                    key = (cost, opens_new,
                           slots.server_load.get(server, 0.0), server, k)
                    if best is None or key < best:
                        best = key
            if best is not None:
                break
        if best is None:
            raise PlacementError(
                f"no feasible slot for tenant {req.tenant_id} "
                f"(group {req.group}, isolation {req.isolation})")
        server, k = best[-2], best[-1]
        slots.add(req, server, k)
        assignment[req.tenant_id] = (server, k)
        if req.isolation >= 2:
            dedicated_unplaced -= 1
        else:
            shared_unplaced[req.group] -= 1
    return placement


def _edge_cost(slots: _Slots, placement: Placement,
               topology: FabricTopology, req: TenantReq) -> float:
    """Demand-weighted hop cost of every placed edge incident to ``req``."""
    cost = 0.0
    for peer in req.peers:
        if peer in placement.assignment:
            cost += req.demand_to(peer) * pair_hops(
                topology, placement, req.tenant_id, peer)
    for sender in slots.rev_peers.get(req.tenant_id, ()):
        if sender != req.tenant_id and sender in placement.assignment:
            cost += slots.req_of[sender].demand_to(req.tenant_id) * pair_hops(
                topology, placement, sender, req.tenant_id)
    return cost


def incremental_place(reqs: Sequence[TenantReq], placement: Placement,
                      topology: FabricTopology,
                      compartments_per_server: int,
                      tenants_per_compartment: int,
                      tenants_to_place: Sequence[int],
                      open_slots: Optional[Iterable[Tuple[int, int]]] = None,
                      ) -> Dict[int, Tuple[int, int]]:
    """Seat ``tenants_to_place`` into an existing placement without
    moving residents (online arrivals; live migration off a failed
    compartment).  Residents are every tenant of ``placement`` not in
    ``tenants_to_place``; each newcomer lands greedily on the feasible
    slot with the lowest incremental edge cost, under exactly the
    security constraints the offline policies enforce.  ``open_slots``,
    when given, restricts candidates to that pool (the control plane's
    open/healthy compartments).  Returns ``{tenant: (server, k)}`` for
    the newcomers only; raises :class:`PlacementError` when any of
    them cannot be seated.
    """
    slots = _Slots(reqs, topology, compartments_per_server,
                   tenants_per_compartment)
    moving = set(tenants_to_place)
    assignment: Dict[int, Tuple[int, int]] = {
        t: slot for t, slot in placement.assignment.items()
        if t not in moving}
    scratch = Placement(assignment, policy="incremental")
    for tid in sorted(assignment):
        slots.add(slots.req_of[tid], *assignment[tid])
    if open_slots is not None:
        pool = sorted(set(open_slots))
    else:
        pool = [(s, k) for s in range(topology.num_servers)
                for k in range(slots.K)]
    placed: Dict[int, Tuple[int, int]] = {}
    order = sorted(moving, key=lambda t: (-slots.req_of[t].demand_pps, t))
    for tid in order:
        req = slots.req_of[tid]
        best: Optional[Tuple] = None
        for server, k in pool:
            if not slots.feasible(req, server, k):
                continue
            opens_new = 0 if slots.members.get((server, k)) else 1
            assignment[tid] = (server, k)
            cost = _edge_cost(slots, scratch, topology, req)
            del assignment[tid]
            key = (cost, opens_new, slots.server_load.get(server, 0.0),
                   server, k)
            if best is None or key < best:
                best = key
        if best is None:
            raise PlacementError(
                f"no feasible slot for tenant {tid} "
                f"(group {req.group}, isolation {req.isolation})")
        slot = (best[-2], best[-1])
        slots.add(req, *slot)
        assignment[tid] = slot
        placed[tid] = slot
    return placed


def local_search(reqs: Sequence[TenantReq], placement: Placement,
                 topology: FabricTopology, compartments_per_server: int,
                 tenants_per_compartment: int,
                 max_passes: int = 2) -> Placement:
    """Bounded improvement passes: re-offer each tenant every feasible
    slot; move when its own edge cost strictly drops.  Each evaluation
    is O(degree), so a pass is cheap even at fabric scale."""
    slots = _Slots(reqs, topology, compartments_per_server,
                   tenants_per_compartment)
    assignment = dict(placement.assignment)
    result = Placement(assignment, policy="local")
    for req in sorted(reqs, key=lambda r: r.tenant_id):
        slots.add(req, *assignment[req.tenant_id])
    order = sorted(reqs, key=lambda r: (-r.demand_pps, r.tenant_id))
    for _ in range(max_passes):
        moved = False
        for req in order:
            here = assignment[req.tenant_id]
            current = _edge_cost(slots, result, topology, req)
            slots.remove(req, *here)
            best = (current, here)
            for server in range(topology.num_servers):
                for k in range(slots.K):
                    if (server, k) == here:
                        continue
                    if not slots.feasible(req, server, k):
                        continue
                    assignment[req.tenant_id] = (server, k)
                    cost = _edge_cost(slots, result, topology, req)
                    if cost < best[0] - 1e-12:
                        best = (cost, (server, k))
            assignment[req.tenant_id] = best[1]
            slots.add(req, *best[1])
            if best[1] != here:
                moved = True
        if not moved:
            break
    return result


def place(reqs: Sequence[TenantReq], topology: FabricTopology,
          policy: str = "greedy", compartments_per_server: int = 2,
          tenants_per_compartment: int = 8) -> Placement:
    """Run one of the registered policies and validate its output."""
    try:
        build = POLICIES[policy]
    except KeyError:
        raise PlacementError(
            f"unknown placement policy {policy!r}; "
            f"choose from {sorted(POLICIES)}")
    placement = build(reqs, topology, compartments_per_server,
                      tenants_per_compartment)
    validate_placement(reqs, placement, topology, compartments_per_server,
                       tenants_per_compartment)
    return placement


def _local(reqs, topology, compartments_per_server, tenants_per_compartment):
    seeded = greedy_place(reqs, topology, compartments_per_server,
                          tenants_per_compartment)
    return local_search(reqs, seeded, topology, compartments_per_server,
                        tenants_per_compartment)


POLICIES = {
    "striping": uniform_striping,
    "greedy": greedy_place,
    "local": _local,
}
