"""Fabric-scale simulation: topology, secure placement, hybrid DES+fluid.

The tenant-count ceiling of per-packet simulation is the event rate:
every background packet costs events whether anyone is studying it or
not.  This package removes the ceiling by splitting a fabric run into
a **fluid** background (the calibrated max-min solver over per-server
and fabric-link capacity pools) and a **per-packet** foreground (a
subset ``MultiServerCloud`` over just the servers the flows under
study touch, capacity-clamped to the background's residuals), plus the
placement optimizer that decides which servers host which tenants
under security constraints.
"""

from repro.fabric.hybrid import FabricDeployment, HybridResult, StudyFlow
from repro.fabric.placement import (POLICIES, Placement, PlacementError,
                                    TenantReq, link_loads, place,
                                    placement_cost, validate_placement)
from repro.fabric.topology import FabricTopology

__all__ = [
    "FabricDeployment",
    "FabricTopology",
    "HybridResult",
    "POLICIES",
    "Placement",
    "PlacementError",
    "StudyFlow",
    "TenantReq",
    "link_loads",
    "place",
    "placement_cost",
    "validate_placement",
]
