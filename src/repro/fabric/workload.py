"""The ``fabric.*`` workload family: fabric runs as cacheable scenarios.

Two registry entries wrap the fabric package for the scenario engine
(``repro run`` / ``repro sweep``), so fabric-scale questions -- how
does placement policy change hop cost as the fleet grows, how well
does the hybrid track pure DES -- get the engine's caching, pooling
and JSONL plumbing for free:

- ``fabric.placement``: analytic only.  Synthesizes the tenant mix,
  runs the requested placement policy plus the uniform-striping
  baseline, and reports the objective terms (no DES, so points are
  cheap enough for wide grids);
- ``fabric.hybrid``: places the mix, then runs the hybrid engine
  (``mode=hybrid``, the default) or the pure-DES oracle (``mode=des``)
  over the flows under study and reports delivered vs predicted pps
  and the fluid bottlenecks.

Both read their shape from ``spec.params``:

``servers`` (default 8), ``servers_per_rack`` (16), ``link_gbps``
(10), ``tor_uplink_gbps`` (40), ``tenants`` (total across the fabric;
default ``deployment.num_tenants`` per server), ``zone_size`` (8),
``placement`` ("greedy"), ``study_flows`` (2), ``study_mode``
("pairs" | "probes"), ``study_pps``, ``mode`` ("hybrid" | "des"),
``demand_pps`` (20000 base), ``frame_bytes`` (512),
``tenants_per_compartment`` (8).

The tenant mix is deterministic in ``spec.seed``: tenants form
**contiguous security zones** of ``zone_size`` (default 8, matching
the per-compartment cap so zones pack compartments tightly even at
full fleet occupancy).  Inside each zone, tenants cluster into small
communicating stars (a heavy head, light members); each zone head
additionally talks to the head of a *distant* partner zone
(``i <-> i + zones/2``).  Block striping keeps whole zones local when
blocks align but scatters every partner edge across half the fabric
-- exactly the traffic the placement optimizer reunites by parking
partner zones in the two compartments of one server.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro import obs
from repro.errors import ValidationError
from repro.fabric.hybrid import FabricDeployment, StudyFlow
from repro.fabric.placement import (TenantReq, place, placement_cost)
from repro.fabric.topology import FabricTopology
from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.scenario.spec import ScenarioSpec
from repro.sim.rng import RngStreams
from repro.units import GBPS


#: Communication-cluster sizes inside one zone, cycled.
_CLUSTER_SIZES = (2, 3, 3)


def synth_reqs(num_tenants: int, seed: int, demand_pps: float = 20_000.0,
               frame_bytes: int = 512,
               zone_size: int = 8) -> List[TenantReq]:
    """The deterministic tenant mix: contiguous zones (= placement
    groups) of ``zone_size``, communicating stars inside each zone,
    and a heavy edge between the heads of distant partner zones."""
    if num_tenants < 2:
        raise ValidationError("a fabric mix needs at least two tenants")
    if zone_size < 2:
        raise ValidationError("zones need at least two tenants")
    rng = RngStreams(seed).stream("fabric.demands")
    num_zones = math.ceil(num_tenants / zone_size)
    half = num_zones // 2
    # Distant partner-zone edges: zone i's head sends to the head of
    # zone i + half, so striping scatters them across half the fabric.
    cross_peer_of = {z: (z + half) * zone_size
                     for z in range(half) if z + half < num_zones}
    reqs: List[TenantReq] = []
    for z in range(num_zones):
        members = list(range(z * zone_size,
                             min((z + 1) * zone_size, num_tenants)))
        cursor, cluster = 0, 0
        while cursor < len(members):
            size = min(_CLUSTER_SIZES[cluster % len(_CLUSTER_SIZES)],
                       len(members) - cursor)
            head, rest = members[cursor], tuple(
                members[cursor + 1:cursor + size])
            peers = rest
            if cursor == 0 and z in cross_peer_of:
                peers = rest + (cross_peer_of[z],)
            heavy = demand_pps * (0.5 + 3.0 * rng.random())
            reqs.append(TenantReq(
                head, demand_pps=heavy if peers else 0.0,
                frame_bytes=frame_bytes, group=z, peers=peers))
            for member in rest:
                light = demand_pps * 0.1 * (0.5 + rng.random())
                reqs.append(TenantReq(member, demand_pps=light,
                                      frame_bytes=frame_bytes, group=z,
                                      peers=(head,)))
            cursor += size
            cluster += 1
    return reqs


def pick_study_flows(reqs: Sequence[TenantReq],
                     count: int) -> List[StudyFlow]:
    """The ``count`` heaviest peer edges, promoted to per-packet study."""
    edges = sorted(
        ((req.demand_to(peer), req.tenant_id, peer)
         for req in reqs for peer in req.peers if req.demand_to(peer) > 0),
        key=lambda e: (-e[0], e[1], e[2]))
    return [StudyFlow(src=src, dst=dst, rate_pps=pps,
                      frame_bytes=next(r.frame_bytes for r in reqs
                                       if r.tenant_id == src))
            for pps, src, dst in edges[:count]]


def pick_probe_flows(reqs: Sequence[TenantReq], count: int,
                     rate_pps: float) -> List[StudyFlow]:
    """``count`` probe flows between the heaviest tenants of *distinct*
    groups.  Distinct groups land on distinct servers under any
    anti-concentrating placement, so probes exercise the fabric links
    -- the right study shape for measuring fabric behavior rather than
    a single pair's datapath."""
    heads = sorted(
        (r for r in reqs if r.peers),
        key=lambda r: (-r.demand_pps, r.tenant_id))
    by_group: Dict[int, TenantReq] = {}
    for req in heads:
        by_group.setdefault(req.group, req)
    ranked = sorted(by_group.values(),
                    key=lambda r: (-r.demand_pps, r.tenant_id))
    flows: List[StudyFlow] = []
    for i in range(count):
        if 2 * i + 1 >= len(ranked):
            break
        src, dst = ranked[2 * i], ranked[2 * i + 1]
        flows.append(StudyFlow(src=src.tenant_id, dst=dst.tenant_id,
                               rate_pps=rate_pps,
                               frame_bytes=src.frame_bytes))
    if not flows:
        raise ValidationError(
            "not enough distinct groups for probe study flows")
    return flows


def _fabric_shape(spec: ScenarioSpec):
    num_servers = int(spec.param("servers", 8))
    topology = FabricTopology(
        num_servers=num_servers,
        servers_per_rack=int(spec.param("servers_per_rack", 16)),
        server_link_bps=float(spec.param("link_gbps", 10.0)) * GBPS,
        tor_uplink_bps=float(spec.param("tor_uplink_gbps", 40.0)) * GBPS)
    tenants = int(spec.param(
        "tenants", spec.deployment.num_tenants * num_servers))
    reqs = synth_reqs(tenants, spec.seed,
                      demand_pps=float(spec.param("demand_pps", 20_000.0)),
                      frame_bytes=int(spec.param("frame_bytes", 512)),
                      zone_size=int(spec.param("zone_size", 8)))
    return topology, reqs


def _placement_values(reqs, placement, topology,
                      policy: str, compartments: int,
                      tenants_per_compartment: int) -> Dict[str, float]:
    cost = placement_cost(reqs, placement, topology)
    values = {
        "hop_cost": cost.hop_cost,
        "inter_server_pps": cost.inter_server_pps,
        "max_link_utilization": cost.max_link_utilization,
        "servers_used": float(len(placement.servers_used())),
    }
    if policy != "striping":
        baseline = place(reqs, topology, policy="striping",
                         compartments_per_server=compartments,
                         tenants_per_compartment=tenants_per_compartment)
        values["striping_hop_cost"] = placement_cost(
            reqs, baseline, topology).hop_cost
    else:
        values["striping_hop_cost"] = cost.hop_cost
    return values


def measure_placement(spec: ScenarioSpec,
                      calibration: Calibration = DEFAULT_CALIBRATION
                      ) -> Dict[str, float]:
    """Engine entry point for ``fabric.placement``: objective terms of
    the requested policy vs the uniform-striping baseline."""
    topology, reqs = _fabric_shape(spec)
    policy = str(spec.param("placement", "greedy"))
    compartments = max(1, spec.deployment.num_compartments)
    per_compartment = int(spec.param("tenants_per_compartment", 8))
    placement = place(reqs, topology, policy=policy,
                      compartments_per_server=compartments,
                      tenants_per_compartment=per_compartment)
    return _placement_values(reqs, placement, topology, policy,
                             compartments, per_compartment)


def measure_scenario(spec: ScenarioSpec,
                     calibration: Calibration = DEFAULT_CALIBRATION
                     ) -> Dict[str, float]:
    """Engine entry point for ``fabric.hybrid``: place the mix, run the
    flows under study (hybrid by default, pure DES on ``mode=des``)."""
    topology, reqs = _fabric_shape(spec)
    study_mode = str(spec.param("study_mode", "pairs"))
    count = int(spec.param("study_flows", 2))
    if study_mode == "probes":
        flows = pick_probe_flows(
            reqs, count, float(spec.param("study_pps",
                                          spec.param("demand_pps",
                                                     20_000.0))))
    elif study_mode == "pairs":
        flows = pick_study_flows(reqs, count)
    else:
        raise ValidationError(f"unknown study_mode {study_mode!r} "
                              "(expected 'pairs' or 'probes')")
    policy = str(spec.param("placement", "greedy"))
    per_compartment = int(spec.param("tenants_per_compartment", 8))
    deployment = FabricDeployment(
        spec.deployment, topology, reqs, flows,
        placement=policy, calibration=calibration,
        tenants_per_compartment=per_compartment, seed=spec.seed)

    duration = spec.duration or 0.2
    warmup = spec.warmup or duration / 4.0
    mode = str(spec.param("mode", "hybrid"))
    if mode == "des":
        result = deployment.run_pure_des(duration=duration, warmup=warmup)
    elif mode == "hybrid":
        result = deployment.run_hybrid(duration=duration, warmup=warmup)
    else:
        raise ValidationError(f"unknown fabric mode {mode!r} "
                              "(expected 'hybrid' or 'des')")
    obs.harvest_fabric(deployment.last_cloud.switches, obs.REGISTRY)
    for server_deployment in deployment.last_cloud.deployments:
        obs.harvest(server_deployment, obs.REGISTRY)

    values = _placement_values(
        reqs, deployment.placement, topology, policy,
        max(1, spec.deployment.num_compartments), per_compartment)
    values.update({
        "fg_delivered_pps": result.aggregate_delivered_pps,
        "fluid_predicted_pps": result.aggregate_predicted_pps,
        "fluid_vs_des_err": result.fluid_vs_des_error,
        "bg_aggregate_pps": result.background.aggregate_pps,
        "bottleneck_utilization": max(
            result.fluid.utilization.values(), default=0.0),
        "des_events": float(result.des_events),
        "des_servers": float(result.des_servers),
    })
    return values
