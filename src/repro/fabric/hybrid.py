"""The hybrid fabric simulation: fluid background, per-packet foreground.

A fabric run has two populations:

- **background tenants** (hundreds to thousands): their traffic enters
  the calibrated max-min solver as :class:`FlowPath` demands against
  shared per-server CPU / NIC-hairpin / PCIe pools and the fabric's
  link pools (``repro.perfmodel.capacity``), never as packets;
- **flows under study** (a handful): simulated packet by packet on a
  *subset* :class:`~repro.core.multiserver.MultiServerCloud` covering
  only the servers those flows touch, with every shared pool shrunk to
  the **residual** the background solve left behind (link bandwidths
  by name, compartment CPU by scaling its compute shares).

The per-packet resource footprints are the same numbers
``perfmodel.paths.build_flow_paths`` charges on a single server --
derived from one *template* deployment of the per-server spec -- split
across the source and destination halves of the inter-server path, so
the fluid and DES views cannot drift apart.

For small deployments the same class also runs **pure DES** (every
tenant instantiated, background injected as real packet streams),
which is how the hybrid's accuracy is validated (≤5% on aggregate
foreground pps) and its speedup benchmarked.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.deployment import build_deployment
from repro.core.multiserver import MultiServerCloud
from repro.core.spec import DeploymentSpec, TrafficScenario
from repro.errors import ValidationError
from repro.fabric.placement import (Placement, TenantReq, place,
                                    validate_placement)
from repro.fabric.topology import FabricTopology
from repro.host.cpu import ComputeShare
from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perfmodel.capacity import (FlowPath, Resource, SolveResult,
                                      solve, solve_with_background)
from repro.sim.kernel import Simulator
from repro.vswitch.datapath import PortClass

#: Per-frame physical-layer overhead (matches Link.serialization_time).
_WIRE_OVERHEAD_BYTES = 20

#: One P2V-style crossing makes 6 PCIe DMA crossings end to end
#: (perfmodel.paths); an inter-server flow pays half on each server,
#: split evenly between bus directions.
_PCIE_CROSSINGS_PER_SIDE = 3


@dataclass(frozen=True)
class StudyFlow:
    """One foreground flow: simulated per-packet in the hybrid run."""

    src: int
    dst: int
    rate_pps: float
    frame_bytes: int = 64

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValidationError("a study flow needs two distinct tenants")
        if self.rate_pps <= 0:
            raise ValidationError("study flows need a positive rate")
        if self.frame_bytes < 64:
            raise ValidationError("Ethernet frames are at least 64 B")

    @property
    def name(self) -> str:
        return f"fg.t{self.src}-t{self.dst}"


@dataclass
class HybridResult:
    """What one hybrid (or pure-DES) run measured and predicted."""

    flows: List[StudyFlow]
    #: DES-measured delivered pps per flow name.
    delivered_pps: Dict[str, float]
    #: Fluid (joint fg+bg solve) prediction per flow name.
    predicted_pps: Dict[str, float]
    background: SolveResult
    fluid: SolveResult
    mode: str = "hybrid"
    des_events: int = 0
    des_servers: int = 0

    @property
    def aggregate_delivered_pps(self) -> float:
        return sum(self.delivered_pps.values())

    @property
    def aggregate_predicted_pps(self) -> float:
        return sum(self.predicted_pps.values())

    @property
    def fluid_vs_des_error(self) -> float:
        """Relative disagreement between the DES measurement and the
        fluid prediction on aggregate foreground pps."""
        predicted = self.aggregate_predicted_pps
        if predicted <= 0:
            return 0.0 if self.aggregate_delivered_pps <= 0 else math.inf
        return abs(self.aggregate_delivered_pps - predicted) / predicted

    def bottlenecks(self, top: int = 5) -> List[Tuple[str, float]]:
        """The hottest pools under background + foreground load."""
        ranked = sorted(self.fluid.utilization.items(),
                        key=lambda kv: -kv[1])
        return ranked[:top]


class _ResidualShare(ComputeShare):
    """A compute share scaled down to the background's leftovers."""

    def __init__(self, core, consumer: str, fraction: float) -> None:
        super().__init__(core=core, consumer=consumer)
        self.fraction = fraction

    def effective_hz(self) -> float:
        return super().effective_hz() * self.fraction


class FabricDeployment:
    """A placed fabric of MTS servers with a hybrid execution model.

    ``spec`` is the *per-server* deployment shape (level, compartments,
    datapath; its ``num_tenants`` only sizes the calibration template).
    ``reqs`` describe every tenant -- including the study flows'
    endpoints -- and ``study_flows`` designate which (src, dst) edges
    run as packets; every other peer edge becomes background fluid
    demand.
    """

    def __init__(
        self,
        spec: DeploymentSpec,
        topology: FabricTopology,
        reqs: Sequence[TenantReq],
        study_flows: Sequence[StudyFlow],
        placement: str | Placement = "greedy",
        calibration: Calibration = DEFAULT_CALIBRATION,
        tenants_per_compartment: int = 8,
        seed: int = 0,
    ) -> None:
        if not spec.level.is_mts:
            raise ValidationError("fabric deployments need an MTS spec")
        self.spec = spec
        self.topology = topology
        self.reqs = list(reqs)
        self.req_of = {r.tenant_id: r for r in self.reqs}
        self.flows = list(study_flows)
        for flow in self.flows:
            if flow.src not in self.req_of or flow.dst not in self.req_of:
                raise ValidationError(
                    f"study flow {flow.name} references unknown tenants")
        self.calibration = calibration
        self.seed = seed
        self.compartments = max(1, spec.num_compartments)
        self.tenants_per_compartment = tenants_per_compartment
        if isinstance(placement, Placement):
            validate_placement(self.reqs, placement, topology,
                               self.compartments, tenants_per_compartment)
            self.placement = placement
        else:
            self.placement = place(self.reqs, topology, policy=placement,
                                   compartments_per_server=self.compartments,
                                   tenants_per_compartment=
                                   tenants_per_compartment)
        self._study_edges = {(f.src, f.dst) for f in self.flows}
        self._template = self._build_template()
        self._bg_solution: Optional[SolveResult] = None
        #: The DES cloud of the most recent run_* call -- kept so
        #: callers can harvest its fabric-switch counters into obs.
        self.last_cloud: Optional[MultiServerCloud] = None

    # -- calibrated per-server capacities ---------------------------------

    def _build_template(self):
        """One throwaway single-server deployment of the per-server spec:
        the source of calibrated compartment-CPU capacity, per-pass
        cycles, PCIe and hairpin capacities.  All servers share the
        spec, so one template covers the fabric."""
        tenants = max(self.compartments,
                      min(self.spec.num_tenants, 2 * self.compartments))
        template_spec = replace(self.spec, num_tenants=tenants,
                                zone_of_tenant=None)
        deployment = build_deployment(template_spec, TrafficScenario.P2V,
                                      sim=Simulator(),
                                      calibration=self.calibration,
                                      seed=self.seed)
        cal = self.calibration
        costs = (cal.dpdk_costs if self.spec.user_space
                 else cal.kernel_costs)
        self._cpu_capacity = [
            sum(share.effective_hz() for share in bridge.compute_shares)
            for bridge in deployment.bridges]
        self._pass_cycles = [
            costs.pass_cycles(PortClass.VF, PortClass.VF, True,
                              num_ports=len(bridge.ports()))
            for bridge in deployment.bridges]
        self._pcie_capacity = (
            deployment.server.nic.pcie.effective_bandwidth_bps() / 8.0)
        self._hairpin_capacity = cal.nic_hairpin_capacity
        self._hairpin_bw = cal.nic_hairpin_bandwidth_bps / 8.0
        return deployment

    # -- resource pools ----------------------------------------------------

    def _pools(self) -> Dict[str, Resource]:
        pools = dict(self.topology.link_resources())
        for s in range(self.topology.num_servers):
            for k in range(self.compartments):
                name = f"cpu.s{s}.vsw{k}"
                pools[name] = Resource(name, self._cpu_capacity[k])
            for name, capacity in (
                    (f"nic.s{s}.hairpin", self._hairpin_capacity),
                    (f"nic.s{s}.hairpin_bw", self._hairpin_bw),
                    (f"pcie.s{s}.down", self._pcie_capacity),
                    (f"pcie.s{s}.up", self._pcie_capacity)):
                pools[name] = Resource(name, capacity)
        return pools

    def _edge_path(self, pools: Dict[str, Resource], name: str,
                   src: int, dst: int, pps: float,
                   frame_bytes: int) -> FlowPath:
        """The per-packet footprint of one tenant-to-tenant edge, split
        across its source and destination servers."""
        s1, k1 = self.placement.assignment[src]
        s2, k2 = self.placement.assignment[dst]
        path = FlowPath(name=name, offered_pps=pps)
        wire_bits = (frame_bytes + _WIRE_OVERHEAD_BYTES) * 8.0
        for link in self.topology.path_links(s1, s2):
            path.add(pools[link], wire_bits)
        if s1 == s2 and k1 == k2:
            # one bridge pass delivers locally; the frame hairpins
            # twice (tenant VF -> gw VF, gw VF -> tenant VF)
            path.add(pools[f"cpu.s{s1}.vsw{k1}"], self._pass_cycles[k1])
            hairpins = {s1: 2.0}
            pcie = {s1: 2.0}
        elif s1 == s2:
            # both compartment bridges pass the frame; three hairpins
            # (tenant -> gw, In/Out -> In/Out, gw -> tenant)
            path.add(pools[f"cpu.s{s1}.vsw{k1}"], self._pass_cycles[k1])
            path.add(pools[f"cpu.s{s1}.vsw{k2}"], self._pass_cycles[k2])
            hairpins = {s1: 3.0}
            pcie = {s1: 3.0}
        else:
            # one vswitch pass on each side (egress at the source
            # compartment, ingress at the destination compartment)
            path.add(pools[f"cpu.s{s1}.vsw{k1}"], self._pass_cycles[k1])
            path.add(pools[f"cpu.s{s2}.vsw{k2}"], self._pass_cycles[k2])
            hairpins = {s1: 1.0, s2: 1.0}
            pcie = {s1: _PCIE_CROSSINGS_PER_SIDE / 2.0,
                    s2: _PCIE_CROSSINGS_PER_SIDE / 2.0}
        for s, n in hairpins.items():
            path.add(pools[f"nic.s{s}.hairpin"], n)
            path.add(pools[f"nic.s{s}.hairpin_bw"], n * frame_bytes)
        for s, n in pcie.items():
            path.add(pools[f"pcie.s{s}.down"], n * frame_bytes)
            path.add(pools[f"pcie.s{s}.up"], n * frame_bytes)
        return path

    def background_paths(self) -> List[FlowPath]:
        """Every non-study peer edge as a fluid demand."""
        pools = self._pools()
        paths: List[FlowPath] = []
        for req in self.reqs:
            for peer in req.peers:
                if (req.tenant_id, peer) in self._study_edges:
                    continue
                pps = req.demand_to(peer)
                if pps <= 0:
                    continue
                paths.append(self._edge_path(
                    pools, f"bg.t{req.tenant_id}-t{peer}",
                    req.tenant_id, peer, pps, req.frame_bytes))
        return paths

    def foreground_paths(self) -> List[FlowPath]:
        pools = self._pools()
        return [self._edge_path(pools, flow.name, flow.src, flow.dst,
                                flow.rate_pps, flow.frame_bytes)
                for flow in self.flows]

    def solve_background(self) -> SolveResult:
        if self._bg_solution is None:
            self._bg_solution = solve(self.background_paths())
        return self._bg_solution

    def solve_fluid(self) -> SolveResult:
        """Foreground rates with the background present (joint fill)."""
        return solve_with_background(self.foreground_paths(),
                                     self.background_paths())

    # -- the DES half ------------------------------------------------------

    def study_servers(self) -> List[int]:
        servers = set()
        for flow in self.flows:
            servers.add(self.placement.server_of(flow.src))
            servers.add(self.placement.server_of(flow.dst))
        return sorted(servers)

    def _subset_cloud(self, servers: List[int], tenants: List[int],
                      residual: Optional[SolveResult]) -> MultiServerCloud:
        """A DES cloud over ``servers`` hosting only ``tenants``; with a
        background solution, access links and compartment CPU shrink to
        their residuals."""
        index_of = {gid: i for i, gid in enumerate(servers)}
        sub_placement = {
            t: (index_of[self.placement.server_of(t)],
                self.placement.compartment_of(t))
            for t in tenants}

        bandwidth_of = None
        if residual is not None:
            def bandwidth_of(name: str) -> Optional[float]:
                if name not in residual.capacity_of:
                    return None
                # Never starve the DES completely: a saturated
                # background still leaves a 1% sliver.
                capacity = residual.capacity_of[name]
                return max(residual.residual_of(name), 0.01 * capacity)

        cloud = MultiServerCloud(
            self.spec, num_servers=len(servers),
            calibration=self.calibration,
            link_bandwidth_bps=self.topology.server_link_bps,
            seed=self.seed,
            placement=sub_placement,
            link_bandwidth_of=bandwidth_of,
            global_server_ids=servers)
        if residual is not None:
            self._scale_compartment_cpu(cloud, servers, residual)
        return cloud

    def _scale_compartment_cpu(self, cloud: MultiServerCloud,
                               servers: List[int],
                               residual: SolveResult) -> None:
        for i, gid in enumerate(servers):
            deployment = cloud.deployments[i]
            for k, bridge in enumerate(deployment.bridges):
                name = f"cpu.s{gid}.vsw{k}"
                if name not in residual.capacity_of:
                    continue
                fraction = max(0.01, residual.residual_fraction(name))
                if fraction >= 1.0:
                    continue
                bridge.set_compute([
                    _ResidualShare(share.core, share.consumer, fraction)
                    for share in bridge.compute_shares])

    def _drive(self, cloud: MultiServerCloud, flows: Sequence[StudyFlow],
               duration: float, warmup: float) -> Dict[str, float]:
        """Inject each flow at its offered rate; count frames arriving
        at the destination tenant VF after warmup."""
        counts: Dict[str, int] = {flow.name: 0 for flow in flows}
        sim = cloud.sim
        by_dst: Dict[int, List[StudyFlow]] = {}
        for flow in flows:
            by_dst.setdefault(flow.dst, []).append(flow)
        for dst_id, dst_flows in by_dst.items():
            dst = cloud.tenants[dst_id]
            deployment = cloud.deployments[dst.server_index]
            vf = deployment.tenant_vf[(dst.local_id, 0)]
            # Port.connect *replaces* the tenant's forwarding app with
            # this sink; one handler per destination demuxes by source.
            route = {cloud.tenants[f.src].ip: f.name for f in dst_flows}

            def on_rx(frame, route=route):
                name = route.get(frame.src_ip)
                if name is not None and sim.now >= warmup:
                    counts[name] += 1

            vf.port.rx.connect(on_rx)
        for i, flow in enumerate(flows):
            interval = 1.0 / flow.rate_pps
            # Deterministic phase offsets keep same-rate flows from
            # injecting in lockstep at the leaf.
            phase = interval * ((i + 1) / (len(flows) + 1))
            sim.call_later(phase, self._start_stream, cloud, flow, interval)
        sim.run(until=duration)
        window = duration - warmup
        return {name: counts[name] / window for name in counts}

    @staticmethod
    def _start_stream(cloud: MultiServerCloud, flow: StudyFlow,
                      interval: float) -> None:
        cloud.send_between_tenants(flow.src, flow.dst, flow.frame_bytes)
        cloud.sim.every(interval, cloud.send_between_tenants,
                        flow.src, flow.dst, flow.frame_bytes)

    def run_hybrid(self, duration: float = 0.2,
                   warmup: float = 0.05) -> HybridResult:
        """Fluid background, per-packet foreground on residual pools."""
        background = self.solve_background()
        fluid = self.solve_fluid()
        servers = self.study_servers()
        tenants = sorted({t for f in self.flows for t in (f.src, f.dst)})
        cloud = self._subset_cloud(servers, tenants, residual=background)
        self.last_cloud = cloud
        delivered = self._drive(cloud, self.flows, duration, warmup)
        return HybridResult(
            flows=self.flows,
            delivered_pps=delivered,
            predicted_pps=dict(fluid.rates_pps),
            background=background,
            fluid=fluid,
            mode="hybrid",
            des_events=cloud.sim.events_fired,
            des_servers=len(servers))

    def run_pure_des(self, duration: float = 0.2,
                     warmup: float = 0.05) -> HybridResult:
        """Everything as packets: every tenant instantiated, background
        edges injected as real streams.  Only affordable on small
        fabrics -- this is the hybrid's validation oracle."""
        servers = self.placement.servers_used()
        tenants = sorted(self.req_of)
        cloud = self._subset_cloud(servers, tenants, residual=None)
        self.last_cloud = cloud
        bg_flows = []
        for req in self.reqs:
            for peer in req.peers:
                if (req.tenant_id, peer) in self._study_edges:
                    continue
                pps = req.demand_to(peer)
                if pps > 0:
                    bg_flows.append(StudyFlow(
                        src=req.tenant_id, dst=peer, rate_pps=pps,
                        frame_bytes=req.frame_bytes))
        delivered = self._drive(cloud, list(self.flows) + bg_flows,
                                duration, warmup)
        fluid = self.solve_fluid()
        return HybridResult(
            flows=self.flows,
            delivered_pps={f.name: delivered[f.name] for f in self.flows},
            predicted_pps=dict(fluid.rates_pps),
            background=self.solve_background(),
            fluid=fluid,
            mode="des",
            des_events=cloud.sim.events_fired,
            des_servers=len(servers))
