"""The fabric's capacity model: servers, racks, ToRs, one spine.

A :class:`FabricTopology` is the *fluid-side* description of the same
tree ``core.multiserver`` wires out of
:class:`~repro.net.fabric.FabricSwitch` objects: ``num_servers``
servers in racks of ``servers_per_rack``, each server on a
``server_link_bps`` access link to its ToR, each ToR on a
``tor_uplink_bps`` trunk to the spine.  It answers the questions both
halves of the hybrid simulation ask:

- *placement*: how many fabric hops between two servers
  (:meth:`hops` -- the optimizer's distance metric);
- *fluid model*: which named link pools a server-to-server path
  consumes (:meth:`path_links` / :meth:`link_resources`);
- *DES*: which rack a server sits in (:meth:`rack_of` -- duck-typed by
  ``MultiServerCloud._build_fabric``) and the link bandwidths.

Server access links share their names (``uplink.s<i>`` /
``downlink.s<i>``) with the Links the DES actually builds, so residual
capacities computed by the fluid solver map onto DES link bandwidths
by name alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.perfmodel.capacity import Resource
from repro.units import GBPS


@dataclass(frozen=True)
class FabricTopology:
    """A two-tier ToR/spine fabric (one tier when a single rack)."""

    num_servers: int = 8
    servers_per_rack: int = 16
    server_link_bps: float = 10 * GBPS
    tor_uplink_bps: float = 40 * GBPS

    def __post_init__(self) -> None:
        if self.num_servers < 1:
            raise ValueError("need at least one server")
        if self.servers_per_rack < 1:
            raise ValueError("racks hold at least one server")
        if self.server_link_bps <= 0 or self.tor_uplink_bps <= 0:
            raise ValueError("link bandwidths must be positive")

    # -- shape -----------------------------------------------------------

    @property
    def num_racks(self) -> int:
        return math.ceil(self.num_servers / self.servers_per_rack)

    def rack_of(self, server: int) -> int:
        if not 0 <= server < self.num_servers:
            raise ValueError(f"no server {server}")
        return server // self.servers_per_rack

    def servers_in_rack(self, rack: int) -> List[int]:
        if not 0 <= rack < self.num_racks:
            raise ValueError(f"no rack {rack}")
        lo = rack * self.servers_per_rack
        return list(range(lo, min(lo + self.servers_per_rack,
                                  self.num_servers)))

    # -- distances (the placement objective) ------------------------------

    def hops(self, src_server: int, dst_server: int) -> int:
        """Fabric link hops between two servers: 0 on the same server,
        2 within a rack (up to the ToR and back down), 4 across racks
        (server -> ToR -> spine -> ToR -> server)."""
        if src_server == dst_server:
            return 0
        if self.rack_of(src_server) == self.rack_of(dst_server):
            return 2
        return 4

    # -- link naming / capacity pools -------------------------------------

    @staticmethod
    def server_uplink(server: int) -> str:
        return f"uplink.s{server}"

    @staticmethod
    def server_downlink(server: int) -> str:
        return f"downlink.s{server}"

    @staticmethod
    def tor_uplink(rack: int) -> str:
        return f"tor{rack}.up"

    @staticmethod
    def tor_downlink(rack: int) -> str:
        return f"tor{rack}.down"

    def link_resources(self) -> Dict[str, Resource]:
        """Every fabric link as a byte/s capacity pool (link demands are
        expressed in *bits* per packet against bit/s pools)."""
        pools: Dict[str, Resource] = {}
        for s in range(self.num_servers):
            for name in (self.server_uplink(s), self.server_downlink(s)):
                pools[name] = Resource(name, self.server_link_bps)
        if self.num_racks > 1:
            for r in range(self.num_racks):
                for name in (self.tor_uplink(r), self.tor_downlink(r)):
                    pools[name] = Resource(name, self.tor_uplink_bps)
        return pools

    def path_links(self, src_server: int, dst_server: int) -> List[str]:
        """Link names one packet traverses from ``src_server`` to
        ``dst_server``.  Same-server traffic (including the
        cross-compartment case, which hairpins between In/Out VFs
        inside the NIC's embedded switch) never touches the fabric."""
        if src_server == dst_server:
            return []
        path = [self.server_uplink(src_server)]
        src_rack = self.rack_of(src_server)
        dst_rack = self.rack_of(dst_server)
        if src_rack != dst_rack:
            path.append(self.tor_uplink(src_rack))
            path.append(self.tor_downlink(dst_rack))
        path.append(self.server_downlink(dst_server))
        return path
