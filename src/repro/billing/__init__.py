"""Per-tenant metering and billing for MTS deployments.

The billing layer answers the question the obs layer leaves open: not
*what happened* but *who pays for it*.  It rides the PR 2 telemetry
plumbing -- a process-global tap (`METER`, mirroring `obs.TRACER`)
that hot-path sites consult behind an ``enabled`` guard, a
:class:`~repro.billing.session.MeteringSession` that harvests the tap
plus the :class:`~repro.core.accounting.NetworkingMeter` counters into
windowed :class:`~repro.billing.meter.UsageRecord`\\ s, an attribution
engine comparing per-packet exact CPU against the proportional-share
estimate, invoices priced with :class:`~repro.core.accounting.PricingModel`,
and a reconciliation auditor asserting the metered totals equal the
accounting ground truth.

Like ``obs``, the default is off: ``METER`` is a :class:`NullMeter`
whose ``enabled`` is ``False``, so un-metered runs pay only a branch
per tap site.  Heavy machinery (sessions, audits, reports) is imported
lazily by :mod:`repro.billing.runtime` so this package stays safe to
import from the dataplane modules.
"""

from __future__ import annotations

from repro.billing.meter import UNATTRIBUTED, NullMeter, TenantMeter, UsageRecord

#: The process-global metering tap.  Dataplane modules access it via
#: the module attribute (``_billing.METER``) so installs are visible
#: everywhere immediately.
METER = NullMeter()


def install(meter: TenantMeter) -> None:
    """Make ``meter`` the active tap."""
    global METER
    METER = meter


def uninstall(meter: TenantMeter) -> None:
    """Remove ``meter`` if it is still the active tap."""
    global METER
    if METER is meter:
        METER = NullMeter()


def metering_enabled() -> bool:
    return METER.enabled


__all__ = [
    "METER",
    "UNATTRIBUTED",
    "NullMeter",
    "TenantMeter",
    "UsageRecord",
    "install",
    "uninstall",
    "metering_enabled",
]
