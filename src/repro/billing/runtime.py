"""Process-local metering context threaded from specs to harness runs.

Mirrors :mod:`repro.faults.runtime`: the scenario engine activates a
context before invoking a workload (in this process or a pool worker),
the harness claims it when a run starts, and the engine drains the
usage records the session published after the workload returns.  The
indirection keeps workload functions metering-agnostic -- any workload
that drives a :class:`~repro.traffic.harness.TestbedHarness` becomes
billable without signature changes.
"""

from __future__ import annotations

from typing import List, Optional


class _Context:
    __slots__ = ("enabled", "interval", "seed", "claimed", "usage")

    def __init__(self, enabled: bool, interval: float, seed: int) -> None:
        self.enabled = enabled
        self.interval = interval
        self.seed = seed
        self.claimed = False
        self.usage: List[dict] = []


_active: Optional[_Context] = None


def activate(enabled: bool, interval: float = 0.0, seed: int = 0) -> _Context:
    """Install a metering context for the upcoming workload invocation."""
    global _active
    ctx = _Context(bool(enabled), float(interval), int(seed))
    _active = ctx
    return ctx


def deactivate(ctx: _Context) -> None:
    """Tear down ``ctx`` if it is still the active context."""
    global _active
    if _active is ctx:
        _active = None


def metering_requested() -> bool:
    return _active is not None and _active.enabled


def claim() -> None:
    if _active is not None:
        _active.claimed = True


def publish(items: List[dict]) -> None:
    """Append usage/summary dicts for the engine to drain."""
    if _active is not None:
        _active.usage.extend(items)


def drain() -> List[dict]:
    """Return and clear the usage records published so far."""
    if _active is None:
        return []
    usage = _active.usage
    _active.usage = []
    return usage


def attach_active_session(harness, horizon: float, chaos=None):
    """Arm a metering session for ``harness`` if a context wants one.

    Called by ``TestbedHarness.run``.  Returns ``None`` when metering
    is off or another harness already claimed the context (nested runs
    meter only the outermost).  ``chaos`` is the run's ChaosSession,
    if any, so fault recovery costs can be charged to tenants.
    """
    ctx = _active
    if ctx is None or not ctx.enabled or ctx.claimed:
        return None
    ctx.claimed = True
    from repro.billing.session import MeteringSession

    session = MeteringSession(
        harness.deployment,
        harness,
        interval=ctx.interval,
        seed=ctx.seed,
        chaos=chaos,
    )
    session.arm(horizon)
    return session
