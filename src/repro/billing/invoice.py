"""Invoices built from windowed usage records.

Uses the same unit prices and cost formulas as
:class:`~repro.core.accounting.PricingModel` so an invoice built from
windowed records totals exactly what :func:`repro.core.accounting.bill`
charges for the reconciled full-run usage -- plus the line items the
seed biller has no data for: PCIe bandwidth and fault-recovery work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.billing.meter import UsageRecord
from repro.core.accounting import PricingModel
from repro.units import GIB

#: Quality ranking, worst last: an invoice aggregating windows of
#: mixed quality is only as trustworthy as its weakest window.
_QUALITY_ORDER = ("exact", "estimated", "self-reported")


@dataclass
class LineItem:
    kind: str
    quantity: float
    unit: str
    cost: float

    def to_dict(self) -> dict:
        return {"kind": self.kind, "quantity": self.quantity,
                "unit": self.unit, "cost": self.cost}


@dataclass
class TenantInvoice:
    """Priced usage of one tenant over the metered run."""

    tenant_id: int
    items: List[LineItem] = field(default_factory=list)
    quality: str = "exact"

    @property
    def total(self) -> float:
        return sum(item.cost for item in self.items)

    def item(self, kind: str) -> float:
        """Cost of one line item kind (0 if absent)."""
        return sum(i.cost for i in self.items if i.kind == kind)

    def to_dict(self) -> dict:
        return {
            "kind": "invoice",
            "tenant": self.tenant_id,
            "quality": self.quality,
            "total": self.total,
            "items": [item.to_dict() for item in self.items],
        }


def _worst_quality(a: str, b: str) -> str:
    ia = _QUALITY_ORDER.index(a) if a in _QUALITY_ORDER else len(_QUALITY_ORDER)
    ib = _QUALITY_ORDER.index(b) if b in _QUALITY_ORDER else len(_QUALITY_ORDER)
    return a if ia >= ib else b


def invoices_from_records(
    records: Sequence[UsageRecord],
    pricing: PricingModel = PricingModel(),
) -> List[TenantInvoice]:
    """Aggregate windowed records into one priced invoice per tenant.

    CPU, memory and I/O use the exact ``PricingModel.invoice`` formulas
    (so totals reconcile with the accounting layer's invoices); fault
    recovery is priced as CPU time, and PCIe as traffic bytes.
    """
    cpu: Dict[int, float] = {}
    mem: Dict[int, float] = {}
    io: Dict[int, int] = {}
    pcie: Dict[int, int] = {}
    fault: Dict[int, float] = {}
    quality: Dict[int, str] = {}
    for rec in records:
        t = rec.tenant_id
        cpu[t] = cpu.get(t, 0.0) + rec.cpu_seconds
        mem[t] = mem.get(t, 0.0) + rec.memory_byte_seconds
        io[t] = io.get(t, 0) + rec.io_bytes
        pcie[t] = pcie.get(t, 0) + rec.pcie_bytes
        fault[t] = fault.get(t, 0.0) + rec.fault_seconds
        quality[t] = _worst_quality(quality.get(t, "exact"), rec.quality)

    invoices: List[TenantInvoice] = []
    for t in sorted(cpu):
        items = [
            LineItem("vswitch_cpu", cpu[t], "s",
                     cpu[t] / 3600.0 * pricing.per_cpu_hour),
            LineItem("vswitch_memory", mem[t], "B*s",
                     mem[t] / GIB / 3600.0 * pricing.per_gib_hour),
            LineItem("nic_io", io[t], "B",
                     io[t] / GIB * pricing.per_gib_traffic),
            LineItem("pcie_io", pcie[t], "B",
                     pcie[t] / GIB * pricing.per_gib_traffic),
        ]
        if fault[t] > 0:
            items.append(LineItem("fault_recovery", fault[t], "s",
                                  fault[t] / 3600.0 * pricing.per_cpu_hour))
        invoices.append(TenantInvoice(
            tenant_id=t, items=items, quality=quality[t]))
    return invoices
