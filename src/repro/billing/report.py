"""Billing reports: cost tables, misattribution and fault-payer views.

Pure formatting over :class:`~repro.billing.meter.UsageRecord` dicts
and :class:`~repro.billing.invoice.TenantInvoice`\\ s -- the `repro
billing` CLI assembles these from scenario results.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.billing.invoice import TenantInvoice
from repro.measure.reporting import Series, Table


def cost_table(invoices_by_deployment: Mapping[str, Sequence[TenantInvoice]],
               title: str = "Per-tenant virtual networking cost") -> Table:
    """Tenants as rows, deployments as columns, invoice totals as cells."""
    table = Table(title=title, unit="USD", fmt=lambda v: f"{v:.3e}")
    tenants: List[int] = sorted({
        inv.tenant_id
        for invoices in invoices_by_deployment.values()
        for inv in invoices
    })
    for t in tenants:
        series = Series(label=f"tenant {t}")
        for label, invoices in invoices_by_deployment.items():
            for inv in invoices:
                if inv.tenant_id == t:
                    series.add(label, inv.total)
        table.add_series(series)
    total = Series(label="total")
    for label, invoices in invoices_by_deployment.items():
        total.add(label, sum(inv.total for inv in invoices))
    table.add_series(total)
    return table


def misattribution_table(scores_by_deployment: Mapping[str, float]) -> Table:
    """One row: the CPU misattribution score per deployment."""
    table = Table(
        title="CPU misattribution (0 = bill matches per-packet truth)",
        fmt=lambda v: f"{v:.4f}",
    )
    series = Series(label="score")
    for label, score in scores_by_deployment.items():
        series.add(label, score)
    table.add_series(series)
    return table


def fault_payer_table(payers_by_deployment: Mapping[str, Mapping[str, float]],
                      title: str = "Who pays for the fault?") -> Table:
    """Tenants as rows, deployments as columns, fault-recovery seconds
    charged as cells -- the blast radius of an outage, in billing terms."""
    table = Table(title=title, unit="s charged", fmt=lambda v: f"{v:.4f}")
    tenants = sorted({
        int(t)
        for payers in payers_by_deployment.values()
        for t in payers
    })
    for t in tenants:
        series = Series(label=f"tenant {t}")
        for label, payers in payers_by_deployment.items():
            series.add(label, float(payers.get(str(t), 0.0)))
        table.add_series(series)
    return table


def quality_summary(invoices: Sequence[TenantInvoice]) -> Dict[str, int]:
    """Count invoices by attribution quality."""
    counts: Dict[str, int] = {}
    for inv in invoices:
        counts[inv.quality] = counts.get(inv.quality, 0) + 1
    return counts
