"""Attribution mathematics: shares, splits and the misattribution score.

The billing pipeline carries two answers to "who used the shared
vswitch's CPU": the proportional-share **estimate** a cloud provider
can actually compute from NIC hardware byte counters (what
:class:`~repro.core.accounting.NetworkingMeter` implements, and what
invoices are built from), and the per-packet **exact** attribution the
simulator can additionally record because it sees every service event.
This module quantifies the gap between them.

The misattribution score is the total-variation distance between the
two attributions viewed as distributions over tenants:

    score = 0.5 * sum_t | exact_share(t) - billed_share(t) |

It is 0 when the estimate matches reality exactly (e.g. per-tenant
compartments) and approaches 1 when the bill charges entirely the
wrong tenants -- precisely the noisy-neighbor failure mode: an
attacker's expensive small-packet flood is billed by *bytes*, so
byte-heavy victims subsidize the attacker's cycles.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence


def normalized(weights: Mapping[int, float]) -> Dict[int, float]:
    """Scale non-negative weights to sum to 1; empty/zero input -> {}."""
    total = sum(weights.values())
    if total <= 0:
        return {}
    return {k: v / total for k, v in weights.items()}


def misattribution_score(exact: Mapping[int, float],
                         billed: Mapping[int, float]) -> float:
    """Total-variation distance between two per-tenant attributions.

    Inputs are raw (un-normalized) non-negative weights, e.g. CPU
    seconds per tenant.  Returns 0.0 when either side is empty or all
    zero -- no work means nothing was misattributed.
    """
    p = normalized(exact)
    q = normalized(billed)
    if not p or not q:
        return 0.0
    keys = set(p) | set(q)
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)


def proportional_split(total: float,
                       weights: Mapping[int, float]) -> Dict[int, float]:
    """Split ``total`` across keys proportionally to ``weights``.

    All-zero weights fall back to an even split (the accounting layer's
    behaviour for an idle shared compartment).
    """
    if not weights:
        return {}
    weight_sum = sum(weights.values())
    if weight_sum <= 0:
        even = total / len(weights)
        return {k: even for k in weights}
    return {k: total * w / weight_sum for k, w in weights.items()}


def even_split(total: float, keys: Sequence[int]) -> Dict[int, float]:
    """Split ``total`` evenly across ``keys`` (fault-cost socialization
    within a compartment)."""
    if not keys:
        return {}
    share = total / len(keys)
    return {k: share for k in keys}
