"""One metered harness run: windows, attribution, fault charges, audit.

A :class:`MeteringSession` is armed just before traffic starts (by
:func:`repro.billing.runtime.attach_active_session`, or directly by a
test).  It owns three instruments:

- a :class:`~repro.billing.meter.TenantMeter` tap installed as the
  process-global ``billing.METER`` -- per-packet exact CPU, PCIe bytes
  and classified drops straight from the dataplane;
- a *window* :class:`~repro.core.accounting.NetworkingMeter` snapshot/
  read-cycled at every ``interval`` tick of simulated time -- the
  billable (provider-computable) attribution;
- a *truth* ``NetworkingMeter`` spanning the whole run -- the ground
  truth the reconciliation auditor compares against.

``finish()`` closes the tail window, charges fault-recovery work to
the tenants of crashed compartments (composing with an active
:class:`~repro.faults.session.ChaosSession`), audits conservation, and
publishes the usage records plus a summary through the billing runtime
so scenario results carry them.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro import billing as _billing
from repro import obs as _obs
from repro.billing import attribution
from repro.billing.audit import reconcile
from repro.billing.meter import TenantMeter, UsageRecord
from repro.core.accounting import NetworkingMeter


class MeteringSession:
    """Meter one harness run on ``deployment``."""

    def __init__(self, deployment, harness, interval: float = 0.0,
                 seed: int = 0, chaos=None) -> None:
        self.deployment = deployment
        self.harness = harness
        self.interval = float(interval)
        self.seed = seed
        self.chaos = chaos
        self.records: List[UsageRecord] = []
        self._tap = TenantMeter()
        self._window = NetworkingMeter(deployment)
        self._truth = NetworkingMeter(deployment)
        self._tap_prev: Dict[str, dict] = self._tap.totals()
        self._win_t0 = 0.0
        self._ticker = None
        self._finished = False
        self._summary: Optional[dict] = None

    # -- lifecycle ---------------------------------------------------------

    def arm(self, horizon: float) -> None:
        """Install the tap and start windowing for ``horizon`` seconds."""
        sim = self.deployment.sim
        self._win_t0 = sim.now
        self._window.snapshot()
        self._truth.snapshot()
        _billing.install(self._tap)
        if self.interval > 0:
            self._ticker = sim.every(self.interval, self._close_window,
                                     until=sim.now + horizon)

    def finish(self) -> dict:
        """Close the books: tail window, fault charges, audit, publish."""
        if self._finished:
            return self._summary or {}
        self._finished = True
        if self._ticker is not None:
            self._ticker.cancel()
        self._close_window()
        _billing.uninstall(self._tap)

        fault_payers = self._charge_faults()

        truth = self._truth.read()
        report = reconcile(self.records, truth, self.deployment.spec)

        billed_cpu: Dict[int, float] = {}
        exact_cpu: Dict[int, float] = {}
        for rec in self.records:
            billed_cpu[rec.tenant_id] = (billed_cpu.get(rec.tenant_id, 0.0)
                                         + rec.cpu_seconds)
            exact_cpu[rec.tenant_id] = (exact_cpu.get(rec.tenant_id, 0.0)
                                        + rec.cpu_seconds_exact)
        score = attribution.misattribution_score(exact_cpu, billed_cpu)

        summary = {
            "kind": "summary",
            "windows": len({(r.t0, r.t1) for r in self.records}),
            "reconciled": report.ok,
            "failures": list(report.failures),
            "misattribution_score": score,
            "billed_cpu_seconds": sum(billed_cpu.values()),
            "exact_cpu_seconds": sum(exact_cpu.values()),
            "billed_io_bytes": sum(r.io_bytes for r in self.records),
            "billed_pcie_bytes": sum(r.pcie_bytes for r in self.records),
            "fault_seconds_total": sum(fault_payers.values()),
            "fault_payers": {str(t): s for t, s in sorted(fault_payers.items())},
            "fault_drops": {
                str(t): n for t, n in sorted(self._tap.fault_drops.items())
            },
            "tenant_cpu_skew": {
                str(t): s for t, s in sorted(report.tenant_cpu_skew.items())
            },
        }
        from repro.billing import runtime as _runtime
        _runtime.publish([rec.to_dict() for rec in self.records] + [summary])
        self._summary = summary
        return summary

    # -- windowing ---------------------------------------------------------

    def _close_window(self) -> None:
        """Harvest one window: accounting usages + tap deltas."""
        d = self.deployment
        t0, t1 = self._win_t0, d.sim.now
        usages = self._window.read()
        if not usages:
            if t1 > t0:
                # A deployment with zero tenants still advances time.
                self._rotate(t1)
            return

        tap_now = self._tap.totals()
        cpu_d = self._delta(tap_now["cpu"], self._tap_prev["cpu"])
        passes_d = self._delta(tap_now["passes"], self._tap_prev["passes"])
        pcie_d = self._delta(tap_now["pcie"], self._tap_prev["pcie"])
        drops_d = self._delta(tap_now["drops"], self._tap_prev["drops"])
        self._tap_prev = tap_now

        spec = d.spec
        covered = set()
        for usage in usages:
            t = usage.tenant_id
            covered.add(t)
            if spec.level.is_mts:
                k = spec.compartment_of_tenant(t)
            else:
                k = 0
            cpu = usage.vswitch_cpu_seconds
            shares = d.bridges[k].compute_shares if k < len(d.bridges) else ()
            core = shares[0].physical_seconds(cpu) if shares else cpu
            self.records.append(UsageRecord(
                tenant_id=t,
                compartment=k,
                t0=t0,
                t1=t1,
                cpu_seconds=cpu,
                cpu_seconds_exact=cpu_d.get(t, 0.0),
                core_seconds=core,
                io_bytes=usage.io_bytes,
                pcie_bytes=pcie_d.get(t, 0),
                passes=passes_d.get(t, 0),
                drops={reason: n for (dt, reason), n in drops_d.items()
                       if dt == t},
                memory_byte_seconds=usage.vswitch_memory_byte_seconds,
                quality=usage.quality.value,
            ))
        # Dataplane work the load generator did not label (tenant -1)
        # still shows up so the books close.
        extra = ({t for t in cpu_d} | {t for t in pcie_d}
                 | {dt for (dt, _r) in drops_d}) - covered
        for t in sorted(extra):
            self.records.append(UsageRecord(
                tenant_id=t, compartment=-1, t0=t0, t1=t1,
                cpu_seconds_exact=cpu_d.get(t, 0.0),
                pcie_bytes=pcie_d.get(t, 0),
                passes=passes_d.get(t, 0),
                drops={reason: n for (dt, reason), n in drops_d.items()
                       if dt == t},
                quality="estimated",
            ))
        self._export_window(cpu_d, pcie_d, passes_d, drops_d, usages)
        self._rotate(t1)

    def _rotate(self, t1: float) -> None:
        self._window.snapshot()
        self._win_t0 = t1

    @staticmethod
    def _delta(now: dict, prev: dict) -> dict:
        out = {}
        for key, value in now.items():
            change = value - prev.get(key, 0)
            if change:
                out[key] = change
        return out

    def _export_window(self, cpu_d, pcie_d, passes_d, drops_d,
                       usages) -> None:
        """Fold the window into the obs registry (ships from workers)."""
        reg = _obs.REGISTRY
        reg.counter("billing_windows_total",
                    "accounting windows closed").inc()
        cpu_c = reg.counter("billing_cpu_seconds_total",
                            "billable vswitch CPU", labels=("tenant",))
        io_c = reg.counter("billing_io_bytes_total",
                           "billable NIC bytes", labels=("tenant",))
        for usage in usages:
            label = str(usage.tenant_id)
            if usage.vswitch_cpu_seconds > 0:
                cpu_c.labels(tenant=label).inc(usage.vswitch_cpu_seconds)
            if usage.io_bytes > 0:
                io_c.labels(tenant=label).inc(usage.io_bytes)
        pcie_c = reg.counter("billing_pcie_bytes_total",
                             "per-tenant PCIe DMA bytes", labels=("tenant",))
        for t, v in pcie_d.items():
            pcie_c.labels(tenant=str(t)).inc(v)
        passes_c = reg.counter("billing_passes_total",
                               "vswitch passes executed", labels=("tenant",))
        for t, v in passes_d.items():
            passes_c.labels(tenant=str(t)).inc(v)
        drops_c = reg.counter("billing_drops_total",
                              "metered drops", labels=("tenant", "reason"))
        for (t, reason), v in drops_d.items():
            drops_c.labels(tenant=str(t), reason=reason).inc(v)

    # -- fault attribution -------------------------------------------------

    def _charge_faults(self) -> Dict[int, float]:
        """Charge recovery work to the crashed compartment's tenants.

        Composes with the run's ChaosSession: every recovered outage of
        a compartment costs its resync (flow re-install + ARP re-learn)
        time, split evenly among that compartment's tenants -- *they*
        chose (or were placed in) the faulty compartment, and under
        per-tenant compartments the blast radius is exactly one payer.
        Warm-standby failovers are pre-synced and cost nothing.  Frames
        blackholed by the fault are attached from the tap.
        """
        charges: Dict[int, float] = {}
        chaos = self.chaos
        spec = self.deployment.spec
        if chaos is not None:
            for outage in chaos.outages:
                if outage.get("recovered_at") is None:
                    continue
                if outage.get("mode") == "standby":
                    continue
                state = chaos.states.get(outage["target"])
                if state is None or not state.is_compartment:
                    continue
                k = int(state.name.split(":", 1)[1])
                tenants = spec.tenants_of_compartment(k)
                for t, cost in attribution.even_split(
                        chaos.resync_cost(state), tenants).items():
                    charges[t] = charges.get(t, 0.0) + cost

        last: Dict[int, UsageRecord] = {}
        for rec in self.records:
            last[rec.tenant_id] = rec
        for t, cost in charges.items():
            if t in last:
                last[t].fault_seconds += cost
        for t, n in self._tap.fault_drops.items():
            if t in last:
                last[t].fault_drops += n
        return charges
