"""Reconciliation auditor: metered windows vs. accounting ground truth.

The windowed pipeline and :class:`~repro.core.accounting.NetworkingMeter`
read the *same* hardware counters, so their totals must agree -- any
gap means the metering pipeline dropped or double-counted usage.  The
auditor asserts:

- **per-tenant I/O conservation**: the sum of each tenant's windowed
  ``io_bytes`` equals the full-run accounting delta *exactly* (integer
  counters telescope across window boundaries);
- **per-compartment CPU conservation**: summed billable CPU per
  compartment matches the full-run busy-time delta (float compare --
  FP deltas do not telescope bit-exactly);
- **memory conservation**: same, for byte-seconds.

Per-tenant CPU is deliberately *not* an invariant: the windowed
proportional split uses per-window byte shares, the full-run split the
whole-run share, and those legitimately differ when traffic mixes
shift between windows.  The auditor reports that skew informationally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.billing.meter import UsageRecord
from repro.core.accounting import TenantUsage

#: Relative tolerance for float conservation checks.  Busy-time deltas
#: accumulate one rounding error per window boundary; 1e-6 is orders
#: of magnitude above that and far below any attribution error.
REL_TOL = 1e-6
ABS_TOL = 1e-12


@dataclass
class ReconciliationReport:
    """Outcome of one audit: pass/fail plus the compared totals."""

    ok: bool
    failures: List[str] = field(default_factory=list)
    #: tenant -> (metered io bytes, truth io bytes)
    io_bytes: Dict[int, tuple] = field(default_factory=dict)
    #: compartment -> (metered cpu seconds, truth cpu seconds)
    cpu_seconds: Dict[int, tuple] = field(default_factory=dict)
    #: compartment -> (metered byte-seconds, truth byte-seconds)
    memory_byte_seconds: Dict[int, tuple] = field(default_factory=dict)
    #: tenant -> |windowed cpu - truth cpu| (informational skew, see
    #: module docstring).
    tenant_cpu_skew: Dict[int, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "failures": list(self.failures),
            "io_bytes": {t: list(v) for t, v in self.io_bytes.items()},
            "cpu_seconds": {k: list(v) for k, v in self.cpu_seconds.items()},
            "memory_byte_seconds": {
                k: list(v) for k, v in self.memory_byte_seconds.items()
            },
            "tenant_cpu_skew": dict(self.tenant_cpu_skew),
        }


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=REL_TOL, abs_tol=ABS_TOL)


def reconcile(records: Sequence[UsageRecord],
              truth: Sequence[TenantUsage],
              spec) -> ReconciliationReport:
    """Check windowed ``records`` against the full-run ``truth``.

    ``truth`` is what ``NetworkingMeter.read()`` returned for the whole
    metered span; ``spec`` maps tenants to compartments.  An empty run
    (no windows, no truth usage) reconciles trivially.
    """
    report = ReconciliationReport(ok=True)

    metered_io: Dict[int, int] = {}
    metered_cpu_by_comp: Dict[int, float] = {}
    metered_mem_by_comp: Dict[int, float] = {}
    metered_cpu_by_tenant: Dict[int, float] = {}
    for rec in records:
        t = rec.tenant_id
        metered_io[t] = metered_io.get(t, 0) + rec.io_bytes
        metered_cpu_by_tenant[t] = (metered_cpu_by_tenant.get(t, 0.0)
                                    + rec.cpu_seconds)
        k = rec.compartment
        metered_cpu_by_comp[k] = (metered_cpu_by_comp.get(k, 0.0)
                                  + rec.cpu_seconds)
        metered_mem_by_comp[k] = (metered_mem_by_comp.get(k, 0.0)
                                  + rec.memory_byte_seconds)

    truth_io: Dict[int, int] = {}
    truth_cpu_by_comp: Dict[int, float] = {}
    truth_mem_by_comp: Dict[int, float] = {}
    truth_cpu_by_tenant: Dict[int, float] = {}
    for usage in truth:
        t = usage.tenant_id
        truth_io[t] = truth_io.get(t, 0) + usage.io_bytes
        truth_cpu_by_tenant[t] = (truth_cpu_by_tenant.get(t, 0.0)
                                  + usage.vswitch_cpu_seconds)
        if spec.level.is_mts:
            k = spec.compartment_of_tenant(t)
        else:
            k = 0
        truth_cpu_by_comp[k] = (truth_cpu_by_comp.get(k, 0.0)
                                + usage.vswitch_cpu_seconds)
        truth_mem_by_comp[k] = (truth_mem_by_comp.get(k, 0.0)
                                + usage.vswitch_memory_byte_seconds)

    for t in sorted(set(metered_io) | set(truth_io)):
        got, want = metered_io.get(t, 0), truth_io.get(t, 0)
        report.io_bytes[t] = (got, want)
        if got != want:
            report.ok = False
            report.failures.append(
                f"tenant {t}: metered io {got} B != accounting {want} B"
            )

    for k in sorted(set(metered_cpu_by_comp) | set(truth_cpu_by_comp)):
        got = metered_cpu_by_comp.get(k, 0.0)
        want = truth_cpu_by_comp.get(k, 0.0)
        report.cpu_seconds[k] = (got, want)
        if not _close(got, want):
            report.ok = False
            report.failures.append(
                f"compartment {k}: metered cpu {got:.9f}s "
                f"!= accounting {want:.9f}s"
            )

    for k in sorted(set(metered_mem_by_comp) | set(truth_mem_by_comp)):
        got = metered_mem_by_comp.get(k, 0.0)
        want = truth_mem_by_comp.get(k, 0.0)
        report.memory_byte_seconds[k] = (got, want)
        if not _close(got, want):
            report.ok = False
            report.failures.append(
                f"compartment {k}: metered memory {got:.3f} B*s "
                f"!= accounting {want:.3f} B*s"
            )

    for t in sorted(set(metered_cpu_by_tenant) | set(truth_cpu_by_tenant)):
        report.tenant_cpu_skew[t] = abs(
            metered_cpu_by_tenant.get(t, 0.0) - truth_cpu_by_tenant.get(t, 0.0)
        )

    return report
